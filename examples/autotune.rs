//! The tuning story of Sections IV-E/IV-F and the algorithm-selection
//! framework Section V-C proposes: sweep the block-size grid, walk the four
//! kernel strategies, then let the selector pick CAQR vs blocked Householder
//! per matrix shape.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use caqr::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use caqr::tuning::{autotune, figure7_surface, select_algorithm, QrAlgorithm};
use caqr::BlockSize;
use gpu_sim::DeviceSpec;

fn main() {
    let spec = DeviceSpec::c2050();

    println!("kernel strategy progression on 128x16 blocks (paper: 55 -> 168 -> 194 -> 388):");
    for s in ReductionStrategy::ALL {
        println!(
            "  {:>48}: {:6.0} GFLOP/s",
            s.to_string(),
            apply_qt_h_block_gflops(&spec, BlockSize::c2050_best(), s)
        );
    }

    let surface = figure7_surface(&spec, ReductionStrategy::RegisterSerialTransposed);
    let best = autotune(&spec, ReductionStrategy::RegisterSerialTransposed);
    println!(
        "\nblock-size sweep: {} candidates, best = {}x{} at {:.0} GFLOP/s (paper: 128x16 at 388)",
        surface.len(),
        best.bs.h,
        best.bs.w,
        best.gflops
    );
    let mut sorted = surface.clone();
    sorted.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).unwrap());
    println!("top five shapes:");
    for p in sorted.iter().take(5) {
        println!("  {:>4}x{:<3} {:6.0} GFLOP/s", p.bs.h, p.bs.w, p.gflops);
    }

    println!("\nalgorithm selection per shape (Section V-C's proposed framework):");
    for (m, n) in [
        (1_000_000usize, 192usize),
        (100_000, 100),
        (8192, 1024),
        (8192, 4096),
        (8192, 8192),
    ] {
        let choice = match select_algorithm(&spec, m, n) {
            QrAlgorithm::Caqr => "CAQR",
            QrAlgorithm::BlockedHouseholder => "blocked Householder",
        };
        println!("  {m:>9} x {n:<5} -> {choice}");
    }
}
