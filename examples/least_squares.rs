//! Least squares via CAQR — the paper's first motivating workload:
//! "Least squares matrices may have thousands of rows representing
//! observations, and only a few tens or hundreds of columns representing
//! the number of parameters."
//!
//! Fits a noisy polynomial with a 50,000 x 9 Vandermonde-style design
//! matrix three ways (CAQR on the simulated GPU, blocked Householder on the
//! CPU, modified Gram-Schmidt) and shows they agree.
//!
//! ```text
//! cargo run --release --example least_squares
//! ```

use caqr::{caqr::caqr, CaqrOptions};
use gpu_sim::{DeviceSpec, Gpu};
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let m = 50_000usize;
    let degree = 8usize;
    let n = degree + 1;

    // True polynomial coefficients.
    let truth: Vec<f64> = (0..n).map(|k| (k as f64 - 3.5) / 2.0).collect();

    // Design matrix: rows are (1, t, t^2, ..., t^8) at m sample points in
    // [-1, 1]; observations get uniform noise.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let noise = Uniform::new(-0.01f64, 0.01);
    let ts: Vec<f64> = (0..m)
        .map(|i| 2.0 * i as f64 / (m - 1) as f64 - 1.0)
        .collect();
    let a = dense::Matrix::from_fn(m, n, |i, j| ts[i].powi(j as i32));
    let b: Vec<f64> = (0..m)
        .map(|i| {
            let mut y = 0.0;
            for (k, c) in truth.iter().enumerate() {
                y += c * ts[i].powi(k as i32);
            }
            y + noise.sample(&mut rng)
        })
        .collect();

    // 1) CAQR on the simulated GPU.
    let gpu = Gpu::new(DeviceSpec::c2050());
    let f = caqr(&gpu, a.clone(), CaqrOptions::default()).expect("caqr failed");
    let x_caqr = f.least_squares(&gpu, &b).expect("solve failed");

    // 2) Blocked Householder on the CPU.
    let x_cpu = dense::blocked::least_squares(a.clone(), &b);

    // 3) Modified Gram-Schmidt.
    let x_mgs = dense::gram_schmidt::mgs_least_squares(&a, &b);

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "coef", "truth", "CAQR", "CPU QR", "MGS"
    );
    for k in 0..n {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            k, truth[k], x_caqr[k], x_cpu[k], x_mgs[k]
        );
    }

    let err = |x: &[f64]| -> f64 {
        x.iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };
    println!(
        "\ncoefficient error:  CAQR {:.2e}   CPU {:.2e}   MGS {:.2e}",
        err(&x_caqr),
        err(&x_cpu),
        err(&x_mgs)
    );
    println!(
        "CAQR and CPU QR agree to {:.2e}",
        x_caqr
            .iter()
            .zip(&x_cpu)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    );
    println!(
        "modelled GPU time for the factorization + solve: {:.3} ms",
        gpu.elapsed() * 1e3
    );
}
