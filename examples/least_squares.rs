//! Least squares via the multi-tenant CAQR service — the paper's first
//! motivating workload: "Least squares matrices may have thousands of rows
//! representing observations, and only a few tens or hundreds of columns
//! representing the number of parameters."
//!
//! Three tenants each submit two bootstrap replicates of a noisy
//! polynomial fit (degrees 4, 6, and 8 — tall-skinny Vandermonde design
//! matrices) through [`caqr::Service`]. Same-shape replicates fuse into
//! shared batches; every fit is solved from the returned factorization and
//! **asserted** against a residual bound, the planted coefficients, and
//! the CPU blocked-Householder reference — so this example doubles as a
//! tested workload in CI.
//!
//! ```text
//! cargo run --release --example least_squares
//! ```

use caqr::multicore::CpuCaqrOptions;
use caqr::{JobSpec, Priority, Service, ServiceConfig, TreeShape};
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const M: usize = 20_000;
const NOISE: f64 = 0.01;

struct Fit {
    tenant: &'static str,
    degree: usize,
    priority: Priority,
}

fn main() {
    let fits = [
        Fit {
            tenant: "observatory",
            degree: 4,
            priority: Priority::Interactive,
        },
        Fit {
            tenant: "lab",
            degree: 6,
            priority: Priority::Standard,
        },
        Fit {
            tenant: "survey",
            degree: 8,
            priority: Priority::Batch,
        },
    ];
    let ts: Vec<f64> = (0..M)
        .map(|i| 2.0 * i as f64 / (M - 1) as f64 - 1.0)
        .collect();

    let svc = Service::<f64>::start(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        max_batch: 4,
        ..ServiceConfig::default()
    });

    // Build every job up front, then submit back to back: replicates of
    // the same degree share a shape class, so the admission queue can pack
    // them into fused batches while the workers are busy.
    let mut jobs = Vec::new();
    for fit in &fits {
        let n = fit.degree + 1;
        let truth: Vec<f64> = (0..n).map(|k| (k as f64 - 3.5) / 2.0).collect();
        let a = dense::Matrix::from_fn(M, n, |i, j| ts[i].powi(j as i32));
        for rep in 0..2u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(7 + 13 * fit.degree as u64 + rep);
            let noise = Uniform::new(-NOISE, NOISE);
            let b: Vec<f64> = (0..M)
                .map(|i| {
                    let mut y = 0.0;
                    for (k, c) in truth.iter().enumerate() {
                        y += c * ts[i].powi(k as i32);
                    }
                    y + noise.sample(&mut rng)
                })
                .collect();
            jobs.push((fit, a.clone(), truth.clone(), b));
        }
    }
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(fit, a, _, _)| {
            let opts = CpuCaqrOptions {
                tile_rows: 128,
                panel_width: a.cols(),
                tree: TreeShape::DeviceArity,
                verify_checksums: false,
            };
            svc.submit(
                JobSpec::new(a.clone(), opts)
                    .tenant(fit.tenant)
                    .priority(fit.priority),
            )
            .expect("admission while running")
        })
        .collect();

    println!(
        "{:>12} {:>7} {:>12} {:>12} {:>12} {:>10} {:>7}",
        "tenant", "degree", "coef err", "residual", "vs CPU QR", "wait ms", "fused"
    );
    for ((fit, a, truth, b), ticket) in jobs.iter().zip(tickets) {
        let outcome = ticket.wait().expect("service delivers every outcome");
        let f = outcome.result.expect("fit factorizes");
        let x = f.least_squares(b).expect("triangular solve");

        // Residual bound: the planted observations differ from the model
        // by uniform noise in [-NOISE, NOISE], so the LS residual cannot
        // exceed the noise vector's own norm bound sqrt(M) * NOISE.
        let mut residual = 0.0f64;
        for i in 0..M {
            let mut pred = 0.0;
            for (j, xj) in x.iter().enumerate() {
                pred += a[(i, j)] * xj;
            }
            residual += (pred - b[i]) * (pred - b[i]);
        }
        let residual = residual.sqrt();
        let bound = (M as f64).sqrt() * NOISE;
        assert!(
            residual <= bound,
            "{}: residual {residual:.3e} exceeds the noise bound {bound:.3e}",
            fit.tenant
        );

        // The recovered coefficients must sit at the noise floor.
        let coef_err = x
            .iter()
            .zip(truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            coef_err < 1e-2,
            "{}: coefficient error {coef_err:.3e} above noise floor",
            fit.tenant
        );

        // And agree with the blocked-Householder CPU reference.
        let x_cpu = dense::blocked::least_squares(a.clone(), b);
        let vs_cpu = x
            .iter()
            .zip(&x_cpu)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            vs_cpu < 1e-8,
            "{}: service solution diverges from CPU QR by {vs_cpu:.3e}",
            fit.tenant
        );

        println!(
            "{:>12} {:>7} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.3} {:>7}",
            fit.tenant,
            fit.degree,
            coef_err,
            residual,
            vs_cpu,
            outcome.queue_wait.as_secs_f64() * 1e3,
            outcome.fused_with
        );
    }

    let ledger = svc.ledger();
    svc.shutdown();
    ledger.reconcile().expect("per-tenant ledger reconciles");
    assert_eq!(ledger.global.jobs_completed, 6);
    println!(
        "\n{} jobs over {} batches ({} fused, {} solo); per-tenant GFLOP:",
        ledger.global.jobs_completed,
        ledger.batches,
        ledger.global.fused_jobs,
        ledger.global.solo_jobs
    );
    for (tenant, c) in &ledger.tenants {
        println!(
            "{tenant:>12}: {:.3} GFLOP, {:.3} ms service time",
            c.flops / 1e9,
            c.service_seconds * 1e3
        );
    }
    println!("\nall residual, coefficient, and CPU-agreement bounds hold");
}
