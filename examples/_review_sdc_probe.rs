use caqr::recovery::{caqr_resilient, RecoveryOptions};
use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, FaultPlan, Gpu};

fn opts() -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h: 64, w: 16 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

fn main() {
    let (m, n) = (2048usize, 32usize);
    let a = dense::generate::uniform::<f64>(m, n, 17);
    let clean = caqr::caqr::caqr(&Gpu::new(DeviceSpec::c2050()), a.clone(), opts()).unwrap();
    let recovery = RecoveryOptions { caqr: opts(), streams: 3, ..RecoveryOptions::default() };

    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::sdc_at_launches(&[2, 5, 9]));
    let (f, report) = caqr_resilient(&gpu, a.clone(), recovery).unwrap();
    let l = gpu.ledger();
    println!(
        "injected={} ck_fail={} replays={} full_a_match={} r_match={}",
        l.sdc_injected, report.checksum_failures, report.task_replays,
        f.a == clean.a, f.r() == clean.r()
    );
    if f.a != clean.a {
        for j in 0..n { for i in 0..m {
            if f.a[(i,j)] != clean.a[(i,j)] {
                println!("first diff at ({i},{j}): {} vs {}", f.a[(i,j)], clean.a[(i,j)]);
                return;
            }
        }}
    }
}
