//! s-step Krylov basis orthogonalization with TSQR — the paper's most
//! extreme tall-skinny workload: "The dimensions of this QR factorization
//! can be millions of rows by less than ten columns."
//!
//! Builds the Krylov sequence {v, Av, ..., A^(s-1) v} for a sparse operator,
//! then orthogonalizes it with (a) TSQR on the simulated GPU, (b) classical
//! Gram-Schmidt and (c) CholeskyQR, demonstrating why the communication-
//! avoiding Householder approach is also the *numerically safe* one on
//! these nearly dependent bases.
//!
//! ```text
//! cargo run --release --example sstep_krylov
//! ```

use caqr::{tsqr, BlockSize, ReductionStrategy};
use dense::norms::orthogonality_error;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let n_rows = 200_000usize;
    let s = 8usize;
    println!("building a {n_rows} x {s} Krylov basis (tridiagonal operator)...");
    let basis = dense::generate::krylov_basis::<f64>(n_rows, s, 123);

    let sv = {
        // Condition number of the basis — the reason plain normal-equation
        // methods fail here.
        let gram_svd = dense::svd::singular_values(&basis.extract(0, 0, 4096, s));
        gram_svd[0] / gram_svd[s - 1].max(1e-300)
    };
    println!("sample condition estimate of the basis: {sv:.2e}\n");

    // (a) TSQR on the simulated GPU.
    let gpu = Gpu::new(DeviceSpec::c2050());
    let f = tsqr(
        &gpu,
        basis.clone(),
        BlockSize::c2050_best(),
        ReductionStrategy::RegisterSerialTransposed,
    )
    .expect("tsqr failed");
    let q_tsqr = f.generate_q(&gpu).expect("generate_q failed");
    let tsqr_err = orthogonality_error(&q_tsqr);
    let ledger = gpu.ledger();
    println!(
        "TSQR (simulated C2050): ||Q^T Q - I|| = {tsqr_err:.2e}  ({} launches, modelled {:.3} ms)",
        ledger.calls,
        ledger.seconds * 1e3
    );

    // (b) Classical Gram-Schmidt.
    let (q_cgs, _) = dense::gram_schmidt::classical_gram_schmidt(&basis);
    println!(
        "classical Gram-Schmidt: ||Q^T Q - I|| = {:.2e}",
        orthogonality_error(&q_cgs)
    );

    // (c) CholeskyQR — squares the condition number; may fail outright.
    match dense::gram_schmidt::cholesky_qr(&basis) {
        Ok((q_chol, _)) => {
            println!(
                "CholeskyQR:             ||Q^T Q - I|| = {:.2e}",
                orthogonality_error(&q_chol)
            )
        }
        Err(e) => {
            println!("CholeskyQR:             FAILED ({e}) — the Gram matrix lost definiteness")
        }
    }

    println!(
        "\nTSQR keeps the basis orthogonal to machine precision; the cheaper\n\
         alternatives visibly degrade (or fail) on s-step Krylov bases."
    );
}
