//! Factor a tall-skinny matrix on 4 streams with lookahead, print the
//! residual against the synchronous loop and the resolved schedule, and
//! dump a Chrome trace next to the binary's working directory.
//!
//! ```text
//! cargo run -p caqr-repro --release --example stream_overlap
//! ```

use caqr::schedule::caqr_dag;
use caqr::{CaqrOptions, ScheduleOptions};
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let (m, n) = (4096, 64);
    let a = dense::generate::uniform::<f32>(m, n, 7);

    let gs = Gpu::new(DeviceSpec::c2050());
    let sync = caqr::caqr::caqr(&gs, a.clone(), CaqrOptions::default()).unwrap();

    let gd = Gpu::new(DeviceSpec::c2050());
    let opts = ScheduleOptions {
        caqr: CaqrOptions::default(),
        streams: 4,
        lookahead: true,
    };
    let (f, tl) = caqr_dag(&gd, a, opts).unwrap();

    let identical = (0..n).all(|j| (0..m).all(|i| f.a[(i, j)] == sync.a[(i, j)]));
    println!("{m} x {n} on 4 streams with lookahead:");
    println!("  bit-identical to synchronous loop: {identical}");
    println!(
        "  modelled time: {:.3} ms on {} kernels across {} streams (sync: {:.3} ms)",
        tl.makespan * 1e3,
        tl.intervals.len(),
        1 + tl.intervals.iter().map(|iv| iv.stream).max().unwrap_or(0),
        gs.elapsed() * 1e3,
    );
    std::fs::write("stream_overlap_trace.json", tl.to_chrome_trace()).unwrap();
    println!("  wrote stream_overlap_trace.json (open in chrome://tracing)");
}
