//! Fault-injection smoke run: factor the same matrix fault-free and under a
//! seeded transient-fault plan, and verify the retried run is bit-identical
//! while the ledger shows the absorbed faults. Exits non-zero on any
//! divergence, so CI can run it as a robustness gate.
//!
//! ```text
//! cargo run --release --example fault_smoke
//! ```

use caqr::{CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, FaultPlan, Gpu, RetryPolicy};

fn main() {
    let (m, n) = (32_768usize, 64usize);
    let a = dense::generate::uniform::<f32>(m, n, 7);
    let opts = CaqrOptions {
        strategy: ReductionStrategy::RegisterSerialTransposed,
        ..CaqrOptions::default()
    };

    // Reference: fault-free run.
    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts).expect("fault-free run failed");

    // Same factorization under a 15% transient launch-fault rate with an
    // 8-attempt retry budget (deterministic: the plan is seeded).
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan_with_policy(
        FaultPlan::seeded(2024, 0.15),
        RetryPolicy {
            max_attempts: 8,
            backoff_us: 5.0,
        },
    );
    let faulted = caqr::caqr::caqr(&gpu, a, opts).expect("faulted run exhausted retries");

    let identical = clean.r() == faulted.r();
    let clean_ledger = clean_gpu.ledger();
    let ledger = gpu.ledger();
    println!("factored {m}x{n} twice: fault-free and with seeded transient faults");
    println!(
        "  faults absorbed: {} ({} retries), successful launches {} (fault-free run: {})",
        ledger.faults, ledger.retries, ledger.calls, clean_ledger.calls
    );
    println!(
        "  modelled time {:.3} ms vs {:.3} ms fault-free ({:+.1}% fault overhead)",
        ledger.seconds * 1e3,
        clean_ledger.seconds * 1e3,
        (ledger.seconds / clean_ledger.seconds - 1.0) * 100.0
    );
    println!("  R bit-identical across runs: {identical}");

    if !identical || ledger.faults == 0 || ledger.calls != clean_ledger.calls {
        eprintln!("fault smoke FAILED");
        std::process::exit(1);
    }
    println!("fault smoke OK");
}
