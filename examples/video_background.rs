//! Stationary-video background subtraction with Robust PCA (Section VI),
//! end to end on a synthetic surveillance clip: the video matrix goes
//! through the inexact-ALM solver whose singular-value threshold uses the
//! SVD-via-QR pipeline with CAQR on the simulated GPU.
//!
//! Renders an ASCII strip of one frame: observed / recovered background /
//! recovered foreground.
//!
//! ```text
//! cargo run --release --example video_background
//! ```

use gpu_sim::{DeviceSpec, Gpu};
use rpca::video::{generate, sparsity, VideoConfig};
use rpca::{rpca, GpuCaqrBackend, RpcaParams};

fn main() {
    // A reduced clip (the paper's full 288x384x100 runs the same code, just
    // longer): 64x48 pixels, 48 frames -> a 3072 x 48 video matrix.
    let cfg = VideoConfig {
        width: 64,
        height: 48,
        frames: 48,
        blobs: 3,
        blob_size: 7,
        foreground_intensity: 0.9,
        noise: 0.005,
        illumination_drift: 0.03,
        seed: 99,
    };
    println!(
        "synthetic clip: {}x{} pixels, {} frames -> video matrix {} x {}",
        cfg.width,
        cfg.height,
        cfg.frames,
        cfg.pixels(),
        cfg.frames
    );
    let video = generate::<f64>(&cfg);

    let gpu = Gpu::new(DeviceSpec::gtx480());
    let backend = GpuCaqrBackend {
        gpu: &gpu,
        opts: caqr::CaqrOptions::default(),
    };

    let t0 = std::time::Instant::now();
    let result = rpca(
        &backend,
        &video.matrix,
        &RpcaParams {
            tol: 1e-5,
            ..Default::default()
        },
    )
    .expect("rpca solve failed");
    println!(
        "solved in {} iterations (converged={}, rank(L)={}, residual={:.1e}) — wall {:.2}s, modelled GPU {:.1} ms",
        result.iterations,
        result.converged,
        result.rank,
        result.residual,
        t0.elapsed().as_secs_f64(),
        gpu.elapsed() * 1e3
    );
    println!(
        "foreground sparsity: {:.1}%",
        100.0 * sparsity(&result.s, 0.3)
    );
    let det = rpca::foreground_detection(&result.s, &video.foreground, 0.3, 0.5);
    println!(
        "foreground detection: precision {:.2}  recall {:.2}  F1 {:.2};  background PSNR {:.1} dB",
        det.precision,
        det.recall,
        det.f1,
        rpca::psnr(&result.l, &video.background, 1.0)
    );

    // ASCII render of frame `f`: observed | background | foreground.
    let f = cfg.frames / 2;
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let render = |get: &dyn Fn(usize) -> f64| -> Vec<String> {
        (0..cfg.height)
            .step_by(2) // halve vertical resolution for terminal aspect
            .map(|y| {
                (0..cfg.width)
                    .map(|x| {
                        let v = get(y * cfg.width + x).clamp(0.0, 1.0);
                        shades[(v * (shades.len() - 1) as f64).round() as usize]
                    })
                    .collect()
            })
            .collect()
    };
    let obs = render(&|i| video.matrix[(i, f)]);
    let bg = render(&|i| result.l[(i, f)]);
    let fg = render(&|i| result.s[(i, f)].abs());
    println!(
        "\n{:<66}{:<66}{:<66}",
        "observed frame", "recovered background", "recovered foreground"
    );
    for ((o, b), s) in obs.iter().zip(&bg).zip(&fg) {
        println!("{o}  {b}  {s}");
    }

    println!(
        "\nTable II context: at the paper's full 110,592 x 100 scale the modelled \
         rates are {:.1} it/s (CAQR), {:.1} it/s (BLAS2 QR), {:.1} it/s (CPU MKL SVD).",
        rpca::model_iterations_per_second(rpca::RpcaImpl::CaqrGpu),
        rpca::model_iterations_per_second(rpca::RpcaImpl::Blas2GpuQr),
        rpca::model_iterations_per_second(rpca::RpcaImpl::MklSvdCpu),
    );

    // Write the separated frame as viewable PGM images.
    let out = std::env::temp_dir().join("caqr_video");
    std::fs::create_dir_all(&out).expect("create output dir");
    let write_pgm = |name: &str, get: &dyn Fn(usize) -> f64| {
        let path = out.join(name);
        let mut data = format!("P2\n{} {}\n255\n", cfg.width, cfg.height);
        for y in 0..cfg.height {
            for x in 0..cfg.width {
                let v = (get(y * cfg.width + x).clamp(0.0, 1.0) * 255.0).round() as u8;
                data.push_str(&format!("{v} "));
            }
            data.push('\n');
        }
        std::fs::write(&path, data).expect("write pgm");
        path
    };
    let p1 = write_pgm("observed.pgm", &|i| video.matrix[(i, f)]);
    let p2 = write_pgm("background.pgm", &|i| result.l[(i, f)]);
    let p3 = write_pgm("foreground.pgm", &|i| result.s[(i, f)].abs());
    println!(
        "\nwrote {} , {} , {}",
        p1.display(),
        p2.display(),
        p3.display()
    );
}
