//! Quickstart: factor a tall-skinny matrix with CAQR on the simulated
//! C2050, check the result, and inspect the modelled GPU timeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use caqr::{caqr_qr, CaqrOptions};
use dense::norms::{orthogonality_error, reconstruction_error};
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    // A 16384 x 64 single-precision matrix — the tall-skinny regime the
    // paper targets (least squares, Krylov bases, video processing).
    let (m, n) = (16_384usize, 64usize);
    let a = dense::generate::uniform::<f32>(m, n, 42);

    // The simulated GPU: kernels do the real arithmetic in parallel on the
    // host while the device model accounts modelled time.
    let gpu = Gpu::new(DeviceSpec::c2050());

    // Factor with the paper's shipping configuration (128x16 blocks,
    // register-file serial reductions with pre-transposed panels).
    let t0 = std::time::Instant::now();
    let (q, r) = caqr_qr(&gpu, a.clone(), CaqrOptions::default()).expect("factorization failed");
    let wall = t0.elapsed();

    println!("factored {}x{} with CAQR", m, n);
    println!(
        "  reconstruction  ||A - QR|| / ||A|| = {:.2e}",
        reconstruction_error(&a, &q, &r)
    );
    println!(
        "  orthogonality   ||Q^T Q - I||      = {:.2e}",
        orthogonality_error(&q)
    );
    let mut upper = true;
    for j in 0..r.cols() {
        for i in j + 1..r.rows() {
            upper &= r[(i, j)] == 0.0;
        }
    }
    println!(
        "  R is {}x{}, upper triangular: {}",
        r.rows(),
        r.cols(),
        upper
    );

    let ledger = gpu.ledger();
    println!(
        "\nmodelled C2050 timeline ({} kernel launches):",
        ledger.calls
    );
    print!("{}", ledger.summary());
    println!(
        "modelled SGEQRF rate: {:.1} GFLOP/s   (host wall-clock for the real arithmetic: {:.1} ms)",
        dense::geqrf_flops(m, n) / ledger.seconds / 1e9,
        wall.as_secs_f64() * 1e3
    );
}
