//! Property tests for the multi-tenant batching service (DESIGN.md §14).
//!
//! The fused `factor_many` path packs same-shape jobs into shared parallel
//! regions, but every packed task reads and writes only its own job's
//! matrix — so over a *random bag* of shapes, each returned factorization
//! must be bit-identical to a standalone sequential `caqr_cpu` run of the
//! same job. The service end-to-end must preserve that contract and keep
//! its per-tenant ledger reconciled (tenant rows summing exactly to the
//! global row).

use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{factor_many, JobSpec, Priority, Service, ServiceConfig, TreeShape};
use dense::matrix::Matrix;
use proptest::prelude::*;

/// Shape palette the random bags draw from: two entries share `(n, h, w)`
/// but not `m` (never fused together), one is single-panel, one is
/// multi-panel with trailing updates — repeats of any entry fuse.
const PALETTE: [(usize, usize, usize, usize); 4] = [
    (120, 8, 24, 8),
    (100, 8, 24, 8),
    (96, 16, 32, 16),
    (64, 24, 32, 8),
];

fn opts(h: usize, w: usize) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: h,
        panel_width: w,
        tree: TreeShape::DeviceArity,
        verify_checksums: false,
    }
}

/// Exact bit pattern of a factorization: the factored matrix plus every
/// panel's level-0 compact-WY taus.
fn bits(f: &caqr::CpuCaqr<f64>) -> Vec<u64> {
    let mut out: Vec<u64> = f.a.as_slice().iter().map(|x| x.to_bits()).collect();
    for p in &f.panels {
        out.push(p.col0 as u64);
        out.push(p.width as u64);
        for wy in &p.wy0 {
            out.extend(wy.tau.iter().map(|t| t.to_bits()));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn factor_many_matches_sequential_caqr_cpu_bitwise(
        bag in collection::vec(0usize..PALETTE.len(), 2..9),
        seed in 0u64..1000,
    ) {
        let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> = bag
            .iter()
            .enumerate()
            .map(|(j, &k)| {
                let (m, n, h, w) = PALETTE[k];
                (dense::generate::uniform::<f64>(m, n, seed * 97 + j as u64), opts(h, w))
            })
            .collect();
        let batched = factor_many(jobs.clone());
        for ((a, o), b) in jobs.into_iter().zip(batched) {
            let solo = caqr_cpu(a, o).expect("sequential run factors");
            let b = b.expect("batched run factors");
            prop_assert_eq!(bits(&b), bits(&solo));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn service_preserves_bit_identity_and_reconciles_the_ledger(
        // Each draw packs (shape k, tenant t, priority p) into one integer:
        // k = v % 4, t = (v / 4) % 3, p = (v / 12) % 3.
        bag in collection::vec(0usize..36, 3..12),
        seed in 0u64..500,
    ) {
        let bag: Vec<(usize, usize, usize)> =
            bag.iter().map(|&v| (v % 4, (v / 4) % 3, (v / 12) % 3)).collect();
        let tenants = ["acme", "globex", "initech"];
        let classes = [Priority::Interactive, Priority::Standard, Priority::Batch];
        let svc = Service::<f64>::start(ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 4,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = bag
            .iter()
            .enumerate()
            .map(|(j, &(k, t, p))| {
                let (m, n, h, w) = PALETTE[k];
                let a = dense::generate::uniform::<f64>(m, n, seed * 131 + j as u64);
                svc.submit(JobSpec::new(a, opts(h, w)).tenant(tenants[t]).priority(classes[p]))
                    .expect("admission while running")
            })
            .collect();
        let outcomes: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("service delivers every outcome"))
            .collect();
        let ledger = svc.ledger();
        svc.shutdown();

        prop_assert!(ledger.reconcile().is_ok(), "ledger: {:?}", ledger.reconcile());
        let tenant_sum: u64 = ledger.tenants.values().map(|c| c.jobs_completed).sum();
        prop_assert_eq!(tenant_sum, ledger.global.jobs_completed);
        prop_assert_eq!(ledger.global.jobs_completed, bag.len() as u64);
        prop_assert_eq!(
            ledger.global.fused_jobs + ledger.global.solo_jobs,
            ledger.global.jobs_completed
        );

        for (j, (&(k, t, _), o)) in bag.iter().zip(&outcomes).enumerate() {
            prop_assert_eq!(&o.tenant, tenants[t]);
            let (m, n, h, w) = PALETTE[k];
            let a = dense::generate::uniform::<f64>(m, n, seed * 131 + j as u64);
            let solo = caqr_cpu(a, opts(h, w)).expect("standalone run factors");
            match &o.result {
                Ok(f) => prop_assert!(bits(f) == bits(&solo), "job {} diverges bitwise", j),
                Err(e) => prop_assert!(false, "job {} errored: {}", j, e),
            }
        }
    }
}
