//! Small-surface tests: error display, ledger summaries, report fields —
//! the glue a downstream user sees first — plus the error-path contract:
//! malformed or non-finite user input returns a typed `Err`, never a panic.

use caqr::{BlockSize, CaqrError, CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, Gpu, LaunchError};

fn small_opts() -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h: 32, w: 8 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn errors_render_usefully() {
    let e = CaqrError::BadShape("panel out of range".into());
    assert!(e.to_string().contains("panel out of range"));
    let e = CaqrError::Launch(LaunchError::SharedMemory {
        requested: 100_000,
        available: 49_152,
    });
    let s = e.to_string();
    assert!(s.contains("100000") && s.contains("49152"), "{s}");
    let e = LaunchError::Threads {
        requested: 1024,
        max: 512,
    };
    assert!(e.to_string().contains("1024"));
    assert!(LaunchError::EmptyGrid.to_string().contains("empty"));
    // The taxonomy added for robustness hardening.
    let e = CaqrError::NonFinite {
        context: "caqr input",
        row: 90,
        col: 2,
    };
    let s = e.to_string();
    assert!(
        s.contains("caqr input") && s.contains("90") && s.contains('2'),
        "{s}"
    );
    let e = CaqrError::Fault {
        kernel: "factor",
        launch_index: 7,
        attempts: 3,
    };
    let s = e.to_string();
    assert!(
        s.contains("factor") && s.contains('7') && s.contains('3'),
        "{s}"
    );
    let e = CaqrError::Breakdown {
        context: "iterate went non-finite".into(),
    };
    assert!(e.to_string().contains("iterate went non-finite"));
    // The fault-recovery taxonomy: timeouts, checksum hits, exhaustion.
    let e = CaqrError::Timeout {
        kernel: "apply_qt_h",
        launch_index: 12,
        deadline_us: 50_000,
    };
    let s = e.to_string();
    assert!(
        s.contains("apply_qt_h") && s.contains("12") && s.contains("50000"),
        "{s}"
    );
    let e = CaqrError::ChecksumMismatch {
        stage: "apply",
        panel: 1,
        col: 37,
    };
    let s = e.to_string();
    assert!(s.contains("apply") && s.contains("37"), "{s}");
    let e = CaqrError::Unrecoverable {
        context: "run retry budget (1) exhausted".into(),
    };
    assert!(e.to_string().contains("run retry budget"), "{e}");
}

#[test]
fn nan_input_is_rejected_not_propagated() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let mut a = dense::generate::uniform::<f64>(256, 16, 1);
    a[(90, 2)] = f64::NAN;

    // caqr: typed error naming the first offender in column-major order.
    match caqr::caqr::caqr(&gpu, a.clone(), small_opts()) {
        Err(CaqrError::NonFinite { row, col, .. }) => {
            assert_eq!((row, col), (90, 2));
        }
        Err(other) => panic!("expected NonFinite, got {other}"),
        Ok(_) => panic!("caqr accepted a NaN matrix"),
    }

    // tsqr: same contract.
    let r = caqr::tsqr(
        &gpu,
        a.clone(),
        BlockSize { h: 32, w: 16 },
        ReductionStrategy::RegisterSerialTransposed,
    );
    assert!(matches!(r, Err(CaqrError::NonFinite { .. })));

    // CPU reference path: same contract, no device involved.
    let r = caqr::multicore::caqr_cpu(a.clone(), caqr::multicore::CpuCaqrOptions::for_width(16));
    assert!(matches!(r, Err(CaqrError::NonFinite { .. })));

    // Infinity is rejected the same way as NaN.
    a[(90, 2)] = f64::INFINITY;
    let r = caqr::caqr::caqr(&gpu, a, small_opts());
    assert!(matches!(r, Err(CaqrError::NonFinite { .. })));
}

#[test]
fn disabling_the_health_check_skips_its_launch() {
    let a = dense::generate::uniform::<f64>(256, 16, 2);
    let count = |check_finite: bool| {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let o = CaqrOptions {
            check_finite,
            ..small_opts()
        };
        let f = caqr::caqr::caqr(&gpu, a.clone(), o).unwrap();
        assert_eq!(f.launches() as u64, gpu.ledger().calls);
        gpu.ledger().calls
    };
    assert_eq!(count(true), count(false) + 1);
}

#[test]
fn shape_mismatches_are_typed_errors_not_panics() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f64>(256, 16, 3);
    let f = caqr::caqr::caqr(&gpu, a, small_opts()).unwrap();

    // Applying Q^T to a matrix with the wrong row count.
    let mut c = dense::matrix::Matrix::<f64>::zeros(100, 4);
    assert!(matches!(
        f.apply_qt(&gpu, &mut c),
        Err(CaqrError::BadShape(_))
    ));

    // More Q columns than rows.
    assert!(matches!(
        f.generate_q(&gpu, 10_000),
        Err(CaqrError::BadShape(_))
    ));

    // Right-hand side of the wrong length.
    let b = vec![1.0f64; 7];
    assert!(matches!(
        f.least_squares(&gpu, &b),
        Err(CaqrError::BadShape(_))
    ));
}

#[test]
fn rpca_error_paths_are_typed() {
    use rpca::{rpca, CpuQrBackend, RpcaParams};

    // Wide matrix: wrong orientation.
    let wide = dense::generate::uniform::<f64>(5, 50, 4);
    assert!(matches!(
        rpca(&CpuQrBackend, &wide, &RpcaParams::default()),
        Err(CaqrError::BadShape(_))
    ));

    // Non-finite observation.
    let mut m = dense::generate::uniform::<f64>(60, 6, 5);
    m[(10, 1)] = f64::NAN;
    assert!(matches!(
        rpca(&CpuQrBackend, &m, &RpcaParams::default()),
        Err(CaqrError::NonFinite {
            row: 10,
            col: 1,
            ..
        })
    ));

    // svd_via_qr rejects a wide matrix.
    assert!(matches!(
        rpca::svd_via_qr(&CpuQrBackend, &wide),
        Err(CaqrError::BadShape(_))
    ));
}

#[test]
fn ledger_summary_is_humane() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(512, 16, 1);
    let _ = caqr::tsqr(
        &gpu,
        a,
        BlockSize::c2050_best(),
        caqr::ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let s = gpu.ledger().summary();
    assert!(s.contains("factor"));
    assert!(s.contains("GFLOP/s"));
    assert!(s.contains("calls"));
    // Every line of the per-op breakdown is well formed.
    for line in s.lines().skip(1) {
        assert!(line.contains("calls"), "malformed summary line: {line}");
    }
}

#[test]
fn kernel_reports_expose_boundedness() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let mut a = dense::generate::uniform::<f32>(2048, 16, 2);
    let tiles = caqr::block::tile_panel(0, 2048, 128, 16);
    let wy: Vec<parking_lot::Mutex<Option<caqr::tsqr::WyTile<f32>>>> = tiles
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let k = caqr::kernels::FactorKernel {
        a: dense::MatPtr::new(&mut a),
        tiles: &tiles,
        col0: 0,
        width: 16,
        strategy: caqr::ReductionStrategy::RegisterSerialTransposed,
        spec: gpu.spec(),
        wy: &wy,
    };
    let report = gpu.launch(&k).unwrap();
    assert_eq!(report.name, "factor");
    assert_eq!(report.blocks, 16);
    assert!(report.seconds > 0.0);
    assert!(report.gflops > 0.0);
    // factor is issue/stall-bound, not DRAM-bound.
    assert!(report.compute_bound);
}

#[test]
fn default_options_are_the_papers_configuration() {
    let o = CaqrOptions::default();
    assert_eq!(o.bs, BlockSize { h: 128, w: 16 });
    assert!(o.strategy.needs_pretranspose());
    assert_eq!(o.tree, caqr::TreeShape::DeviceArity);
    assert_eq!(o.bs.threads(), 64);
    assert!(o.check_finite, "the input health check defaults on");
}

#[test]
fn device_presets_match_their_datasheets() {
    let c = DeviceSpec::c2050();
    assert_eq!(c.sms, 14);
    assert_eq!(c.smem_per_sm, 48 * 1024);
    assert_eq!(c.regfile_per_sm, 128 * 1024);
    let g = DeviceSpec::gtx480();
    assert_eq!(g.sms, 15);
    assert!(g.clock_ghz > c.clock_ghz);
}
