//! Small-surface tests: error display, ledger summaries, report fields —
//! the glue a downstream user sees first.

use caqr::{BlockSize, CaqrError, CaqrOptions};
use gpu_sim::{DeviceSpec, Gpu, LaunchError};

#[test]
fn errors_render_usefully() {
    let e = CaqrError::BadShape("panel out of range".into());
    assert!(e.to_string().contains("panel out of range"));
    let e = CaqrError::Launch(LaunchError::SharedMemory {
        requested: 100_000,
        available: 49_152,
    });
    let s = e.to_string();
    assert!(s.contains("100000") && s.contains("49152"), "{s}");
    let e = LaunchError::Threads {
        requested: 1024,
        max: 512,
    };
    assert!(e.to_string().contains("1024"));
    assert!(LaunchError::EmptyGrid.to_string().contains("empty"));
}

#[test]
fn ledger_summary_is_humane() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(512, 16, 1);
    let _ = caqr::tsqr(
        &gpu,
        a,
        BlockSize::c2050_best(),
        caqr::ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let s = gpu.ledger().summary();
    assert!(s.contains("factor"));
    assert!(s.contains("GFLOP/s"));
    assert!(s.contains("calls"));
    // Every line of the per-op breakdown is well formed.
    for line in s.lines().skip(1) {
        assert!(line.contains("calls"), "malformed summary line: {line}");
    }
}

#[test]
fn kernel_reports_expose_boundedness() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let mut a = dense::generate::uniform::<f32>(2048, 16, 2);
    let tiles = caqr::block::tile_panel(0, 2048, 128, 16);
    let wy: Vec<parking_lot::Mutex<Option<caqr::tsqr::WyTile<f32>>>> = tiles
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let k = caqr::kernels::FactorKernel {
        a: dense::MatPtr::new(&mut a),
        tiles: &tiles,
        col0: 0,
        width: 16,
        strategy: caqr::ReductionStrategy::RegisterSerialTransposed,
        spec: gpu.spec().clone(),
        wy: &wy,
    };
    let report = gpu.launch(&k).unwrap();
    assert_eq!(report.name, "factor");
    assert_eq!(report.blocks, 16);
    assert!(report.seconds > 0.0);
    assert!(report.gflops > 0.0);
    // factor is issue/stall-bound, not DRAM-bound.
    assert!(report.compute_bound);
}

#[test]
fn default_options_are_the_papers_configuration() {
    let o = CaqrOptions::default();
    assert_eq!(o.bs, BlockSize { h: 128, w: 16 });
    assert!(o.strategy.needs_pretranspose());
    assert_eq!(o.tree, caqr::TreeShape::DeviceArity);
    assert_eq!(o.bs.threads(), 64);
}

#[test]
fn device_presets_match_their_datasheets() {
    let c = DeviceSpec::c2050();
    assert_eq!(c.sms, 14);
    assert_eq!(c.smem_per_sm, 48 * 1024);
    assert_eq!(c.regfile_per_sm, 128 * 1024);
    let g = DeviceSpec::gtx480();
    assert_eq!(g.sms, 15);
    assert!(g.clock_ghz > c.clock_ghz);
}
