//! Multi-device TSQR acceptance tests (DESIGN.md §11): the distributed
//! driver must be *bit-identical* to the single-device host path for every
//! device count — including runs that lose devices mid-flight and fail
//! their work over to survivors.

use caqr::distributed::{distributed_tsqr, DistOptions};
use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{CaqrError, ReductionStrategy, TreeShape};
use dense::matrix::Matrix;
use gpu_sim::{Cluster, DeviceSpec, FaultPlan, LinkSpec, Topology};

const M: usize = 128 * 8;
const N: usize = 16;
const TILE: usize = 128;
const SEED: u64 = 42;

fn cluster(p: usize, topology: Topology) -> Cluster {
    Cluster::new(p, DeviceSpec::c2050(), LinkSpec::infiniband_qdr(), topology)
}

fn dist_opts(tree: TreeShape) -> DistOptions {
    DistOptions {
        tile_rows: TILE,
        tree,
        strategy: ReductionStrategy::RegisterSerialTransposed,
        verify_checksums: false,
    }
}

fn cpu_opts(tree: TreeShape) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: TILE,
        panel_width: N,
        tree,
        verify_checksums: false,
    }
}

/// Factor the reference input on the host path and return `(R, Q)`.
fn reference(tree: TreeShape) -> (Matrix<f32>, Matrix<f32>) {
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    let f = caqr_cpu(a, cpu_opts(tree)).expect("host path factors");
    let q = f.generate_q(N).expect("host Q");
    (f.r(), q)
}

// Loss-free bit-identity across device counts and tree shapes moved to the
// property-based suite in `backend_conformance.rs`; this file keeps the
// device-loss / failover acceptance tests.

#[test]
fn device_loss_during_level0_fails_over_bit_identically() {
    let (r_ref, q_ref) = reference(TreeShape::DeviceArity);
    let c = cluster(4, Topology::BinomialTree);
    // Device 2's very first launch (its level-0 factor) finds the device
    // gone; a survivor must adopt its partition and the result must not
    // change by a single bit.
    c.device(2)
        .set_fault_plan(FaultPlan::device_loss_at_launches(&[0]));
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    let f = distributed_tsqr(&c, a, dist_opts(TreeShape::DeviceArity)).expect("fails over");
    assert_eq!(f.r(), r_ref, "R survives a level-0 device loss unchanged");
    assert_eq!(f.generate_q(N).expect("Q"), q_ref);
    assert_eq!(f.devices_lost(), 1);
    assert!(!f.alive[2]);
    assert_eq!(f.report.device_failovers, 1);
    // Every tile the dead device owned now belongs to the survivor.
    assert!(f.owner.iter().all(|&d| d != 2));
    // The loss and the adoption both land on the ledgers.
    assert_eq!(c.device(2).ledger().device_losses, 1);
    assert!(c.device(2).is_lost());
    let adoptions: u64 = (0..4).map(|d| c.device(d).ledger().device_failovers).sum();
    assert_eq!(adoptions, 1);
}

#[test]
fn device_loss_mid_tree_replays_completed_work() {
    // Binomial tree so non-root devices own tree groups: with 8 tiles on
    // 4 devices, device 1 leads the level-0 group of tiles {2,3} — its
    // second launch. Killing it there loses *completed* level-0 factors,
    // exercising the replay (not just reassignment) path.
    let (r_ref, q_ref) = reference(TreeShape::Binomial);
    let c = cluster(4, Topology::BinomialTree);
    c.device(1)
        .set_fault_plan(FaultPlan::device_loss_at_launches(&[1]));
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    let f = distributed_tsqr(&c, a, dist_opts(TreeShape::Binomial)).expect("fails over");
    assert_eq!(f.r(), r_ref, "R survives a mid-tree device loss unchanged");
    assert_eq!(f.generate_q(N).expect("Q"), q_ref);
    assert_eq!(f.devices_lost(), 1);
    assert_eq!(f.report.device_failovers, 1);
    // The survivor replayed the dead device's finished tile factors, so
    // more launches ran than the loss-free schedule needs.
    let clean = cluster(4, Topology::BinomialTree);
    let a2 = dense::generate::uniform::<f32>(M, N, SEED);
    let clean_f = distributed_tsqr(&clean, a2, dist_opts(TreeShape::Binomial)).unwrap();
    assert!(
        f.report.launches > clean_f.report.launches,
        "replay must cost extra launches ({} vs {})",
        f.report.launches,
        clean_f.report.launches
    );
}

#[test]
fn cascading_losses_chain_failovers() {
    let (r_ref, q_ref) = reference(TreeShape::DeviceArity);
    let c = cluster(4, Topology::Ring);
    // Device 3 dies immediately; device 0 (the first survivor) adopts its
    // tiles and then dies on the adopted work's launch, forcing a second
    // failover onto device 1.
    c.device(3)
        .set_fault_plan(FaultPlan::device_loss_at_launches(&[0]));
    c.device(0)
        .set_fault_plan(FaultPlan::device_loss_at_launches(&[1]));
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    let f = distributed_tsqr(&c, a, dist_opts(TreeShape::DeviceArity)).expect("double failover");
    assert_eq!(f.r(), r_ref, "R survives cascading losses unchanged");
    assert_eq!(f.generate_q(N).expect("Q"), q_ref);
    assert_eq!(f.devices_lost(), 2);
    assert!(!f.alive[3] && !f.alive[0]);
    assert_eq!(f.report.device_failovers, 2);
    assert!(f.owner.iter().all(|&d| d == 1 || d == 2));
}

#[test]
fn losing_every_device_is_unrecoverable() {
    let c = cluster(2, Topology::Ring);
    for d in 0..2 {
        c.device(d)
            .set_fault_plan(FaultPlan::device_loss_at_launches(&[0]));
    }
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    match distributed_tsqr(&c, a, dist_opts(TreeShape::DeviceArity)) {
        Err(CaqrError::Unrecoverable { context }) => {
            assert!(context.contains("no surviving device"), "{context}");
        }
        other => panic!("expected Unrecoverable, got {:?}", other.map(|f| f.report)),
    }
}

#[test]
fn failover_charges_the_interconnect_and_pcie() {
    let c = cluster(4, Topology::BinomialTree);
    c.device(2)
        .set_fault_plan(FaultPlan::device_loss_at_launches(&[0]));
    let a = dense::generate::uniform::<f32>(M, N, SEED);
    let f = distributed_tsqr(&c, a, dist_opts(TreeShape::DeviceArity)).expect("fails over");
    // The survivor (the first alive device, 0) re-uploaded the dead
    // device's partition over PCIe: two 128-row tiles of 16 f32 columns.
    let up = c.device(0).ledger();
    assert_eq!(up.device_failovers, 1);
    assert!(
        up.h2d_bytes >= (2 * TILE * N * 4) as u64,
        "failover must charge the partition re-upload, got {} bytes",
        up.h2d_bytes
    );
    // Least-squares through the failed-over factorization still works —
    // the full solve path (apply + triangular solve) sees a coherent
    // factorization.
    let b = vec![1.0f32; M];
    let x = f.factored.least_squares(&b).expect("solve");
    assert_eq!(x.len(), N);
    assert!(x.iter().all(|v| v.is_finite()));
}
