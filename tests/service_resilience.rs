//! Property and integration tests for service-tier fault tolerance
//! (DESIGN.md §15).
//!
//! The chaos contract: under seeded fault injection (SDC, hangs, launch
//! faults, host panics, worker kills), **every** submitted ticket resolves
//! with a result or a typed error, every successfully recovered matrix is
//! bit-identical to a standalone `caqr_cpu` run, riders of a faulted batch
//! member never diverge, and the per-tenant ledger reconciles exactly —
//! with shed/expired jobs charging no compute counters and fault-retry
//! work segregated into the dedicated `retry_*` counters.

use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{
    factor_many_resilient, JobSpec, PlannedFault, Priority, RecoveryPolicy, ResilienceConfig,
    RetryBudget, Service, ServiceConfig, ServiceError, ServiceFaultPlan, TreeShape,
};
use dense::matrix::Matrix;
use gpu_sim::{FaultKind, FaultPlan};
use proptest::prelude::*;
use std::time::Duration;

fn opts(h: usize, w: usize) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: h,
        panel_width: w,
        tree: TreeShape::DeviceArity,
        verify_checksums: false,
    }
}

/// Quiet the injected panics: the chaos suites deliberately unwind worker
/// and task threads, and the default hook would spray backtraces over the
/// test output. Panics that are not ours still print.
fn silence_injected_panics() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.to_string()));
        if msg.as_deref().is_some_and(|m| m.contains("injected")) {
            return;
        }
        hook(info);
    }));
}

/// One planned fault against every member of a fused batch, one kind at a
/// time: the faulted member is carved out with the matching typed error
/// (or recovered solo), and every rider stays bit-identical.
#[test]
fn carved_members_get_typed_errors_and_riders_stay_bitwise() {
    silence_injected_panics();
    let o = opts(48, 16);
    let want: Vec<Matrix<f64>> = (0..4)
        .map(|s| {
            caqr_cpu(dense::generate::uniform::<f64>(280, 16, 900 + s), o)
                .unwrap()
                .a
        })
        .collect();
    for kind in [
        FaultKind::LaunchFail,
        FaultKind::Sdc,
        FaultKind::Hang,
        FaultKind::HostPanic,
    ] {
        for victim in 0..4usize {
            let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> = (0..4)
                .map(|s| (dense::generate::uniform::<f64>(280, 16, 900 + s), o))
                .collect();
            let mut faults = vec![None; 4];
            faults[victim] = Some(PlannedFault {
                kind,
                ordinal: victim as u64,
                payload: (victim as u64) << 16 | (victim as u64 & 1),
            });
            let (results, stats) =
                factor_many_resilient(jobs, &faults, false, &RecoveryPolicy::default());
            assert_eq!(stats.fused_groups, 1);
            for (i, r) in results.iter().enumerate() {
                if i == victim {
                    assert!(
                        r.is_err(),
                        "victim {victim} must be carved out under {kind:?}"
                    );
                } else {
                    assert_eq!(
                        r.as_ref().unwrap().a,
                        want[i],
                        "rider {i} diverged when {victim} faulted with {kind:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shed jobs (deadline-expired at dispatch) and failed jobs never add
    /// compute counters — panels, launches, flops stay zero for a tenant
    /// whose entire traffic was shed — and the ledger still reconciles.
    #[test]
    fn shed_jobs_charge_no_compute(njobs in 1usize..6, seed in 0u64..1000) {
        let svc = Service::<f64>::start(ServiceConfig {
            workers: 1,
            queue_capacity: 32,
            max_batch: 4,
            ..ServiceConfig::default()
        });
        let mut tickets = Vec::new();
        for s in 0..njobs as u64 {
            let a = dense::generate::uniform::<f64>(120, 8, seed * 37 + s);
            // Zero deadline: already expired at dispatch, always shed.
            let spec = JobSpec::new(a, opts(24, 8))
                .tenant("doomed")
                .deadline(Duration::ZERO);
            tickets.push(svc.submit(spec).unwrap_or_else(|_| panic!("accepting")));
        }
        for t in tickets {
            let out = t.wait().expect("shed tickets resolve");
            let shed = matches!(out.result, Err(ServiceError::DeadlineExpired { .. }));
            prop_assert!(shed, "expected every doomed job to be shed");
        }
        let ledger = svc.ledger();
        let row = ledger.tenants.get("doomed").expect("tenant row exists");
        prop_assert_eq!(row.jobs_shed, njobs as u64);
        prop_assert_eq!(row.panels, 0);
        prop_assert_eq!(row.launches, 0);
        prop_assert_eq!(row.retry_launches, 0);
        prop_assert!(row.flops == 0.0, "shed jobs must not charge flops");
        prop_assert_eq!(row.jobs_completed, 0);
        ledger.reconcile().expect("shed accounting reconciles");
        svc.shutdown();
    }

    /// Fault-retried jobs land their extra work in the dedicated `retry_*`
    /// counters: a deterministically-faulted job that recovers solo charges
    /// `retry_launches` (not `launches`), and both sides of the split
    /// ledger still reconcile exactly.
    #[test]
    fn retry_work_lands_in_retry_counters(seed in 0u64..500) {
        silence_injected_panics();
        // Host-panic job seq 0 on its first attempt: whether the job lands
        // fused (carved out with `Panicked`) or solo (the panic is caught
        // at the ladder boundary), the batch attempt fails and the service
        // must spend a solo retry — attempt 1 draws no fault and succeeds.
        let cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 4,
            resilience: ResilienceConfig {
                faults: Some(ServiceFaultPlan::new(FaultPlan::host_panic_at_launches(&[0]))),
                retry: RetryBudget {
                    max_retries: 2,
                    backoff: Duration::from_micros(50),
                    max_backoff: Duration::from_micros(200),
                },
                ..ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = Service::<f64>::start(cfg);
        // Two same-shape jobs: seq 0 faults (carved), seq 1 rides clean.
        let a0 = dense::generate::uniform::<f64>(160, 8, 7000 + seed);
        let a1 = dense::generate::uniform::<f64>(160, 8, 8000 + seed);
        let w0 = caqr_cpu(a0.clone(), opts(24, 8)).unwrap().a;
        let w1 = caqr_cpu(a1.clone(), opts(24, 8)).unwrap().a;
        let t0 = svc
            .submit(JobSpec::new(a0, opts(24, 8)).tenant("faulty"))
            .unwrap_or_else(|_| panic!("accepting"));
        let t1 = svc
            .submit(JobSpec::new(a1, opts(24, 8)).tenant("clean"))
            .unwrap_or_else(|_| panic!("accepting"));
        let o0 = t0.wait().expect("resolves");
        let o1 = t1.wait().expect("resolves");
        let f0 = o0.result.expect("faulted job recovers via solo retry");
        prop_assert_eq!(f0.a, w0);
        prop_assert!(o0.retries >= 1, "job 0 must have spent retries");
        prop_assert_eq!(o1.result.expect("clean rider").a, w1);
        prop_assert_eq!(o1.retries, 0);
        let ledger = svc.ledger();
        let faulty = ledger.tenants.get("faulty").expect("tenant row");
        prop_assert_eq!(faulty.retry_jobs, 1);
        prop_assert!(faulty.retry_attempts >= 1);
        prop_assert!(
            faulty.retry_launches > 0,
            "recovered-by-retry work must charge retry_launches"
        );
        prop_assert!(
            faulty.launches == 0,
            "retried jobs charge retry_launches, not launches"
        );
        let clean = ledger.tenants.get("clean").expect("tenant row");
        prop_assert_eq!(clean.retry_jobs, 0);
        prop_assert!(clean.launches > 0);
        ledger.reconcile().expect("retry accounting reconciles");
        svc.shutdown();
    }

    /// The full chaos contract over a random workload: seeded mixed faults
    /// + periodic worker kills; every ticket resolves, every success is
    /// bitwise-correct, and the ledger reconciles.
    #[test]
    fn chaos_tickets_all_resolve_bitwise(seed in 0u64..200) {
        silence_injected_panics();
        let cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 4,
            resilience: ResilienceConfig {
                verify_batches: true,
                faults: Some(
                    ServiceFaultPlan::new(FaultPlan::seeded_service_mix(
                        seed, 0.08, 0.08, 0.04, 0.04,
                    ))
                    .worker_panic_every(6),
                ),
                retry: RetryBudget {
                    max_retries: 3,
                    backoff: Duration::from_micros(50),
                    max_backoff: Duration::from_micros(400),
                },
                ..ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = Service::<f64>::start(cfg);
        let mut want = Vec::new();
        let mut tickets = Vec::new();
        for s in 0..12u64 {
            let o = opts(24, 8);
            let a = dense::generate::uniform::<f64>(140, 8, seed * 1000 + s);
            want.push(caqr_cpu(a.clone(), o).unwrap().a);
            let spec = JobSpec::new(a, o)
                .tenant(["t0", "t1", "t2"][(s % 3) as usize])
                .priority(Priority::ALL[(s % 3) as usize]);
            tickets.push(svc.submit(spec).unwrap_or_else(|_| panic!("accepting")));
        }
        for (t, want) in tickets.into_iter().zip(want) {
            let out = t.wait().expect("every chaos ticket resolves");
            if let Ok(f) = out.result {
                prop_assert!(f.a == want, "chaos survivor must stay bitwise");
            }
        }
        svc.ledger().reconcile().expect("chaos accounting reconciles");
        svc.shutdown();
    }
}
