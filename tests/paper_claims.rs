//! The paper's headline quantitative claims, asserted against the models —
//! this is the machine-checked version of EXPERIMENTS.md.

use baselines::QrImpl;
use caqr::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use caqr::tuning::autotune;
use caqr::{BlockSize, CaqrOptions};
use gpu_sim::{DeviceSpec, Gpu};
use rpca::{model_iterations_per_second, RpcaImpl};

/// Abstract: "outperform CULA ... by up to 17x for tall-skinny matrices and
/// Intel's MKL by up to 12x".
#[test]
fn abstract_headline_speedups() {
    let mut best_vs_gpu: f64 = 0.0;
    let mut best_vs_mkl: f64 = 0.0;
    for m in [10_000usize, 100_000, 1_000_000] {
        let c = QrImpl::Caqr.model_gflops(m, 192);
        best_vs_gpu = best_vs_gpu.max(
            c / QrImpl::Magma
                .model_gflops(m, 192)
                .max(QrImpl::Cula.model_gflops(m, 192)),
        );
        best_vs_mkl = best_vs_mkl.max(c / QrImpl::Mkl.model_gflops(m, 192));
    }
    assert!(
        best_vs_gpu > 10.0,
        "max speedup vs GPU libraries {best_vs_gpu:.1}x (paper: 17x)"
    );
    assert!(
        best_vs_mkl > 5.0,
        "max speedup vs MKL {best_vs_mkl:.1}x (paper: 12x)"
    );
}

/// Section IV-G: "our tuning improved the performance of apply_qt_h ... from
/// 55 GFLOPS to 388 GFLOPS", a ~7x gain.
#[test]
fn tuning_gains_about_7x() {
    let spec = DeviceSpec::c2050();
    let bs = BlockSize::c2050_best();
    let first = apply_qt_h_block_gflops(&spec, bs, ReductionStrategy::SharedParallel);
    let last = apply_qt_h_block_gflops(&spec, bs, ReductionStrategy::RegisterSerialTransposed);
    let gain = last / first;
    assert!(
        gain > 5.0 && gain < 10.0,
        "tuning gain {gain:.1}x (paper: 7.05x)"
    );
}

/// Section IV-F: "Our best overall performance comes from using 128x16
/// blocks."
#[test]
fn best_block_is_128x16() {
    let best = autotune(
        &DeviceSpec::c2050(),
        ReductionStrategy::RegisterSerialTransposed,
    );
    assert_eq!(best.bs, BlockSize { h: 128, w: 16 });
}

/// Table I row shape: CAQR throughput rises monotonically from 1k to 500k
/// rows and saturates around 200+ GFLOP/s.
#[test]
fn table1_caqr_row_shape() {
    let g: Vec<f64> = [1_000usize, 10_000, 50_000, 100_000, 500_000, 1_000_000]
        .iter()
        .map(|&m| QrImpl::Caqr.model_gflops(m, 192))
        .collect();
    for w in g.windows(2) {
        assert!(w[1] > w[0] * 0.98, "CAQR throughput dipped: {g:?}");
    }
    assert!(g[0] < 60.0, "1k point should be launch-bound: {}", g[0]);
    assert!(g[5] > 150.0, "1M point should saturate: {}", g[5]);
}

/// Figure 9: crossover where the libraries overtake CAQR lies in the low
/// thousands of columns at height 8192 (paper: ~4000).
#[test]
fn figure9_crossover_location() {
    let best_lib = |n: usize| {
        QrImpl::ALL[1..]
            .iter()
            .map(|i| i.model_gflops(8192, n))
            .fold(0.0, f64::max)
    };
    assert!(QrImpl::Caqr.model_gflops(8192, 512) > best_lib(512));
    assert!(QrImpl::Caqr.model_gflops(8192, 8192) < best_lib(8192));
}

/// Section V-C: explicit-Q retrieval is about as efficient as factoring.
#[test]
fn sorgqr_parity() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let o = CaqrOptions::default();
    let f = caqr::model::model_caqr_seconds(&gpu, 100_000, 192, o).unwrap();
    let q = caqr::model::model_caqr_apply_seconds(&gpu, 100_000, 192, 192, o).unwrap();
    assert!(q / f < 2.2, "explicit Q at {:.2}x the factorization", q / f);
}

/// Table II: 0.9 / 8.7 / 27.0 iterations per second, i.e. ~3x from CAQR
/// over BLAS2 and ~30x over the CPU.
#[test]
fn table2_iteration_rates() {
    let cpu = model_iterations_per_second(RpcaImpl::MklSvdCpu);
    let blas2 = model_iterations_per_second(RpcaImpl::Blas2GpuQr);
    let caqr_rate = model_iterations_per_second(RpcaImpl::CaqrGpu);
    assert!(cpu < blas2 && blas2 < caqr_rate);
    let r_blas2 = caqr_rate / blas2;
    let r_cpu = caqr_rate / cpu;
    assert!(
        r_blas2 > 2.0 && r_blas2 < 4.5,
        "CAQR/BLAS2 = {r_blas2:.1} (paper 3.1)"
    );
    assert!(
        r_cpu > 10.0 && r_cpu < 45.0,
        "CAQR/CPU = {r_cpu:.1} (paper 30)"
    );
    // "reducing the time to solve the problem ... to 17 seconds":
    let t500 = 500.0 / caqr_rate;
    assert!(t500 < 30.0, "500 iterations take {t500:.0}s (paper 17s)");
}

/// Section I: "It is important to note that everything we compare to is
/// parallel" — all baselines use multiple cores / a full GPU, and none is a
/// strawman: every baseline beats a single-core bandwidth bound on square
/// matrices.
#[test]
fn baselines_are_not_strawmen() {
    for i in &QrImpl::ALL[1..] {
        let g = i.model_gflops(8192, 8192);
        assert!(g > 20.0, "{} too slow on square matrices: {g}", i.name());
    }
}
