//! Stress coverage of the extreme aspect ratios the paper's introduction
//! motivates: real execution at moderately large sizes and model-only
//! evaluation at the paper's most extreme shapes.

use caqr::{caqr_qr, BlockSize, CaqrOptions, ReductionStrategy, TreeShape};
use dense::norms::{orthogonality_error, reconstruction_error};
use gpu_sim::{DeviceSpec, Gpu};

#[test]
fn execute_200k_by_8_like_an_s_step_method() {
    // "millions of rows by less than ten columns" — run a fifth of a
    // million rows for real.
    let m = 200_000;
    let n = 8;
    let a = dense::generate::uniform::<f32>(m, n, 1);
    let gpu = Gpu::new(DeviceSpec::c2050());
    let f = caqr::tsqr(
        &gpu,
        a.clone(),
        BlockSize::c2050_best(),
        ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let r = f.r();
    // Column-norm preservation is a cheap full-strength check at this size.
    for j in 0..n {
        let na = dense::blas1::nrm2(a.col(j)) as f64;
        let mut nr = 0.0f64;
        for i in 0..=j {
            nr += (r[(i, j)] as f64) * (r[(i, j)] as f64);
        }
        let nr = nr.sqrt();
        assert!((na - nr).abs() < 1e-3 * na, "column {j}: {na} vs {nr}");
    }
    // Deep tree: 1563 tiles at arity 8 -> 4 levels.
    assert_eq!(f.pf.levels.len(), 4);
    // Q^T b solve against the CPU reference on a narrow slice.
    let b: Vec<f32> = (0..m).map(|i| ((i % 97) as f32) / 97.0 - 0.5).collect();
    let mut c = dense::Matrix::from_fn(m, 1, |i, _| b[i]);
    f.apply_qt(&gpu, &mut c).unwrap();
    let mut x: Vec<f32> = (0..n).map(|i| c[(i, 0)]).collect();
    dense::blas2::trsv_upper(r.view(0, 0, n, n), &mut x);
    let x_ref = dense::blocked::least_squares(a, &b);
    for (p, q) in x.iter().zip(&x_ref) {
        assert!((p - q).abs() < 2e-2 * (1.0 + q.abs()), "{p} vs {q}");
    }
}

#[test]
fn execute_32k_by_256_full_caqr() {
    let a = dense::generate::uniform::<f32>(32_768, 256, 2);
    let gpu = Gpu::new(DeviceSpec::c2050());
    let f = caqr::caqr::caqr(&gpu, a.clone(), CaqrOptions::default()).unwrap();
    // Spot-check orthogonality through a thin probe instead of forming the
    // full Q: ||Q^T (A e_j)|| must equal ||A e_j||.
    let mut probe = dense::Matrix::from_fn(32_768, 1, |i, _| a[(i, 100)]);
    let before = dense::blas1::nrm2(probe.col(0));
    f.apply_qt(&gpu, &mut probe).unwrap();
    let after = dense::blas1::nrm2(probe.col(0));
    assert!(
        (before - after).abs() < 1e-3 * before,
        "{before} vs {after}"
    );
    // And Q^T A e_j == R e_j (the 100th column of R).
    let r = f.r();
    for i in 0..256 {
        let want = if i <= 100 { r[(i, 100)] } else { 0.0 };
        assert!(
            (probe[(i, 0)] - want).abs() < 2e-3 * before,
            "row {i}: {} vs {want}",
            probe[(i, 0)]
        );
    }
}

#[test]
fn model_handles_the_papers_most_extreme_shapes() {
    // 2^23 x 8 and 1M x 192: the sweeps must stay finite, positive and
    // produce monotone times without allocating matrix memory.
    let gpu = Gpu::new(DeviceSpec::c2050());
    let opts = CaqrOptions::default();
    let t1 = caqr::model::model_caqr_seconds(&gpu, 1 << 23, 8, opts).unwrap();
    let t2 = caqr::model::model_caqr_seconds(&gpu, 1 << 23, 192, opts).unwrap();
    assert!(t1.is_finite() && t1 > 0.0);
    assert!(t2 > t1, "wider matrix must take longer: {t2} vs {t1}");
    let g = dense::geqrf_flops(1 << 23, 8) / t1 / 1e9;
    assert!(
        g > 1.0 && g < 1030.0,
        "8-column throughput {g} GFLOP/s out of range"
    );
}

#[test]
fn small_blocks_with_huge_aspect_ratio_execute_correctly() {
    // Tiny blocks force a very deep binomial tree — worst case for the
    // bookkeeping. 10_000 x 4 with 8x4 blocks: 1250 tiles, ~11 levels.
    let a = dense::generate::uniform::<f64>(10_000, 4, 3);
    let gpu = Gpu::new(DeviceSpec::c2050());
    let o = CaqrOptions {
        bs: BlockSize { h: 8, w: 4 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: TreeShape::Binomial,
        check_finite: true,
    };
    let (q, r) = caqr_qr(&gpu, a.clone(), o).unwrap();
    assert!(reconstruction_error(&a, &q, &r) < 1e-11);
    assert!(orthogonality_error(&q) < 1e-11);
}
