//! Conservation and accounting invariants of the GPU simulator when driven
//! by the real CAQR pipeline (DESIGN.md §7).

use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, Gpu, LaunchConfig, LaunchError};

fn opts(h: usize, w: usize) -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h, w },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn ledger_is_deterministic_across_runs() {
    let a = dense::generate::uniform::<f32>(500, 40, 1);
    let run = || {
        let g = Gpu::new(DeviceSpec::c2050());
        let _ = caqr::caqr::caqr(&g, a.clone(), opts(32, 8)).unwrap();
        g.ledger()
    };
    let l1 = run();
    let l2 = run();
    assert_eq!(l1.calls, l2.calls);
    assert!((l1.seconds - l2.seconds).abs() < 1e-15);
    assert_eq!(l1.flops, l2.flops);
    assert_eq!(l1.dram_bytes, l2.dram_bytes);
}

#[test]
fn recorded_flops_track_the_geqrf_closed_form() {
    // CAQR does more raw flops than SGEQRF (tree redundancy), but for a
    // skinny matrix the overshoot is bounded: between 1x and 2.5x of
    // 2mn^2 - (2/3)n^3.
    for (m, n) in [(2048usize, 32usize), (4096, 64), (1024, 16)] {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f32>(m, n, 2);
        let _ = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
        let recorded = g.ledger().flops;
        let closed = dense::geqrf_flops(m, n);
        let ratio = recorded / closed;
        assert!(
            ratio > 0.9 && ratio < 2.5,
            "({m},{n}): recorded {recorded:.3e} vs closed-form {closed:.3e} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn dram_traffic_scales_linearly_for_tsqr() {
    // TSQR is communication-optimal: traffic should be O(m*n), i.e. a
    // constant number of passes over the matrix, independent of height.
    let traffic = |m: usize| {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f32>(m, 16, 3);
        let _ = caqr::tsqr(
            &g,
            a,
            BlockSize::c2050_best(),
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        g.ledger().dram_bytes / (m as f64 * 16.0 * 4.0)
    };
    let passes_small = traffic(16_384);
    let passes_big = traffic(131_072);
    assert!(
        (passes_big / passes_small - 1.0).abs() < 0.1,
        "passes per element should be ~constant: {passes_small:.2} vs {passes_big:.2}"
    );
    assert!(
        passes_big < 8.0,
        "TSQR should stream the panel a few times, got {passes_big:.2}"
    );
}

#[test]
fn launch_count_formula() {
    // For a matrix with p panels and L_p tree levels per panel:
    // pretranspose + per panel (factor + levels + apply_qt_h + levels) with
    // the apply side absent on the last panel.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(512, 32, 4);
    let f = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
    assert_eq!(f.launches() as u64, g.ledger().calls);
    // 2 panels of width 16, 64x16 blocks => quad-tree (arity 4).
    // Panel 0: 8 tiles -> 2 -> 1: two tree levels; panel 1 (496 rows, 8
    // tiles after remainder merge): two levels. Only panel 0 has a trailing
    // matrix. health_check(1) + pretranspose(1)
    // + p0(factor 1 + tree 2 + apply 1 + applytree 2)
    // + p1(factor 1 + tree 2) = 11.
    assert_eq!(g.ledger().calls, 11);
}

#[test]
fn oversized_shared_memory_is_rejected() {
    let g = Gpu::new(DeviceSpec::c2050());
    let cfg = LaunchConfig {
        blocks: 1,
        threads_per_block: 64,
        shared_mem_bytes: 48 * 1024 + 1,
        regs_per_thread: 8,
    };
    let r = g.launch_uniform("too_big", cfg, &gpu_sim::BlockCost::default());
    assert!(matches!(r, Err(LaunchError::SharedMemory { .. })));
}

#[test]
fn shared_serial_strategy_rejects_blocks_that_overflow_smem() {
    // A 512x64 block in shared memory needs 128 KB + staging > 48 KB: the
    // simulator must refuse the launch exactly like CUDA would.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(4096, 64, 5);
    let r = caqr::caqr::caqr(
        &g,
        a,
        CaqrOptions {
            bs: BlockSize { h: 512, w: 64 },
            strategy: ReductionStrategy::SharedSerial,
            tree: caqr::block::TreeShape::DeviceArity,
            check_finite: true,
        },
    );
    assert!(
        matches!(
            r,
            Err(caqr::CaqrError::Launch(LaunchError::SharedMemory { .. }))
        ),
        "expected an smem launch failure"
    );
}

#[test]
fn modeled_time_monotone_in_problem_size() {
    let g = Gpu::new(DeviceSpec::c2050());
    let o = CaqrOptions::default();
    let mut last = 0.0;
    for m in [10_000usize, 40_000, 160_000, 640_000] {
        let t = caqr::model::model_caqr_seconds(&g, m, 64, o).unwrap();
        assert!(t > last, "time must grow with height: {t} after {last}");
        last = t;
    }
}

#[test]
fn gtx480_is_faster_than_c2050_on_the_same_workload() {
    let o = CaqrOptions::default();
    let t_c2050 = {
        let g = Gpu::new(DeviceSpec::c2050());
        caqr::model::model_caqr_seconds(&g, 200_000, 96, o).unwrap()
    };
    let t_gtx = {
        let g = Gpu::new(DeviceSpec::gtx480());
        caqr::model::model_caqr_seconds(&g, 200_000, 96, o).unwrap()
    };
    assert!(t_gtx < t_c2050, "{t_gtx} vs {t_c2050}");
}

#[test]
fn transfers_are_not_charged_for_resident_matrices() {
    // Per Section V-C the matrix is assumed GPU-resident; the factorization
    // itself must not touch PCIe.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(1000, 32, 6);
    let _ = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
    let l = g.ledger();
    assert_eq!(l.transfers, 0);
    assert_eq!(l.h2d_bytes + l.d2h_bytes, 0);
}
