//! Conservation and accounting invariants of the GPU simulator when driven
//! by the real CAQR pipeline (DESIGN.md §7).

use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, Gpu, LaunchConfig, LaunchError};

fn opts(h: usize, w: usize) -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h, w },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn ledger_is_deterministic_across_runs() {
    let a = dense::generate::uniform::<f32>(500, 40, 1);
    let run = || {
        let g = Gpu::new(DeviceSpec::c2050());
        let _ = caqr::caqr::caqr(&g, a.clone(), opts(32, 8)).unwrap();
        g.ledger()
    };
    let l1 = run();
    let l2 = run();
    assert_eq!(l1.calls, l2.calls);
    assert!((l1.seconds - l2.seconds).abs() < 1e-15);
    assert_eq!(l1.flops, l2.flops);
    assert_eq!(l1.dram_bytes, l2.dram_bytes);
}

#[test]
fn recorded_flops_track_the_geqrf_closed_form() {
    // CAQR does more raw flops than SGEQRF (tree redundancy), but for a
    // skinny matrix the overshoot is bounded: between 1x and 2.5x of
    // 2mn^2 - (2/3)n^3.
    for (m, n) in [(2048usize, 32usize), (4096, 64), (1024, 16)] {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f32>(m, n, 2);
        let _ = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
        let recorded = g.ledger().flops;
        let closed = dense::geqrf_flops(m, n);
        let ratio = recorded / closed;
        assert!(
            ratio > 0.9 && ratio < 2.5,
            "({m},{n}): recorded {recorded:.3e} vs closed-form {closed:.3e} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn dram_traffic_scales_linearly_for_tsqr() {
    // TSQR is communication-optimal: traffic should be O(m*n), i.e. a
    // constant number of passes over the matrix, independent of height.
    let traffic = |m: usize| {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f32>(m, 16, 3);
        let _ = caqr::tsqr(
            &g,
            a,
            BlockSize::c2050_best(),
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        g.ledger().dram_bytes / (m as f64 * 16.0 * 4.0)
    };
    let passes_small = traffic(16_384);
    let passes_big = traffic(131_072);
    assert!(
        (passes_big / passes_small - 1.0).abs() < 0.1,
        "passes per element should be ~constant: {passes_small:.2} vs {passes_big:.2}"
    );
    assert!(
        passes_big < 8.0,
        "TSQR should stream the panel a few times, got {passes_big:.2}"
    );
}

#[test]
fn launch_count_formula() {
    // For a matrix with p panels and L_p tree levels per panel:
    // pretranspose + per panel (factor + levels + apply_qt_h + levels) with
    // the apply side absent on the last panel.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(512, 32, 4);
    let f = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
    assert_eq!(f.launches() as u64, g.ledger().calls);
    // 2 panels of width 16, 64x16 blocks => quad-tree (arity 4).
    // Panel 0: 8 tiles -> 2 -> 1: two tree levels; panel 1 (496 rows, 8
    // tiles after remainder merge): two levels. Only panel 0 has a trailing
    // matrix. health_check(1) + pretranspose(1)
    // + p0(factor 1 + tree 2 + apply 1 + applytree 2)
    // + p1(factor 1 + tree 2) = 11.
    assert_eq!(g.ledger().calls, 11);
}

#[test]
fn oversized_shared_memory_is_rejected() {
    let g = Gpu::new(DeviceSpec::c2050());
    let cfg = LaunchConfig {
        blocks: 1,
        threads_per_block: 64,
        shared_mem_bytes: 48 * 1024 + 1,
        regs_per_thread: 8,
    };
    let r = g.launch_uniform("too_big", cfg, &gpu_sim::BlockCost::default());
    assert!(matches!(r, Err(LaunchError::SharedMemory { .. })));
}

#[test]
fn shared_serial_strategy_rejects_blocks_that_overflow_smem() {
    // A 512x64 block in shared memory needs 128 KB + staging > 48 KB: the
    // simulator must refuse the launch exactly like CUDA would.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(4096, 64, 5);
    let r = caqr::caqr::caqr(
        &g,
        a,
        CaqrOptions {
            bs: BlockSize { h: 512, w: 64 },
            strategy: ReductionStrategy::SharedSerial,
            tree: caqr::block::TreeShape::DeviceArity,
            check_finite: true,
        },
    );
    assert!(
        matches!(
            r,
            Err(caqr::CaqrError::Launch(LaunchError::SharedMemory { .. }))
        ),
        "expected an smem launch failure"
    );
}

#[test]
fn modeled_time_monotone_in_problem_size() {
    let g = Gpu::new(DeviceSpec::c2050());
    let o = CaqrOptions::default();
    let mut last = 0.0;
    for m in [10_000usize, 40_000, 160_000, 640_000] {
        let t = caqr::model::model_caqr_seconds(&g, m, 64, o).unwrap();
        assert!(t > last, "time must grow with height: {t} after {last}");
        last = t;
    }
}

#[test]
fn gtx480_is_faster_than_c2050_on_the_same_workload() {
    let o = CaqrOptions::default();
    let t_c2050 = {
        let g = Gpu::new(DeviceSpec::c2050());
        caqr::model::model_caqr_seconds(&g, 200_000, 96, o).unwrap()
    };
    let t_gtx = {
        let g = Gpu::new(DeviceSpec::gtx480());
        caqr::model::model_caqr_seconds(&g, 200_000, 96, o).unwrap()
    };
    assert!(t_gtx < t_c2050, "{t_gtx} vs {t_c2050}");
}

#[test]
fn transfers_are_not_charged_for_resident_matrices() {
    // Per Section V-C the matrix is assumed GPU-resident; the factorization
    // itself must not touch PCIe.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(1000, 32, 6);
    let _ = caqr::caqr::caqr(&g, a, opts(64, 16)).unwrap();
    let l = g.ledger();
    assert_eq!(l.transfers, 0);
    assert_eq!(l.h2d_bytes + l.d2h_bytes, 0);
}

#[test]
fn interconnect_ledgers_reconcile_with_trace_events() {
    // Drive a real distributed factorization and reconcile three
    // independent accounts of the same traffic: the per-device cost
    // ledgers (counter side), the cluster's event log (event side), and
    // the chrome trace (export side). Every byte, message, and hop must
    // appear in all three with identical totals.
    use caqr::distributed::{distributed_tsqr, DistOptions};
    use gpu_sim::{Cluster, LinkSpec, Topology};

    let p = 4;
    let c = Cluster::new(
        p,
        DeviceSpec::c2050(),
        LinkSpec::infiniband_qdr(),
        Topology::BinomialTree,
    );
    let a = dense::generate::uniform::<f32>(128 * 8, 16, 3);
    let f = distributed_tsqr(&c, a, DistOptions::default()).unwrap();
    assert_eq!(f.r().cols(), 16);

    let events = c.comm_events();
    assert!(!events.is_empty(), "P=4 must communicate");

    // Event side: aggregate the raw event log.
    let ev_messages = events.len() as u64;
    let ev_bytes: u64 = events.iter().map(|e| e.bytes).sum();
    let ev_hops: u64 = events.iter().map(|e| e.hops as u64).sum();
    let ev_seconds: f64 = events.iter().map(|e| e.end - e.start).sum();

    // Counter side A: the cluster's own totals.
    let totals = c.net_totals();
    assert_eq!(totals.messages, ev_messages);
    assert_eq!(totals.bytes, ev_bytes);
    assert_eq!(totals.hops, ev_hops);
    assert!((totals.seconds - ev_seconds).abs() <= 1e-12 * ev_seconds.max(1.0));

    // Counter side B: the senders' device ledgers, summed. `net_send` is
    // charged to the sending device exactly once per message.
    let ledgers: Vec<_> = (0..p).map(|d| c.device(d).ledger()).collect();
    assert_eq!(
        ledgers.iter().map(|l| l.net_messages).sum::<u64>(),
        ev_messages
    );
    assert_eq!(ledgers.iter().map(|l| l.net_bytes).sum::<u64>(), ev_bytes);
    assert_eq!(ledgers.iter().map(|l| l.net_hops).sum::<u64>(), ev_hops);
    let ledger_net_s: f64 = ledgers.iter().map(|l| l.net_seconds).sum();
    assert!((ledger_net_s - ev_seconds).abs() <= 1e-12 * ev_seconds.max(1.0));
    // Per-sender attribution matches the event log device by device.
    for (d, l) in ledgers.iter().enumerate() {
        let sent = events.iter().filter(|e| e.from == d).count() as u64;
        assert_eq!(l.net_messages, sent, "device {d} send count");
    }

    // Comm time lives on the cluster clocks only — the per-op entry
    // reports it, but it never advances the device's kernel clock: the
    // cluster's per-device time covers folded compute plus comm, so each
    // device clock (`seconds`) stays within its cluster time.
    for (d, l) in ledgers.iter().enumerate() {
        let net_op = l.per_op.get("net_send");
        let (op_s, op_b) = net_op.map_or((0.0, 0.0), |op| (op.seconds, op.bytes));
        assert!(
            (op_s - l.net_seconds).abs() <= 1e-15,
            "device {d} per-op/counter drift"
        );
        assert!((op_b - l.net_bytes as f64).abs() <= 1e-9);
        assert!(
            l.seconds <= c.device_time(d) + 1e-12,
            "device {d} kernel clock {} exceeds its cluster time {}",
            l.seconds,
            c.device_time(d)
        );
    }

    // Export side: every message appears in the chrome trace on a named
    // interconnect channel lane, and every device has its process row.
    let trace = c.chrome_trace();
    assert_eq!(
        trace.matches("\"cat\": \"net\"").count() as u64,
        ev_messages,
        "one net trace event per message"
    );
    for d in 0..p {
        assert!(
            trace.contains(&format!("device{d}")),
            "device {d} process row missing"
        );
    }
    assert!(trace.contains("interconnect"), "interconnect process row");
    for e in &events {
        assert!(
            trace.contains(&format!("d{}->d{}", e.from, e.to)),
            "channel lane d{}->d{} missing",
            e.from,
            e.to
        );
    }
}
