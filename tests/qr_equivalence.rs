//! Cross-crate equivalence: CAQR on the simulated GPU must produce the same
//! factorization quality (and the same `R` up to column signs) as the
//! reference Householder implementations in `dense`, across shapes, block
//! sizes, strategies and precisions.

use caqr::{caqr_qr, BlockSize, CaqrOptions, ReductionStrategy};
use dense::norms::{orthogonality_error, reconstruction_error};
use gpu_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

fn opts(h: usize, w: usize) -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h, w },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn caqr_matches_reference_r_across_shapes() {
    let g = Gpu::new(DeviceSpec::c2050());
    for (m, n, h, w, seed) in [
        (64usize, 8usize, 16usize, 4usize, 1u64),
        (200, 24, 32, 8, 2),
        (513, 33, 64, 16, 3),
        (1024, 100, 128, 16, 4),
        (96, 96, 32, 8, 5),
        (50, 90, 16, 4, 6), // wide
    ] {
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let f = caqr::caqr::caqr(&g, a.clone(), opts(h, w)).unwrap();
        let r = f.r();
        let mut reference = a.clone();
        dense::blocked::geqrf(&mut reference, 16);
        let k = m.min(n);
        for j in 0..n {
            for i in 0..=j.min(k - 1) {
                assert!(
                    (r[(i, j)].abs() - reference[(i, j)].abs()).abs() < 1e-9,
                    "({m},{n}) |R| mismatch at ({i},{j})"
                );
            }
        }
    }
}

// Strategy bit-equivalence moved to `backend_conformance.rs`, which checks
// every strategy against the host reference through the generic driver.

#[test]
fn single_precision_quality_is_proportional_to_eps() {
    // The paper runs in single precision; errors should scale with f32 eps,
    // not blow up with the tree depth.
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(20_000, 32, 8);
    let (q, r) = caqr_qr(&g, a.clone(), CaqrOptions::default()).unwrap();
    let rec = reconstruction_error(&a, &q, &r);
    let ort = orthogonality_error(&q);
    assert!(rec < 5e-6, "f32 reconstruction {rec}");
    assert!(ort < 5e-5, "f32 orthogonality {ort}");
}

#[test]
fn caqr_on_graded_and_low_rank_matrices() {
    let g = Gpu::new(DeviceSpec::c2050());
    // Graded singular values over 10 decades.
    let graded = dense::generate::graded::<f64>(400, 12, 0.1, 9);
    let (q, r) = caqr_qr(&g, graded.clone(), opts(32, 8)).unwrap();
    assert!(reconstruction_error(&graded, &q, &r) < 1e-12);
    assert!(orthogonality_error(&q) < 1e-12);
    // Numerically rank-deficient input: Q must still be orthogonal.
    let lr = dense::generate::low_rank::<f64>(300, 16, 3, 0.0, 10);
    let (q2, r2) = caqr_qr(&g, lr.clone(), opts(32, 8)).unwrap();
    assert!(reconstruction_error(&lr, &q2, &r2) < 1e-12);
    assert!(orthogonality_error(&q2) < 1e-12);
}

#[test]
fn krylov_basis_stays_orthogonal_under_tsqr() {
    // The s-step motivation: TSQR handles nearly dependent columns.
    let g = Gpu::new(DeviceSpec::c2050());
    let basis = dense::generate::krylov_basis::<f64>(8192, 10, 11);
    let f = caqr::tsqr(
        &g,
        basis,
        BlockSize::c2050_best(),
        ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let q = f.generate_q(&g).unwrap();
    assert!(orthogonality_error(&q) < 1e-11);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn caqr_factorization_invariants(
        m in 20usize..200,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        prop_assume!(m >= n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let g = Gpu::new(DeviceSpec::c2050());
        let (q, r) = caqr_qr(&g, a.clone(), opts(16, 4)).unwrap();
        // Invariant 1: reconstruction.
        prop_assert!(reconstruction_error(&a, &q, &r) < 1e-11);
        // Invariant 2: orthogonality.
        prop_assert!(orthogonality_error(&q) < 1e-11);
        // Invariant 3: R upper triangular with the same column norms as A
        // (Householder preserves norms: ||A e_j||_2 == ||R e_j||_2 exactly
        // in exact arithmetic).
        for j in 0..n {
            let na = dense::blas1::nrm2(a.col(j));
            let mut nr = 0.0;
            for i in 0..=j {
                nr += r[(i, j)] * r[(i, j)];
            }
            prop_assert!((na - nr.sqrt()).abs() < 1e-10 * na.max(1.0));
        }
    }

    #[test]
    fn tsqr_least_squares_matches_cpu(
        m in 30usize..300,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        prop_assume!(m >= n * 2);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let b: Vec<f64> = (0..m).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
        let g = Gpu::new(DeviceSpec::c2050());
        let f = caqr::caqr::caqr(&g, a.clone(), opts(16, 4)).unwrap();
        let x1 = f.least_squares(&g, &b).unwrap();
        let x2 = dense::blocked::least_squares(a, &b);
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-7 * (1.0 + q.abs()), "{p} vs {q}");
        }
    }
}
