//! End-to-end fault-injection tests: transient launch faults, silent data
//! corruptions, and hangs are absorbed by retry / ABFT-guided replay
//! without perturbing the numerics, and exhausted budgets surface as typed
//! [`CaqrError`] values rather than panics, deadlocks, or garbage.

use caqr::recovery::{caqr_resilient, RecoveryOptions, RecoveryPolicy};
use caqr::schedule::{caqr_dag, ScheduleOptions};
use caqr::{BlockSize, CaqrError, CaqrOptions, CpuCaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, FaultKind, FaultPlan, Gpu, RetryPolicy};

fn opts() -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h: 64, w: 16 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn retried_caqr_run_is_bit_identical_to_fault_free_run() {
    let a = dense::generate::uniform::<f64>(1024, 32, 9);

    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();
    let clean_q = clean.generate_q(&clean_gpu, 32).unwrap();

    // Fault the first attempt of three launches spread across the pipeline;
    // an explicit plan's retries always succeed.
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::at_launches(&[0, 4, 9]));
    let faulted = caqr::caqr::caqr(&gpu, a.clone(), opts()).unwrap();
    let faulted_q = faulted.generate_q(&gpu, 32).unwrap();

    // Faults fire at admission, before any block runs, so the retried run
    // must be bit-identical — not merely close.
    assert_eq!(clean.r(), faulted.r());
    assert_eq!(clean_q, faulted_q);

    let l = gpu.ledger();
    assert_eq!(l.faults, 3, "three first attempts faulted");
    assert_eq!(l.retries, 3, "each fault recovered on its retry");
    // Successful-call accounting matches the fault-free run exactly.
    assert_eq!(l.calls, clean_gpu.ledger().calls);
    // The faulted run paid for the wasted submissions and backoff.
    assert!(l.seconds > clean_gpu.ledger().seconds);
}

#[test]
fn seeded_transient_faults_are_absorbed_and_deterministic() {
    let a = dense::generate::uniform::<f64>(768, 24, 3);
    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();

    // Generous attempt budget so a 20% transient rate cannot plausibly
    // exhaust retries; the seeded plan is a pure function of (seed, launch,
    // attempt), so this test is deterministic.
    let run = |seed: u64| {
        let gpu = Gpu::new(DeviceSpec::c2050());
        gpu.set_fault_plan_with_policy(
            FaultPlan::seeded(seed, 0.2),
            RetryPolicy {
                max_attempts: 8,
                backoff_us: 5.0,
            },
        );
        let f = caqr::caqr::caqr(&gpu, a.clone(), opts()).unwrap();
        (f.r(), gpu.ledger().faults)
    };
    let (r1, faults1) = run(1234);
    let (r2, faults2) = run(1234);
    assert_eq!(r1, r2, "same seed, same run");
    assert_eq!(faults1, faults2);
    assert_eq!(r1, clean.r(), "faults must not perturb the numerics");
}

#[test]
fn exhausted_retries_surface_as_typed_fault() {
    let a = dense::generate::uniform::<f64>(256, 16, 5);
    let gpu = Gpu::new(DeviceSpec::c2050());
    // Rate 1.0: every attempt of every launch faults, so the very first
    // launch (the input health check) exhausts its attempts.
    gpu.set_fault_plan(FaultPlan::seeded(0, 1.0));
    let err = match caqr::caqr::caqr(&gpu, a, opts()) {
        Ok(_) => panic!("expected the factorization to fail"),
        Err(e) => e,
    };
    match err {
        CaqrError::Fault {
            kernel,
            launch_index,
            attempts,
        } => {
            assert_eq!(kernel, "health_check");
            assert_eq!(launch_index, 0);
            assert_eq!(attempts, RetryPolicy::default().max_attempts);
        }
        other => panic!("expected CaqrError::Fault, got {other}"),
    }
    let l = gpu.ledger();
    assert_eq!(l.calls, 0, "no launch ever succeeded");
    assert_eq!(l.faults as u32, RetryPolicy::default().max_attempts);
    assert!(l.seconds > 0.0, "wasted submissions still cost time");
}

#[test]
fn dag_schedule_recovers_from_transient_faults() {
    let a = dense::generate::uniform::<f64>(1024, 32, 7);
    let sched = ScheduleOptions {
        caqr: opts(),
        streams: 2,
        lookahead: true,
    };

    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let (clean, _) = caqr_dag(&clean_gpu, a.clone(), sched).unwrap();

    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::at_launches(&[1, 2, 6]));
    let (faulted, _) = caqr_dag(&gpu, a, sched).unwrap();

    assert_eq!(clean.r(), faulted.r());
    let l = gpu.ledger();
    assert_eq!(l.faults, 3);
    assert_eq!(l.retries, 3);
}

#[test]
fn seeded_plans_are_pure_functions_of_their_inputs() {
    // Two plans built from identical inputs must agree on every
    // (launch, attempt) pair — this is what makes every chaos test in this
    // file deterministic rather than flaky.
    let p1 = FaultPlan::seeded_mix(42, 0.10, 0.05, 0.02);
    let p2 = FaultPlan::seeded_mix(42, 0.10, 0.05, 0.02);
    let mut kinds = [0usize; 3];
    for launch in 0..2000u64 {
        for attempt in 0..4u32 {
            let k = p1.fault_kind(launch, attempt);
            assert_eq!(k, p2.fault_kind(launch, attempt));
            match k {
                Some(FaultKind::LaunchFail) => kinds[0] += 1,
                Some(FaultKind::Sdc) => kinds[1] += 1,
                Some(FaultKind::Hang) => kinds[2] += 1,
                // Plain seeded plans draw only the three transient kinds;
                // whole-device loss is explicit-plan-only and host panics
                // come only from `seeded_service_mix`.
                Some(FaultKind::DeviceLoss | FaultKind::HostPanic) | None => {}
            }
        }
    }
    // All three bands are actually exercised at these rates.
    assert!(kinds.iter().all(|&c| c > 0), "bands hit: {kinds:?}");
    // A different seed draws a different fault pattern somewhere.
    let p3 = FaultPlan::seeded_mix(43, 0.10, 0.05, 0.02);
    assert!(
        (0..2000u64).any(|l| p1.fault_kind(l, 0) != p3.fault_kind(l, 0)),
        "seed must matter"
    );
    // Rate zero means no faults, ever.
    let quiet = FaultPlan::seeded(7, 0.0);
    assert!((0..500u64).all(|l| quiet.fault_kind(l, 0).is_none()));
}

#[test]
fn backoff_is_monotone_and_capped() {
    let p = RetryPolicy::default();
    let mut prev = 0.0f64;
    for attempt in 0..64u32 {
        let b = p.backoff_seconds(attempt);
        assert!(
            b.is_finite() && b >= prev,
            "attempt {attempt}: {b} < {prev}"
        );
        prev = b;
    }
    // The exponent saturates at 20: arbitrarily late attempts never
    // overflow to infinity and all pay the same capped backoff.
    let cap = p.backoff_seconds(20);
    for attempt in 21..64u32 {
        assert_eq!(p.backoff_seconds(attempt), cap);
    }
}

#[test]
fn persistent_hang_exhausts_watchdog_into_typed_timeout() {
    let a = dense::generate::uniform::<f64>(256, 16, 13);
    let gpu = Gpu::new(DeviceSpec::c2050());
    // An explicit hang is persistent across retry attempts (a stuck unit,
    // not a transient): the plain driver's retries cannot escape it, so the
    // watchdog must convert it into a typed Timeout instead of spinning.
    gpu.set_fault_plan(FaultPlan::hang_at_launches(&[0]));
    let err = match caqr::caqr::caqr(&gpu, a, opts()) {
        Ok(_) => panic!("a persistently hung launch cannot succeed"),
        Err(e) => e,
    };
    match err {
        CaqrError::Timeout {
            kernel,
            launch_index,
            deadline_us,
        } => {
            assert_eq!(kernel, "health_check");
            assert_eq!(launch_index, 0);
            assert!(deadline_us > 0);
        }
        other => panic!("expected CaqrError::Timeout, got {other}"),
    }
    let l = gpu.ledger();
    assert_eq!(l.hangs as u32, RetryPolicy::default().max_attempts);
    assert_eq!(l.calls, 0, "no launch ever completed");
    assert!(
        l.seconds > 0.0,
        "hung attempts still pay deadline + backoff"
    );
}

#[test]
fn sdc_is_detected_and_replayed_to_bit_identity() {
    let a = dense::generate::uniform::<f64>(640, 32, 17);
    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();

    let gpu = Gpu::new(DeviceSpec::c2050());
    // Launches 0/1 are the health check and pretranspose; 2 and 5 land on
    // factor / apply kernels whose outputs the checksums guard.
    gpu.set_fault_plan(FaultPlan::sdc_at_launches(&[2, 5]));
    let ropts = RecoveryOptions {
        caqr: opts(),
        streams: 3,
        policy: RecoveryPolicy::default(),
    };
    let (f, report) = caqr_resilient(&gpu, a, ropts).unwrap();
    assert_eq!(f.r(), clean.r(), "recovered run must be bit-identical");
    let l = gpu.ledger();
    assert_eq!(l.sdc_injected, 2, "both corruptions were injected");
    assert!(report.checksum_failures > 0, "ABFT caught the corruptions");
    assert!(
        report.task_replays > 0,
        "recovery replayed the faulted tasks"
    );
}

#[test]
fn chaos_soak_recovers_bit_identically_across_seeds() {
    // Seeded chaos: mixed launch-fail / SDC / hang plans across several
    // seeds. Every run must converge to the exact fault-free bits, replay
    // only a small fraction of the schedule, and keep its ledger counters
    // in lock-step with the returned report.
    let a = dense::generate::uniform::<f64>(384, 48, 21);
    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();
    // Independent host-multicore cross-check, with its own ABFT checks on.
    let cpu = caqr::caqr_cpu(
        a.clone(),
        CpuCaqrOptions {
            tile_rows: 64,
            panel_width: 16,
            tree: caqr::block::TreeShape::DeviceArity,
            verify_checksums: true,
        },
    )
    .unwrap();
    assert_eq!(clean.r(), cpu.r(), "GPU and CPU paths agree bitwise");

    for seed in 0..8u64 {
        let gpu = Gpu::new(DeviceSpec::c2050());
        gpu.set_fault_plan_with_policy(
            FaultPlan::seeded_mix(seed, 0.05, 0.03, 0.03),
            RetryPolicy {
                max_attempts: 6,
                backoff_us: 5.0,
            },
        );
        let ropts = RecoveryOptions {
            caqr: opts(),
            streams: 3,
            policy: RecoveryPolicy::default(),
        };
        let (f, report) = match caqr_resilient(&gpu, a.clone(), ropts) {
            Ok(ok) => ok,
            Err(e) => panic!("seed {seed}: recovery failed: {e}"),
        };
        assert_eq!(f.r(), clean.r(), "seed {seed}: bits must match");
        let l = gpu.ledger();
        assert_eq!(l.task_replays, report.task_replays, "seed {seed}");
        assert_eq!(l.panel_replays, report.panel_replays, "seed {seed}");
        assert_eq!(l.run_retries, report.run_retries, "seed {seed}");
        // Recovery is tile-granular: replayed work stays a small fraction
        // of the schedule instead of redoing whole runs.
        assert!(
            report.task_replays <= report.launches / 2,
            "seed {seed}: {} replays for {} launches",
            report.task_replays,
            report.launches
        );
    }
}

#[test]
fn unrecoverable_chaos_surfaces_typed_error_not_a_panic() {
    let a = dense::generate::uniform::<f64>(256, 16, 23);
    let gpu = Gpu::new(DeviceSpec::c2050());
    // Every launch hangs on every attempt: no replay tier can make
    // progress, so the ladder must exhaust into a typed error — never a
    // panic, deadlock, or silently wrong factorization.
    gpu.set_fault_plan(FaultPlan::seeded_mix(3, 0.0, 0.0, 1.0));
    let err = match caqr_resilient(&gpu, a, RecoveryOptions::default()) {
        Ok(_) => panic!("an always-hanging device cannot produce a result"),
        Err(e) => e,
    };
    match err {
        CaqrError::Unrecoverable { context } => {
            assert!(
                context.contains("run retry budget"),
                "context should name the exhausted tier: {context}"
            );
        }
        other => panic!("expected CaqrError::Unrecoverable, got {other}"),
    }
    assert!(gpu.ledger().hangs > 0);
}

#[test]
fn fault_plan_does_not_outlive_clear() {
    let a = dense::generate::uniform::<f64>(256, 16, 11);
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::seeded(0, 1.0));
    assert!(caqr::caqr::caqr(&gpu, a.clone(), opts()).is_err());
    gpu.clear_fault_plan();
    let faults_before = gpu.ledger().faults;
    caqr::caqr::caqr(&gpu, a, opts()).unwrap();
    assert_eq!(gpu.ledger().faults, faults_before, "no new faults");
}

#[test]
fn device_loss_is_terminal_on_a_single_device() {
    let a = dense::generate::uniform::<f64>(1024, 32, 9);
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::device_loss_at_launches(&[2]));
    // No retry can answer on a dead device: the driver must fail fast with
    // the typed loss, not spin through the retry budget.
    match caqr::caqr::caqr(&gpu, a.clone(), opts()) {
        Err(CaqrError::DeviceLost { launch_index, .. }) => assert_eq!(launch_index, 2),
        other => panic!("expected DeviceLost, got {:?}", other.map(|_| ())),
    }
    assert!(gpu.is_lost(), "the lost flag persists after the failed run");
    assert_eq!(gpu.ledger().device_losses, 1);

    // Every subsequent launch fails immediately, whatever the kernel.
    match caqr::caqr::caqr(&gpu, a.clone(), opts()) {
        Err(CaqrError::DeviceLost { .. }) => {}
        other => panic!("a lost device must stay lost, got {:?}", other.map(|_| ())),
    }

    // The resilient executor's ladder also refuses to spin on it: loss is
    // deliberately not a transient tier (recovery needs a survivor, which
    // a single device does not have).
    let gpu2 = Gpu::new(DeviceSpec::c2050());
    gpu2.set_fault_plan(FaultPlan::device_loss_at_launches(&[0]));
    let recovery = RecoveryOptions {
        caqr: opts(),
        ..RecoveryOptions::default()
    };
    match caqr_resilient(&gpu2, a.clone(), recovery) {
        Err(CaqrError::DeviceLost { .. }) | Err(CaqrError::Unrecoverable { .. }) => {}
        other => panic!(
            "resilient ladder must not absorb device loss, got {:?}",
            other.map(|_| ())
        ),
    }

    // reset() revives the device (the simulated node rejoining): with the
    // fault script cleared, a fresh run on the same Gpu succeeds and
    // matches a clean device bit-for-bit.
    gpu.clear_fault_plan();
    gpu.reset();
    assert!(!gpu.is_lost());
    let revived = caqr::caqr::caqr(&gpu, a.clone(), opts()).unwrap();
    let clean = caqr::caqr::caqr(&Gpu::new(DeviceSpec::c2050()), a, opts()).unwrap();
    assert_eq!(revived.r(), clean.r());
}
