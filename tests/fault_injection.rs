//! End-to-end fault-injection tests: transient launch faults are absorbed
//! by retry without perturbing the numerics, and exhausted retries surface
//! as typed [`CaqrError::Fault`] values rather than panics or garbage.

use caqr::schedule::{caqr_dag, ScheduleOptions};
use caqr::{BlockSize, CaqrError, CaqrOptions, ReductionStrategy};
use gpu_sim::{DeviceSpec, FaultPlan, Gpu, RetryPolicy};

fn opts() -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h: 64, w: 16 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

#[test]
fn retried_caqr_run_is_bit_identical_to_fault_free_run() {
    let a = dense::generate::uniform::<f64>(1024, 32, 9);

    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();
    let clean_q = clean.generate_q(&clean_gpu, 32).unwrap();

    // Fault the first attempt of three launches spread across the pipeline;
    // an explicit plan's retries always succeed.
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::at_launches(&[0, 4, 9]));
    let faulted = caqr::caqr::caqr(&gpu, a.clone(), opts()).unwrap();
    let faulted_q = faulted.generate_q(&gpu, 32).unwrap();

    // Faults fire at admission, before any block runs, so the retried run
    // must be bit-identical — not merely close.
    assert_eq!(clean.r(), faulted.r());
    assert_eq!(clean_q, faulted_q);

    let l = gpu.ledger();
    assert_eq!(l.faults, 3, "three first attempts faulted");
    assert_eq!(l.retries, 3, "each fault recovered on its retry");
    // Successful-call accounting matches the fault-free run exactly.
    assert_eq!(l.calls, clean_gpu.ledger().calls);
    // The faulted run paid for the wasted submissions and backoff.
    assert!(l.seconds > clean_gpu.ledger().seconds);
}

#[test]
fn seeded_transient_faults_are_absorbed_and_deterministic() {
    let a = dense::generate::uniform::<f64>(768, 24, 3);
    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let clean = caqr::caqr::caqr(&clean_gpu, a.clone(), opts()).unwrap();

    // Generous attempt budget so a 20% transient rate cannot plausibly
    // exhaust retries; the seeded plan is a pure function of (seed, launch,
    // attempt), so this test is deterministic.
    let run = |seed: u64| {
        let gpu = Gpu::new(DeviceSpec::c2050());
        gpu.set_fault_plan_with_policy(
            FaultPlan::seeded(seed, 0.2),
            RetryPolicy {
                max_attempts: 8,
                backoff_us: 5.0,
            },
        );
        let f = caqr::caqr::caqr(&gpu, a.clone(), opts()).unwrap();
        (f.r(), gpu.ledger().faults)
    };
    let (r1, faults1) = run(1234);
    let (r2, faults2) = run(1234);
    assert_eq!(r1, r2, "same seed, same run");
    assert_eq!(faults1, faults2);
    assert_eq!(r1, clean.r(), "faults must not perturb the numerics");
}

#[test]
fn exhausted_retries_surface_as_typed_fault() {
    let a = dense::generate::uniform::<f64>(256, 16, 5);
    let gpu = Gpu::new(DeviceSpec::c2050());
    // Rate 1.0: every attempt of every launch faults, so the very first
    // launch (the input health check) exhausts its attempts.
    gpu.set_fault_plan(FaultPlan::seeded(0, 1.0));
    let err = match caqr::caqr::caqr(&gpu, a, opts()) {
        Ok(_) => panic!("expected the factorization to fail"),
        Err(e) => e,
    };
    match err {
        CaqrError::Fault {
            kernel,
            launch_index,
            attempts,
        } => {
            assert_eq!(kernel, "health_check");
            assert_eq!(launch_index, 0);
            assert_eq!(attempts, RetryPolicy::default().max_attempts);
        }
        other => panic!("expected CaqrError::Fault, got {other}"),
    }
    let l = gpu.ledger();
    assert_eq!(l.calls, 0, "no launch ever succeeded");
    assert_eq!(l.faults as u32, RetryPolicy::default().max_attempts);
    assert!(l.seconds > 0.0, "wasted submissions still cost time");
}

#[test]
fn dag_schedule_recovers_from_transient_faults() {
    let a = dense::generate::uniform::<f64>(1024, 32, 7);
    let sched = ScheduleOptions {
        caqr: opts(),
        streams: 2,
        lookahead: true,
    };

    let clean_gpu = Gpu::new(DeviceSpec::c2050());
    let (clean, _) = caqr_dag(&clean_gpu, a.clone(), sched).unwrap();

    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::at_launches(&[1, 2, 6]));
    let (faulted, _) = caqr_dag(&gpu, a, sched).unwrap();

    assert_eq!(clean.r(), faulted.r());
    let l = gpu.ledger();
    assert_eq!(l.faults, 3);
    assert_eq!(l.retries, 3);
}

#[test]
fn fault_plan_does_not_outlive_clear() {
    let a = dense::generate::uniform::<f64>(256, 16, 11);
    let gpu = Gpu::new(DeviceSpec::c2050());
    gpu.set_fault_plan(FaultPlan::seeded(0, 1.0));
    assert!(caqr::caqr::caqr(&gpu, a.clone(), opts()).is_err());
    gpu.clear_fault_plan();
    let faults_before = gpu.ledger().faults;
    caqr::caqr::caqr(&gpu, a, opts()).unwrap();
    assert_eq!(gpu.ledger().faults, faults_before, "no new faults");
}
