//! Backend-conformance suite (DESIGN.md §13).
//!
//! Every executor behind the `CaqrBackend` trait — host multicore, the
//! simulator in synchronous and stream-DAG modes, the resilient executor,
//! and the multi-device cluster — runs the *same* generic driver over the
//! *same* `blockops` arithmetic, so each must produce, bit for bit, the
//! same factored matrix and the same packed compact-WY factors as the host
//! reference `caqr_cpu`. This file is the single home of that contract
//! (the per-path equivalence tests it replaced checked pairs of entry
//! points separately); the fault/failover paths keep their own suites in
//! `fault_injection.rs` and `distributed_caqr.rs`.

use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::schedule::{caqr_dag, ScheduleOptions};
use caqr::tsqr::{TreeNode, WyTile};
use caqr::{
    caqr_resilient, distributed_tsqr, BlockSize, CaqrOptions, DistOptions, RecoveryOptions,
    ReductionStrategy, TreeShape,
};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use gpu_sim::{Cluster, DeviceSpec, Gpu, LinkSpec, Topology};
use proptest::prelude::*;

/// Exact bit pattern of a scalar (`f32 -> f64` widening is lossless, so
/// two values share `bits` iff they are the same float).
fn bits<T: Scalar>(x: T) -> u64 {
    x.to_f64().to_bits()
}

fn push_matrix<T: Scalar>(out: &mut Vec<u64>, m: &Matrix<T>) {
    out.push(m.rows() as u64);
    out.push(m.cols() as u64);
    out.extend(m.as_slice().iter().map(|&x| bits(x)));
}

/// Flatten one panel's packed compact-WY factors — level-0 tiles and every
/// reduction-tree node — into a bit vector for exact comparison.
fn pack_panel<T: Scalar>(
    out: &mut Vec<u64>,
    col0: usize,
    width: usize,
    tiles: &[caqr::block::Tile],
    wy0: &[WyTile<T>],
    levels: &[Vec<TreeNode<T>>],
) {
    out.push(col0 as u64);
    out.push(width as u64);
    for t in tiles {
        out.push(t.start as u64);
        out.push(t.rows as u64);
    }
    for wy in wy0 {
        out.extend(wy.tau.iter().map(|&x| bits(x)));
        push_matrix(out, &wy.v);
        push_matrix(out, &wy.t);
        out.push(wy.healthy as u64);
    }
    for level in levels {
        for node in level {
            out.extend(node.members.iter().map(|&s| s as u64));
            push_matrix(out, &node.u);
            out.extend(node.tau.iter().map(|&x| bits(x)));
            push_matrix(out, &node.tmat);
            out.push(node.healthy as u64);
        }
    }
}

/// The full conformance fingerprint of a factorization: the factored
/// matrix (R + Householder tails) plus every packed panel factor.
fn fingerprint<T: Scalar>(
    a: &Matrix<T>,
    panels: impl Iterator<Item = (usize, usize, Vec<u64>)>,
) -> Vec<u64> {
    let mut out = Vec::new();
    push_matrix(&mut out, a);
    for (col0, width, packed) in panels {
        out.push(col0 as u64);
        out.push(width as u64);
        out.extend(packed);
    }
    out
}

fn cpu_fingerprint(f: &caqr::CpuCaqr<f64>) -> Vec<u64> {
    fingerprint(
        &f.a,
        f.panels.iter().map(|p| {
            let mut v = Vec::new();
            pack_panel(&mut v, p.col0, p.width, &p.tiles, &p.wy0, &p.levels);
            (p.col0, p.width, v)
        }),
    )
}

fn sim_fingerprint(f: &caqr::Caqr<f64>) -> Vec<u64> {
    fingerprint(
        &f.a,
        f.panels.iter().map(|p| {
            let mut v = Vec::new();
            pack_panel(&mut v, p.col0, p.width, &p.tiles, &p.wy0, &p.levels);
            (p.col0, p.width, v)
        }),
    )
}

fn caqr_opts(h: usize, w: usize, strategy: ReductionStrategy) -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h, w },
        strategy,
        tree: TreeShape::DeviceArity,
        check_finite: true,
    }
}

fn cpu_opts(h: usize, w: usize) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: h,
        panel_width: w,
        tree: TreeShape::DeviceArity,
        verify_checksums: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CpuBackend, SimBackend (sync), SimBackend (stream DAG, both with and
    /// without lookahead) and the resilient executor agree bit-for-bit on
    /// {factored matrix, packed WY factors}; every simulator run's launch
    /// count matches its device ledger exactly.
    #[test]
    fn all_single_device_backends_agree_bitwise(
        m in 20usize..260,
        n in 1usize..28,
        geom in 0usize..3,
        streams in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (h, w) = [(16, 4), (32, 8), (64, 16)][geom];
        let a = dense::generate::uniform::<f64>(m, n, seed);

        // Host reference.
        let reference = caqr_cpu(a.clone(), cpu_opts(h, w)).unwrap();
        let want = cpu_fingerprint(&reference);

        // Simulator, synchronous Figure-4 loop.
        let g = Gpu::new(DeviceSpec::c2050());
        let o = caqr_opts(h, w, ReductionStrategy::RegisterSerialTransposed);
        let f = caqr::caqr::caqr(&g, a.clone(), o).unwrap();
        prop_assert_eq!(&sim_fingerprint(&f), &want);
        prop_assert_eq!(f.launches() as u64, g.ledger().calls);

        // Simulator, stream DAG — barrier and lookahead schedules.
        for lookahead in [false, true] {
            let g = Gpu::new(DeviceSpec::c2050());
            let so = ScheduleOptions { caqr: o, streams, lookahead };
            let (f, _tl) = caqr_dag(&g, a.clone(), so).unwrap();
            prop_assert_eq!(&sim_fingerprint(&f), &want);
            prop_assert_eq!(f.launches() as u64, g.ledger().calls);
        }

        // Resilient executor, fault-free run.
        let g = Gpu::new(DeviceSpec::c2050());
        let ro = RecoveryOptions { caqr: o, streams, ..RecoveryOptions::default() };
        let (f, report) = caqr_resilient(&g, a, ro).unwrap();
        prop_assert_eq!(&sim_fingerprint(&f), &want);
        // The resilient ledger also books the ABFT verify and snapshot
        // passes as host pseudo-ops; kernel launches are what's left.
        let l = g.ledger();
        let host_ops: u64 = ["checksum_verify", "snapshot"]
            .iter()
            .filter_map(|op| l.per_op.get(*op))
            .map(|e| e.calls)
            .sum();
        prop_assert_eq!(report.launches, l.calls - host_ops);
    }

    /// The cluster backend matches the host reference bit-for-bit across
    /// device counts, tree shapes and tile grids (replacing the fixed-shape
    /// distributed equivalence test), and a loss-free run performs no
    /// failovers.
    #[test]
    fn cluster_backend_agrees_bitwise_across_device_counts(
        ntiles in 2usize..8,
        n in 4usize..17,
        p in 1usize..5,
        tree_pick in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(p <= ntiles);
        let tree = [TreeShape::DeviceArity, TreeShape::Binomial][tree_pick];
        let m = 128 * ntiles + 31; // remainder row-merge exercised too
        let a = dense::generate::uniform::<f64>(m, n, seed);

        let reference = caqr_cpu(
            a.clone(),
            CpuCaqrOptions { tile_rows: 128, panel_width: n, tree, verify_checksums: false },
        )
        .unwrap();
        let want = cpu_fingerprint(&reference);

        let c = Cluster::new(p, DeviceSpec::c2050(), LinkSpec::infiniband_qdr(), Topology::BinomialTree);
        let opts = DistOptions {
            tile_rows: 128,
            tree,
            strategy: ReductionStrategy::RegisterSerialTransposed,
            verify_checksums: false,
        };
        let f = distributed_tsqr(&c, a, opts).unwrap();
        prop_assert_eq!(&cpu_fingerprint(&f.factored), &want);
        prop_assert_eq!(f.devices_lost(), 0);
        prop_assert_eq!(f.report.device_failovers, 0);
        prop_assert!(f.report.launches > 0);
    }
}

/// Strategies only change the cost model; through the generic driver the
/// arithmetic must stay bit-for-bit identical to the host reference
/// (subsumes the old per-path strategy-equivalence test).
#[test]
fn every_strategy_matches_the_host_reference_bitwise() {
    let a = dense::generate::uniform::<f64>(300, 24, 7);
    let reference = caqr_cpu(a.clone(), cpu_opts(32, 8)).unwrap();
    let want = cpu_fingerprint(&reference);
    for s in ReductionStrategy::ALL {
        let g = Gpu::new(DeviceSpec::c2050());
        let f = caqr::caqr::caqr(&g, a.clone(), caqr_opts(32, 8, s)).unwrap();
        assert_eq!(
            sim_fingerprint(&f),
            want,
            "strategy {s:?} changed the arithmetic"
        );
    }
}

/// Checksum verification is observation-only: a sync run with the ABFT
/// detectors on is bit-identical to one with them off, on both the host
/// and simulator backends.
#[test]
fn verification_does_not_perturb_any_backend() {
    let a = dense::generate::uniform::<f64>(256, 16, 13);
    let plain = caqr_cpu(a.clone(), cpu_opts(32, 8)).unwrap();
    let mut verified_opts = cpu_opts(32, 8);
    verified_opts.verify_checksums = true;
    let verified = caqr_cpu(a, verified_opts).unwrap();
    assert_eq!(cpu_fingerprint(&plain), cpu_fingerprint(&verified));
}
