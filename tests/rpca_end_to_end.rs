//! End-to-end application test: the full Robust PCA pipeline with the
//! simulated-GPU CAQR backend separating a synthetic surveillance clip
//! (Section VI at reduced scale), and the SVD-via-QR identities it relies on.

use dense::norms::frobenius;
use gpu_sim::{DeviceSpec, Gpu};
use rpca::video::{generate, sparsity, VideoConfig};
use rpca::{rpca, svd_via_qr, CpuQrBackend, GpuCaqrBackend, RpcaParams};

#[test]
fn gpu_pipeline_separates_video() {
    let cfg = VideoConfig {
        width: 32,
        height: 24,
        frames: 24,
        blobs: 2,
        blob_size: 5,
        foreground_intensity: 1.0,
        noise: 0.004,
        illumination_drift: 0.0,
        seed: 31,
    };
    let video = generate::<f64>(&cfg);
    let gpu = Gpu::new(DeviceSpec::gtx480());
    let backend = GpuCaqrBackend {
        gpu: &gpu,
        opts: caqr::CaqrOptions::default(),
    };
    let r = rpca(
        &backend,
        &video.matrix,
        &RpcaParams {
            tol: 1e-5,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.converged, "GPU-backend RPCA did not converge");

    // Background recovery.
    let mut err = 0.0f64;
    for (a, b) in r.l.as_slice().iter().zip(video.background.as_slice()) {
        err += (a - b) * (a - b);
    }
    let rel = err.sqrt() / frobenius(&video.background);
    assert!(rel < 0.1, "background error {rel}");

    // Foreground support recovered (precision AND recall).
    let det = rpca::foreground_detection(&r.s, &video.foreground, 0.3, 0.5);
    assert!(det.recall > 0.8, "foreground recall {}", det.recall);
    assert!(
        det.precision > 0.5,
        "foreground precision {}",
        det.precision
    );
    assert!(det.f1 > 0.65, "foreground F1 {}", det.f1);
    assert!(
        rpca::psnr(&r.l, &video.background, 1.0) > 20.0,
        "background PSNR too low"
    );
    assert!(sparsity(&r.s, 0.3) < 0.25);

    // The simulated GPU really did the QRs: many launches, modelled time.
    let l = gpu.ledger();
    assert!(
        l.calls > 50,
        "expected many kernel launches, saw {}",
        l.calls
    );
    assert!(l.seconds > 0.0);
}

#[test]
fn gpu_and_cpu_backends_agree_on_the_solution() {
    let cfg = VideoConfig::tiny();
    let video = generate::<f64>(&cfg);
    let params = RpcaParams {
        tol: 1e-5,
        ..Default::default()
    };

    let r_cpu = rpca(&CpuQrBackend, &video.matrix, &params).unwrap();
    let gpu = Gpu::new(DeviceSpec::gtx480());
    let backend = GpuCaqrBackend {
        gpu: &gpu,
        opts: caqr::CaqrOptions::default(),
    };
    let r_gpu = rpca(&backend, &video.matrix, &params).unwrap();

    assert_eq!(
        r_cpu.iterations, r_gpu.iterations,
        "iteration paths diverged"
    );
    let mut max_dl = 0.0f64;
    for (a, b) in r_cpu.l.as_slice().iter().zip(r_gpu.l.as_slice()) {
        max_dl = max_dl.max((a - b).abs());
    }
    assert!(max_dl < 1e-8, "L differs between backends by {max_dl}");
}

#[test]
fn svd_identities_on_the_video_matrix() {
    // sum(sigma_i^2) == ||A||_F^2 and the QR-first SVD preserves it.
    let video = generate::<f64>(&VideoConfig::tiny());
    let s = svd_via_qr(&CpuQrBackend, &video.matrix).unwrap();
    let ss: f64 = s.sigma.iter().map(|v| v * v).sum();
    let f2 = frobenius(&video.matrix).powi(2);
    assert!((ss / f2 - 1.0).abs() < 1e-10, "Frobenius identity violated");
    // The top singular vector is essentially the background direction.
    assert!(
        s.sigma[0] > 3.0 * s.sigma[1],
        "background should dominate: {:?}",
        &s.sigma[..3]
    );
}

#[test]
fn rpca_respects_exact_low_rank_sparse_inputs() {
    // A matrix that is already low-rank (no sparse part): S should be ~0.
    let l0 = dense::generate::low_rank::<f64>(120, 16, 2, 0.0, 77);
    let r = rpca(&CpuQrBackend, &l0, &RpcaParams::default()).unwrap();
    assert!(r.converged);
    let s_norm = frobenius(&r.s);
    let l_norm = frobenius(&l0);
    assert!(
        s_norm < 0.02 * l_norm,
        "spurious sparse component: {s_norm} vs {l_norm}"
    );
    assert!(r.rank <= 3);
}
