//! Stream-scheduled CAQR: numerical equivalence with the synchronous loop
//! and invariants of the resolved per-stream timeline (DESIGN.md §5,
//! "Concurrency model").

use caqr::schedule::{caqr_dag, model_caqr_dag_seconds};
use caqr::{BlockSize, CaqrOptions, LaunchPlan, ReductionStrategy, ScheduleOptions};
use gpu_sim::{DeviceSpec, Gpu, Timeline};
use proptest::prelude::*;

fn opts(h: usize, w: usize, streams: usize, lookahead: bool) -> ScheduleOptions {
    ScheduleOptions {
        caqr: CaqrOptions {
            bs: BlockSize { h, w },
            strategy: ReductionStrategy::RegisterSerialTransposed,
            tree: caqr::block::TreeShape::DeviceArity,
            check_finite: true,
        },
        streams,
        lookahead,
    }
}

/// The timeline invariants every resolved schedule must satisfy:
/// * intervals on one stream never overlap (streams are in-order queues),
/// * every realized interval is at least its contention-free duration,
/// * the makespan is exactly the last interval's end and never exceeds the
///   synchronous sum of contention-free kernel times.
fn check_timeline(tl: &Timeline) {
    let mut per_stream: std::collections::BTreeMap<usize, Vec<(f64, f64)>> = Default::default();
    let mut alone_sum = 0.0;
    let mut last_end: f64 = 0.0;
    for iv in &tl.intervals {
        assert!(iv.end >= iv.start, "negative interval for {}", iv.name);
        assert!(
            iv.duration() >= iv.alone_seconds - 1e-12,
            "{} realized faster than contention-free: {} < {}",
            iv.name,
            iv.duration(),
            iv.alone_seconds
        );
        per_stream
            .entry(iv.stream)
            .or_default()
            .push((iv.start, iv.end));
        alone_sum += iv.alone_seconds;
        last_end = last_end.max(iv.end);
    }
    for (stream, mut ivs) in per_stream {
        ivs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in ivs.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-12,
                "stream {stream} intervals overlap: {w:?}"
            );
        }
    }
    assert!(
        (tl.makespan - last_end).abs() < 1e-12,
        "makespan must be the last end"
    );
    assert!(
        tl.makespan <= alone_sum + 1e-12,
        "concurrent schedule slower than serializing everything: {} > {}",
        tl.makespan,
        alone_sum
    );
}

#[test]
fn dag_r_and_q_are_bit_identical_to_synchronous() {
    for &(m, n, h, w, seed) in &[
        (64usize, 8usize, 16usize, 4usize, 1u64),
        (200, 24, 32, 8, 2),
        (513, 33, 64, 16, 3),
        (96, 96, 32, 8, 5),
        (50, 90, 16, 4, 6), // wide, ragged k
    ] {
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let o = opts(h, w, 4, true);
        let gs = Gpu::new(DeviceSpec::c2050());
        let sync = caqr::caqr::caqr(&gs, a.clone(), o.caqr).unwrap();
        let k = m.min(n);
        let q_sync = sync.generate_q(&gs, k).unwrap();
        for &streams in &[1usize, 2, 4] {
            for &lookahead in &[false, true] {
                let g = Gpu::new(DeviceSpec::c2050());
                let (f, tl) = caqr_dag(&g, a.clone(), opts(h, w, streams, lookahead)).unwrap();
                check_timeline(&tl);
                let q = f.generate_q(&g, k).unwrap();
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            f.a[(i, j)],
                            sync.a[(i, j)],
                            "factored matrix diverged at ({i},{j}), {m}x{n} s={streams} la={lookahead}"
                        );
                    }
                }
                for j in 0..k {
                    for i in 0..m {
                        assert_eq!(
                            q[(i, j)],
                            q_sync[(i, j)],
                            "Q diverged at ({i},{j}), {m}x{n} s={streams} la={lookahead}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn dag_launches_match_ledger_calls() {
    // The DAG analogue of `launch_count_formula` in simulator_invariants.rs:
    // `Caqr::launches()` must agree with the ledger under stream scheduling
    // too, where the fan-out issues more apply chains than the sync loop.
    for &streams in &[1usize, 3, 4] {
        for &lookahead in &[false, true] {
            let g = Gpu::new(DeviceSpec::c2050());
            let a = dense::generate::uniform::<f32>(512, 32, 4);
            let (f, _tl) = caqr_dag(&g, a, opts(64, 16, streams, lookahead)).unwrap();
            assert!(matches!(f.launch_plan, LaunchPlan::Dag { .. }));
            assert_eq!(
                f.launches() as u64,
                g.ledger().calls,
                "s={streams} la={lookahead}"
            );
        }
    }
}

#[test]
fn ledger_intervals_mirror_the_timeline() {
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(256, 24, 9);
    let (_f, tl) = caqr_dag(&g, a, opts(32, 8, 2, true)).unwrap();
    let l = g.ledger();
    assert_eq!(l.intervals.len(), tl.intervals.len());
    assert_eq!(l.calls as usize, tl.intervals.len());
    // The batch advances the clock by its makespan, once.
    assert!((l.seconds - tl.makespan).abs() < 1e-12);
}

#[test]
fn event_waits_are_respected_in_the_resolved_timeline() {
    // Cross-stream ordering: a consumer kernel queued behind a wait must not
    // start before its producer's event fires.
    let g = Gpu::new(DeviceSpec::c2050());
    let cfg = gpu_sim::LaunchConfig {
        blocks: 14,
        threads_per_block: 64,
        shared_mem_bytes: 0,
        regs_per_thread: 8,
    };
    let cost = gpu_sim::BlockCost {
        flops: 1000,
        issue_cycles: 50_000.0,
        gmem_bytes: 0.0,
        smem_words: 0,
        syncs: 0,
    };
    let costs = vec![cost; 14];
    let s0 = g.create_stream();
    let s1 = g.create_stream();
    g.launch_with_costs_async(s0, "producer", cfg, &costs)
        .unwrap();
    let ev = g.record_event(s0);
    g.wait_event(s1, ev);
    g.launch_with_costs_async(s1, "consumer", cfg, &costs)
        .unwrap();
    let tl = g.synchronize();
    check_timeline(&tl);
    let p = tl
        .intervals
        .iter()
        .find(|iv| iv.name == "producer")
        .unwrap();
    let c = tl
        .intervals
        .iter()
        .find(|iv| iv.name == "consumer")
        .unwrap();
    assert!(c.start >= p.end - 1e-15);
}

#[test]
fn single_stream_barrier_schedule_reproduces_the_synchronous_clock() {
    let o = opts(32, 8, 1, false);
    let a = dense::generate::uniform::<f32>(300, 24, 11);
    let gs = Gpu::new(DeviceSpec::c2050());
    let _ = caqr::caqr::caqr(&gs, a.clone(), o.caqr).unwrap();
    let gd = Gpu::new(DeviceSpec::c2050());
    let (_, tl) = caqr_dag(&gd, a, o).unwrap();
    assert!(
        (tl.makespan - gs.elapsed()).abs() / gs.elapsed() < 1e-12,
        "one in-order stream must serialize to the synchronous time: {} vs {}",
        tl.makespan,
        gs.elapsed()
    );
}

#[test]
fn chrome_trace_covers_every_stream() {
    let g = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(256, 32, 12);
    let (_f, tl) = caqr_dag(&g, a, opts(32, 8, 3, true)).unwrap();
    let json = tl.to_chrome_trace();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    for tid in 0..3 {
        assert!(
            json.contains(&format!("\"tid\": {tid}")),
            "stream {tid} missing from trace"
        );
    }
    assert_eq!(json.matches("\"ph\": \"X\"").count(), tl.intervals.len());
}

#[test]
fn modelled_lookahead_beats_synchronous_on_table1_shapes() {
    // The acceptance claim: on the paper's tall-skinny shapes the DAG with
    // lookahead is faster (in modelled time) than the synchronous loop,
    // while the numerics are identical (asserted above at executable sizes).
    for &m in &[10_000usize, 100_000, 1_000_000] {
        let sync = caqr::model::model_caqr_seconds(
            &Gpu::new(DeviceSpec::c2050()),
            m,
            192,
            CaqrOptions::default(),
        )
        .unwrap();
        let best = [2usize, 4]
            .iter()
            .map(|&s| {
                model_caqr_dag_seconds(
                    &Gpu::new(DeviceSpec::c2050()),
                    m,
                    192,
                    ScheduleOptions {
                        caqr: CaqrOptions::default(),
                        streams: s,
                        lookahead: true,
                    },
                )
                .unwrap()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < sync,
            "{m}x192: lookahead DAG {best} should beat sync {sync}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    fn dag_equivalence_holds_for_random_shapes(
        m in 20usize..150,
        n in 1usize..40,
        streams in 1usize..5,
        la in 0usize..2,
        seed in 0u64..1000,
    ) {
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let o = opts(16, 4, streams, la == 1);
        let gs = Gpu::new(DeviceSpec::c2050());
        let sync = caqr::caqr::caqr(&gs, a.clone(), o.caqr).unwrap();
        let gd = Gpu::new(DeviceSpec::c2050());
        let (f, tl) = caqr_dag(&gd, a, o).unwrap();
        check_timeline(&tl);
        for j in 0..n {
            for i in 0..m {
                prop_assert!(
                    f.a[(i, j)] == sync.a[(i, j)],
                    "factored matrix diverged at ({}, {})",
                    i,
                    j
                );
            }
        }
    }

    fn model_replay_matches_execution_for_random_shapes(
        m in 40usize..200,
        n in 8usize..48,
        streams in 1usize..5,
        la in 0usize..2,
    ) {
        let o = opts(32, 8, streams, la == 1);
        let g1 = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f32>(m, n, 42);
        let (f, _tl) = caqr_dag(&g1, a, o).unwrap();
        let exec = g1.ledger();
        let g2 = Gpu::new(DeviceSpec::c2050());
        model_caqr_dag_seconds(&g2, m, n, o).unwrap();
        let modeled = g2.ledger();
        prop_assert_eq!(exec.calls, modeled.calls);
        prop_assert_eq!(f.launches() as u64, modeled.calls);
        prop_assert!((exec.seconds - modeled.seconds).abs() / exec.seconds < 1e-9);
    }
}
