//! SIMD-dispatch conformance: every backend reachable on this CPU is
//! checked against the scalar oracle kernels.
//!
//! The gemm microkernel reassociates the k-loop per vector lane, so its
//! comparisons are ulp-bounded; the factor sweep and the axpy-style column
//! kernels vectorize *independent* fused chains and are required to be
//! **bit-identical** on every backend (the guarantee the bitwise CPU/GPU
//! cross-checks in the core crate rely on).
//!
//! Backend forcing goes through `dense::simd::set_backend_override`, which
//! is process-global — every test that touches it serializes on [`LOCK`].

use dense::blas3::{gemm, Trans};
use dense::matrix::Matrix;
use dense::simd::{active, set_backend_override};
use dense::Backend;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global backend override.
static LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the dispatcher pinned to `b`, restoring auto-detection
/// afterwards (also on panic, so one failed case cannot poison the rest of
/// the suite into running on the wrong backend).
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_backend_override(None);
        }
    }
    let _restore = Restore;
    set_backend_override(Some(b));
    f()
}

fn gemm_once<T: dense::scalar::Scalar>(
    b: Backend,
    a: &Matrix<T>,
    bm: &Matrix<T>,
    c0: &Matrix<T>,
    alpha: T,
    beta: T,
) -> Matrix<T> {
    with_backend(b, || {
        let mut c = c0.clone();
        gemm(
            Trans::No,
            Trans::No,
            alpha,
            a.as_ref(),
            bm.as_ref(),
            beta,
            c.as_mut(),
        );
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reachable backend's packed gemm agrees with the scalar oracle
    /// to a k-scaled ulp bound, across all MR/NR remainder classes: `m`
    /// spans 1..=72 (every ragged micro-tile height up to the widest MR of
    /// 32, plus full tiles), `n` spans 1..=19 (every width class up to the
    /// widest NR of 8), and `k` crosses the KC panel edge via `k_sel`.
    #[test]
    fn gemm_matches_scalar_oracle_on_every_backend(
        m in 1usize..=72,
        n in 1usize..=19,
        k_sel in 0usize..6,
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let k = [1usize, 2, 3, 7, 16, 37][k_sel];
        let a = dense::generate::uniform::<f64>(m, k, seed);
        let b = dense::generate::uniform::<f64>(k, n, seed ^ 1);
        let c0 = dense::generate::uniform::<f64>(m, n, seed ^ 2);
        let oracle = gemm_once(Backend::Scalar, &a, &b, &c0, alpha, beta);
        for backend in Backend::available() {
            let got = gemm_once(backend, &a, &b, &c0, alpha, beta);
            for j in 0..n {
                for i in 0..m {
                    let (x, y) = (oracle[(i, j)], got[(i, j)]);
                    // Reassociated k-term dot: |err| <= O(k) ulps of the
                    // accumulated magnitude.
                    let scale = 1.0 + x.abs() + alpha.abs() * (k as f64) * 2.0 * 2.0;
                    prop_assert!(
                        (x - y).abs() <= 64.0 * (k as f64) * f64::EPSILON * scale,
                        "{backend:?} ({m}x{n}x{k}) at ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    /// f32 flavour of the same conformance sweep — the wider-lane kernels
    /// (8..32 f32 lanes) exercise remainder classes f64 cannot reach.
    #[test]
    fn gemm_f32_matches_scalar_oracle_on_every_backend(
        m in 1usize..=72,
        n in 1usize..=19,
        k_sel in 0usize..5,
        seed in 0u64..1000,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let k = [1usize, 2, 5, 16, 33][k_sel];
        let a = dense::generate::uniform::<f32>(m, k, seed);
        let b = dense::generate::uniform::<f32>(k, n, seed ^ 1);
        let c0 = Matrix::<f32>::zeros(m, n);
        let oracle = gemm_once(Backend::Scalar, &a, &b, &c0, 1.0f32, 0.0f32);
        for backend in Backend::available() {
            let got = gemm_once(backend, &a, &b, &c0, 1.0f32, 0.0f32);
            for j in 0..n {
                for i in 0..m {
                    let (x, y) = (oracle[(i, j)], got[(i, j)]);
                    let scale = 1.0 + (k as f32) * 2.0 * 2.0;
                    prop_assert!(
                        (x - y).abs() <= 32.0 * (k as f32) * f32::EPSILON * scale,
                        "{backend:?} ({m}x{n}x{k}) at ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    /// The fused factor sweep (`geqr2_gram_transposed`) is **bit-identical**
    /// to the scalar oracle on every backend: panel `at`, reflector scalars
    /// `tau`, and the fused `V^T V` Gram accumulation all compare by bits.
    /// Widths cover full vectors (8, 16), the wide+narrow split (AVX-512
    /// f64 at width 8 runs the narrow 4-lane path), and odd remainders;
    /// `tri_block` exercises the stacked-triangles row skipping.
    #[test]
    fn factor_sweep_is_bit_identical_on_every_backend(
        rows in 2usize..96,
        w_sel in 0usize..5,
        tri_sel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let width = [4usize, 8, 13, 16, 32][w_sel];
        let k = rows.min(width);
        let tri_block = [0usize, width, 2 * width][tri_sel];
        let a0 = dense::generate::uniform::<f64>(rows, width, seed);
        // Row-major (transposed) copy, with the stacked-triangles zero
        // structure when tri_block > 0 (the kernels may skip those slots).
        let mut at0 = vec![0.0f64; rows * width];
        for r in 0..rows {
            let lo = if tri_block > 0 { (r % tri_block).min(width) } else { 0 };
            for j in lo..width {
                at0[r * width + j] = a0[(r, j)];
            }
        }
        let run = |backend: Backend| {
            with_backend(backend, || {
                let mut at = at0.clone();
                let mut tau = vec![0.0f64; k];
                let mut gram = vec![0.0f64; k * k];
                dense::householder::geqr2_gram_transposed(
                    &mut at, rows, width, tri_block, &mut tau, &mut gram,
                );
                (at, tau, gram)
            })
        };
        let (at_s, tau_s, gram_s) = run(Backend::Scalar);
        for backend in Backend::available() {
            let (at_b, tau_b, gram_b) = run(backend);
            for (i, (x, y)) in at_s.iter().zip(&at_b).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "{backend:?} rows={rows} width={width} tri={tri_block}: at[{i}] {x:e} vs {y:e}"
                );
            }
            for (i, (x, y)) in tau_s.iter().zip(&tau_b).enumerate() {
                prop_assert!(x.to_bits() == y.to_bits(), "{backend:?}: tau[{i}] {x:e} vs {y:e}");
            }
            for (i, (x, y)) in gram_s.iter().zip(&gram_b).enumerate() {
                prop_assert!(x.to_bits() == y.to_bits(), "{backend:?}: gram[{i}] {x:e} vs {y:e}");
            }
        }
    }
}

/// Zero-sized edges: `k == 0` must reduce gemm to `C = beta C` on every
/// backend (bit-identically — no dot is ever formed), and empty `C` must
/// be a no-op instead of a panic.
#[test]
fn gemm_zero_extent_edges_on_every_backend() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c0 = dense::generate::uniform::<f64>(9, 5, 11);
    for backend in Backend::available() {
        with_backend(backend, || {
            // k == 0: pure beta scaling.
            let a = Matrix::<f64>::zeros(9, 0);
            let b = Matrix::<f64>::zeros(0, 5);
            let mut c = c0.clone();
            gemm(
                Trans::No,
                Trans::No,
                2.0,
                a.as_ref(),
                b.as_ref(),
                -0.5,
                c.as_mut(),
            );
            for j in 0..5 {
                for i in 0..9 {
                    assert_eq!(
                        c[(i, j)].to_bits(),
                        (-0.5 * c0[(i, j)]).to_bits(),
                        "{backend:?} k=0 at ({i},{j})"
                    );
                }
            }
            // m == 0 and n == 0: nothing to write, must not panic.
            let a = Matrix::<f64>::zeros(0, 4);
            let b = Matrix::<f64>::zeros(4, 5);
            let mut c = Matrix::<f64>::zeros(0, 5);
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                a.as_ref(),
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
            let a = Matrix::<f64>::zeros(9, 4);
            let b = Matrix::<f64>::zeros(4, 0);
            let mut c = Matrix::<f64>::zeros(9, 0);
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                a.as_ref(),
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
        });
    }
}

/// Magnitude extremes: entries at the edge of f64's range (±1e±300) must
/// come through every backend's microkernel with the same finiteness and
/// tight relative agreement — no backend may overflow, flush, or reorder
/// its way to a different magnitude class than the scalar oracle.
#[test]
fn gemm_extreme_magnitudes_agree_across_backends() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for &scale in &[1e300f64, 1e-300f64] {
        let (m, n, k) = (33, 9, 13);
        let mut a = dense::generate::uniform::<f64>(m, k, 21);
        // Scale A only: products sit at ~scale, sums stay representable.
        for v in a.as_mut_slice() {
            *v *= scale;
        }
        let b = dense::generate::uniform::<f64>(k, n, 22);
        let c0 = Matrix::<f64>::zeros(m, n);
        let oracle = gemm_once(Backend::Scalar, &a, &b, &c0, 1.0, 0.0);
        for backend in Backend::available() {
            let got = gemm_once(backend, &a, &b, &c0, 1.0, 0.0);
            for j in 0..n {
                for i in 0..m {
                    let (x, y) = (oracle[(i, j)], got[(i, j)]);
                    assert!(
                        x.is_finite() && y.is_finite(),
                        "{backend:?} scale {scale:e}"
                    );
                    assert!(
                        (x - y).abs() <= 1e-12 * scale * (k as f64),
                        "{backend:?} scale {scale:e} at ({i},{j}): {x:e} vs {y:e}"
                    );
                }
            }
        }
    }
}

/// The `CAQR_SIMD=scalar` leg of CI runs this binary with the env knob set
/// before the first dispatch: the auto-selected backend must then *be* the
/// scalar oracle, and routing through the dispatcher must be bit-identical
/// to calling with an explicit scalar override — the plumbing adds nothing.
/// Without the env knob the test only checks that dispatch is deterministic
/// (two runs on the auto-selected backend agree by bits).
#[test]
fn env_forced_scalar_pins_the_dispatcher() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let forced = std::env::var("CAQR_SIMD").as_deref() == Ok("scalar");
    if forced {
        assert_eq!(
            active(),
            Backend::Scalar,
            "CAQR_SIMD=scalar must pin the auto-selected backend"
        );
    }
    let a = dense::generate::uniform::<f64>(37, 11, 31);
    let b = dense::generate::uniform::<f64>(11, 7, 32);
    let c0 = dense::generate::uniform::<f64>(37, 7, 33);
    // Auto-dispatched run (no override).
    let auto1 = {
        let mut c = c0.clone();
        gemm(
            Trans::No,
            Trans::No,
            1.5,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        c
    };
    let auto2 = {
        let mut c = c0.clone();
        gemm(
            Trans::No,
            Trans::No,
            1.5,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        c
    };
    let pinned = gemm_once(active(), &a, &b, &c0, 1.5, 0.5);
    for (x, y) in auto1.as_slice().iter().zip(auto2.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "dispatch must be deterministic");
    }
    for (x, y) in auto1.as_slice().iter().zip(pinned.as_slice()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "override plumbing must match auto dispatch on the same backend"
        );
    }
    if forced {
        let explicit = gemm_once(Backend::Scalar, &a, &b, &c0, 1.5, 0.5);
        for (x, y) in auto1.as_slice().iter().zip(explicit.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "env-forced scalar must be the oracle"
            );
        }
    }
}
