//! Absolute reference checks against hand-computed factorizations — these
//! pin the conventions (signs, layouts, scalar factors) rather than just
//! self-consistency.

use dense::matrix::Matrix;

#[test]
fn qr_of_3x2_known_values() {
    // A = [3 1; 4 2; 0 2]. First column norm 5, so R[0,0] = -5 (LAPACK sign
    // convention: beta = -sign(a11)*||a1||).
    let a = Matrix::from_row_major(3, 2, &[3.0f64, 1.0, 4.0, 2.0, 0.0, 2.0]);
    let mut f = a.clone();
    let mut tau = vec![0.0; 2];
    dense::householder::geqr2(f.as_mut(), &mut tau);
    assert!((f[(0, 0)] - (-5.0)).abs() < 1e-14, "R11 = {}", f[(0, 0)]);
    // R12 = q1^T a2 with q1 = -a1/5 (sign flip): -(3*1 + 4*2)/5 = -2.2.
    assert!((f[(0, 1)] - (-2.2)).abs() < 1e-14, "R12 = {}", f[(0, 1)]);
    // ||A||_F^2 = 9+16+1+4+4 = 34; R preserves it.
    let r_sq: f64 = (0..2)
        .map(|j| (0..=j).map(|i| f[(i, j)] * f[(i, j)]).sum::<f64>())
        .sum();
    assert!((r_sq - 34.0).abs() < 1e-12);
}

#[test]
fn householder_reflector_of_e1_like_vector() {
    // x = (1, 0, 0): already aligned with e1; tau must be 0 (H = I).
    let mut x = vec![1.0f64, 0.0, 0.0];
    assert_eq!(dense::householder::larfg(&mut x), 0.0);
    // x = (0, 3, 4): alpha = 0, norm 5 -> beta = -5 (sign(0) = +1).
    let mut y = vec![0.0f64, 3.0, 4.0];
    let tau = dense::householder::larfg(&mut y);
    assert!((y[0] + 5.0).abs() < 1e-14);
    assert!(
        (tau - 1.0).abs() < 1e-14,
        "tau = {tau} (beta - alpha)/beta = 1 when alpha = 0"
    );
}

#[test]
fn svd_of_2x2_known_values() {
    // A = [3 0; 4 5]: singular values sqrt(45) and sqrt(5)
    // (sigma^2 are eigenvalues of A^T A = [25 20; 20 25] -> 45, 5).
    let a = Matrix::from_row_major(2, 2, &[3.0f64, 0.0, 4.0, 5.0]);
    let s = dense::svd::singular_values(&a);
    assert!((s[0] - 45.0f64.sqrt()).abs() < 1e-12, "{}", s[0]);
    assert!((s[1] - 5.0f64.sqrt()).abs() < 1e-12, "{}", s[1]);
    // det(A) = 15 = product of singular values.
    assert!((s[0] * s[1] - 15.0).abs() < 1e-12);
}

#[test]
fn cholesky_of_known_spd() {
    // A = [4 2; 2 5] -> L = [2 0; 1 2].
    let a = Matrix::from_row_major(2, 2, &[4.0f64, 2.0, 2.0, 5.0]);
    let l = dense::cholesky::potrf_lower(&a).unwrap();
    assert!((l[(0, 0)] - 2.0).abs() < 1e-15);
    assert!((l[(1, 0)] - 1.0).abs() < 1e-15);
    assert!((l[(1, 1)] - 2.0).abs() < 1e-15);
    assert_eq!(l[(0, 1)], 0.0);
}

#[test]
fn givens_of_3_4() {
    let (g, r) = dense::givens::Givens::make(3.0f64, 4.0);
    assert!((r - 5.0).abs() < 1e-14);
    assert!((g.c - 0.6).abs() < 1e-14);
    assert!((g.s - 0.8).abs() < 1e-14);
}

#[test]
fn gram_schmidt_of_orthogonal_input_is_identity_scaling() {
    // Columns already orthogonal: R must be diagonal with the column norms.
    let a = Matrix::from_row_major(3, 2, &[2.0f64, 0.0, 0.0, 3.0, 0.0, 0.0]);
    let (q, r) = dense::gram_schmidt::modified_gram_schmidt(&a);
    assert!((r[(0, 0)] - 2.0).abs() < 1e-15);
    assert!((r[(1, 1)] - 3.0).abs() < 1e-15);
    assert!(r[(0, 1)].abs() < 1e-15);
    assert!((q[(0, 0)] - 1.0).abs() < 1e-15);
    assert!((q[(1, 1)] - 1.0).abs() < 1e-15);
}

#[test]
fn least_squares_of_consistent_system_is_exact() {
    // Square invertible system: LS must solve it exactly.
    let a = Matrix::from_row_major(2, 2, &[2.0f64, 1.0, 1.0, 3.0]);
    let x = dense::blocked::least_squares(a, &[5.0, 10.0]);
    // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
    assert!((x[0] - 1.0).abs() < 1e-12);
    assert!((x[1] - 3.0).abs() < 1e-12);
}

#[test]
fn geqrf_flops_reference_points() {
    // LAPACK flop-count convention spot checks.
    assert!((dense::geqrf_flops(100, 1) - (2.0 * 100.0 - 2.0 / 3.0 + 100.0 + 1.0)).abs() < 1.0);
    let f = dense::geqrf_flops(8192, 8192);
    // ~ (4/3) n^3 for square.
    assert!((f / (4.0 / 3.0 * 8192.0f64.powi(3)) - 1.0).abs() < 0.01);
}
