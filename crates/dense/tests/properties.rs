//! Property-based tests of the dense substrate's core invariants.

use dense::blas1::{axpy, dot, nrm2, scal};
use dense::blas2::{gemv, trsv_upper, Trans};
use dense::blas3::gemm;
use dense::matrix::Matrix;
use dense::norms::{frobenius, orthogonality_error};
use proptest::prelude::*;

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // BLAS1
    // ------------------------------------------------------------------

    #[test]
    fn dot_is_symmetric_and_bilinear(n in 1usize..64, seed in 0u64..500) {
        let x = dense::generate::uniform::<f64>(n, 1, seed);
        let y = dense::generate::uniform::<f64>(n, 1, seed ^ 1);
        let (x, y) = (x.col(0), y.col(0));
        prop_assert!((dot(x, y) - dot(y, x)).abs() < 1e-12);
        // |<x,y>| <= ||x|| ||y|| (Cauchy-Schwarz).
        prop_assert!(dot(x, y).abs() <= nrm2(x) * nrm2(y) + 1e-10);
    }

    #[test]
    fn nrm2_is_a_norm(v in vec_strategy(24), alpha in -10.0f64..10.0) {
        let base = nrm2(&v);
        prop_assert!(base >= 0.0);
        // Homogeneity: ||a x|| = |a| ||x||.
        let mut scaled = v.clone();
        scal(alpha, &mut scaled);
        prop_assert!((nrm2(&scaled) - alpha.abs() * base).abs() < 1e-9 * (1.0 + base));
        // Triangle inequality against itself doubled.
        let mut doubled = v.clone();
        axpy(1.0, &v, &mut doubled);
        prop_assert!(nrm2(&doubled) <= 2.0 * base + 1e-9);
    }

    // ------------------------------------------------------------------
    // BLAS2 / BLAS3
    // ------------------------------------------------------------------

    #[test]
    fn gemv_matches_gemm_with_one_column(m in 1usize..32, n in 1usize..32, seed in 0u64..500) {
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let x = dense::generate::uniform::<f64>(n, 1, seed ^ 2);
        let mut y1 = vec![0.0; m];
        gemv(Trans::No, 1.0, a.as_ref(), x.col(0), 0.0, &mut y1);
        let mut y2 = Matrix::<f64>::zeros(m, 1);
        gemm(Trans::No, Trans::No, 1.0, a.as_ref(), x.as_ref(), 0.0, y2.as_mut());
        for i in 0..m {
            prop_assert!((y1[i] - y2[(i, 0)]).abs() < 1e-11);
        }
    }

    #[test]
    fn gemm_respects_transpose_identity(m in 1usize..16, n in 1usize..16, k in 1usize..16, seed in 0u64..500) {
        // (A B)^T == B^T A^T
        let a = dense::generate::uniform::<f64>(m, k, seed);
        let b = dense::generate::uniform::<f64>(k, n, seed ^ 3);
        let mut ab = Matrix::<f64>::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, a.as_ref(), b.as_ref(), 0.0, ab.as_mut());
        let mut btat = Matrix::<f64>::zeros(n, m);
        gemm(Trans::Yes, Trans::Yes, 1.0, b.as_ref(), a.as_ref(), 0.0, btat.as_mut());
        for i in 0..m {
            for j in 0..n {
                prop_assert!((ab[(i, j)] - btat[(j, i)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn trsv_inverts_upper_multiplication(n in 1usize..24, seed in 0u64..500) {
        // Build a well-conditioned upper-triangular U, check U^-1 (U x) = x.
        let u = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + (i % 3) as f64
            } else if i < j {
                (((i * 7 + j * 3 + seed as usize) % 11) as f64 - 5.0) / 7.0
            } else {
                0.0
            }
        });
        let x0 = dense::generate::uniform::<f64>(n, 1, seed ^ 4);
        let mut x = x0.col(0).to_vec();
        dense::blas2::trmv_upper(u.as_ref(), &mut x);
        trsv_upper(u.as_ref(), &mut x);
        for (a, b) in x.iter().zip(x0.col(0)) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    // ------------------------------------------------------------------
    // Factorizations
    // ------------------------------------------------------------------

    #[test]
    fn householder_qr_preserves_frobenius_norm(m in 2usize..48, n in 1usize..16, seed in 0u64..500) {
        prop_assume!(m >= n);
        // ||A||_F == ||R||_F (orthogonal invariance).
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let mut f = a.clone();
        let mut tau = vec![0.0; n];
        dense::householder::geqr2(f.as_mut(), &mut tau);
        let r = f.upper_triangular();
        prop_assert!((frobenius(&a) - frobenius(&r)).abs() < 1e-10 * (1.0 + frobenius(&a)));
    }

    #[test]
    fn larfg_extreme_scales_keep_beta_and_orthogonality(
        n in 2usize..12,
        seed in 0u64..500,
        scale_sel in 0usize..3,
    ) {
        let scale_pow = [-300i32, 0, 300][scale_sel];
        // Columns scaled into the subnormal (1e-300) and near-overflow
        // (1e+300) ranges must still produce |beta| == ||x|| and an
        // orthogonal reflector, thanks to the dlarfg safmin rescaling.
        let scale = 10f64.powi(scale_pow);
        let raw = dense::generate::uniform::<f64>(n, 1, seed);
        let x0: Vec<f64> = raw.as_slice().iter().map(|v| v * scale).collect();
        prop_assume!(nrm2(&x0[1..]) > 0.0);
        let norm = nrm2(&x0);
        let mut x = x0.clone();
        let tau = dense::householder::larfg(&mut x);
        let beta = x[0];
        prop_assert!(
            (beta.abs() - norm).abs() <= 32.0 * f64::EPSILON * norm,
            "|beta| {} vs ||x|| {} at scale 1e{}", beta.abs(), norm, scale_pow
        );
        // H = I - tau v v^T is orthogonal iff tau * ||v||^2 == 2 (v[0] = 1).
        let vtv = 1.0 + x[1..].iter().map(|v| v * v).sum::<f64>();
        prop_assert!((tau * vtv - 2.0).abs() < 1e-16 * vtv + 1e-12);
        // Reconstruction: H x0 = beta e1.
        let vdotx = x0[0] + x[1..].iter().zip(&x0[1..]).map(|(v, c)| v * c).sum::<f64>();
        for i in 0..n {
            let vi = if i == 0 { 1.0 } else { x[i] };
            let hxi = x0[i] - tau * vi * vdotx;
            let want = if i == 0 { beta } else { 0.0 };
            prop_assert!(
                (hxi - want).abs() <= 64.0 * f64::EPSILON * norm,
                "H x at {i}: {hxi} vs {want} (scale 1e{scale_pow})"
            );
        }
    }

    #[test]
    fn blocked_qr_q_is_orthogonal(m in 4usize..64, n in 1usize..16, nb in 1usize..8, seed in 0u64..500) {
        prop_assume!(m >= n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let mut f = a.clone();
        let tau = dense::blocked::geqrf(&mut f, nb);
        let q = dense::blocked::orgqr(&f, &tau, n, nb);
        prop_assert!(orthogonality_error(&q) < 1e-11);
    }

    #[test]
    fn svd_singular_values_are_orthogonally_invariant(m in 3usize..24, n in 1usize..8, seed in 0u64..500) {
        prop_assume!(m >= n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let s1 = dense::svd::singular_values(&a);
        // Multiply by an orthogonal Q from a QR of a random matrix.
        let rnd = dense::generate::uniform::<f64>(m, m, seed ^ 5);
        let mut f = rnd.clone();
        let mut tau = vec![0.0; m];
        dense::householder::geqr2(f.as_mut(), &mut tau);
        let q = dense::householder::org2r(&f, &tau, m);
        let mut qa = Matrix::<f64>::zeros(m, n);
        gemm(Trans::No, Trans::No, 1.0, q.as_ref(), a.as_ref(), 0.0, qa.as_mut());
        let s2 = dense::svd::singular_values(&qa);
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x), "{x} vs {y}");
        }
    }

    #[test]
    fn golub_kahan_and_jacobi_svds_agree(m in 2usize..24, n in 1usize..10, seed in 0u64..500) {
        prop_assume!(m >= n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let gk = dense::gk_svd::svd_golub_kahan(&a);
        let jac = dense::svd::svd(&a);
        for (x, y) in gk.sigma.iter().zip(&jac.sigma) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y), "{x} vs {y}");
        }
        prop_assert!(orthogonality_error(&gk.u) < 1e-9);
    }

    #[test]
    fn cholesky_solves_spd_systems(n in 1usize..16, seed in 0u64..500) {
        // A = B B^T + n I is SPD; L L^T must reproduce it.
        let b = dense::generate::uniform::<f64>(n, n, seed);
        let mut a = Matrix::<f64>::zeros(n, n);
        gemm(Trans::No, Trans::Yes, 1.0, b.as_ref(), b.as_ref(), 0.0, a.as_mut());
        for d in 0..n {
            a[(d, d)] += n as f64;
        }
        let l = dense::cholesky::potrf_lower(&a).unwrap();
        let mut llt = Matrix::<f64>::zeros(n, n);
        gemm(Trans::No, Trans::Yes, 1.0, l.as_ref(), l.as_ref(), 0.0, llt.as_mut());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn givens_rotation_preserves_two_norm(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let (g, r) = dense::givens::Givens::make(a, b);
        let (x, y) = g.apply(a, b);
        prop_assert!((x - r).abs() < 1e-10 * (1.0 + r.abs()));
        prop_assert!(y.abs() < 1e-10 * (1.0 + a.abs() + b.abs()));
        prop_assert!(((a * a + b * b).sqrt() - r.abs()).abs() < 1e-10 * (1.0 + r.abs()));
    }

    #[test]
    fn mgs_and_householder_rs_agree_in_magnitude(m in 4usize..40, n in 1usize..10, seed in 0u64..500) {
        prop_assume!(m >= 2 * n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let (_, r_mgs) = dense::gram_schmidt::modified_gram_schmidt(&a);
        let mut f = a.clone();
        let mut tau = vec![0.0; n];
        dense::householder::geqr2(f.as_mut(), &mut tau);
        for j in 0..n {
            for i in 0..=j {
                prop_assert!(
                    (r_mgs[(i, j)].abs() - f[(i, j)].abs()).abs() < 1e-8 * (1.0 + f[(i, j)].abs()),
                    "({i},{j})"
                );
            }
        }
    }
}
