//! Level-2 BLAS: matrix-vector operations on views.
//!
//! `gemv`/`ger` are the two operations at the core of every kernel in the
//! paper (Section IV-E: "all four kernels do the same two core computations:
//! matrix-vector multiply and rank-1 update").

use crate::matrix::{MatMut, MatRef};
use crate::scalar::Scalar;

/// Transposition selector for `gemv`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use `A` as stored.
    No,
    /// Use `A^T`.
    Yes,
}

/// `y = alpha * op(A) * x + beta * y`.
pub fn gemv<T: Scalar>(trans: Trans, alpha: T, a: MatRef<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    let (m, n) = (a.rows(), a.cols());
    match trans {
        Trans::No => {
            debug_assert_eq!(x.len(), n);
            debug_assert_eq!(y.len(), m);
            if beta == T::ZERO {
                y.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in y.iter_mut() {
                    *v *= beta;
                }
            }
            // Column-major: stream columns, axpy each.
            for j in 0..n {
                let axj = alpha * x[j];
                if axj != T::ZERO {
                    let col = a.col(j);
                    for (yi, &aij) in y.iter_mut().zip(col) {
                        *yi = axj.mul_add(aij, *yi);
                    }
                }
            }
        }
        Trans::Yes => {
            debug_assert_eq!(x.len(), m);
            debug_assert_eq!(y.len(), n);
            for j in 0..n {
                let mut acc = T::ZERO;
                for (&aij, &xi) in a.col(j).iter().zip(x) {
                    acc = aij.mul_add(xi, acc);
                }
                y[j] = if beta == T::ZERO {
                    alpha * acc
                } else {
                    alpha.mul_add(acc, beta * y[j])
                };
            }
        }
    }
}

/// Rank-1 update `A += alpha * x * y^T`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], mut a: MatMut<'_, T>) {
    let (m, n) = (a.rows(), a.cols());
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(y.len(), n);
    for j in 0..n {
        let ayj = alpha * y[j];
        if ayj != T::ZERO {
            let col = a.col_mut(j);
            for (aij, &xi) in col.iter_mut().zip(x) {
                *aij = ayj.mul_add(xi, *aij);
            }
        }
    }
}

/// Triangular solve with a single right-hand side: `x = op(T)^-1 * x` where
/// `T` is the upper-triangular part of `a` (unit = false). Used by least
/// squares after QR.
pub fn trsv_upper<T: Scalar>(a: MatRef<'_, T>, x: &mut [T]) {
    let n = a.cols();
    debug_assert!(a.rows() >= n);
    debug_assert_eq!(x.len(), n);
    for jr in (0..n).rev() {
        let d = a.at(jr, jr);
        assert!(
            d != T::ZERO,
            "singular triangular matrix in trsv (column {jr})"
        );
        x[jr] /= d;
        let xj = x[jr];
        for i in 0..jr {
            x[i] = (-xj).mul_add(a.at(i, jr), x[i]);
        }
    }
}

/// Triangular matrix-vector product `x = U * x` with `U` the upper-triangular
/// part of `a`.
pub fn trmv_upper<T: Scalar>(a: MatRef<'_, T>, x: &mut [T]) {
    let n = a.cols();
    debug_assert!(a.rows() >= n);
    debug_assert_eq!(x.len(), n);
    for i in 0..n {
        let mut acc = T::ZERO;
        for j in i..n {
            acc = a.at(i, j).mul_add(x[j], acc);
        }
        x[i] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn gemv_no_trans() {
        let a = Matrix::from_row_major(2, 3, &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![1.0, 1.0];
        gemv(Trans::No, 2.0, a.as_ref(), &[1.0, 0.0, 1.0], 3.0, &mut y);
        // 2*A*[1,0,1] + 3*[1,1] = 2*[4,10] + [3,3] = [11, 23]
        assert_eq!(y, vec![11.0, 23.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = Matrix::from_row_major(2, 3, &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 3];
        gemv(Trans::Yes, 1.0, a.as_ref(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_beta_zero_ignores_nan_style_garbage() {
        let a = Matrix::<f64>::eye(2, 2);
        let mut y = vec![999.0, -999.0];
        gemv(Trans::No, 1.0, a.as_ref(), &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], a.as_mut());
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 0)], 12.0);
        assert_eq!(a[(0, 1)], 8.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn trsv_solves_upper_system() {
        // U = [2 1; 0 4], b = [4, 8] -> x = [1, 2]... check: 2x0 + x1 = 4 -> x0 = 1.
        let u = Matrix::from_row_major(2, 2, &[2.0f64, 1.0, 0.0, 4.0]);
        let mut x = vec![4.0, 8.0];
        trsv_upper(u.as_ref(), &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn trmv_inverts_trsv() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let mut x = vec![1.0, 2.0, 3.0];
        let orig = x.clone();
        trmv_upper(u.as_ref(), &mut x);
        trsv_upper(u.as_ref(), &mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
