//! Givens rotations and a Givens-based QR.
//!
//! Section II lists Givens rotations as the other numerically stable QR
//! family; we provide them both as a correctness cross-check for the
//! Householder paths and because structured eliminations (like TSQR's
//! triangle-on-triangle reductions) are classically described with them.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A plane rotation `G = [c s; -s c]` with `c^2 + s^2 = 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Givens<T> {
    /// Cosine component.
    pub c: T,
    /// Sine component.
    pub s: T,
}

impl<T: Scalar> Givens<T> {
    /// Compute the rotation zeroing `b` against `a`:
    /// `G^T * [a; b] = [r; 0]` with `r = hypot(a, b)` (LAPACK `lartg` style,
    /// without the sign refinements).
    pub fn make(a: T, b: T) -> (Self, T) {
        if b == T::ZERO {
            return (
                Givens {
                    c: T::ONE,
                    s: T::ZERO,
                },
                a,
            );
        }
        if a == T::ZERO {
            return (
                Givens {
                    c: T::ZERO,
                    s: T::ONE,
                },
                b,
            );
        }
        let r = a.hypot(b);
        let r = if a < T::ZERO { -r } else { r };
        (Givens { c: a / r, s: b / r }, r)
    }

    /// Apply to a coordinate pair: returns `(c*x + s*y, -s*x + c*y)`.
    #[inline(always)]
    pub fn apply(&self, x: T, y: T) -> (T, T) {
        (
            self.c.mul_add(x, self.s * y),
            self.c.mul_add(y, -(self.s * x)),
        )
    }

    /// Apply to two full rows `i` and `k` of a matrix, columns `from..`.
    pub fn apply_rows(&self, m: &mut Matrix<T>, i: usize, k: usize, from: usize) {
        for j in from..m.cols() {
            let (x, y) = self.apply(m[(i, j)], m[(k, j)]);
            m[(i, j)] = x;
            m[(k, j)] = y;
        }
    }
}

/// QR factorization by Givens rotations. Returns `(Q, R)` with `Q` explicit
/// `m x m`. Cubic cost with a large constant — a reference implementation,
/// not a fast path.
pub fn givens_qr<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Matrix<T>) {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::<T>::eye(m, m);
    for j in 0..n.min(m) {
        for i in (j + 1..m).rev() {
            let (g, _) = Givens::make(r[(j, j)], r[(i, j)]);
            if g.s == T::ZERO && g.c == T::ONE {
                continue;
            }
            g.apply_rows(&mut r, j, i, j);
            r[(i, j)] = T::ZERO; // exact zero by construction
                                 // Accumulate Q = Q * G (apply to columns j, i of Q).
            for row in 0..m {
                let x = q[(row, j)];
                let y = q[(row, i)];
                q[(row, j)] = g.c.mul_add(x, g.s * y);
                q[(row, i)] = g.c.mul_add(y, -(g.s * x));
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::orthogonality_error;

    #[test]
    fn make_zeroes_second_component() {
        let (g, r) = Givens::make(3.0f64, 4.0);
        let (x, y) = g.apply(3.0, 4.0);
        assert!((x - r).abs() < 1e-14);
        assert!(y.abs() < 1e-14);
        assert!((r.abs() - 5.0).abs() < 1e-14);
        assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-14);
    }

    #[test]
    fn make_handles_zeros() {
        let (g, r) = Givens::make(2.0f64, 0.0);
        assert_eq!((g.c, g.s, r), (1.0, 0.0, 2.0));
        let (g, r) = Givens::make(0.0f64, 3.0);
        assert_eq!((g.c, g.s, r), (0.0, 1.0, 3.0));
    }

    #[test]
    fn givens_qr_reconstructs() {
        let a = Matrix::from_fn(7, 4, |i, j| (((i * 11 + j * 5) % 13) as f64 - 6.0) / 3.0);
        let (q, r) = givens_qr(&a);
        assert!(orthogonality_error(&q) < 1e-13);
        // R upper triangular (within the leading n columns).
        for j in 0..4 {
            for i in j + 1..7 {
                assert!(r[(i, j)].abs() < 1e-13, "({i},{j}) = {}", r[(i, j)]);
            }
        }
        let mut qr = Matrix::<f64>::zeros(7, 4);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            q.as_ref(),
            r.as_ref(),
            0.0,
            qr.as_mut(),
        );
        for i in 0..7 {
            for j in 0..4 {
                assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn givens_r_matches_householder_r_up_to_sign() {
        let a = Matrix::from_fn(9, 5, |i, j| (((i * 7 + j * 3) % 11) as f64 - 5.0) / 2.0);
        let (_, r_g) = givens_qr(&a);
        let mut f = a.clone();
        let mut tau = vec![0.0; 5];
        crate::householder::geqr2(f.as_mut(), &mut tau);
        for j in 0..5 {
            for i in 0..=j {
                assert!(
                    (r_g[(i, j)].abs() - f[(i, j)].abs()).abs() < 1e-12,
                    "|R| mismatch at ({i},{j})"
                );
            }
        }
    }
}
