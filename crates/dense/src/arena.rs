//! Thread-cached workspace arena for kernel scratch buffers.
//!
//! The hot CAQR kernels (`factor`, `factor_tree`, `apply_qt_h`,
//! `apply_qt_tree`) and the packed-GEMM tasks each need a handful of
//! short-lived scratch buffers per launch. Allocating those with
//! `vec![T::ZERO; n]` costs a heap round-trip *and* a zero-fill on every
//! launch; at CAQR tile rates that is pure overhead. This module hands out
//! size-classed buffers from a per-thread cache backed by a process-wide
//! pool, so steady-state launches never touch the allocator.
//!
//! Contract (see DESIGN.md §9):
//! - Buffers are **dirty** by default: [`take_dirty`] returns a buffer whose
//!   contents are whatever the previous user left behind (never
//!   uninitialised memory — fresh buffers are zero-filled once at birth).
//!   Callers must fully overwrite the slice before reading it, or use
//!   [`take_zeroed`]. [`poison_pools`] exists so tests can prove a kernel
//!   never reads stale contents.
//! - Size classes are powers of two between 2^5 and 2^22 *elements*;
//!   requests above the largest class fall back to a one-off allocation
//!   (counted as a miss).
//! - Thread safety: each thread keeps a small local cache (no locking on
//!   the fast path); overflow and thread death flush buffers to a global
//!   mutex-guarded pool, so short-lived rayon workers donate their buffers
//!   back for the next parallel region to reuse.
//! - [`stats`] exposes process-wide hit/miss counters per element type;
//!   a steady-state miss delta of zero is how the benches verify the
//!   "no per-launch allocation" claim.

use std::alloc::Layout;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Byte alignment of every arena buffer: one cache line, and wide enough
/// for aligned AVX-512 loads on packed micro-panels. `Vec<T>` only
/// guarantees `align_of::<T>()` (4 or 8), which is why the pool manages
/// raw allocations instead.
pub const POOL_ALIGN: usize = 64;

/// An owned, [`POOL_ALIGN`]-aligned, always-initialised buffer — the
/// arena's storage unit.
pub struct RawBuf<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: RawBuf owns its allocation exclusively, like Vec<T>.
unsafe impl<T: Send> Send for RawBuf<T> {}
// SAFETY: shared access only hands out &[T].
unsafe impl<T: Sync> Sync for RawBuf<T> {}

impl<T> RawBuf<T> {
    fn layout(len: usize) -> Layout {
        Layout::array::<T>(len)
            .and_then(|l| l.align_to(POOL_ALIGN))
            .expect("arena: buffer layout overflows")
    }

    /// Allocate an aligned buffer of `len > 0` elements, every element
    /// initialised to `fill`.
    fn alloc(len: usize, fill: T) -> Self
    where
        T: Copy,
    {
        debug_assert!(len > 0);
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is f32/f64).
        let raw = unsafe { std::alloc::alloc(layout) }.cast::<T>();
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout)
        };
        for i in 0..len {
            // SAFETY: i < len elements of the fresh allocation.
            unsafe { ptr.as_ptr().add(i).write(fill) };
        }
        Self { ptr, len }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe an owned, initialised allocation (or a
        // dangling pointer with len == 0, which from_raw_parts permits).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as for `as_slice`, and we hold `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Default for RawBuf<T> {
    /// An empty buffer with no allocation (dangling, never dereferenced).
    fn default() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
        }
    }
}

impl<T> Drop for RawBuf<T> {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `alloc` with this exact layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

/// log2 of the smallest pooled size class, in elements.
const MIN_CLASS_LOG2: u32 = 5;
/// log2 of the largest pooled size class, in elements (4 Mi elements).
const MAX_CLASS_LOG2: u32 = 22;
/// Number of power-of-two size classes.
const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;

/// Number of elements in buffers of size class `class`.
#[inline]
fn class_elems(class: usize) -> usize {
    1usize << (MIN_CLASS_LOG2 as usize + class)
}

/// Size class covering `len` elements, or `None` if `len` is above the
/// largest pooled class.
#[inline]
fn class_of(len: usize) -> Option<usize> {
    debug_assert!(len > 0);
    if len > class_elems(NUM_CLASSES - 1) {
        return None;
    }
    let bits = len.next_power_of_two().trailing_zeros();
    Some(bits.saturating_sub(MIN_CLASS_LOG2) as usize)
}

/// Per-class retention cap for the global pool: generous for small
/// buffers, tapering off so the largest classes keep only a few.
#[inline]
fn global_cap(class: usize) -> usize {
    ((1usize << 24) / class_elems(class)).clamp(4, 64)
}

/// Per-class retention cap for a thread's local cache.
#[inline]
fn local_cap(class: usize) -> usize {
    ((1usize << 21) / class_elems(class)).clamp(2, 8)
}

/// Process-wide buffer pool for one element type. One static instance per
/// [`PoolScalar`] impl; all threads share it via short critical sections.
pub struct Pool<T> {
    shelves: [Mutex<Vec<RawBuf<T>>>; NUM_CLASSES],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Pool<T> {
    /// A new, empty pool (const so it can back a `static`).
    pub const fn new() -> Self {
        Self {
            shelves: [const { Mutex::new(Vec::new()) }; NUM_CLASSES],
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock_shelf(&self, class: usize) -> std::sync::MutexGuard<'_, Vec<RawBuf<T>>> {
        self.shelves[class]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get_global(&self, class: usize) -> Option<RawBuf<T>> {
        self.lock_shelf(class).pop()
    }

    fn put_global(&self, class: usize, buf: RawBuf<T>) {
        let mut shelf = self.lock_shelf(class);
        if shelf.len() < global_cap(class) {
            shelf.push(buf);
        }
        // Over cap: drop the buffer (the only place pooled memory is freed).
    }
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A thread's private shelf of cached buffers. Dropping it (thread exit)
/// donates every cached buffer back to the global [`Pool`].
pub struct LocalCache<T: PoolScalar> {
    shelves: [Vec<RawBuf<T>>; NUM_CLASSES],
}

impl<T: PoolScalar> LocalCache<T> {
    /// A new, empty cache (const so it can back a `thread_local!`).
    pub const fn new() -> Self {
        Self {
            shelves: [const { Vec::new() }; NUM_CLASSES],
        }
    }
}

impl<T: PoolScalar> Default for LocalCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PoolScalar> Drop for LocalCache<T> {
    fn drop(&mut self) {
        for (class, shelf) in self.shelves.iter_mut().enumerate() {
            for buf in shelf.drain(..) {
                T::pool().put_global(class, buf);
            }
        }
    }
}

/// Element types the arena can pool. Implemented for `f32`/`f64`; a
/// supertrait of [`crate::Scalar`] so every generic kernel can draw scratch
/// from the arena without extra bounds.
pub trait PoolScalar: Copy + Send + Sync + 'static {
    /// Value used to initialise freshly allocated pool buffers (buffers are
    /// always initialised memory, merely *stale*, never uninit).
    const POOL_ZERO: Self;

    /// The process-wide pool for this element type.
    fn pool() -> &'static Pool<Self>;

    /// Run `f` on this thread's local cache. Returns `None` if the cache is
    /// unavailable (thread-local storage already torn down).
    fn with_cache<R>(f: impl FnOnce(&mut LocalCache<Self>) -> R) -> Option<R>;
}

macro_rules! impl_pool_scalar {
    ($t:ty, $pool:ident, $cache:ident) => {
        static $pool: Pool<$t> = Pool::new();
        thread_local! {
            static $cache: RefCell<LocalCache<$t>> = const { RefCell::new(LocalCache::new()) };
        }
        impl PoolScalar for $t {
            const POOL_ZERO: Self = 0.0;

            fn pool() -> &'static Pool<Self> {
                &$pool
            }

            fn with_cache<R>(f: impl FnOnce(&mut LocalCache<Self>) -> R) -> Option<R> {
                $cache.try_with(|c| f(&mut c.borrow_mut())).ok()
            }
        }
    };
}

impl_pool_scalar!(f32, POOL_F32, CACHE_F32);
impl_pool_scalar!(f64, POOL_F64, CACHE_F64);

/// RAII scratch buffer borrowed from the arena. Derefs to a `[T]` of
/// exactly the requested length; the backing allocation is the rounded-up
/// size class and returns to the pool on drop.
#[must_use = "dropping an ArenaBuf returns it to the pool immediately; bind it for as long as the scratch is needed"]
pub struct ArenaBuf<T: PoolScalar> {
    buf: RawBuf<T>,
    len: usize,
    class: Option<usize>,
}

impl<T: PoolScalar> Deref for ArenaBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.buf.as_slice()[..self.len]
    }
}

impl<T: PoolScalar> DerefMut for ArenaBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf.as_mut_slice()[..self.len]
    }
}

impl<T: PoolScalar> Drop for ArenaBuf<T> {
    fn drop(&mut self) {
        let Some(class) = self.class else {
            return; // one-off allocation; RawBuf's Drop frees it
        };
        let buf = std::mem::take(&mut self.buf);
        let overflow = T::with_cache(|c| {
            let shelf = &mut c.shelves[class];
            if shelf.len() < local_cap(class) {
                shelf.push(buf);
                None
            } else {
                Some(buf)
            }
        });
        if let Some(Some(buf)) = overflow {
            T::pool().put_global(class, buf);
        }
        // `overflow == None` means TLS teardown raced us; the closure (and
        // the buffer it owns) is simply dropped, losing one buffer.
    }
}

/// Borrow a scratch buffer of `len` elements with **unspecified stale
/// contents** (initialised, but left over from a previous user). The caller
/// must fully overwrite every element it reads.
#[must_use = "the borrowed buffer is handed back to the pool the moment it is dropped"]
pub fn take_dirty<T: PoolScalar>(len: usize) -> ArenaBuf<T> {
    if len == 0 {
        return ArenaBuf {
            buf: RawBuf::default(),
            len: 0,
            class: None,
        };
    }
    let pool = T::pool();
    let Some(class) = class_of(len) else {
        // Above the largest class: one-off allocation, counted as a miss.
        pool.misses.fetch_add(1, Ordering::Relaxed);
        return ArenaBuf {
            buf: RawBuf::alloc(len, T::POOL_ZERO),
            len,
            class: None,
        };
    };
    let cached = T::with_cache(|c| c.shelves[class].pop()).flatten();
    let buf = match cached.or_else(|| pool.get_global(class)) {
        Some(buf) => {
            pool.hits.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            pool.misses.fetch_add(1, Ordering::Relaxed);
            RawBuf::alloc(class_elems(class), T::POOL_ZERO)
        }
    };
    debug_assert_eq!(buf.len(), class_elems(class));
    ArenaBuf {
        buf,
        len,
        class: Some(class),
    }
}

/// Borrow a scratch buffer of `len` elements, zero-filled.
#[must_use = "the borrowed buffer is handed back to the pool the moment it is dropped"]
pub fn take_zeroed<T: PoolScalar>(len: usize) -> ArenaBuf<T> {
    let mut buf = take_dirty::<T>(len);
    for x in buf.iter_mut() {
        *x = T::POOL_ZERO;
    }
    buf
}

/// Process-wide arena counters for one element type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served from a pooled buffer (no allocation).
    pub hits: u64,
    /// Requests that had to allocate (cold pool or oversize request).
    pub misses: u64,
}

/// Snapshot the hit/miss counters for element type `T`.
pub fn stats<T: PoolScalar>() -> ArenaStats {
    let pool = T::pool();
    ArenaStats {
        hits: pool.hits.load(Ordering::Relaxed),
        misses: pool.misses.load(Ordering::Relaxed),
    }
}

/// Reset the hit/miss counters for element type `T` to zero.
pub fn reset_stats<T: PoolScalar>() {
    let pool = T::pool();
    pool.hits.store(0, Ordering::Relaxed);
    pool.misses.store(0, Ordering::Relaxed);
}

/// Pre-populate the global pool with up to `count` buffers of the size
/// class covering `len` elements, without touching the hit/miss counters.
/// Returns how many buffers were actually donated — capped by the class's
/// retention limit, and zero for `len == 0` or requests above the largest
/// pooled class. Benchmarks call this before a measured phase so the
/// steady-state loop runs allocation-free (zero misses).
pub fn prewarm<T: PoolScalar>(len: usize, count: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let Some(class) = class_of(len) else {
        return 0;
    };
    let pool = T::pool();
    let mut shelf = pool.lock_shelf(class);
    let room = global_cap(class).saturating_sub(shelf.len()).min(count);
    for _ in 0..room {
        shelf.push(RawBuf::alloc(class_elems(class), T::POOL_ZERO));
    }
    room
}

/// Overwrite every pooled buffer (global pool and this thread's cache) with
/// `value`. Test hook: poison with NaN or a sentinel, re-run a kernel, and
/// any read of stale scratch becomes visible in the output.
pub fn poison_pools<T: PoolScalar>(value: T) {
    let pool = T::pool();
    for class in 0..NUM_CLASSES {
        for buf in pool.lock_shelf(class).iter_mut() {
            for x in buf.as_mut_slice() {
                *x = value;
            }
        }
    }
    T::with_cache(|c| {
        for shelf in c.shelves.iter_mut() {
            for buf in shelf.iter_mut() {
                for x in buf.as_mut_slice() {
                    *x = value;
                }
            }
        }
    });
}

/// Donate every buffer in this thread's local cache back to the global
/// pool (used by tests; worker threads do this automatically on exit).
pub fn flush_thread_cache<T: PoolScalar>() {
    let drained = T::with_cache(|c| {
        let mut out = Vec::new();
        for (class, shelf) in c.shelves.iter_mut().enumerate() {
            for buf in shelf.drain(..) {
                out.push((class, buf));
            }
        }
        out
    });
    if let Some(drained) = drained {
        for (class, buf) in drained {
            T::pool().put_global(class, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(32), Some(0));
        assert_eq!(class_of(33), Some(1));
        assert_eq!(class_of(64), Some(1));
        assert_eq!(class_of(1 << 22), Some(NUM_CLASSES - 1));
        assert_eq!(class_of((1 << 22) + 1), None);
        for class in 0..NUM_CLASSES {
            assert_eq!(class_of(class_elems(class)), Some(class));
        }
    }

    #[test]
    fn buffers_are_reused_and_counted() {
        flush_thread_cache::<f64>();
        reset_stats::<f64>();
        let before = stats::<f64>();
        assert_eq!(before, ArenaStats::default());
        {
            let mut a = take_dirty::<f64>(100);
            a[0] = 7.0;
            assert_eq!(a.len(), 100);
        }
        // The buffer went to the thread cache; the next same-class request
        // must be a hit.
        let b = take_dirty::<f64>(100);
        let s = stats::<f64>();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
        drop(b);
    }

    #[test]
    fn dirty_buffers_keep_stale_contents_and_zeroed_buffers_do_not() {
        {
            let mut a = take_dirty::<f64>(48);
            for x in a.iter_mut() {
                *x = f64::NAN;
            }
        }
        poison_pools::<f64>(f64::NAN);
        {
            let a = take_dirty::<f64>(48);
            // Documented behaviour: dirty means stale contents survive.
            assert!(a.iter().all(|x| x.is_nan()));
        }
        poison_pools::<f64>(f64::NAN);
        let z = take_zeroed::<f64>(48);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_len_and_oversize_requests_work() {
        let e = take_dirty::<f32>(0);
        assert!(e.is_empty());
        let big_len = (1usize << 22) + 1;
        let big = take_dirty::<f32>(big_len);
        assert_eq!(big.len(), big_len);
    }

    #[test]
    fn pool_buffers_stay_aligned_across_reuse() {
        // Every buffer the arena hands out — pooled classes, oversize
        // one-offs, and buffers recycled through the local cache and the
        // global pool — must stay POOL_ALIGN-aligned so packed micro-panels
        // can use aligned SIMD loads.
        fn check<T: PoolScalar>(name: &str) {
            for round in 0..3 {
                for len in [1usize, 31, 100, 4097, (1 << 22) + 1] {
                    let b = take_dirty::<T>(len);
                    assert_eq!(
                        b.as_ptr() as usize % POOL_ALIGN,
                        0,
                        "{name} len {len} round {round} misaligned"
                    );
                }
                // Force the local-cache -> global-pool -> reuse path too.
                flush_thread_cache::<T>();
            }
        }
        check::<f32>("f32");
        check::<f64>("f64");
    }

    #[test]
    fn prewarm_fills_the_global_pool_without_counting_misses() {
        // A size class no other test in this module touches, so the shelf
        // occupancy is predictable.
        let len = 150_000usize;
        let class = class_of(len).expect("len fits a pooled class");
        f32::pool().lock_shelf(class).clear();
        let s0 = stats::<f32>();
        assert_eq!(prewarm::<f32>(len, 3), 3);
        // A second prewarm tops the shelf up to the retention cap, no more.
        assert_eq!(prewarm::<f32>(len, usize::MAX), global_cap(class) - 3);
        assert_eq!(prewarm::<f32>(len, 5), 0);
        // Degenerate requests donate nothing.
        assert_eq!(prewarm::<f32>(0, 8), 0);
        assert_eq!(prewarm::<f32>((1 << 22) + 1, 8), 0);
        // Prewarming never touched the hit/miss counters, and the warmed
        // shelf serves the next cold request as a hit.
        let s1 = stats::<f32>();
        assert_eq!(s0, s1);
        drop(take_dirty::<f32>(len));
        assert!(stats::<f32>().hits > s1.hits);
        // Release the cap-full shelf so the test process does not sit on it.
        f32::pool().lock_shelf(class).clear();
    }

    #[test]
    fn flush_moves_local_buffers_to_global_pool() {
        // Prime the local cache with one buffer, flush, then verify the
        // global pool serves the next request (still a hit).
        drop(take_dirty::<f32>(1000));
        flush_thread_cache::<f32>();
        reset_stats::<f32>();
        let b = take_dirty::<f32>(1000);
        assert_eq!(stats::<f32>().hits, 1);
        drop(b);
    }
}
