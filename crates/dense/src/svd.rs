//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The Robust PCA application needs the SVD of the small `n x n` matrix `R`
//! ("we find the SVD of R, which is cheap because R is an n x n matrix and
//! done on the CPU" — Section VI-B). One-sided Jacobi is simple, numerically
//! excellent (high relative accuracy), and plenty fast for n <= a few
//! hundred, which is all this pipeline requires.

use crate::blas1::{dot, nrm2};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Result of [`svd`]: `A = U * diag(sigma) * V^T`.
#[derive(Clone, Debug)]
pub struct Svd<T: Scalar> {
    /// Left singular vectors, `m x n`, orthonormal columns (columns matching
    /// zero singular values are zero).
    pub u: Matrix<T>,
    /// Singular values, descending.
    pub sigma: Vec<T>,
    /// Right singular vectors, `n x n` orthogonal.
    pub v: Matrix<T>,
}

/// Maximum number of Jacobi sweeps before giving up (converges in ~5-10 for
/// the matrices this workspace produces).
pub const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD of an `m x n` matrix with `m >= n`.
///
/// Returns singular values sorted in descending order. Cost is
/// `O(m n^2)` per sweep; intended for small-to-moderate `n`.
pub fn svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let (m, n) = a.shape();
    assert!(m >= n, "svd requires m >= n (got {m}x{n}); transpose first");
    let mut w = a.clone(); // working copy whose columns are rotated
    let mut v = Matrix::<T>::eye(n, n);
    let tol = T::epsilon() * T::from_f64(Math::sqrt_usize(m));

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                let (alpha, beta, gamma) = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    (dot(cp, cp), dot(cq, cq), dot(cp, cq))
                };
                if alpha == T::ZERO || beta == T::ZERO {
                    continue;
                }
                // Converged pair: |<cp,cq>| small relative to the norms.
                if gamma.abs() <= tol * (alpha * beta).sqrt() {
                    continue;
                }
                rotated = true;
                // Classic Jacobi rotation annihilating the (p,q) entry of
                // W^T W.
                let zeta = (beta - alpha) / (T::from_f64(2.0) * gamma);
                let t = zeta.sign() / (zeta.abs() + (T::ONE + zeta * zeta).sqrt());
                let cs = T::ONE / (T::ONE + t * t).sqrt();
                let sn = cs * t;
                rotate_cols(&mut w, p, q, cs, sn);
                rotate_cols(&mut v, p, q, cs, sn);
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and left vectors.
    let mut sigma: Vec<T> = (0..n).map(|j| nrm2(w.col(j))).collect();
    let mut u = Matrix::<T>::zeros(m, n);
    for j in 0..n {
        let s = sigma[j];
        if s > T::ZERO {
            let inv = T::ONE / s;
            let (src, dst) = (w.col(j), u.col_mut(j));
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = x * inv;
            }
        }
    }

    // Sort descending (stable selection keeps ties deterministic).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].to_f64().total_cmp(&sigma[i].to_f64()));
    let need_permute = order.iter().enumerate().any(|(i, &o)| i != o);
    if need_permute {
        let u_old = u.clone();
        let v_old = v.clone();
        let s_old = sigma.clone();
        for (dst, &src) in order.iter().enumerate() {
            sigma[dst] = s_old[src];
            u.col_mut(dst).copy_from_slice(u_old.col(src));
            v.col_mut(dst).copy_from_slice(v_old.col(src));
        }
    }

    Svd { u, sigma, v }
}

/// Singular values only (descending); same cost as [`svd`] minus the U/V
/// bookkeeping.
pub fn singular_values<T: Scalar>(a: &Matrix<T>) -> Vec<T> {
    svd(a).sigma
}

/// Rotate columns `p` and `q`: `(cp, cq) <- (cs*cp - sn*cq, sn*cp + cs*cq)`.
fn rotate_cols<T: Scalar>(m: &mut Matrix<T>, p: usize, q: usize, cs: T, sn: T) {
    let rows = m.rows();
    for i in 0..rows {
        let xp = m[(i, p)];
        let xq = m[(i, q)];
        m[(i, p)] = cs.mul_add(xp, -(sn * xq));
        m[(i, q)] = sn.mul_add(xp, cs * xq);
    }
}

/// Tiny helper namespace avoiding an `f64::sqrt` on usize at the call site.
struct Math;
impl Math {
    fn sqrt_usize(m: usize) -> f64 {
        (m as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};

    fn reconstruct(s: &Svd<f64>, m: usize, n: usize) -> Matrix<f64> {
        // U * diag(sigma) * V^T
        let mut us = s.u.clone();
        for j in 0..n {
            let sj = s.sigma[j];
            for v in us.col_mut(j) {
                *v *= sj;
            }
        }
        let mut out = Matrix::<f64>::zeros(m, n);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            us.as_ref(),
            s.v.as_ref(),
            0.0,
            out.as_mut(),
        );
        out
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_fn(3, 3, |i, j| if i == j { (3 - i) as f64 } else { 0.0 });
        let s = svd(&a);
        assert!((s.sigma[0] - 3.0).abs() < 1e-12);
        assert!((s.sigma[1] - 2.0).abs() < 1e-12);
        assert!((s.sigma[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_reconstructs_random() {
        let a = Matrix::from_fn(10, 6, |i, j| {
            (((i * 13 + j * 7 + 1) % 17) as f64 - 8.0) / 5.0
        });
        let s = svd(&a);
        let r = reconstruct(&s, 10, 6);
        for i in 0..10 {
            for j in 0..6 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
        // Descending order.
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_orthogonality() {
        let a = Matrix::from_fn(8, 8, |i, j| {
            ((i + 2 * j) % 5) as f64 - 2.0 + if i == j { 4.0 } else { 0.0 }
        });
        let s = svd(&a);
        let mut utu = Matrix::<f64>::zeros(8, 8);
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            s.u.as_ref(),
            s.u.as_ref(),
            0.0,
            utu.as_mut(),
        );
        let mut vtv = Matrix::<f64>::zeros(8, 8);
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            s.v.as_ref(),
            s.v.as_ref(),
            0.0,
            vtv.as_mut(),
        );
        for i in 0..8 {
            for j in 0..8 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((utu[(i, j)] - want).abs() < 1e-10, "UtU ({i},{j})");
                assert!((vtv[(i, j)] - want).abs() < 1e-10, "VtV ({i},{j})");
            }
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 matrix: sigma = [||x|| * ||y||, 0, 0].
        let x = [1.0f64, 2.0, 3.0, 4.0];
        let y = [2.0f64, -1.0, 0.5];
        let a = Matrix::from_fn(4, 3, |i, j| x[i] * y[j]);
        let s = svd(&a);
        let nx: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ny: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((s.sigma[0] - nx * ny).abs() < 1e-10);
        assert!(s.sigma[1].abs() < 1e-10);
        assert!(s.sigma[2].abs() < 1e-10);
        let r = reconstruct(&s, 4, 3);
        for i in 0..4 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::<f64>::zeros(5, 3);
        let s = svd(&a);
        for &x in &s.sigma {
            assert_eq!(x, 0.0);
        }
    }

    #[test]
    fn svd_matches_eigenvalues_of_gram_matrix() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let s = svd(&a);
        // trace(A^T A) = sum sigma_i^2 (Frobenius identity).
        let mut tr = 0.0;
        for j in 0..3 {
            tr += dot(a.col(j), a.col(j));
        }
        let ss: f64 = s.sigma.iter().map(|v| v * v).sum();
        assert!((tr - ss).abs() < 1e-9 * tr.max(1.0));
    }
}
