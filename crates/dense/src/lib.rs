//! # dense — dense linear-algebra substrate
//!
//! Everything the CAQR reproduction needs from BLAS/LAPACK, implemented from
//! scratch in safe-by-default Rust (one small documented unsafe core in
//! [`ptr`] for data-parallel tile kernels):
//!
//! * column-major [`Matrix`]/[`MatRef`]/[`MatMut`] storage and views,
//! * BLAS level 1/2/3 ([`blas1`], [`blas2`], [`blas3`]),
//! * Householder reflectors and unblocked QR ([`householder`]),
//! * blocked Householder QR with the compact WY representation
//!   ([`blocked`]) — the algorithm MAGMA/CULA/MKL use, i.e. the baselines,
//! * one-sided Jacobi SVD ([`svd`]) for the Robust PCA inner step,
//! * Cholesky, Gram-Schmidt and Givens alternatives ([`cholesky`],
//!   [`gram_schmidt`], [`givens`]) used as stability references,
//! * norms and QR quality metrics ([`norms`]),
//! * deterministic matrix generators for tests and benchmarks
//!   ([`generate`]).

#![warn(missing_docs)]
// Indexed loops over multiple matrices are clearer than iterator zips in
// numerical kernels; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]
// Lock in the panic-path sweep: library code must surface `DenseError`
// instead of unwrapping. Tests may unwrap freely (the cfg_attr gate), and
// `expect` stays allowed for provably-infallible invariants whose message
// says why. CI elevates this to deny via `-D warnings`.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod arena;
pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod blocked;
pub mod cholesky;
pub mod error;
pub mod generate;
pub mod givens;
pub mod gk_svd;
pub mod gram_schmidt;
pub mod householder;
pub mod matrix;
pub mod norms;
pub mod ptr;
pub mod scalar;
pub mod simd;
pub mod svd;

pub use arena::{ArenaBuf, ArenaStats, PoolScalar};
pub use error::DenseError;
pub use matrix::{MatMut, MatRef, Matrix};
pub use ptr::MatPtr;
pub use scalar::Scalar;
pub use simd::{Backend, SimdScalar};

/// Floating-point operation count of the LAPACK `GEQRF` QR factorization of
/// an `m x n` matrix (`m >= n`): `2 m n^2 - 2/3 n^3` plus lower-order terms.
/// This is the convention the paper's GFLOPS numbers use, so every
/// implementation is charged the same useful work regardless of how many
/// extra flops its algorithm performs internally.
pub fn geqrf_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    2.0 * m * n * n - 2.0 / 3.0 * n * n * n + m * n + n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_tall_skinny_dominated_by_2mn2() {
        let f = geqrf_flops(1_000_000, 192);
        let approx = 2.0 * 1.0e6 * 192.0 * 192.0;
        assert!((f / approx - 1.0).abs() < 0.01);
    }

    #[test]
    fn flop_count_square() {
        // For m == n the count is ~ (4/3) n^3.
        let f = geqrf_flops(1000, 1000);
        let approx = 4.0 / 3.0 * 1.0e9;
        assert!((f / approx - 1.0).abs() < 0.01);
    }
}
