//! Golub-Kahan SVD: Householder bidiagonalization (`gebrd`) followed by
//! implicit-shift QR iteration on the bidiagonal (`bdsqr`) — the classical
//! dense SVD that LAPACK's `gesvd` (and therefore the paper's "MKL SVD"
//! baseline) implements. It complements the one-sided Jacobi SVD in
//! [`crate::svd`]: the two are completely independent algorithms, which the
//! test suites exploit to cross-validate each other.

use crate::blas1::nrm2;
use crate::householder::larfg;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::svd::Svd;

/// Maximum QR iterations per singular value before giving up.
const MAX_ITER_PER_VALUE: usize = 40;

/// Householder bidiagonalization of a square `n x n` matrix: `A = U B V^T`
/// with `B` upper bidiagonal. Returns `(u, d, e, v)` where `d` is the
/// diagonal, `e` the superdiagonal, and `u`/`v` are explicit orthogonal
/// accumulations.
pub fn bidiagonalize<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Vec<T>, Vec<T>, Matrix<T>) {
    let n = a.rows();
    assert_eq!(
        n,
        a.cols(),
        "bidiagonalize expects a square matrix (QR-reduce first)"
    );
    let mut b = a.clone();
    let mut u = Matrix::<T>::eye(n, n);
    let mut v = Matrix::<T>::eye(n, n);

    for k in 0..n {
        // Left reflector: zero column k below the diagonal.
        if k + 1 < n {
            let mut col: Vec<T> = (k..n).map(|i| b[(i, k)]).collect();
            let tau = larfg(&mut col);
            if tau != T::ZERO {
                // v_house = [1, col[1..]]; apply to B[k.., k..] and U[:, k..].
                let tail = &col[1..];
                apply_left_reflector(&mut b, k, tail, tau);
                apply_right_to_columns(&mut u, k, tail, tau);
            }
            b[(k, k)] = col[0];
            for i in k + 1..n {
                b[(i, k)] = T::ZERO;
            }
        }
        // Right reflector: zero row k beyond the superdiagonal.
        if k + 2 < n {
            let mut row: Vec<T> = (k + 1..n).map(|j| b[(k, j)]).collect();
            let tau = larfg(&mut row);
            if tau != T::ZERO {
                let tail = &row[1..];
                apply_right_reflector(&mut b, k, tail, tau);
                apply_right_to_columns(&mut v, k + 1, tail, tau);
            }
            b[(k, k + 1)] = row[0];
            for j in k + 2..n {
                b[(k, j)] = T::ZERO;
            }
        }
    }

    let d: Vec<T> = (0..n).map(|i| b[(i, i)]).collect();
    let e: Vec<T> = (0..n.saturating_sub(1)).map(|i| b[(i, i + 1)]).collect();
    (u, d, e, v)
}

/// Apply `H = I - tau w w^T` (with `w = [1, tail]` starting at row `k`) from
/// the left to `B[k.., k..]`.
fn apply_left_reflector<T: Scalar>(b: &mut Matrix<T>, k: usize, tail: &[T], tau: T) {
    let n = b.cols();
    for j in k..n {
        let mut dot = b[(k, j)];
        for (off, &w) in tail.iter().enumerate() {
            dot = b[(k + 1 + off, j)].mul_add(w, dot);
        }
        let td = tau * dot;
        b[(k, j)] -= td;
        for (off, &w) in tail.iter().enumerate() {
            let idx = (k + 1 + off, j);
            b[idx] = (-td).mul_add(w, b[idx]);
        }
    }
}

/// Apply `H` (with `w = [1, tail]` starting at column `k+1`) from the right
/// to `B[k.., k+1..]`.
fn apply_right_reflector<T: Scalar>(b: &mut Matrix<T>, k: usize, tail: &[T], tau: T) {
    let n = b.rows();
    for i in k..n {
        let mut dot = b[(i, k + 1)];
        for (off, &w) in tail.iter().enumerate() {
            dot = b[(i, k + 2 + off)].mul_add(w, dot);
        }
        let td = tau * dot;
        b[(i, k + 1)] -= td;
        for (off, &w) in tail.iter().enumerate() {
            let idx = (i, k + 2 + off);
            b[idx] = (-td).mul_add(w, b[idx]);
        }
    }
}

/// Accumulate a reflector into an orthogonal factor: `M = M * H` where `H`
/// acts on columns `k..` with `w = [1, tail]`.
fn apply_right_to_columns<T: Scalar>(m: &mut Matrix<T>, k: usize, tail: &[T], tau: T) {
    let rows = m.rows();
    for i in 0..rows {
        let mut dot = m[(i, k)];
        for (off, &w) in tail.iter().enumerate() {
            dot = m[(i, k + 1 + off)].mul_add(w, dot);
        }
        let td = tau * dot;
        m[(i, k)] -= td;
        for (off, &w) in tail.iter().enumerate() {
            let idx = (i, k + 1 + off);
            m[idx] = (-td).mul_add(w, m[idx]);
        }
    }
}

#[inline]
fn givens_cs<T: Scalar>(y: T, z: T) -> (T, T) {
    if z == T::ZERO {
        return (T::ONE, T::ZERO);
    }
    let r = y.hypot(z);
    (y / r, z / r)
}

#[inline]
fn rotate_cols<T: Scalar>(m: &mut Matrix<T>, j1: usize, j2: usize, c: T, s: T) {
    for i in 0..m.rows() {
        let a = m[(i, j1)];
        let b = m[(i, j2)];
        m[(i, j1)] = c.mul_add(a, s * b);
        m[(i, j2)] = c.mul_add(b, -(s * a));
    }
}

/// One implicit-shift Golub-Kahan QR step on the active block `[p, q)` of
/// the bidiagonal `(d, e)`, accumulating the rotations into `u` and `v`.
fn gk_step<T: Scalar>(
    d: &mut [T],
    e: &mut [T],
    p: usize,
    q: usize,
    u: &mut Matrix<T>,
    v: &mut Matrix<T>,
) {
    // Wilkinson shift from the trailing 2x2 of B^T B.
    let t11 = d[q - 2] * d[q - 2]
        + if q >= p + 3 {
            e[q - 3] * e[q - 3]
        } else {
            T::ZERO
        };
    let t12 = d[q - 2] * e[q - 2];
    let t22 = d[q - 1] * d[q - 1] + e[q - 2] * e[q - 2];
    let half = T::from_f64(0.5);
    let delta = (t11 - t22) * half;
    let mu = if t12 == T::ZERO {
        t22
    } else {
        t22 - t12 * t12 / (delta + delta.sign() * delta.hypot(t12))
    };

    let mut y = d[p] * d[p] - mu;
    let mut z = d[p] * e[p];
    for k in p..q - 1 {
        // Right rotation on columns (k, k+1): kills `z` against `y`
        // (for k > p that pair is (e[k-1], bulge)).
        let (c, s) = givens_cs(y, z);
        if k > p {
            e[k - 1] = c.mul_add(y, s * z);
        }
        let (dk, ek, dk1) = (d[k], e[k], d[k + 1]);
        d[k] = c.mul_add(dk, s * ek);
        e[k] = c.mul_add(ek, -(s * dk));
        let bulge = s * dk1; // appears at B[k+1, k]
        d[k + 1] = c * dk1;
        rotate_cols(v, k, k + 1, c, s);

        // Left rotation on rows (k, k+1): kills the bulge against d[k].
        let (c2, s2) = givens_cs(d[k], bulge);
        d[k] = d[k].hypot(bulge);
        let (ek2, dk12) = (e[k], d[k + 1]);
        e[k] = c2.mul_add(ek2, s2 * dk12);
        d[k + 1] = c2.mul_add(dk12, -(s2 * ek2));
        rotate_cols(u, k, k + 1, c2, s2);
        if k + 2 < q {
            let ek1 = e[k + 1];
            let bulge2 = s2 * ek1; // appears at B[k, k+2]
            e[k + 1] = c2 * ek1;
            y = e[k];
            z = bulge2;
        }
    }
}

/// When a diagonal entry of the active block vanishes, the superdiagonal
/// next to it can be rotated away; this splits the block. `i` is the index
/// of the (numerically) zero diagonal.
fn deflate_zero_diagonal<T: Scalar>(
    d: &mut [T],
    e: &mut [T],
    i: usize,
    q: usize,
    u: &mut Matrix<T>,
) {
    // Chase e[i] rightwards using left rotations against rows i, j.
    d[i] = T::ZERO;
    let mut f = e[i];
    e[i] = T::ZERO;
    for j in i + 1..q {
        // Rotate rows (j, i) to kill the fill `f` at B[i, j] against d[j].
        let (c, s) = givens_cs(d[j], f);
        d[j] = d[j].hypot(f);
        rotate_cols(u, j, i, c, s);
        if j + 1 < q {
            f = -(s * e[j]);
            e[j] = c * e[j];
        }
    }
}

/// Full Golub-Kahan SVD of an `m x n` matrix with `m >= n`: QR reduction to
/// `R`, bidiagonalization, implicit-shift QR iteration, then back-
/// composition `U = Q * U_b`. Singular values are returned descending.
pub fn svd_golub_kahan<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    let (m, n) = a.shape();
    assert!(m >= n, "svd_golub_kahan requires m >= n");
    if n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            sigma: Vec::new(),
            v: Matrix::zeros(0, 0),
        };
    }
    if n == 1 {
        let s = nrm2(a.col(0));
        let mut u = Matrix::<T>::zeros(m, 1);
        if s > T::ZERO {
            for (ui, &ai) in u.col_mut(0).iter_mut().zip(a.col(0)) {
                *ui = ai / s;
            }
        }
        return Svd {
            u,
            sigma: vec![s],
            v: Matrix::eye(1, 1),
        };
    }

    // Reduce to the square case via QR.
    let (q, r) = if m > n {
        let mut f = a.clone();
        let tau = crate::blocked::geqrf(&mut f, crate::blocked::DEFAULT_NB);
        let q = crate::blocked::orgqr(&f, &tau, n, crate::blocked::DEFAULT_NB);
        (Some(q), f.upper_triangular())
    } else {
        (None, a.clone())
    };

    let (mut u, mut d, mut e, mut v) = bidiagonalize(&r);

    // Implicit-shift QR iteration with deflation.
    let eps = T::epsilon();
    let mut iters_left = MAX_ITER_PER_VALUE * n;
    let mut q_end = n;
    while q_end > 0 {
        // Deflate converged superdiagonals.
        for i in 0..q_end.saturating_sub(1) {
            if e[i].abs() <= eps * (d[i].abs() + d[i + 1].abs()) {
                e[i] = T::ZERO;
            }
        }
        // Shrink the active block from the right.
        if q_end == 1 || e[q_end - 2] == T::ZERO {
            q_end -= 1;
            continue;
        }
        // Find the start of the active block.
        let mut p = q_end - 1;
        while p > 0 && e[p - 1] != T::ZERO {
            p -= 1;
        }
        // Zero diagonal inside the block: deflate it.
        let mut deflated = false;
        for i in p..q_end - 1 {
            if d[i].abs() <= eps * (d.iter().fold(T::ZERO, |acc, x| acc.maximum(x.abs()))) {
                deflate_zero_diagonal(&mut d, &mut e, i, q_end, &mut u);
                deflated = true;
                break;
            }
        }
        if deflated {
            continue;
        }
        assert!(iters_left > 0, "bdsqr failed to converge");
        iters_left -= 1;
        gk_step(&mut d, &mut e, p, q_end, &mut u, &mut v);
    }

    // Make singular values non-negative (flip the U column) and sort.
    let nn = n;
    let mut sigma: Vec<T> = d;
    for i in 0..nn {
        if sigma[i] < T::ZERO {
            sigma[i] = -sigma[i];
            for x in u.col_mut(i) {
                *x = -*x;
            }
        }
    }
    let mut order: Vec<usize> = (0..nn).collect();
    order.sort_by(|&i, &j| sigma[j].to_f64().total_cmp(&sigma[i].to_f64()));
    let (u_old, v_old, s_old) = (u.clone(), v.clone(), sigma.clone());
    for (dst, &src) in order.iter().enumerate() {
        sigma[dst] = s_old[src];
        u.col_mut(dst).copy_from_slice(u_old.col(src));
        v.col_mut(dst).copy_from_slice(v_old.col(src));
    }

    // Compose U with the initial QR's Q when the input was tall.
    let u_final = match q {
        Some(qm) => {
            let mut out = Matrix::<T>::zeros(m, nn);
            crate::blas3::gemm(
                crate::blas3::Trans::No,
                crate::blas3::Trans::No,
                T::ONE,
                qm.as_ref(),
                u.as_ref(),
                T::ZERO,
                out.as_mut(),
            );
            out
        }
        None => u,
    };

    Svd {
        u: u_final,
        sigma,
        v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::orthogonality_error;

    fn reconstruct(s: &Svd<f64>, m: usize, n: usize) -> Matrix<f64> {
        let mut us = s.u.clone();
        for j in 0..n {
            let sj = s.sigma[j];
            for v in us.col_mut(j) {
                *v *= sj;
            }
        }
        let mut out = Matrix::<f64>::zeros(m, n);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            us.as_ref(),
            s.v.as_ref(),
            0.0,
            out.as_mut(),
        );
        out
    }

    #[test]
    fn bidiagonalization_preserves_the_matrix() {
        let a = crate::generate::uniform::<f64>(8, 8, 1);
        let (u, d, e, v) = bidiagonalize(&a);
        assert!(orthogonality_error(&u) < 1e-12);
        assert!(orthogonality_error(&v) < 1e-12);
        // Rebuild B and check A == U B V^T.
        let n = 8;
        let mut b = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = d[i];
            if i + 1 < n {
                b[(i, i + 1)] = e[i];
            }
        }
        let mut ub = Matrix::<f64>::zeros(n, n);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            u.as_ref(),
            b.as_ref(),
            0.0,
            ub.as_mut(),
        );
        let mut ubvt = Matrix::<f64>::zeros(n, n);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            ub.as_ref(),
            v.as_ref(),
            0.0,
            ubvt.as_mut(),
        );
        for i in 0..n {
            for j in 0..n {
                assert!((ubvt[(i, j)] - a[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn gk_svd_matches_jacobi_svd() {
        for (m, n, seed) in [(6usize, 6usize, 2u64), (20, 8, 3), (40, 12, 4), (9, 9, 5)] {
            let a = crate::generate::uniform::<f64>(m, n, seed);
            let gk = svd_golub_kahan(&a);
            let jac = crate::svd::svd(&a);
            for (x, y) in gk.sigma.iter().zip(&jac.sigma) {
                assert!(
                    (x - y).abs() < 1e-9 * (1.0 + y),
                    "({m},{n}) sigma {x} vs {y}"
                );
            }
            let r = reconstruct(&gk, m, n);
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (r[(i, j)] - a[(i, j)]).abs() < 1e-9,
                        "({m},{n}) at ({i},{j})"
                    );
                }
            }
            assert!(orthogonality_error(&gk.u) < 1e-10);
            assert!(orthogonality_error(&gk.v) < 1e-10);
        }
    }

    #[test]
    fn gk_svd_handles_graded_spectra() {
        let a = crate::generate::graded::<f64>(30, 8, 0.1, 6);
        let s = svd_golub_kahan(&a);
        for (k, sv) in s.sigma.iter().enumerate() {
            let want = 0.1f64.powi(k as i32);
            assert!((sv / want - 1.0).abs() < 1e-6, "sigma_{k} = {sv}");
        }
    }

    #[test]
    fn gk_svd_rank_deficient() {
        let a = crate::generate::low_rank::<f64>(24, 10, 3, 0.0, 7);
        let s = svd_golub_kahan(&a);
        assert!(s.sigma[2] > 1e-10);
        assert!(s.sigma[3] < 1e-9 * s.sigma[0]);
        let r = reconstruct(&s, 24, 10);
        for i in 0..24 {
            for j in 0..10 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gk_svd_tiny_shapes() {
        // n = 1 and n = 2 paths.
        let a1 = crate::generate::uniform::<f64>(5, 1, 8);
        let s1 = svd_golub_kahan(&a1);
        assert!((s1.sigma[0] - nrm2(a1.col(0))).abs() < 1e-12);
        let a2 = crate::generate::uniform::<f64>(4, 2, 9);
        let s2 = svd_golub_kahan(&a2);
        let j2 = crate::svd::svd(&a2);
        for (x, y) in s2.sigma.iter().zip(&j2.sigma) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn gk_svd_diagonal_input() {
        let a = Matrix::from_fn(5, 5, |i, j| if i == j { (5 - i) as f64 } else { 0.0 });
        let s = svd_golub_kahan(&a);
        for (k, sv) in s.sigma.iter().enumerate() {
            assert!((sv - (5 - k) as f64).abs() < 1e-12);
        }
    }
}
