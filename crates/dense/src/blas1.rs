//! Level-1 BLAS: vector-vector operations.
//!
//! These are the primitives the Householder kernels are built from. They are
//! deliberately simple scalar loops — rustc auto-vectorizes them — with
//! `mul_add` used where an FMA helps accuracy (dot products, norms).

use crate::scalar::Scalar;

/// Dot product `x . y`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// Euclidean norm, overflow-safe via scaling (LAPACK `snrm2` style).
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for &v in x {
        if v != T::ZERO {
            let a = v.abs();
            if scale < a {
                let r = scale / a;
                ssq = T::ONE + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (&a, b) in x.iter().zip(y.iter_mut()) {
        *b = alpha.mul_add(a, *b);
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// Index of the element with the largest absolute value (0 for empty input).
pub fn iamax<T: Scalar>(x: &[T]) -> usize {
    let mut best = 0;
    let mut bv = T::ZERO;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

/// Sum of absolute values.
pub fn asum<T: Scalar>(x: &[T]) -> T {
    let mut acc = T::ZERO;
    for &v in x {
        acc += v.abs();
    }
    acc
}

/// Swap two vectors element-wise.
pub fn swap<T: Scalar>(x: &mut [T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// Plane (Givens) rotation applied to a pair of vectors:
/// `(x, y) <- (c*x + s*y, -s*x + c*y)`.
pub fn rot<T: Scalar>(x: &mut [T], y: &mut [T], c: T, s: T) {
    debug_assert_eq!(x.len(), y.len());
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        let xa = *a;
        let yb = *b;
        *a = c.mul_add(xa, s * yb);
        *b = c.mul_add(yb, -(s * xa));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn nrm2_matches_sqrt_of_dot() {
        let x = [3.0f64, 4.0];
        assert!((nrm2(&x) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn nrm2_no_overflow() {
        let x = [1.0e20f32, 1.0e20];
        let n = nrm2(&x);
        assert!(n.is_finite());
        assert!((n / (2.0f32.sqrt() * 1.0e20) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nrm2_no_underflow() {
        let x = [1.0e-30f32, 1.0e-30];
        let n = nrm2(&x);
        assert!(n > 0.0);
    }

    #[test]
    fn axpy_scal_compose() {
        let mut y = [1.0f64, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [1.5, 2.5, 3.5]);
    }

    #[test]
    fn iamax_and_asum() {
        assert_eq!(iamax(&[1.0f32, -5.0, 3.0]), 1);
        assert_eq!(asum(&[1.0f32, -5.0, 3.0]), 9.0);
        assert_eq!(iamax::<f32>(&[]), 0);
    }

    #[test]
    fn rot_is_orthogonal() {
        let th = 0.3f64;
        let (c, s) = (th.cos(), th.sin());
        let mut x = [1.0, 0.0];
        let mut y = [0.0, 1.0];
        rot(&mut x, &mut y, c, s);
        // Norms preserved.
        assert!((nrm2(&[x[0], y[0]]) - 1.0).abs() < 1e-15);
        assert!((nrm2(&[x[1], y[1]]) - 1.0).abs() < 1e-15);
    }
}
