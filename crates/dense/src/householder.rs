//! Elementary Householder reflectors and unblocked QR (LAPACK `larfg`,
//! `larf`, `geqr2`, `org2r` analogues).
//!
//! These are the BLAS2 building blocks that the paper's `factor` and
//! `factor_tree` kernels run inside fast memory, and that the blocked
//! Householder baselines run per panel.

use crate::blas1::nrm2;
use crate::error::DenseError;
use crate::matrix::{MatMut, Matrix};
use crate::scalar::Scalar;

/// Generate an elementary reflector `H = I - tau * v * v^T` such that
/// `H * x = (beta, 0, ..., 0)^T` with `|beta| = ||x||`.
///
/// On input `x` is the full vector (length >= 1). On output `x[0] = beta` and
/// `x[1..]` holds the reflector tail `v[1..]` (`v[0] == 1` is implicit).
/// Returns `tau` (zero when `x[1..]` is already zero, making `H = I`).
///
/// Columns so tiny that `beta` would be subnormal are rescaled by
/// `1/safe_min` before the reflector is formed and `beta` unscaled at the
/// end, exactly as LAPACK `dlarfg` does — without this, `tau` and the tail
/// divide by a number that has already lost most of its bits and the
/// reflector silently stops being orthogonal.
pub fn larfg<T: Scalar>(x: &mut [T]) -> T {
    let n = x.len();
    assert!(n >= 1, "larfg needs a non-empty vector");
    if n == 1 {
        return T::ZERO;
    }
    let mut alpha = x[0];
    let mut xnorm = nrm2(&x[1..]);
    if xnorm == T::ZERO {
        return T::ZERO;
    }
    // beta = -sign(alpha) * ||x||, the LAPACK choice that avoids cancellation.
    let mut beta = -alpha.sign() * alpha.hypot(xnorm);
    let safmin = T::safe_min();
    let mut knt = 0u32;
    if beta.abs() < safmin {
        // |beta| is subnormal (or dangerously close): scale the whole column
        // up until it is safely normal. At most a couple of iterations —
        // 1/safmin spans ~292 decades for f64.
        let rsafmn = T::ONE / safmin;
        while beta.abs() < safmin && knt < 20 {
            knt += 1;
            for v in &mut x[1..] {
                *v *= rsafmn;
            }
            beta *= rsafmn;
            alpha *= rsafmn;
        }
        // Recompute at the well-scaled magnitude.
        xnorm = nrm2(&x[1..]);
        beta = -alpha.sign() * alpha.hypot(xnorm);
    }
    let tau = (beta - alpha) / beta;
    let inv = T::ONE / (alpha - beta);
    for v in &mut x[1..] {
        *v *= inv;
    }
    // Undo the scaling: the tail and tau are scale-invariant, beta is not.
    for _ in 0..knt {
        beta *= safmin;
    }
    x[0] = beta;
    tau
}

/// Apply `H = I - tau * v * v^T` from the left to `c`: `C = H * C`.
///
/// `v` has explicit unit first element NOT stored: `v_storage` is the tail
/// `v[1..]` and the reflector acts on all `c.rows() == v_storage.len() + 1`
/// rows. `work` is resized to `c.cols()`.
///
/// A reflector whose length disagrees with `c.rows()` is a checked error
/// (not a `debug_assert`): in release builds a silent mismatch would read
/// the wrong rows and corrupt the factorization.
pub fn larf_left<T: Scalar>(
    v_tail: &[T],
    tau: T,
    mut c: MatMut<'_, T>,
    work: &mut Vec<T>,
) -> Result<(), DenseError> {
    let m = c.rows();
    let n = c.cols();
    if v_tail.len() + 1 != m {
        return Err(DenseError::ShapeMismatch {
            context: "larf_left: reflector length (tail + 1) vs C rows",
            expected: m,
            got: v_tail.len() + 1,
        });
    }
    if tau == T::ZERO {
        return Ok(());
    }
    work.clear();
    work.resize(n, T::ZERO);
    // w = C^T v  (v[0] == 1)
    for j in 0..n {
        let col = c.col(j);
        let mut acc = col[0];
        for (&ci, &vi) in col[1..].iter().zip(v_tail) {
            acc = ci.mul_add(vi, acc);
        }
        work[j] = acc;
    }
    // C -= tau * v * w^T
    for j in 0..n {
        let twj = tau * work[j];
        let col = c.col_mut(j);
        col[0] -= twj;
        for (ci, &vi) in col[1..].iter_mut().zip(v_tail) {
            *ci = (-twj).mul_add(vi, *ci);
        }
    }
    Ok(())
}

/// Unblocked Householder QR (LAPACK `geqr2`): factor `a` in place.
///
/// On exit the upper triangle of `a` holds `R` and the strict lower triangle
/// of column `j` holds the tail of reflector `v_j`; `tau[j]` receives the
/// scalar factors. Works for any `rows >= 1`, `cols >= 0` (wide matrices
/// factor the leading `min(m, n)` columns' reflectors).
pub fn geqr2<T: Scalar>(mut a: MatMut<'_, T>, tau: &mut [T]) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    assert!(tau.len() >= k, "tau too short: {} < {}", tau.len(), k);
    let mut work = Vec::new();
    for j in 0..k {
        // Generate reflector from A[j.., j].
        let t = {
            let col = &mut a.col_mut(j)[j..];
            larfg(col)
        };
        tau[j] = t;
        if j + 1 < n && t != T::ZERO {
            // Apply to the trailing columns A[j.., j+1..].
            // Copy the reflector tail out to appease the borrow checker; the
            // tails are tiny (these are cache-resident panel columns).
            let v_tail: Vec<T> = a.col(j)[j + 1..].to_vec();
            let trailing = a.rb_mut().submatrix_mut(j, j + 1, m - j, n - j - 1);
            larf_left(&v_tail, t, trailing, &mut work)
                .expect("geqr2: reflector length matches trailing block by construction");
        }
    }
}

/// Unblocked Householder QR over a **pre-transposed** panel — the paper's
/// strategy-4 factor micro-kernel, bit-identical to [`geqr2`].
///
/// `at` holds the panel row-major: `at[r * width + j] == A(r, j)`, so every
/// trailing-matrix row is contiguous and the `A^T u` products / rank-1
/// updates run `width`-wide over unit-stride memory with independent
/// accumulators instead of `larf_left`'s one-column-at-a-time serial
/// `mul_add` chains. The arithmetic is a strict reordering of *independent*
/// accumulations: every per-element operation sequence matches the
/// reference (`larfg` is called verbatim on a gathered pivot column; the
/// per-column dot/update chains of `larf_left` ascend rows in the same
/// order with the same `mul_add`s), so the results are bitwise equal.
///
/// `tri_block > 0` declares the stacked-triangles structure of the
/// `factor_tree` stage: row `r` is known to be structurally zero in columns
/// `< r % tri_block` (each `tri_block`-row block is upper triangular).
/// Those rows are skipped in the trailing update and the skipped terms are
/// exact `±0.0` products, which can only affect the sign of zeros (and the
/// structure is preserved by the updates themselves). Pass `0` for a dense
/// panel — then no term is skipped and the result is bit-exact including
/// zero signs.
///
/// `tau` must hold `min(rows, width)` entries; scratch comes from the
/// workspace arena internally.
pub fn geqr2_transposed<T: Scalar>(
    at: &mut [T],
    rows: usize,
    width: usize,
    tri_block: usize,
    tau: &mut [T],
) {
    factor_transposed_dispatch::<T, false>(at, rows, width, tri_block, tau, &mut []);
}

/// [`geqr2_transposed`] fused with the `V^T V` Gram accumulation that
/// [`crate::blocked::larft_transposed`] needs: the Gram chains for reflector
/// `j` are built inside reflector `j`'s own `A^T u` sweep, where the row is
/// already in cache, instead of re-streaming the factored panel afterwards.
/// `gram` must hold `k * k` entries (`k = min(rows, width)`, dirty is fine);
/// on exit pass it to [`crate::blocked::larft_from_gram`] for the exact `T`
/// the unfused pipeline would have produced.
pub fn geqr2_gram_transposed<T: Scalar>(
    at: &mut [T],
    rows: usize,
    width: usize,
    tri_block: usize,
    tau: &mut [T],
    gram: &mut [T],
) {
    let k = rows.min(width);
    assert!(
        gram.len() >= k * k,
        "gram too short: {} < {}",
        gram.len(),
        k * k
    );
    factor_transposed_dispatch::<T, true>(at, rows, width, tri_block, tau, gram);
}

/// Fetch the active backend's row-pass kernels once per panel and run the
/// sweep with them. Every backend's passes are bit-identical to the scalar
/// oracle (independent per-lane fused chains — see `crate::simd`), so the
/// dispatch is a speed choice only and the bitwise guarantees documented on
/// [`geqr2_transposed`] hold for all of them.
fn factor_transposed_dispatch<T: Scalar, const GRAM: bool>(
    at: &mut [T],
    rows: usize,
    width: usize,
    tri_block: usize,
    tau: &mut [T],
    gram: &mut [T],
) {
    let kern = T::factor_kernels(crate::simd::active());
    factor_transposed_core::<T, GRAM>(at, rows, width, tri_block, tau, gram, kern);
}

/// The fused strategy-4 factor sweep. Per reflector `j` it makes exactly two
/// streaming passes over the trailing rows:
///
/// * **dot pass** ([`dot_rows`]) — one *full-width* `mul_add` per row lane:
///   lanes `> j` are the reference's `w = A^T v` accumulators (same seed,
///   same ascending-row chain as `larf_left`), lanes `< j` are exactly the
///   `V^T V` Gram chains `larft` needs (seeded from the pivot row like the
///   reference's `v_jj[j] * 1` term), and lane `j` is an unused scratch
///   lane. Accumulating every lane keeps the inner loop at a fixed,
///   unrollable trip count with no per-lane branching; the scaled reflector
///   tail is scattered into column `j` on the way through (the row is
///   already in cache).
/// * **update pass** ([`rank1_rows`]) — applies the rank-1 update with the
///   trailing width dispatched to a const-generic body (fully unrolled for
///   the practical widths), and harvests the *next* pivot column as each
///   row's final value is written, so no reflector after the first ever
///   does a strided column gather.
///
/// Every accumulator chain (per trailing column, per Gram pair) is the same
/// sequence of `mul_add`s in the same order as the unfused reference, so the
/// results are bitwise identical on dense panels; `tri_block` skips are
/// zero-sign-only as documented on [`geqr2_transposed`].
#[inline(always)]
fn factor_transposed_core<T: Scalar, const GRAM: bool>(
    at: &mut [T],
    rows: usize,
    width: usize,
    tri_block: usize,
    tau: &mut [T],
    gram: &mut [T],
    kern: crate::simd::FactorKernels<T>,
) {
    assert_eq!(at.len(), rows * width);
    let k = rows.min(width);
    assert!(tau.len() >= k, "tau too short: {} < {}", tau.len(), k);
    let mut colbuf = crate::arena::take_dirty::<T>(rows);
    let mut nextbuf = crate::arena::take_dirty::<T>(rows);
    let mut waccbuf = crate::arena::take_dirty::<T>(width);
    let (mut col, mut next) = (&mut colbuf[..rows], &mut nextbuf[..rows]);
    let wacc = &mut waccbuf[..width];
    let mut have_col = false;
    for j in 0..k {
        if !have_col {
            for r in j..rows {
                col[r - j] = at[r * width + j];
            }
        }
        // The scalar `larfg` runs unchanged on the contiguous pivot column,
        // so every rescaling branch matches the reference. When it returns
        // zero it has not modified the column, so `at` needs no write-back.
        let t = larfg(&mut col[..rows - j]);
        tau[j] = t;
        have_col = false;
        if t != T::ZERO {
            let nt = width - j - 1;
            let pivot = j * width;
            at[pivot + j] = col[0];
            // Full-width accumulator init from the pivot row: lanes > j are
            // `larf_left`'s `w` seeds (the pivot row's trailing entries),
            // lanes < j are the Gram chain seeds A(j, jj).
            wacc.copy_from_slice(&at[pivot..pivot + width]);
            // SAFETY: slice shapes satisfy the scalar `dot_rows` contract
            // and the kernel table only holds available backends.
            unsafe { (kern.dot_rows)(at, width, rows, tri_block, j, col, wacc) };
            if GRAM {
                for jj in 0..j {
                    gram[jj * k + j] = wacc[jj];
                }
            }
            if nt > 0 {
                // C -= tau * v * w^T, row-contiguous. The scale runs full
                // width: lanes <= j are dead (Gram values already copied
                // out), lanes > j are the reference's `tau * w[l]`.
                for wl in wacc.iter_mut() {
                    *wl = t * *wl;
                }
                for (cl, &wl) in at[pivot + j + 1..pivot + width]
                    .iter_mut()
                    .zip(&wacc[j + 1..])
                {
                    *cl -= wl;
                }
                // SAFETY: as for the dot pass above.
                unsafe {
                    (kern.rank1_rows)(at, width, rows, tri_block, j, col, next, &wacc[j + 1..])
                };
                std::mem::swap(&mut col, &mut next);
                have_col = true;
            }
        }
    }
}

/// Dot pass over the trailing rows: `wacc[c] += A(r, c) * v_r` for every
/// lane, scattering the scaled reflector tail into column `j`. Dispatches
/// the practical panel widths to a const-width body so the lane loop is
/// fully unrolled.
#[inline(always)]
pub(crate) fn dot_rows<T: Scalar>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    match width {
        8 => dot_rows_w::<T, 8>(at, rows, tri_block, j, col, wacc),
        16 => dot_rows_w::<T, 16>(at, rows, tri_block, j, col, wacc),
        32 => dot_rows_w::<T, 32>(at, rows, tri_block, j, col, wacc),
        _ => {
            for r in j + 1..rows {
                if tri_block > 0 && r % tri_block > j {
                    continue; // v_r is a structural zero of the stacked-R layout
                }
                let base = r * width;
                let vr = col[r - j];
                at[base + j] = vr;
                for (wl, &al) in wacc[..width].iter_mut().zip(&at[base..base + width]) {
                    *wl = al.mul_add(vr, *wl);
                }
            }
        }
    }
}

#[inline(always)]
fn dot_rows_w<T: Scalar, const W: usize>(
    at: &mut [T],
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    // Accumulate in a local array so the lanes live in registers across the
    // whole sweep instead of round-tripping through memory every row.
    let mut acc: [T; W] = std::array::from_fn(|c| wacc[c]);
    let chunks = at[(j + 1) * W..rows * W].chunks_exact_mut(W);
    if tri_block == 0 {
        // Dense panel: branch-free row sweep.
        for (row, &vr) in chunks.zip(&col[1..rows - j]) {
            row[j] = vr;
            for c in 0..W {
                acc[c] = row[c].mul_add(vr, acc[c]);
            }
        }
    } else {
        // Stacked-triangles panel: a wrapping position counter (no per-row
        // division) skips rows whose v_r is a structural zero.
        let mut loc = (j + 1) % tri_block;
        for (row, &vr) in chunks.zip(&col[1..rows - j]) {
            let skip = loc > j;
            loc += 1;
            if loc == tri_block {
                loc = 0;
            }
            if skip {
                continue;
            }
            row[j] = vr;
            for c in 0..W {
                acc[c] = row[c].mul_add(vr, acc[c]);
            }
        }
    }
    wacc[..W].copy_from_slice(&acc);
}

/// Rank-1 update pass over the trailing rows, harvesting column `j + 1`
/// (final after this very update) into `next` as the next pivot column.
/// The trailing width is dispatched to a const-generic body so the update
/// loop is fully unrolled for every width that occurs under the practical
/// panel widths (8/16/32).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank1_rows<T: Scalar>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    next: &mut [T],
    tw: &[T],
) {
    let nt = width - j - 1;
    macro_rules! dispatch {
        ($($n:literal)*) => {
            match nt {
                $($n => rank1_rows_n::<T, $n>(at, width, rows, tri_block, j, col, next, tw),)*
                _ => rank1_rows_any(at, width, rows, tri_block, j, col, next, tw, nt),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rank1_rows_n<T: Scalar, const NT: usize>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    next: &mut [T],
    tw: &[T],
) {
    // Register-resident copy of the scaled w vector: NT is a compile-time
    // constant here, so the update below is a fully unrolled FMA sequence.
    let twa: [T; NT] = std::array::from_fn(|l| tw[l]);
    let chunks = at[(j + 1) * width..rows * width].chunks_exact_mut(width);
    if tri_block == 0 {
        // Dense panel: branch-free row sweep.
        for ((row, &vr), nx) in chunks.zip(&col[1..rows - j]).zip(&mut next[..]) {
            let seg = &mut row[j + 1..j + 1 + NT];
            for l in 0..NT {
                seg[l] = (-twa[l]).mul_add(vr, seg[l]);
            }
            *nx = seg[0];
        }
    } else {
        let mut loc = (j + 1) % tri_block;
        for ((row, &vr), nx) in chunks.zip(&col[1..rows - j]).zip(&mut next[..]) {
            let seg = &mut row[j + 1..j + 1 + NT];
            let skip = loc > j;
            loc += 1;
            if loc == tri_block {
                loc = 0;
            }
            if skip {
                // Untouched by this reflector; its column j + 1 entry is
                // already final.
                *nx = seg[0];
                continue;
            }
            for l in 0..NT {
                seg[l] = (-twa[l]).mul_add(vr, seg[l]);
            }
            *nx = seg[0];
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rank1_rows_any<T: Scalar>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    next: &mut [T],
    tw: &[T],
    nt: usize,
) {
    for r in j + 1..rows {
        let base = r * width;
        if tri_block > 0 && r % tri_block > j {
            next[r - j - 1] = at[base + j + 1];
            continue;
        }
        let vr = col[r - j];
        for (cl, &wl) in at[base + j + 1..base + width].iter_mut().zip(&tw[..nt]) {
            *cl = (-wl).mul_add(vr, *cl);
        }
        next[r - j - 1] = at[base + j + 1];
    }
}

/// Form the explicit `m x k` orthogonal factor from the output of [`geqr2`]
/// (LAPACK `org2r`): `Q = H_0 H_1 ... H_{k-1} * [I_k; 0]`.
pub fn org2r<T: Scalar>(a: &Matrix<T>, tau: &[T], k: usize) -> Matrix<T> {
    let m = a.rows();
    let kk = k.min(a.cols()).min(m);
    assert_eq!(kk, k, "cannot form more Q columns than reflectors");
    let mut q = Matrix::<T>::zeros(m, k);
    for d in 0..k {
        q[(d, d)] = T::ONE;
    }
    let mut work = Vec::new();
    for i in (0..k).rev() {
        let t = tau[i];
        let v_tail: Vec<T> = a.col(i)[i + 1..].to_vec();
        // Apply H_i to Q[i.., i..].
        let sub = q.view_mut(i, i, m - i, k - i);
        larf_left(&v_tail, t, sub, &mut work)
            .expect("org2r: reflector length matches Q block by construction");
    }
    q
}

/// Extract the `min(m,n) x n` upper-triangular `R` from a factored matrix.
pub fn r_from_factored<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    a.upper_triangular()
}

/// Apply `Q^T` (forward reflector order) or `Q` (reverse order) from a
/// [`geqr2`] factorization to a full-height matrix `c` in place.
pub fn apply_q2<T: Scalar>(a: &Matrix<T>, tau: &[T], transpose: bool, c: &mut Matrix<T>) {
    let m = a.rows();
    assert_eq!(c.rows(), m);
    let k = tau.len();
    let n = c.cols();
    let mut work = Vec::new();
    let order: Box<dyn Iterator<Item = usize>> = if transpose {
        Box::new(0..k)
    } else {
        Box::new((0..k).rev())
    };
    for i in order {
        let v_tail: Vec<T> = a.col(i)[i + 1..].to_vec();
        let sub = c.view_mut(i, 0, m - i, n);
        larf_left(&v_tail, tau[i], sub, &mut work)
            .expect("apply_q2: reflector length matches C block by construction");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::frobenius;

    fn test_matrix(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| {
            // Deterministic, well-conditioned-ish entries.
            (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 7.0 + if i == j { 3.0 } else { 0.0 }
        })
    }

    fn check_qr(a: &Matrix<f64>, tol: f64) {
        let m = a.rows();
        let n = a.cols();
        let k = m.min(n);
        let mut f = a.clone();
        let mut tau = vec![0.0; k];
        geqr2(f.as_mut(), &mut tau);
        let q = org2r(&f, &tau, k);
        let r = r_from_factored(&f);
        // ||A - QR||
        let mut qr = Matrix::<f64>::zeros(m, n);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            q.as_ref(),
            r.as_ref(),
            0.0,
            qr.as_mut(),
        );
        let mut diff = 0.0f64;
        for i in 0..m {
            for j in 0..n {
                diff = diff.max((qr[(i, j)] - a[(i, j)]).abs());
            }
        }
        assert!(diff < tol, "reconstruction error {diff} for {m}x{n}");
        // ||Q^T Q - I||
        let mut qtq = Matrix::<f64>::zeros(k, k);
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            q.as_ref(),
            q.as_ref(),
            0.0,
            qtq.as_mut(),
        );
        for i in 0..k {
            for j in 0..k {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (qtq[(i, j)] - want).abs() < tol,
                    "orthogonality at ({i},{j})"
                );
            }
        }
        // R upper triangular by construction; diag of R should be nonzero for
        // these well-conditioned inputs.
        for d in 0..k {
            assert!(r[(d, d)].abs() > 1e-10);
        }
        let _ = frobenius(&qr);
    }

    #[test]
    fn qr_tall() {
        check_qr(&test_matrix(20, 5), 1e-12);
    }

    #[test]
    fn qr_square() {
        check_qr(&test_matrix(8, 8), 1e-12);
    }

    #[test]
    fn qr_wide() {
        check_qr(&test_matrix(4, 9), 1e-12);
    }

    #[test]
    fn qr_single_column() {
        check_qr(&test_matrix(7, 1), 1e-13);
    }

    #[test]
    fn qr_single_row() {
        let a = Matrix::from_row_major(1, 3, &[2.0f64, 3.0, 4.0]);
        let mut f = a.clone();
        let mut tau = vec![0.0];
        geqr2(f.as_mut(), &mut tau);
        // H must be identity, R == A.
        assert_eq!(tau[0], 0.0);
        assert_eq!(f, a);
    }

    #[test]
    fn larfg_annihilates_tail() {
        let mut x = vec![3.0f64, 4.0, 0.0, 12.0];
        let norm = nrm2(&x);
        let tau = larfg(&mut x);
        let beta = x[0];
        assert!((beta.abs() - norm).abs() < 1e-12);
        // beta has opposite sign of alpha per the -sign(alpha) convention.
        assert!(beta < 0.0);
        assert!(tau > 0.0 && tau <= 2.0);
        // Verify H x0 = beta e1 by applying the reflector to the original.
        let x0 = [3.0f64, 4.0, 0.0, 12.0];
        let v = [1.0, x[1], x[2], x[3]];
        let vdotx: f64 = v.iter().zip(&x0).map(|(a, b)| a * b).sum();
        for (i, (&vi, &xi)) in v.iter().zip(&x0).enumerate() {
            let hxi = xi - tau * vi * vdotx;
            let want = if i == 0 { beta } else { 0.0 };
            assert!((hxi - want).abs() < 1e-12, "component {i}: {hxi} vs {want}");
        }
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut x = vec![5.0f64, 0.0, 0.0];
        let tau = larfg(&mut x);
        assert_eq!(tau, 0.0);
        assert_eq!(x[0], 5.0);
    }

    #[test]
    fn larfg_subnormal_column_yields_true_norm() {
        // Without the safmin rescaling loop, beta is computed in the
        // subnormal range and |beta| drifts far from ||x||.
        let s = 1.0e-300f64;
        let mut x = vec![3.0 * s, 4.0 * s, 0.0, 12.0 * s];
        let norm = 13.0 * s;
        let tau = larfg(&mut x);
        let beta = x[0];
        assert!(
            (beta.abs() - norm).abs() <= 4.0 * f64::EPSILON * norm,
            "beta {beta} vs ||x|| {norm}"
        );
        assert!(tau > 0.0 && tau <= 2.0, "tau {tau} out of [0, 2]");
        // The tail is scale-invariant: same reflector as the 1.0-scaled column.
        let mut y = vec![3.0f64, 4.0, 0.0, 12.0];
        let tau_y = larfg(&mut y);
        assert!((tau - tau_y).abs() < 1e-14);
        for (a, b) in x[1..].iter().zip(&y[1..]) {
            assert!((a - b).abs() < 1e-14, "tail {a} vs {b}");
        }
    }

    #[test]
    fn larfg_huge_column_stays_finite() {
        let s = 1.0e+300f64;
        let mut x = vec![3.0 * s, 4.0 * s];
        let tau = larfg(&mut x);
        assert!(x[0].is_finite() && tau.is_finite());
        assert!((x[0].abs() - 5.0 * s).abs() <= 4.0 * f64::EPSILON * 5.0 * s);
    }

    #[test]
    fn larf_left_rejects_mismatched_reflector() {
        let mut c = Matrix::<f64>::zeros(5, 2);
        let v_tail = [0.5f64, 0.25]; // length 2 + 1 != 5 rows
        let mut work = Vec::new();
        let err = larf_left(&v_tail, 1.5, c.as_mut(), &mut work).unwrap_err();
        assert!(matches!(
            err,
            crate::error::DenseError::ShapeMismatch {
                expected: 5,
                got: 3,
                ..
            }
        ));
        // And the mismatch is reported even for tau == 0.
        assert!(larf_left(&v_tail, 0.0, c.as_mut(), &mut work).is_err());
    }

    #[test]
    fn larfg_negative_leading() {
        let mut x = vec![-3.0f64, 4.0];
        let tau = larfg(&mut x);
        assert!((x[0] - 5.0).abs() < 1e-12); // beta = -sign(-3)*5 = +5
        assert!(tau > 0.0);
    }

    #[test]
    fn apply_q2_transpose_then_back_is_identity() {
        let a = test_matrix(12, 4);
        let mut f = a.clone();
        let mut tau = vec![0.0; 4];
        geqr2(f.as_mut(), &mut tau);
        let mut c = test_matrix(12, 3);
        let orig = c.clone();
        apply_q2(&f, &tau, true, &mut c);
        apply_q2(&f, &tau, false, &mut c);
        for i in 0..12 {
            for j in 0..3 {
                assert!((c[(i, j)] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qt_times_a_gives_r() {
        let a = test_matrix(10, 4);
        let mut f = a.clone();
        let mut tau = vec![0.0; 4];
        geqr2(f.as_mut(), &mut tau);
        let mut c = a.clone();
        apply_q2(&f, &tau, true, &mut c);
        // c should now equal [R; 0].
        for j in 0..4 {
            for i in 0..10 {
                let want = if i <= j { f[(i, j)] } else { 0.0 };
                assert!((c[(i, j)] - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }
}
