//! Gram-Schmidt and CholeskyQR factorizations.
//!
//! Section II of the paper: "Cholesky QR and the Gram-Schmidt process are
//! not as numerically stable, so most general-purpose software for QR uses
//! either Givens rotations or Householder reflectors." These baselines exist
//! so the test suite can demonstrate exactly that loss of orthogonality on
//! ill-conditioned inputs, and to provide a fast-but-unstable reference.

use crate::blas1::{axpy, dot, nrm2, scal};
use crate::blas3::{gemm, trsm_upper_left, Trans};
use crate::cholesky::{potrf_lower, NotPositiveDefinite};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// QR by classical Gram-Schmidt: each column is orthogonalized against all
/// previous `Q` columns using its *original* inner products (one pass).
/// Fast but can lose orthogonality catastrophically.
pub fn classical_gram_schmidt<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Matrix<T>) {
    let (m, n) = a.shape();
    assert!(m >= n);
    let mut q = a.clone();
    let mut r = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        // r[0..j, j] = Q[:, 0..j]^T a_j   (classical: uses original a_j)
        let coeffs: Vec<T> = (0..j).map(|i| dot(q.col(i), a.col(j))).collect();
        for (i, &c) in coeffs.iter().enumerate() {
            r[(i, j)] = c;
        }
        // q_j = a_j - sum c_i q_i
        for i in 0..j {
            let qi = q.col(i).to_vec();
            axpy(-coeffs[i], &qi, q.col_mut(j));
        }
        let norm = nrm2(q.col(j));
        r[(j, j)] = norm;
        if norm > T::ZERO {
            scal(T::ONE / norm, q.col_mut(j));
        }
    }
    (q, r)
}

/// QR by modified Gram-Schmidt: inner products are recomputed against the
/// *current* residual column. Much better orthogonality than CGS, still
/// weaker than Householder for severely ill-conditioned matrices.
pub fn modified_gram_schmidt<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Matrix<T>) {
    let (m, n) = a.shape();
    assert!(m >= n);
    let mut q = a.clone();
    let mut r = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        for i in 0..j {
            let c = dot(q.col(i), q.col(j));
            r[(i, j)] = c;
            let qi = q.col(i).to_vec();
            axpy(-c, &qi, q.col_mut(j));
        }
        let norm = nrm2(q.col(j));
        r[(j, j)] = norm;
        if norm > T::ZERO {
            scal(T::ONE / norm, q.col_mut(j));
        }
    }
    (q, r)
}

/// CholeskyQR: `R = chol(A^T A)^T`, `Q = A R^-1`. One `gemm` + one small
/// Cholesky — the communication-minimal but numerically fragile method
/// (condition number is squared before factoring).
pub fn cholesky_qr<T: Scalar>(
    a: &Matrix<T>,
) -> Result<(Matrix<T>, Matrix<T>), NotPositiveDefinite> {
    let (m, n) = a.shape();
    assert!(m >= n);
    // G = A^T A
    let mut g = Matrix::<T>::zeros(n, n);
    gemm(
        Trans::Yes,
        Trans::No,
        T::ONE,
        a.as_ref(),
        a.as_ref(),
        T::ZERO,
        g.as_mut(),
    );
    let l = potrf_lower(&g)?;
    // R = L^T (upper). Q solves Q R = A, i.e. R^T Q^T = A^T; equivalently
    // solve X * R = A column-block-wise: Q^T = R^-T A^T. Simplest: transpose.
    let r = l.transpose();
    // Q = A * R^{-1}: solve R^T? Use: for each row of A? Column-major trick:
    // Q^T = R^{-T} A^T; we instead solve R^T X = A^T with R^T lower... keep it
    // simple: compute Q by forward-substituting columns of R.
    // Q[:, j] = (A[:, j] - sum_{k<j} Q[:,k] R[k,j]) / R[j,j]
    let mut q = a.clone();
    for j in 0..n {
        for k in 0..j {
            let rkj = r[(k, j)];
            let qk = q.col(k).to_vec();
            axpy(-rkj, &qk, q.col_mut(j));
        }
        let d = r[(j, j)];
        scal(T::ONE / d, q.col_mut(j));
    }
    Ok((q, r))
}

/// Solve `min ||A x - b||` with MGS QR (used as an independent check of the
/// Householder least-squares path).
pub fn mgs_least_squares<T: Scalar>(a: &Matrix<T>, b: &[T]) -> Vec<T> {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m);
    let (q, r) = modified_gram_schmidt(a);
    // x = R^-1 Q^T b
    let mut x = vec![T::ZERO; n];
    for j in 0..n {
        x[j] = dot(q.col(j), b);
    }
    let mut xm = Matrix::from_fn(n, 1, |i, _| x[i]);
    trsm_upper_left(r.as_ref(), xm.as_mut());
    (0..n).map(|i| xm[(i, 0)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{orthogonality_error, reconstruction_error};

    fn well_conditioned(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| {
            (((i * 13 + j * 29 + 5) % 31) as f64 - 15.0) / 10.0 + if i == j { 2.0 } else { 0.0 }
        })
    }

    /// Hilbert-like: condition number grows explosively with n.
    fn ill_conditioned(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| 1.0 / ((i + j + 1) as f64))
    }

    #[test]
    fn cgs_mgs_chol_reconstruct_well_conditioned() {
        let a = well_conditioned(20, 6);
        for (name, (q, r)) in [
            ("cgs", classical_gram_schmidt(&a)),
            ("mgs", modified_gram_schmidt(&a)),
            ("chol", cholesky_qr(&a).unwrap()),
        ] {
            assert!(
                reconstruction_error(&a, &q, &r) < 1e-12,
                "{name} reconstruction"
            );
            assert!(orthogonality_error(&q) < 1e-12, "{name} orthogonality");
        }
    }

    #[test]
    fn cgs_loses_orthogonality_where_householder_does_not() {
        // The instability claim from Section II, demonstrated.
        let a = ill_conditioned(64, 12);
        let (q_cgs, _) = classical_gram_schmidt(&a);
        let cgs_err = orthogonality_error(&q_cgs);

        let mut f = a.clone();
        let mut tau = vec![0.0; 12];
        crate::householder::geqr2(f.as_mut(), &mut tau);
        let q_hh = crate::householder::org2r(&f, &tau, 12);
        let hh_err = orthogonality_error(&q_hh);

        assert!(hh_err < 1e-12, "householder stays orthogonal: {hh_err}");
        assert!(
            cgs_err > 1e-6,
            "cgs should visibly lose orthogonality: {cgs_err}"
        );
        assert!(cgs_err > hh_err * 1e4);
    }

    #[test]
    fn mgs_better_than_cgs_on_ill_conditioned() {
        let a = ill_conditioned(64, 10);
        let (q_cgs, _) = classical_gram_schmidt(&a);
        let (q_mgs, _) = modified_gram_schmidt(&a);
        assert!(orthogonality_error(&q_mgs) <= orthogonality_error(&q_cgs));
    }

    #[test]
    fn cholesky_qr_fails_on_extreme_conditioning() {
        // cond^2 overflows the positive-definiteness of A^T A in f64 for a
        // sufficiently ill-conditioned A; CholeskyQR must report the failure
        // rather than return garbage.
        let a = ill_conditioned(32, 16);
        assert!(
            cholesky_qr(&a).is_err(),
            "Gram matrix should be numerically singular"
        );
    }

    #[test]
    fn mgs_least_squares_matches_householder() {
        let a = well_conditioned(30, 5);
        let b: Vec<f64> = (0..30).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x1 = mgs_least_squares(&a, &b);
        let x2 = crate::blocked::least_squares(a.clone(), &b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }
}
