//! Scalar abstraction over `f32`/`f64`.
//!
//! The paper's implementation is single precision ("adequate for our video
//! application"); the substrate is generic so accuracy tests can run the
//! identical code in `f64` and measure the gap.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real scalar usable by every routine in this workspace.
///
/// Only the operations the algorithms need are abstracted; this is not a
/// general numeric tower.
pub trait Scalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + crate::arena::PoolScalar
    + crate::simd::SimdScalar
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Number of bytes of one element (4 for `f32`), used by traffic models.
    const BYTES: u64;

    /// Lossy conversion from `f64` (used for constants and test data).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used for norms and reporting).
    fn to_f64(self) -> f64;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// LAPACK `dlamch('S') / dlamch('E')`: the smallest magnitude whose
    /// reciprocal is still a safe normal number. `larfg` rescales columns
    /// whose norm falls below this to avoid computing a subnormal `beta`.
    fn safe_min() -> Self;
    /// `|self|`.
    fn abs(self) -> Self;
    /// `sqrt(self)`.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (maps to hardware FMA where possible).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `max(self, other)`, NaN-propagating like `f64::max` is *not* required.
    fn maximum(self, other: Self) -> Self;
    /// `min(self, other)`.
    fn minimum(self, other: Self) -> Self;
    /// `hypot(self, other)` — overflow-safe `sqrt(a^2 + b^2)`.
    fn hypot(self, other: Self) -> Self;
    /// Sign with `signum(0) == 1`, the LAPACK convention for `larfg`.
    fn sign(self) -> Self {
        if self < Self::ZERO {
            -Self::ONE
        } else {
            Self::ONE
        }
    }
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty, $bytes:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const BYTES: u64 = $bytes;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline(always)]
            fn safe_min() -> Self {
                <$t>::MIN_POSITIVE / <$t>::EPSILON
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn minimum(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32, 4);
impl_scalar!(f64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::epsilon(), f32::EPSILON);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn sign_convention_is_lapack() {
        // sign(0) == +1 so larfg never divides by zero when alpha == 0.
        assert_eq!(0.0f64.sign(), 1.0);
        assert_eq!((-0.0f64).sign(), 1.0);
        assert_eq!(3.0f64.sign(), 1.0);
        assert_eq!((-2.0f32).sign(), -1.0);
    }

    #[test]
    fn safe_min_reciprocal_is_finite_and_normal() {
        let s64 = <f64 as Scalar>::safe_min();
        assert!(s64 >= f64::MIN_POSITIVE);
        assert!((1.0 / s64).is_finite());
        let s32 = <f32 as Scalar>::safe_min();
        assert!(s32 > 0.0 && (1.0 / s32).is_finite());
        // Subnormals sit strictly below the threshold.
        assert!(1.0e-300f64 < s64);
    }

    #[test]
    fn hypot_avoids_overflow() {
        let big = 1.0e30f32;
        assert!(big.hypot(big).is_finite());
        assert!((2.0f64.hypot(0.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let r = 2.0f64.mul_add(3.0, 4.0);
        assert_eq!(r, 10.0);
    }
}
