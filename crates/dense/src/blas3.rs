//! Level-3 BLAS: matrix-matrix operations.
//!
//! `gemm` is used by the blocked-Householder baselines (trailing-matrix
//! updates via `larfb`) and by the Robust PCA application (`Q * U`). It is a
//! cache-friendly column-streaming loop parallelized over column panels with
//! rayon when the output is large enough to amortize the fork.

use crate::matrix::{MatMut, MatRef};
use crate::scalar::Scalar;
use rayon::prelude::*;

pub use crate::blas2::Trans;

/// Output columns per parallel task; also the serial fallback threshold.
const PAR_COL_CHUNK: usize = 32;
/// Minimum flops before gemm bothers forking.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// `C = alpha * op(A) * op(B) + beta * C`.
pub fn gemm<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    match ta {
        Trans::No => assert_eq!(a.rows(), m, "gemm: op(A) rows"),
        Trans::Yes => assert_eq!(a.cols(), m, "gemm: op(A) rows"),
    }
    match tb {
        Trans::No => assert_eq!((b.rows(), b.cols()), (k, n), "gemm: op(B) shape"),
        Trans::Yes => assert_eq!((b.cols(), b.rows()), (k, n), "gemm: op(B) shape"),
    }

    let flops = 2 * m * n * k;
    if flops < PAR_MIN_FLOPS || n <= PAR_COL_CHUNK {
        gemm_serial(ta, tb, alpha, a, b, beta, c);
        return;
    }

    // Split C into disjoint column panels and process them in parallel; each
    // panel only needs the matching columns of op(B).
    let mut panels: Vec<(usize, MatMut<'_, T>)> = Vec::new();
    let mut rest = c.rb_mut();
    let mut start = 0;
    while start < n {
        let w = PAR_COL_CHUNK.min(n - start);
        let (head, tail) = rest.split_at_col(w);
        panels.push((start, head));
        rest = tail;
        start += w;
    }
    panels.into_par_iter().for_each(|(c0, panel)| {
        let w = panel.cols();
        match tb {
            Trans::No => {
                let bsub = b.submatrix(0, c0, k, w);
                gemm_serial(ta, Trans::No, alpha, a, bsub, beta, panel);
            }
            Trans::Yes => {
                let bsub = b.submatrix(c0, 0, w, k);
                gemm_serial(ta, Trans::Yes, alpha, a, bsub, beta, panel);
            }
        }
    });
}

fn gemm_serial<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    for j in 0..n {
        // Scale / clear the output column first.
        {
            let cj = c.col_mut(j);
            if beta == T::ZERO {
                cj.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in cj.iter_mut() {
                    *v *= beta;
                }
            }
        }
        match (ta, tb) {
            (Trans::No, Trans::No) => {
                for l in 0..k {
                    let blj = alpha * b.at(l, j);
                    if blj != T::ZERO {
                        let acol = a.col(l);
                        let cj = c.col_mut(j);
                        for (ci, &ail) in cj.iter_mut().zip(acol) {
                            *ci = blj.mul_add(ail, *ci);
                        }
                    }
                }
            }
            (Trans::No, Trans::Yes) => {
                for l in 0..k {
                    let blj = alpha * b.at(j, l);
                    if blj != T::ZERO {
                        let acol = a.col(l);
                        let cj = c.col_mut(j);
                        for (ci, &ail) in cj.iter_mut().zip(acol) {
                            *ci = blj.mul_add(ail, *ci);
                        }
                    }
                }
            }
            (Trans::Yes, Trans::No) => {
                // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both columns contiguous.
                let bj = b.col(j);
                for i in 0..m {
                    let ai = a.col(i);
                    let mut acc = T::ZERO;
                    for (&x, &y) in ai.iter().zip(bj) {
                        acc = x.mul_add(y, acc);
                    }
                    *c.at_mut(i, j) = alpha.mul_add(acc, c.at(i, j));
                }
            }
            (Trans::Yes, Trans::Yes) => {
                for i in 0..m {
                    let ai = a.col(i);
                    let mut acc = T::ZERO;
                    for (l, &x) in ai.iter().enumerate() {
                        acc = x.mul_add(b.at(j, l), acc);
                    }
                    *c.at_mut(i, j) = alpha.mul_add(acc, c.at(i, j));
                }
            }
        }
    }
}

/// Side selector for triangular operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Triangular factor multiplies from the left.
    Left,
    /// Triangular factor multiplies from the right.
    Right,
}

/// `B = U * B` (Side::Left) or `B = B * U` (Side::Right), where `U` is the
/// upper-triangular part of `u` (non-unit diagonal).
pub fn trmm_upper<T: Scalar>(side: Side, u: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    let n = u.cols();
    debug_assert!(u.rows() >= n);
    match side {
        Side::Left => {
            assert_eq!(b.rows(), n);
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                crate::blas2::trmv_upper(u, col);
            }
        }
        Side::Right => {
            assert_eq!(b.cols(), n);
            // B(:,j) = sum_{l <= j} B(:,l) * U(l,j), computed right-to-left.
            for j in (0..n).rev() {
                let ujj = u.at(j, j);
                for i in 0..b.rows() {
                    let mut acc = b.at(i, j) * ujj;
                    for l in 0..j {
                        acc = b.at(i, l).mul_add(u.at(l, j), acc);
                    }
                    b.set(i, j, acc);
                }
            }
        }
    }
}

/// Solve `U * X = B` in place (X overwrites B), `U` upper triangular.
pub fn trsm_upper_left<T: Scalar>(u: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    let n = u.cols();
    debug_assert!(u.rows() >= n);
    assert_eq!(b.rows(), n);
    for j in 0..b.cols() {
        crate::blas2::trsv_upper(u, b.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let (m, k) = a.shape();
        let n = b.cols();
        assert_eq!(b.rows(), k);
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| a[(i, l)] * b[(l, j)]).sum())
    }

    #[test]
    fn gemm_all_transpose_combos() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(3, 5, |i, j| (2 * i + j) as f64);
        let want = naive_gemm(&a, &b);

        let combos: [(Trans, Matrix<f64>, Trans, Matrix<f64>); 4] = [
            (Trans::No, a.clone(), Trans::No, b.clone()),
            (Trans::Yes, a.transpose(), Trans::No, b.clone()),
            (Trans::No, a.clone(), Trans::Yes, b.transpose()),
            (Trans::Yes, a.transpose(), Trans::Yes, b.transpose()),
        ];
        for (ta, am, tb, bm) in combos {
            let mut c = Matrix::<f64>::zeros(4, 5);
            gemm(ta, tb, 1.0, am.as_ref(), bm.as_ref(), 0.0, c.as_mut());
            for i in 0..4 {
                for j in 0..5 {
                    assert!(
                        (c[(i, j)] - want[(i, j)]).abs() < 1e-12,
                        "({ta:?},{tb:?}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::<f64>::eye(2, 2);
        let b = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Matrix::from_row_major(2, 2, &[10.0, 10.0, 10.0, 10.0]);
        gemm(
            Trans::No,
            Trans::No,
            2.0,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 7.0); // 2*1 + 0.5*10
        assert_eq!(c[(1, 1)], 13.0);
    }

    #[test]
    fn gemm_parallel_path_matches_serial() {
        // Big enough to trigger the rayon path.
        let a = Matrix::from_fn(64, 48, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(48, 130, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let want = naive_gemm(&a, &b);
        let mut c = Matrix::<f64>::zeros(64, 130);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..64 {
            for j in 0..130 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trmm_left_matches_gemm_with_triangle() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut got = b.clone();
        trmm_upper(Side::Left, u.as_ref(), got.as_mut());
        let want = naive_gemm(&u, &b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trmm_right_matches_gemm_with_triangle() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(2, 3, |i, j| (2 * i + j + 1) as f64);
        let mut got = b.clone();
        trmm_upper(Side::Right, u.as_ref(), got.as_mut());
        let want = naive_gemm(&b, &u);
        for i in 0..2 {
            for j in 0..3 {
                assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_inverts_trmm() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(3, 4, |i, j| (i * 3 + j) as f64 - 4.0);
        let mut x = b.clone();
        trmm_upper(Side::Left, u.as_ref(), x.as_mut());
        trsm_upper_left(u.as_ref(), x.as_mut());
        for i in 0..3 {
            for j in 0..4 {
                assert!((x[(i, j)] - b[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
