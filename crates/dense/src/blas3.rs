//! Level-3 BLAS: matrix-matrix operations.
//!
//! `gemm` is the wall-clock workhorse of the whole workspace: the compact-WY
//! trailing updates of CAQR/TSQR (`larfb`-style three-GEMM applications), the
//! blocked-Householder baselines, and the Robust PCA application (`Q * U`)
//! all funnel through it. Its core is a packed, cache-blocked, register-tiled
//! microkernel in the GotoBLAS/BLIS mold (cf. the `faer` exemplar): `op(A)`
//! and `op(B)` are repacked into contiguous `MR`/`NR` micro-panels so the
//! innermost loop streams both operands with unit stride — the CPU analogue
//! of the paper's strategy-4 panel pre-transpose, which restructured the same
//! data for coalesced access instead of cache lines.
//!
//! Parallelism: the output is split into a `row x column` task grid
//! ([`parallel_grid`]), so tall-skinny products (the shapes CAQR cares
//! about) parallelize over row blocks even when there are too few columns
//! to split.

use crate::arena;
use crate::matrix::{MatMut, MatRef};
use crate::ptr::MatPtr;
use crate::scalar::Scalar;
use rayon::prelude::*;

pub use crate::blas2::Trans;

/// Output columns per parallel task.
const PAR_COL_CHUNK: usize = 32;
/// Output rows per parallel task (row tasks kick in for narrow outputs).
const PAR_ROW_CHUNK: usize = 256;
/// Minimum flops before gemm bothers forking.
const PAR_MIN_FLOPS: usize = 1 << 18;
/// Below this many flops the packed path's buffer setup costs more than it
/// saves; fall through to the streaming triple loop.
const SMALL_FLOPS: usize = 1 << 13;

/// K-dimension cache block (packed micro-panels of both operands for one
/// `KC`-deep sweep fit in L1/L2).
const KC: usize = 256;
/// M-dimension cache block (the packed `MC x KC` A-block stays L2-resident
/// while it is reused across every NR-column micro-panel of B).
const MC: usize = 256;

/// The `(row_tasks, col_tasks)` grid `gemm` uses to parallelize an
/// `m x n x k` product. `(1, 1)` means the serial path. Exposed so tests can
/// assert that tall-skinny shapes (few columns, many rows) still fork — the
/// row split exists precisely for the `8192 x 16`-class trailing updates of
/// TSQR, which a column-only split would silently serialize.
pub fn parallel_grid(m: usize, n: usize, k: usize) -> (usize, usize) {
    let flops = 2 * m * n * k;
    if flops < PAR_MIN_FLOPS {
        return (1, 1);
    }
    let max_tasks = 4 * rayon::current_num_threads().max(1);
    let col_tasks = n.div_ceil(PAR_COL_CHUNK).min(max_tasks).max(1);
    let row_tasks = (max_tasks / col_tasks)
        .min(m.div_ceil(PAR_ROW_CHUNK))
        .max(1);
    (row_tasks, col_tasks)
}

/// `C = alpha * op(A) * op(B) + beta * C`.
pub fn gemm<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    match ta {
        Trans::No => assert_eq!(a.rows(), m, "gemm: op(A) rows"),
        Trans::Yes => assert_eq!(a.cols(), m, "gemm: op(A) rows"),
    }
    match tb {
        Trans::No => assert_eq!((b.rows(), b.cols()), (k, n), "gemm: op(B) shape"),
        Trans::Yes => assert_eq!((b.cols(), b.rows()), (k, n), "gemm: op(B) shape"),
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale(beta, c.rb_mut());
        return;
    }

    let (row_tasks, col_tasks) = parallel_grid(m, n, k);
    if row_tasks * col_tasks <= 1 {
        gemm_serial(ta, tb, alpha, a, b, beta, c);
        return;
    }

    // Split C into a disjoint (row x column)-block task grid. Each task only
    // needs the matching rows of op(A) and columns of op(B); the C block is
    // staged through a contiguous buffer so concurrent tasks never alias
    // (the same disjoint-tile contract the CAQR kernels use).
    let rh = m.div_ceil(row_tasks);
    let ch = n.div_ceil(col_tasks);
    let mut blocks = Vec::with_capacity(row_tasks * col_tasks);
    let mut r0 = 0;
    while r0 < m {
        let nr = rh.min(m - r0);
        let mut c0 = 0;
        while c0 < n {
            let nc = ch.min(n - c0);
            blocks.push((r0, c0, nr, nc));
            c0 += nc;
        }
        r0 += nr;
    }
    let ld = c.ld();
    let cp = unsafe { MatPtr::from_raw_parts(c.as_mut_ptr(), m, n, ld) };
    blocks.into_par_iter().for_each(|(r0, c0, nr, nc)| {
        let asub = match ta {
            Trans::No => a.submatrix(r0, 0, nr, k),
            Trans::Yes => a.submatrix(0, r0, k, nr),
        };
        let bsub = match tb {
            Trans::No => b.submatrix(0, c0, k, nc),
            Trans::Yes => b.submatrix(c0, 0, nc, k),
        };
        // Arena scratch, taken dirty: `load_tile` overwrites every element,
        // so the zero-fill a fresh `vec!` would do is pure waste.
        let mut buf = arena::take_dirty::<T>(nr * nc);
        // SAFETY: the (r0, c0, nr, nc) blocks partition C disjointly.
        unsafe { cp.load_tile(r0, c0, nr, nc, &mut buf) };
        gemm_serial(
            ta,
            tb,
            alpha,
            asub,
            bsub,
            beta,
            MatMut::from_parts(&mut buf[..nr * nc], nr, nc, nr),
        );
        // SAFETY: same disjoint block.
        unsafe { cp.store_tile(r0, c0, nr, nc, &buf) };
    });
}

fn scale<T: Scalar>(beta: T, mut c: MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    for j in 0..c.cols() {
        let cj = c.col_mut(j);
        if beta == T::ZERO {
            cj.fill(T::ZERO);
        } else {
            for v in cj.iter_mut() {
                *v *= beta;
            }
        }
    }
}

/// Serial gemm: packed/blocked for anything big enough to care, simple
/// streaming loop below [`SMALL_FLOPS`].
fn gemm_serial<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    if 2 * m * n * k < SMALL_FLOPS {
        gemm_small(ta, tb, alpha, a, b, beta, c);
        return;
    }
    scale(beta, c.rb_mut());

    // The register tile is per-backend: the packing routines pad to the
    // active microkernel's MR/NR (see `crate::simd`), so one packed layout
    // serves scalar 8x4 up to AVX-512 32x8 tiles.
    let kern = T::gemm_kernel(crate::simd::active());
    let (mr, nr) = (kern.mr, kern.nr);
    let ldc = c.ld();
    let cp = c.as_mut_ptr();

    // GotoBLAS loop nest: kc-deep sweeps, each packing one op(B) slab and
    // reusing it against successive packed MC x kc blocks of op(A). Both
    // packing buffers come dirty from the arena — the pack routines
    // overwrite every live lane and explicitly zero the MR/NR pad lanes, so
    // no full-buffer zero-fill happens per call.
    let kc = KC.min(k);
    let mut ap = arena::take_dirty::<T>(MC.min(m).div_ceil(mr) * mr * kc);
    let mut bp = arena::take_dirty::<T>(n.div_ceil(nr) * nr * kc);
    let mut p0 = 0;
    while p0 < k {
        let kb = KC.min(k - p0);
        pack_b(tb, b, p0, kb, 0, n, nr, &mut bp[..n.div_ceil(nr) * nr * kb]);
        let mut i0 = 0;
        while i0 < m {
            let mb = MC.min(m - i0);
            pack_a(
                ta,
                a,
                i0,
                mb,
                p0,
                kb,
                mr,
                &mut ap[..mb.div_ceil(mr) * mr * kb],
            );
            let mpanels = mb.div_ceil(mr);
            let mut j = 0;
            let mut jp = 0;
            while j < n {
                let w = nr.min(n - j);
                let bpanel = &bp[jp * nr * kb..(jp + 1) * nr * kb];
                for ip in 0..mpanels {
                    let i = ip * mr;
                    let h = mr.min(mb - i);
                    let apanel = &ap[ip * mr * kb..(ip + 1) * mr * kb];
                    // SAFETY: the packed panels hold kb*mr / kb*nr elements,
                    // the h x w corner at C(i0+i, j) is in bounds of the
                    // column-major view behind `cp`/`ldc`, and the kernel
                    // table only holds backends available on this host.
                    unsafe {
                        (kern.ukr)(
                            kb,
                            apanel.as_ptr(),
                            bpanel.as_ptr(),
                            alpha,
                            cp.add(j * ldc + i0 + i),
                            ldc,
                            h,
                            w,
                        );
                    }
                }
                j += w;
                jp += 1;
            }
            i0 += mb;
        }
        p0 += kb;
    }
}

/// Pack the `mb x kb` block of `op(A)` starting at `(i0, p0)` into `mr`-row
/// micro-panels: panel `ip` holds rows `[ip*mr, ip*mr+mr)` column-by-column,
/// zero-padded to a full `mr` so the microkernel never branches on height.
/// `mr` is the active backend's register-tile height.
///
/// `ap` may hold stale arena contents: every live lane is overwritten and
/// the pad lanes of a ragged last panel are zeroed explicitly, so the
/// caller never has to zero-fill the whole buffer.
#[allow(clippy::too_many_arguments)]
fn pack_a<T: Scalar>(
    ta: Trans,
    a: MatRef<'_, T>,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    mr: usize,
    ap: &mut [T],
) {
    debug_assert_eq!(ap.len(), mb.div_ceil(mr) * mr * kb);
    let mut i = 0;
    let mut base = 0;
    while i < mb {
        let h = mr.min(mb - i);
        match ta {
            Trans::No => {
                for p in 0..kb {
                    let col = &a.col(p0 + p)[i0 + i..i0 + i + h];
                    ap[base + p * mr..base + p * mr + h].copy_from_slice(col);
                }
            }
            Trans::Yes => {
                // op(A)(r, p) = A(p, r): each packed row is a column of A.
                for r in 0..h {
                    let col = &a.col(i0 + i + r)[p0..p0 + kb];
                    for (p, &v) in col.iter().enumerate() {
                        ap[base + p * mr + r] = v;
                    }
                }
            }
        }
        if h < mr {
            for p in 0..kb {
                ap[base + p * mr + h..base + (p + 1) * mr].fill(T::ZERO);
            }
        }
        i += mr;
        base += mr * kb;
    }
}

/// Pack the `kb x nb` block of `op(B)` starting at `(p0, j0)` into
/// `nr`-column micro-panels, zero-padded to a full `nr` (the active
/// backend's register-tile width).
///
/// Like [`pack_a`], `bp` may hold stale arena contents; pad lanes of a
/// ragged last panel are zeroed explicitly instead of zero-filling the
/// whole buffer up front.
#[allow(clippy::too_many_arguments)]
fn pack_b<T: Scalar>(
    tb: Trans,
    b: MatRef<'_, T>,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    bp: &mut [T],
) {
    debug_assert_eq!(bp.len(), nb.div_ceil(nr) * nr * kb);
    let mut j = 0;
    let mut base = 0;
    while j < nb {
        let w = nr.min(nb - j);
        match tb {
            Trans::No => {
                for jj in 0..w {
                    let col = &b.col(j0 + j + jj)[p0..p0 + kb];
                    for (p, &v) in col.iter().enumerate() {
                        bp[base + p * nr + jj] = v;
                    }
                }
            }
            Trans::Yes => {
                // op(B)(p, c) = B(c, p): each packed row is a column of B.
                for p in 0..kb {
                    let col = &b.col(p0 + p)[j0 + j..j0 + j + w];
                    for (jj, &v) in col.iter().enumerate() {
                        bp[base + p * nr + jj] = v;
                    }
                }
            }
        }
        if w < nr {
            for p in 0..kb {
                bp[base + p * nr + w..base + (p + 1) * nr].fill(T::ZERO);
            }
        }
        j += nr;
        base += nr * kb;
    }
}

/// Streaming triple loop for products too small to amortize packing.
fn gemm_small<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match ta {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    // Column kernels go through the SIMD dispatch too: axpy is element-wise
    // fused on every backend (bit-identical to the scalar oracle), dot
    // reassociates the reduction (tolerance-gated).
    let sk = T::small_kernels(crate::simd::active());
    for j in 0..n {
        {
            let cj = c.col_mut(j);
            if beta == T::ZERO {
                cj.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in cj.iter_mut() {
                    *v *= beta;
                }
            }
        }
        match (ta, tb) {
            (Trans::No, Trans::No) => {
                for l in 0..k {
                    let blj = alpha * b.at(l, j);
                    if blj != T::ZERO {
                        // SAFETY: the kernel table only holds available
                        // backends; slices carry their lengths.
                        unsafe { (sk.axpy)(blj, a.col(l), c.col_mut(j)) };
                    }
                }
            }
            (Trans::No, Trans::Yes) => {
                for l in 0..k {
                    let blj = alpha * b.at(j, l);
                    if blj != T::ZERO {
                        // SAFETY: as above.
                        unsafe { (sk.axpy)(blj, a.col(l), c.col_mut(j)) };
                    }
                }
            }
            (Trans::Yes, Trans::No) => {
                // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both columns contiguous.
                let bj = b.col(j);
                for i in 0..m {
                    // SAFETY: as above.
                    let acc = unsafe { (sk.dot)(a.col(i), bj) };
                    *c.at_mut(i, j) = alpha.mul_add(acc, c.at(i, j));
                }
            }
            (Trans::Yes, Trans::Yes) => {
                for i in 0..m {
                    let ai = a.col(i);
                    let mut acc = T::ZERO;
                    for (l, &x) in ai.iter().enumerate() {
                        acc = x.mul_add(b.at(j, l), acc);
                    }
                    *c.at_mut(i, j) = alpha.mul_add(acc, c.at(i, j));
                }
            }
        }
    }
}

/// Side selector for triangular operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Triangular factor multiplies from the left.
    Left,
    /// Triangular factor multiplies from the right.
    Right,
}

/// `B = U * B` (Side::Left) or `B = B * U` (Side::Right), where `U` is the
/// upper-triangular part of `u` (non-unit diagonal).
pub fn trmm_upper<T: Scalar>(side: Side, u: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    let n = u.cols();
    debug_assert!(u.rows() >= n);
    match side {
        Side::Left => {
            assert_eq!(b.rows(), n);
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                crate::blas2::trmv_upper(u, col);
            }
        }
        Side::Right => {
            assert_eq!(b.cols(), n);
            // B(:,j) = sum_{l <= j} B(:,l) * U(l,j), computed right-to-left.
            for j in (0..n).rev() {
                let ujj = u.at(j, j);
                for i in 0..b.rows() {
                    let mut acc = b.at(i, j) * ujj;
                    for l in 0..j {
                        acc = b.at(i, l).mul_add(u.at(l, j), acc);
                    }
                    b.set(i, j, acc);
                }
            }
        }
    }
}

/// Solve `U * X = B` in place (X overwrites B), `U` upper triangular.
pub fn trsm_upper_left<T: Scalar>(u: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    let n = u.cols();
    debug_assert!(u.rows() >= n);
    assert_eq!(b.rows(), n);
    for j in 0..b.cols() {
        crate::blas2::trsv_upper(u, b.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let (m, k) = a.shape();
        let n = b.cols();
        assert_eq!(b.rows(), k);
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| a[(i, l)] * b[(l, j)]).sum())
    }

    #[test]
    fn gemm_all_transpose_combos() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(3, 5, |i, j| (2 * i + j) as f64);
        let want = naive_gemm(&a, &b);

        let combos: [(Trans, Matrix<f64>, Trans, Matrix<f64>); 4] = [
            (Trans::No, a.clone(), Trans::No, b.clone()),
            (Trans::Yes, a.transpose(), Trans::No, b.clone()),
            (Trans::No, a.clone(), Trans::Yes, b.transpose()),
            (Trans::Yes, a.transpose(), Trans::Yes, b.transpose()),
        ];
        for (ta, am, tb, bm) in combos {
            let mut c = Matrix::<f64>::zeros(4, 5);
            gemm(ta, tb, 1.0, am.as_ref(), bm.as_ref(), 0.0, c.as_mut());
            for i in 0..4 {
                for j in 0..5 {
                    assert!(
                        (c[(i, j)] - want[(i, j)]).abs() < 1e-12,
                        "({ta:?},{tb:?}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_packed_path_all_transpose_combos() {
        // Big enough for the packed path, ragged enough to exercise every
        // MR/NR/KC/MC edge (odd m, n not a multiple of NR, k > KC).
        let (m, n, k) = (101, 53, 300);
        let a = Matrix::from_fn(m, k, |i, j| (((i * 7 + j * 13) % 17) as f64 - 8.0) / 3.0);
        let b = Matrix::from_fn(k, n, |i, j| (((i * 5 + j * 11) % 13) as f64 - 6.0) / 5.0);
        let want = naive_gemm(&a, &b);
        let combos: [(Trans, Matrix<f64>, Trans, Matrix<f64>); 4] = [
            (Trans::No, a.clone(), Trans::No, b.clone()),
            (Trans::Yes, a.transpose(), Trans::No, b.clone()),
            (Trans::No, a.clone(), Trans::Yes, b.transpose()),
            (Trans::Yes, a.transpose(), Trans::Yes, b.transpose()),
        ];
        for (ta, am, tb, bm) in combos {
            let mut c = Matrix::from_fn(m, n, |i, j| (i + j) as f64);
            gemm(ta, tb, 2.0, am.as_ref(), bm.as_ref(), -1.0, c.as_mut());
            for i in 0..m {
                for j in 0..n {
                    let ref_v = 2.0 * want[(i, j)] - (i + j) as f64;
                    assert!(
                        (c[(i, j)] - ref_v).abs() < 1e-9 * (1.0 + ref_v.abs()),
                        "({ta:?},{tb:?}) at ({i},{j}): {} vs {ref_v}",
                        c[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn packed_path_is_immune_to_stale_arena_contents() {
        // Poison every pooled buffer, then run a ragged packed-path shape:
        // if `pack_a`/`pack_b` left any pad lane unzeroed, the NaNs would
        // propagate straight into C through the microkernel.
        crate::arena::poison_pools::<f64>(f64::NAN);
        let (m, n, k) = (13, 5, 64); // 2mnk just over the packed threshold
        let a = Matrix::from_fn(m, k, |i, j| (((i * 7 + j * 13) % 17) as f64 - 8.0) / 3.0);
        let b = Matrix::from_fn(k, n, |i, j| (((i * 5 + j * 11) % 13) as f64 - 6.0) / 5.0);
        let want = naive_gemm(&a, &b);
        let mut c = Matrix::<f64>::zeros(m, n);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..m {
            for j in 0..n {
                assert!(
                    (c[(i, j)] - want[(i, j)]).abs() < 1e-12,
                    "poisoned arena leaked into C at ({i},{j}): {}",
                    c[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::<f64>::eye(2, 2);
        let b = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Matrix::from_row_major(2, 2, &[10.0, 10.0, 10.0, 10.0]);
        gemm(
            Trans::No,
            Trans::No,
            2.0,
            a.as_ref(),
            b.as_ref(),
            0.5,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 7.0); // 2*1 + 0.5*10
        assert_eq!(c[(1, 1)], 13.0);
    }

    #[test]
    fn gemm_parallel_path_matches_serial() {
        // Big enough to trigger the rayon path.
        let a = Matrix::from_fn(64, 48, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(48, 130, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let want = naive_gemm(&a, &b);
        let mut c = Matrix::<f64>::zeros(64, 130);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..64 {
            for j in 0..130 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tall_skinny_output_uses_row_parallel_grid() {
        // The 8192 x 16 trailing-update shape must not silently serialize:
        // too few columns for a column split, so the row split must fire.
        let (rows, cols) = parallel_grid(8192, 16, 16);
        assert_eq!(cols, 1, "16 columns fit one column task");
        assert!(
            rows > 1,
            "tall-skinny gemm must split rows, got {rows} row tasks"
        );
        // And the tiny shapes must stay serial.
        assert_eq!(parallel_grid(32, 8, 8), (1, 1));
    }

    #[test]
    fn tall_skinny_parallel_matches_naive() {
        let m = 8192;
        let a = Matrix::from_fn(m, 16, |i, j| (((i * 3 + j * 7) % 23) as f64 - 11.0) / 7.0);
        let b = Matrix::from_fn(16, 16, |i, j| (((i * 13 + j) % 19) as f64 - 9.0) / 5.0);
        let want = naive_gemm(&a, &b);
        let mut c = Matrix::<f64>::zeros(m, 16);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in (0..m).step_by(97) {
            for j in 0..16 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-9 * (1.0 + want[(i, j)].abs()));
            }
        }
    }

    #[test]
    fn gemm_on_submatrix_views_with_ld() {
        // The packed path must respect leading dimensions on all operands.
        let big_a = Matrix::from_fn(80, 70, |i, j| ((i * 31 + j * 3) % 29) as f64 - 14.0);
        let big_b = Matrix::from_fn(70, 90, |i, j| ((i * 17 + j * 7) % 23) as f64 - 11.0);
        let a = big_a.view(5, 3, 60, 40);
        let b = big_b.view(9, 11, 40, 48);
        let mut cm = Matrix::<f64>::zeros(100, 60);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a,
            b,
            0.0,
            cm.view_mut(7, 2, 60, 48),
        );
        let want = naive_gemm(&a.to_owned(), &b.to_owned());
        for i in 0..60 {
            for j in 0..48 {
                assert!(
                    (cm[(7 + i, 2 + j)] - want[(i, j)]).abs() < 1e-9,
                    "({i},{j})"
                );
            }
        }
        // Border untouched.
        assert_eq!(cm[(0, 0)], 0.0);
        assert_eq!(cm[(99, 59)], 0.0);
    }

    #[test]
    fn gemm_zero_k_scales_only() {
        let a = Matrix::<f64>::zeros(3, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            2.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(2, 1)], 8.0);
    }

    #[test]
    fn trmm_left_matches_gemm_with_triangle() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut got = b.clone();
        trmm_upper(Side::Left, u.as_ref(), got.as_mut());
        let want = naive_gemm(&u, &b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trmm_right_matches_gemm_with_triangle() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(2, 3, |i, j| (2 * i + j + 1) as f64);
        let mut got = b.clone();
        trmm_upper(Side::Right, u.as_ref(), got.as_mut());
        let want = naive_gemm(&b, &u);
        for i in 0..2 {
            for j in 0..3 {
                assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_inverts_trmm() {
        let u = Matrix::from_row_major(3, 3, &[2.0f64, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 7.0]);
        let b = Matrix::from_fn(3, 4, |i, j| (i * 3 + j) as f64 - 4.0);
        let mut x = b.clone();
        trmm_upper(Side::Left, u.as_ref(), x.as_mut());
        trsm_upper_left(u.as_ref(), x.as_mut());
        for i in 0..3 {
            for j in 0..4 {
                assert!((x[(i, j)] - b[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
