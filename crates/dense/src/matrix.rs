//! Column-major matrix storage and borrowed views.
//!
//! Everything in the workspace stores matrices in column-major (Fortran/
//! LAPACK) order: element `(i, j)` of a matrix with leading dimension `ld`
//! lives at linear index `j * ld + i`. The owning type [`Matrix`] always has
//! `ld == rows`; views ([`MatRef`], [`MatMut`]) may have `ld > rows` so that
//! sub-panels of a larger matrix can be processed in place, which is how the
//! CAQR grid of blocks is addressed.

use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Owning column-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// All-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Identity-like matrix: ones on the main diagonal, zeros elsewhere
    /// (works for rectangular shapes, like LAPACK `laset` with alpha=0, beta=1).
    pub fn eye(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        for d in 0..rows.min(cols) {
            m[(d, d)] = T::ONE;
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a column-major data vector. Panics unless
    /// `data.len() == rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from row-major data (convenient for literals in tests).
    pub fn from_row_major(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self::from_fn(rows, cols, |i, j| data[i * cols + j])
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw column-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw column-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let r = self.rows;
        &mut self.data[j * r..(j + 1) * r]
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            data: &mut self.data,
        }
    }

    /// Immutable view of the `nr x nc` submatrix with top-left corner `(r0, c0)`.
    #[inline]
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_, T> {
        self.as_ref().submatrix(r0, c0, nr, nc)
    }

    /// Mutable view of the `nr x nc` submatrix with top-left corner `(r0, c0)`.
    #[inline]
    pub fn view_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_, T> {
        self.as_mut().submatrix_mut(r0, c0, nr, nc)
    }

    /// Owned transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy of a submatrix as an owned matrix.
    pub fn extract(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix<T> {
        Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Overwrite the submatrix at `(r0, c0)` with `src`.
    pub fn paste(&mut self, r0: usize, c0: usize, src: &Matrix<T>) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols);
        for j in 0..src.cols {
            for i in 0..src.rows {
                self[(r0 + i, c0 + j)] = src[(i, j)];
            }
        }
    }

    /// Upper-triangular copy of the leading `k x cols` part: entries below the
    /// main diagonal are zeroed (`k = min(rows, cols)` rows retained).
    pub fn upper_triangular(&self) -> Matrix<T> {
        let k = self.rows.min(self.cols);
        Matrix::from_fn(
            k,
            self.cols,
            |i, j| if i <= j { self[(i, j)] } else { T::ZERO },
        )
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.rows + i]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.rows + i]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let rshow = self.rows.min(8);
        let cshow = self.cols.min(8);
        for i in 0..rshow {
            write!(f, "  ")?;
            for j in 0..cshow {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            if cshow < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rshow < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable borrowed view with an explicit leading dimension.
#[derive(Clone, Copy)]
pub struct MatRef<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Construct from raw parts. `data` must cover `(cols-1)*ld + rows` elements.
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows);
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Leading dimension.
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element accessor.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Column `j` (the `rows` live entries only).
    #[inline(always)]
    pub fn col(&self, j: usize) -> &'a [T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Subview.
    pub fn submatrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a, T> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "submatrix out of range"
        );
        let off = c0 * self.ld + r0;
        let end = if nr > 0 && nc > 0 {
            off + (nc - 1) * self.ld + nr
        } else {
            off
        };
        MatRef {
            data: &self.data[off..end],
            rows: nr,
            cols: nc,
            ld: self.ld,
        }
    }

    /// Copy into an owned matrix.
    pub fn to_owned(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

/// Mutable borrowed view with an explicit leading dimension.
pub struct MatMut<'a, T> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Construct from raw parts. `data` must cover `(cols-1)*ld + rows` elements.
    pub fn from_parts(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows);
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Leading dimension.
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element accessor.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Set element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i] = v;
    }

    /// Mutable element reference.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.ld + i]
    }

    /// Raw mutable pointer to element `(0, 0)`. Pair with [`Self::ld`] to
    /// build shared handles (`MatPtr`) over disjoint blocks of this view.
    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.data.as_mut_ptr()
    }

    /// Column `j` immutably.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Column `j` mutably.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        let off = j * self.ld;
        &mut self.data[off..off + self.rows]
    }

    /// Immutable reborrow of the whole view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Mutable reborrow (lets a `MatMut` be passed to helpers repeatedly).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Mutable subview (consumes the borrow; use through `rb_mut()` to keep it).
    pub fn submatrix_mut(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a, T> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "submatrix out of range"
        );
        let off = c0 * self.ld + r0;
        let end = if nr > 0 && nc > 0 {
            off + (nc - 1) * self.ld + nr
        } else {
            off
        };
        MatMut {
            data: &mut self.data[off..end],
            rows: nr,
            cols: nc,
            ld: self.ld,
        }
    }

    /// Split into columns `[0, c)` and `[c, cols)`.
    pub fn split_at_col(self, c: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(c <= self.cols);
        // When ld > rows the storage ends `ld - rows` short of `cols * ld`;
        // splitting off the final (possibly empty) tail must clamp to len.
        let off = (c * self.ld).min(self.data.len());
        let (left, right) = self.data.split_at_mut(off);
        (
            MatMut {
                data: left,
                rows: self.rows,
                cols: c,
                ld: self.ld,
            },
            MatMut {
                data: right,
                rows: self.rows,
                cols: self.cols - c,
                ld: self.ld,
            },
        )
    }

    /// Overwrite every entry with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copy from a same-shape source view.
    pub fn copy_from(&mut self, src: MatRef<'_, T>) {
        assert_eq!((self.rows, self.cols), (src.rows(), src.cols()));
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Copy into an owned matrix.
    pub fn to_owned(&self) -> Matrix<T> {
        self.as_ref().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_row_major(2, 3, &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        // Column-major layout: first column is (1, 4).
        assert_eq!(m.col(0), &[1.0, 4.0]);
        assert_eq!(m.shape(), (2, 3));
    }

    #[test]
    fn eye_is_rectangular_identity() {
        let m = Matrix::<f32>::eye(4, 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 0)], 0.0);
        assert_eq!(m[(3, 1)], 0.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn views_address_submatrices() {
        let m = Matrix::from_fn(6, 6, |i, j| (i + 10 * j) as f64);
        let v = m.view(2, 3, 3, 2);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.at(0, 0), m[(2, 3)]);
        assert_eq!(v.at(2, 1), m[(4, 4)]);
        // Column of a view respects the leading dimension.
        assert_eq!(v.col(1), &[m[(2, 4)], m[(3, 4)], m[(4, 4)]]);
    }

    #[test]
    fn view_mut_writes_through() {
        let mut m = Matrix::<f64>::zeros(4, 4);
        {
            let mut v = m.view_mut(1, 1, 2, 2);
            v.set(0, 0, 7.0);
            v.set(1, 1, 9.0);
        }
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(2, 2)], 9.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_at_col_partitions() {
        let mut m = Matrix::from_fn(3, 4, |i, j| (i + j) as f32);
        let mm = m.as_mut();
        let (mut l, mut r) = mm.split_at_col(1);
        assert_eq!(l.cols(), 1);
        assert_eq!(r.cols(), 3);
        l.set(0, 0, 100.0);
        r.set(0, 0, 200.0);
        assert_eq!(m[(0, 0)], 100.0);
        assert_eq!(m[(0, 1)], 200.0);
    }

    #[test]
    fn extract_paste_round_trip() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * j) as f64);
        let sub = m.extract(1, 2, 3, 2);
        let mut n = Matrix::<f64>::zeros(5, 5);
        n.paste(1, 2, &sub);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(n[(1 + i, 2 + j)], m[(1 + i, 2 + j)]);
            }
        }
    }

    #[test]
    fn upper_triangular_zeroes_strict_lower() {
        let m = Matrix::from_fn(4, 3, |i, j| (1 + i + j) as f64);
        let r = m.upper_triangular();
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r[(1, 0)], 0.0);
        assert_eq!(r[(2, 1)], 0.0);
        assert_eq!(r[(0, 2)], m[(0, 2)]);
    }

    #[test]
    #[should_panic]
    fn submatrix_out_of_range_panics() {
        let m = Matrix::<f64>::zeros(3, 3);
        let _ = m.view(2, 2, 2, 2);
    }
}
