//! Blocked Householder QR (LAPACK `geqrf` / `larft` / `larfb` / `orgqr` /
//! `ormqr` analogues).
//!
//! This is the algorithm of Figure 1 in the paper: a BLAS2 panel
//! factorization followed by a BLAS3 trailing-matrix update through the
//! compact `WY` representation `Q = I - V T V^T`. It is the algorithm that
//! MAGMA, CULA and MKL all use, and therefore the heart of every baseline.

use crate::blas3::{gemm, Trans};
use crate::householder::geqr2;
use crate::matrix::{MatMut, MatRef, Matrix};
use crate::scalar::Scalar;

/// Default panel width. LAPACK uses 32-64; the GPU baselines override it.
pub const DEFAULT_NB: usize = 32;

/// Form the upper-triangular block reflector `T` (LAPACK `larft`, forward
/// columnwise) from `k` reflectors stored in the columns of `v`
/// (unit lower-trapezoidal, as produced by [`geqr2`]) and their `tau`s.
pub fn larft<T: Scalar>(v: MatRef<'_, T>, tau: &[T]) -> Matrix<T> {
    let m = v.rows();
    let k = tau.len();
    debug_assert!(v.cols() >= k);
    let mut t = Matrix::<T>::zeros(k, k);
    for i in 0..k {
        let ti = tau[i];
        t[(i, i)] = ti;
        if ti == T::ZERO {
            continue;
        }
        // t[0..i, i] = -tau_i * V[:, 0..i]^T * v_i, using the implicit
        // unit-diagonal/zero structure of v_i (nonzeros at rows i.. with
        // v_i[i] = 1).
        for j in 0..i {
            // dot over rows i..m of column j and column i; v(i, j) entries
            // below the diagonal of column j, plus the unit element of v_i.
            let mut acc = v.at(i, j); // v_j[i] * v_i[i] with v_i[i] == 1
            for r in i + 1..m {
                acc = v.at(r, j).mul_add(v.at(r, i), acc);
            }
            t[(j, i)] = -ti * acc;
        }
        // t[0..i, i] = T[0..i, 0..i] * t[0..i, i]  (triangular matvec).
        for row in 0..i {
            let mut acc = T::ZERO;
            for l in row..i {
                acc = t[(row, l)].mul_add(t[(l, i)], acc);
            }
            t[(row, i)] = acc;
        }
    }
    t
}

/// Materialize the unit lower-trapezoidal `V` (m x k) from a factored panel
/// (explicit ones on the diagonal, zeros above).
pub fn extract_v<T: Scalar>(panel: MatRef<'_, T>, k: usize) -> Matrix<T> {
    let m = panel.rows();
    Matrix::from_fn(m, k, |i, j| {
        if i > j {
            panel.at(i, j)
        } else if i == j {
            T::ONE
        } else {
            T::ZERO
        }
    })
}

/// [`larft`] over a **pre-transposed** factored panel
/// (`at[r * width + j] == A(r, j)`), bit-identical to
/// `larft(extract_v(panel), tau)`.
///
/// The `V^T V` Gram accumulators are built in one streaming pass over the
/// contiguous rows: for each pair `j < i` the chain starts from the
/// reference's `v_j[i] * v_i[i]` seed (`v_i[i] == 1`, i.e. `A(i, j)`) and
/// adds `A(r, j) * A(r, i)` terms in ascending `r` with the same `mul_add`,
/// so every accumulator reproduces the reference chain exactly. The
/// triangular `T` assembly then matches [`larft`] statement for statement.
///
/// `tri_block` declares stacked-triangle structure as in
/// [`crate::householder::geqr2_transposed`]: products whose row is a
/// structural zero of either column are skipped (a zero-sign-only change).
pub fn larft_transposed<T: Scalar>(
    at: &[T],
    rows: usize,
    width: usize,
    tri_block: usize,
    tau: &[T],
) -> Matrix<T> {
    let k = tau.len();
    debug_assert!(k <= rows.min(width));
    debug_assert_eq!(at.len(), rows * width);
    let mut gram = crate::arena::take_dirty::<T>(k * k);
    // Tiered through the runtime SIMD dispatch: the pass autovectorizes, so
    // compiling it with the active backend's ISA is all it needs. Every
    // tier is bit-identical (hardware FMA rounds like the libm `fma` of the
    // default codegen, and the chains are per-pair independent).
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the active backend's features are present on this host by
        // construction of `crate::simd::active`.
        match crate::simd::active() {
            crate::simd::Backend::Avx512 => {
                unsafe { gram_pass_x86_avx512(at, rows, width, tri_block, k, &mut gram) };
                return larft_from_gram(&gram, tau);
            }
            crate::simd::Backend::Avx2 => {
                unsafe { gram_pass_x86_avx2(at, rows, width, tri_block, k, &mut gram) };
                return larft_from_gram(&gram, tau);
            }
            crate::simd::Backend::Fma => {
                unsafe { gram_pass_x86_fma(at, rows, width, tri_block, k, &mut gram) };
                return larft_from_gram(&gram, tau);
            }
            _ => {}
        }
    }
    gram_pass(at, rows, width, tri_block, k, &mut gram);
    larft_from_gram(&gram, tau)
}

/// Assemble `T` directly from Gram accumulators — the tail of [`larft`],
/// statement for statement. This is the partner of the fused
/// [`crate::householder::geqr2_gram_transposed`] sweep, which builds the
/// same `gram` contents inside the factor passes; the pair produces exactly
/// the `T` that `larft_transposed` (and hence [`larft`]) would.
pub fn larft_from_gram<T: Scalar>(gram: &[T], tau: &[T]) -> Matrix<T> {
    let k = tau.len();
    debug_assert!(gram.len() >= k * k);
    let backend = crate::simd::active();
    if backend != crate::simd::Backend::Scalar {
        return assemble_t_simd(gram, tau, k, backend);
    }
    assemble_t(gram, tau, k)
}

/// [`assemble_t`] as a **column sweep** through the runtime SIMD dispatch
/// tables: instead of one serial dot chain per row of `T[0..i, i]`, the
/// triangular matvec is computed as `i` fused-axpy updates over the
/// contiguous column-major columns of `T`, each dispatched through
/// [`crate::simd::SmallKernels::axpy`].
///
/// Bit-identical to the scalar oracle: the reference row chain for row `r`
/// is `acc = fma(T[r, l], s_l, acc)` for `l = r..i` ascending (seeded at
/// zero, `s_l` the `-tau_i * gram` column seeds). The column sweep visits
/// `l` ascending and updates rows `0..=l`, so row `r` receives exactly the
/// updates `l = r..i` in the same order; the fused axpy computes
/// `fma(s_l, T[r, l], acc)`, whose product commutes bitwise for every
/// finite value (and hardware FMA rounds like the libm `fma` the default
/// codegen uses). Columns with `tau == 0` contribute `fma(s_l, 0, acc)`
/// terms exactly as the oracle's chains do.
fn assemble_t_simd<T: Scalar>(
    gram: &[T],
    tau: &[T],
    k: usize,
    backend: crate::simd::Backend,
) -> Matrix<T> {
    let sk = T::small_kernels(backend);
    let mut t = Matrix::<T>::zeros(k, k);
    // Dirty arena scratch: `seed[..i]` and `acc[..i]` are fully written
    // before any read in each column pass.
    let mut scratch = crate::arena::take_dirty::<T>(2 * k);
    let (seed, acc) = scratch.split_at_mut(k);
    for i in 0..k {
        let ti = tau[i];
        t[(i, i)] = ti;
        if ti == T::ZERO {
            continue;
        }
        for (j, s) in seed[..i].iter_mut().enumerate() {
            *s = -ti * gram[j * k + i];
        }
        for a in acc[..i].iter_mut() {
            *a = T::ZERO;
        }
        for (l, &sl) in seed[..i].iter().enumerate() {
            // Column `l` of `T` holds the chain coefficients for rows
            // `0..l` plus `tau_l` on the diagonal — contiguous in the
            // column-major storage.
            let col = &t.col(l)[..=l];
            // SAFETY: the kernel table came from the caller's backend,
            // which is available on this CPU by construction.
            unsafe { (sk.axpy)(sl, col, &mut acc[..=l]) };
        }
        let coli = t.col_mut(i);
        coli[..i].copy_from_slice(&acc[..i]);
    }
    t
}

/// Per-tier `#[target_feature]` instantiations of [`gram_pass`]: the body
/// is `#[inline(always)]`, so each wrapper compiles it with its ISA and the
/// autovectorizer does the rest.
macro_rules! gram_pass_tier {
    ($name:ident, $($feat:literal),+) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature($(enable = $feat),+)]
        unsafe fn $name<T: Scalar>(
            at: &[T],
            rows: usize,
            width: usize,
            tri_block: usize,
            k: usize,
            gram: &mut [T],
        ) {
            gram_pass(at, rows, width, tri_block, k, gram);
        }
    };
}

gram_pass_tier!(gram_pass_x86_fma, "fma");
gram_pass_tier!(gram_pass_x86_avx2, "avx2", "fma");
gram_pass_tier!(gram_pass_x86_avx512, "avx512f", "avx2", "fma");

/// One streaming pass building `gram[j * k + i]` (for `j < i`) as the
/// reference [`larft`] dot chain over columns `j` and `i`.
#[inline(always)]
fn gram_pass<T: Scalar>(
    at: &[T],
    rows: usize,
    width: usize,
    tri_block: usize,
    k: usize,
    gram: &mut [T],
) {
    for r in 0..rows {
        let row = &at[r * width..r * width + width];
        let loc = if tri_block > 0 { r % tri_block } else { 0 };
        // Product terms: pairs (j, i) with i < r contribute A(r,j)*A(r,i),
        // appended in ascending r to each independent accumulator.
        for i in loc..r.min(k) {
            let vi = row[i];
            for j in loc..i {
                gram[j * k + i] = row[j].mul_add(vi, gram[j * k + i]);
            }
        }
        // Seed terms (the reference chain's `v_j[i] * 1` start at row i):
        // unrestricted so the seed is an exact copy even inside a triangle.
        if r < k {
            for j in 0..r {
                gram[j * k + r] = row[j];
            }
        }
    }
}

/// Assemble the upper-triangular `T` from the Gram accumulators, statement
/// for statement as the tail of [`larft`].
fn assemble_t<T: Scalar>(gram: &[T], tau: &[T], k: usize) -> Matrix<T> {
    let mut t = Matrix::<T>::zeros(k, k);
    for i in 0..k {
        let ti = tau[i];
        t[(i, i)] = ti;
        if ti == T::ZERO {
            continue;
        }
        for j in 0..i {
            t[(j, i)] = -ti * gram[j * k + i];
        }
        for row in 0..i {
            let mut acc = T::ZERO;
            for l in row..i {
                acc = t[(row, l)].mul_add(t[(l, i)], acc);
            }
            t[(row, i)] = acc;
        }
    }
    t
}

/// [`extract_v`] from a pre-transposed factored panel
/// (`at[r * width + j] == A(r, j)`): unit diagonal, zeros above, tails below.
pub fn extract_v_transposed<T: Scalar>(at: &[T], rows: usize, width: usize, k: usize) -> Matrix<T> {
    debug_assert_eq!(at.len(), rows * width);
    debug_assert!(k <= width);
    let mut v = Matrix::<T>::zeros(rows, k);
    for j in 0..k {
        let col = v.col_mut(j);
        col[j] = T::ONE;
        for (i, x) in col.iter_mut().enumerate().skip(j + 1) {
            *x = at[i * width + j];
        }
    }
    v
}

/// Apply the block reflector from the left (LAPACK `larfb`, forward
/// columnwise): `C = (I - V T' V^T) C` where `T' = T^T` when
/// `transpose == true` (i.e. applying `Q^T`) and `T' = T` otherwise.
pub fn larfb_left<T: Scalar>(
    v: MatRef<'_, T>,
    t: MatRef<'_, T>,
    transpose: bool,
    mut c: MatMut<'_, T>,
) {
    let k = t.cols();
    let n = c.cols();
    debug_assert_eq!(v.rows(), c.rows());
    if n == 0 || k == 0 {
        return;
    }
    // Both intermediates are written with beta == 0 GEMMs, which fully
    // define every element, so dirty arena scratch is safe and bit-exact.
    let mut wbuf = crate::arena::take_dirty::<T>(k * n);
    let mut twbuf = crate::arena::take_dirty::<T>(k * n);
    // W = V^T C  (k x n)
    let mut w = MatMut::from_parts(&mut wbuf, k, n, k);
    gemm(
        Trans::Yes,
        Trans::No,
        T::ONE,
        v,
        c.as_ref(),
        T::ZERO,
        w.rb_mut(),
    );
    // W = op(T) W  — T is k x k upper triangular; apply densely (k is small).
    let mut tw = MatMut::from_parts(&mut twbuf, k, n, k);
    gemm(
        if transpose { Trans::Yes } else { Trans::No },
        Trans::No,
        T::ONE,
        t,
        w.as_ref(),
        T::ZERO,
        tw.rb_mut(),
    );
    // C -= V W
    gemm(
        Trans::No,
        Trans::No,
        -T::ONE,
        v,
        tw.as_ref(),
        T::ONE,
        c.rb_mut(),
    );
}

/// Blocked Householder QR factorization in place (LAPACK `geqrf`).
///
/// Returns the `tau` array of length `min(m, n)`. On exit `a` holds `R` in
/// its upper triangle and the reflector tails below the diagonal.
pub fn geqrf<T: Scalar>(a: &mut Matrix<T>, nb: usize) -> Vec<T> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut tau = vec![T::ZERO; k];
    let nb = nb.max(1);
    let mut j = 0;
    while j < k {
        let jb = nb.min(k - j);
        // BLAS2 panel factorization of A[j.., j..j+jb].
        geqr2(a.view_mut(j, j, m - j, jb), &mut tau[j..j + jb]);
        if j + jb < n {
            // BLAS3 trailing update via the compact WY form.
            let (v, t) = {
                let panel = a.view(j, j, m - j, jb);
                let v = extract_v(panel, jb);
                let t = larft(v.as_ref(), &tau[j..j + jb]);
                (v, t)
            };
            let trailing = a.view_mut(j, j + jb, m - j, n - j - jb);
            larfb_left(v.as_ref(), t.as_ref(), true, trailing);
        }
        j += jb;
    }
    tau
}

/// Form the explicit `m x k` orthogonal factor from a [`geqrf`] result
/// (LAPACK `orgqr`), applying reflector blocks in reverse order to `[I; 0]`.
pub fn orgqr<T: Scalar>(a: &Matrix<T>, tau: &[T], k: usize, nb: usize) -> Matrix<T> {
    let m = a.rows();
    assert!(k <= tau.len() && k <= m);
    let mut q = Matrix::<T>::zeros(m, k);
    for d in 0..k {
        q[(d, d)] = T::ONE;
    }
    let nb = nb.max(1);
    // Block starts, processed last-to-first.
    let mut starts: Vec<usize> = (0..k).step_by(nb).collect();
    starts.reverse();
    for &j in &starts {
        let jb = nb.min(k - j);
        let panel = a.view(j, j, m - j, jb);
        let v = extract_v(panel, jb);
        let t = larft(v.as_ref(), &tau[j..j + jb]);
        let sub = q.view_mut(j, j, m - j, k - j);
        larfb_left(v.as_ref(), t.as_ref(), false, sub);
    }
    q
}

/// Apply `Q` or `Q^T` from a [`geqrf`] factorization to `c` in place
/// (LAPACK `ormqr`, side = left).
pub fn ormqr<T: Scalar>(a: &Matrix<T>, tau: &[T], transpose: bool, c: &mut Matrix<T>, nb: usize) {
    let m = a.rows();
    assert_eq!(c.rows(), m);
    let k = tau.len();
    let n = c.cols();
    let nb = nb.max(1);
    let mut starts: Vec<usize> = (0..k).step_by(nb).collect();
    if !transpose {
        starts.reverse();
    }
    for &j in &starts {
        let jb = nb.min(k - j);
        let panel = a.view(j, j, m - j, jb);
        let v = extract_v(panel, jb);
        let t = larft(v.as_ref(), &tau[j..j + jb]);
        let sub = c.view_mut(j, 0, m - j, n);
        larfb_left(v.as_ref(), t.as_ref(), transpose, sub);
    }
}

/// Solve the least-squares problem `min ||A x - b||` via blocked QR.
/// Returns `x` of length `n`. `A` is consumed (factored in place).
pub fn least_squares<T: Scalar>(mut a: Matrix<T>, b: &[T]) -> Vec<T> {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "least_squares requires m >= n");
    assert_eq!(b.len(), m);
    let tau = geqrf(&mut a, DEFAULT_NB);
    let mut c = Matrix::from_fn(m, 1, |i, _| b[i]);
    ormqr(&a, &tau, true, &mut c, DEFAULT_NB);
    let mut x: Vec<T> = (0..n).map(|i| c[(i, 0)]).collect();
    crate::blas2::trsv_upper(a.view(0, 0, n, n), &mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::{geqr2 as unblocked, org2r};

    fn test_matrix(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| {
            (((i * 37 + j * 11 + 3) % 29) as f64 - 14.0) / 9.0 + if i == j { 2.5 } else { 0.0 }
        })
    }

    #[test]
    fn blocked_matches_unblocked_r() {
        let a = test_matrix(40, 17);
        let mut blocked = a.clone();
        let tau_b = geqrf(&mut blocked, 5);
        let mut unb = a.clone();
        let mut tau_u = vec![0.0; 17];
        unblocked(unb.as_mut(), &mut tau_u);
        // R is unique up to sign; larfg's deterministic sign choice makes the
        // two factorizations produce identical R entries here.
        for j in 0..17 {
            for i in 0..=j {
                assert!(
                    (blocked[(i, j)] - unb[(i, j)]).abs() < 1e-10,
                    "R mismatch at ({i},{j}): {} vs {}",
                    blocked[(i, j)],
                    unb[(i, j)]
                );
            }
        }
        assert_eq!(tau_b.len(), tau_u.len());
    }

    #[test]
    fn geqrf_reconstructs() {
        for (m, n, nb) in [(30, 12, 4), (12, 12, 5), (64, 16, 16), (9, 4, 100)] {
            let a = test_matrix(m, n);
            let mut f = a.clone();
            let tau = geqrf(&mut f, nb);
            let q = orgqr(&f, &tau, n.min(m), nb);
            let r = f.upper_triangular();
            let mut qr = Matrix::<f64>::zeros(m, n);
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                q.as_ref(),
                r.as_ref(),
                0.0,
                qr.as_mut(),
            );
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (qr[(i, j)] - a[(i, j)]).abs() < 1e-10,
                        "({m},{n},{nb}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn orgqr_matches_org2r() {
        let a = test_matrix(25, 10);
        let mut f1 = a.clone();
        let mut tau1 = vec![0.0; 10];
        unblocked(f1.as_mut(), &mut tau1);
        let q_unb = org2r(&f1, &tau1, 10);

        let mut f2 = a.clone();
        let tau2 = geqrf(&mut f2, 3);
        let q_blk = orgqr(&f2, &tau2, 10, 3);
        for i in 0..25 {
            for j in 0..10 {
                assert!((q_unb[(i, j)] - q_blk[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn ormqr_transpose_gives_r() {
        let a = test_matrix(31, 9);
        let mut f = a.clone();
        let tau = geqrf(&mut f, 4);
        let mut c = a.clone();
        ormqr(&f, &tau, true, &mut c, 4);
        for j in 0..9 {
            for i in 0..31 {
                let want = if i <= j { f[(i, j)] } else { 0.0 };
                assert!((c[(i, j)] - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn ormqr_round_trip() {
        let a = test_matrix(20, 8);
        let mut f = a.clone();
        let tau = geqrf(&mut f, 8);
        let c0 = test_matrix(20, 5);
        let mut c = c0.clone();
        ormqr(&f, &tau, true, &mut c, 8);
        ormqr(&f, &tau, false, &mut c, 8);
        for i in 0..20 {
            for j in 0..5 {
                assert!((c[(i, j)] - c0[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn larft_consistent_with_sequential_application() {
        // (I - V T V^T) must equal H_0 H_1 ... H_{k-1}.
        let a = test_matrix(12, 4);
        let mut f = a.clone();
        let mut tau = vec![0.0; 4];
        unblocked(f.as_mut(), &mut tau);
        let v = extract_v(f.view(0, 0, 12, 4), 4);
        let t = larft(v.as_ref(), &tau);
        // Apply both to the identity and compare.
        let mut c1 = Matrix::<f64>::eye(12, 12);
        larfb_left(v.as_ref(), t.as_ref(), true, c1.as_mut());
        let mut c2 = Matrix::<f64>::eye(12, 12);
        crate::householder::apply_q2(&f, &tau, true, &mut c2);
        for i in 0..12 {
            for j in 0..12 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-11, "({i},{j})");
            }
        }
    }

    #[test]
    fn transposed_factor_kernels_match_reference_bitwise() {
        for (m, n) in [(24usize, 6usize), (16, 16), (9, 4), (7, 1), (40, 12)] {
            let a = test_matrix(m, n);
            let k = m.min(n);
            // Reference pipeline.
            let mut f = a.clone();
            let mut tau_ref = vec![0.0; k];
            unblocked(f.as_mut(), &mut tau_ref);
            let v_ref = extract_v(f.view(0, 0, m, n), k);
            let t_ref = larft(v_ref.as_ref(), &tau_ref);
            // Transposed pipeline on the row-major packing of the same data.
            let mut at = vec![0.0f64; m * n];
            for j in 0..n {
                for i in 0..m {
                    at[i * n + j] = a[(i, j)];
                }
            }
            let mut tau = vec![0.0; k];
            let mut gram = vec![f64::NAN; k * k];
            crate::householder::geqr2_gram_transposed(&mut at, m, n, 0, &mut tau, &mut gram);
            assert_eq!(tau, tau_ref, "{m}x{n} tau");
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(
                        at[i * n + j].to_bits(),
                        f[(i, j)].to_bits(),
                        "{m}x{n} factored ({i},{j})"
                    );
                }
            }
            assert_eq!(larft_transposed(&at, m, n, 0, &tau), t_ref, "{m}x{n} T");
            assert_eq!(larft_from_gram(&gram, &tau), t_ref, "{m}x{n} fused-gram T");
            assert_eq!(extract_v_transposed(&at, m, n, k), v_ref, "{m}x{n} V");
        }
    }

    #[test]
    fn simd_t_assembly_matches_scalar_oracle_bitwise() {
        // The column-sweep SIMD assembly must reproduce the scalar row-chain
        // oracle bit for bit on every backend this host exposes, including
        // columns with a zero tau (skipped reflectors).
        for &k in &[1usize, 2, 3, 5, 8, 13, 17, 32] {
            let g = crate::generate::uniform::<f64>(k, k, 0x7a5 + k as u64);
            let gram: Vec<f64> = (0..k * k).map(|idx| g[(idx / k, idx % k)]).collect();
            let tv = crate::generate::uniform::<f64>(k, 1, 0x1b3 + k as u64);
            let mut tau: Vec<f64> = (0..k).map(|i| 1.0 + tv[(i, 0)]).collect();
            if k > 2 {
                tau[k / 2] = 0.0;
                tau[k - 1] = 0.0;
            }
            let want = assemble_t(&gram, &tau, k);
            for backend in crate::simd::Backend::available() {
                let got = assemble_t_simd(&gram, &tau, k, backend);
                assert_eq!(got, want, "k={k} backend={}", backend.name());
            }
        }
    }

    #[test]
    fn transposed_tri_block_skips_match_dense_iteration() {
        // A stack of upper-triangular w x w blocks (the factor_tree layout):
        // skipping the structural zeros must agree with the dense iteration
        // on every value (zero signs may differ; f64 == treats them equal).
        let (w, blocks) = (6usize, 4usize);
        let rows = w * blocks;
        let mut at = vec![0.0f64; rows * w];
        for b in 0..blocks {
            for i in 0..w {
                for j in i..w {
                    at[(b * w + i) * w + j] = (((b * 31 + i * 7 + j * 3 + 1) % 13) as f64 - 6.0)
                        / 3.0
                        + if i == j { 2.0 } else { 0.0 };
                }
            }
        }
        let mut at_dense = at.clone();
        let (mut tau_s, mut tau_d) = (vec![0.0; w], vec![0.0; w]);
        crate::householder::geqr2_transposed(&mut at, rows, w, w, &mut tau_s);
        crate::householder::geqr2_transposed(&mut at_dense, rows, w, 0, &mut tau_d);
        assert_eq!(tau_s, tau_d);
        assert_eq!(at, at_dense);
        // Structural zeros survived as exact zeros.
        for b in 1..blocks {
            for i in 0..w {
                for j in 0..i {
                    assert_eq!(at[(b * w + i) * w + j], 0.0, "block {b} ({i},{j})");
                }
            }
        }
        let t_s = larft_transposed(&at, rows, w, w, &tau_s);
        let t_d = larft_transposed(&at_dense, rows, w, 0, &tau_d);
        assert_eq!(t_s, t_d);
    }

    #[test]
    fn least_squares_recovers_planted_solution() {
        // Build b = A x_true exactly; LS must recover x_true.
        let a = test_matrix(50, 6);
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let mut b = vec![0.0; 50];
        for j in 0..6 {
            for i in 0..50 {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = least_squares(a, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
