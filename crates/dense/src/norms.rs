//! Matrix norms and the standard QR quality metrics used throughout the
//! test suites and EXPERIMENTS.md.

use crate::blas3::{gemm, Trans};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Frobenius norm.
pub fn frobenius<T: Scalar>(a: &Matrix<T>) -> f64 {
    let mut acc = 0.0f64;
    for v in a.as_slice() {
        let x = v.to_f64();
        acc += x * x;
    }
    acc.sqrt()
}

/// Largest absolute entry.
pub fn max_abs<T: Scalar>(a: &Matrix<T>) -> f64 {
    a.as_slice()
        .iter()
        .fold(0.0f64, |m, v| m.max(v.to_f64().abs()))
}

/// 1-norm (maximum absolute column sum).
pub fn one_norm<T: Scalar>(a: &Matrix<T>) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.to_f64().abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm (maximum absolute row sum).
pub fn inf_norm<T: Scalar>(a: &Matrix<T>) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (s, v) in sums.iter_mut().zip(a.col(j)) {
            *s += v.to_f64().abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Relative reconstruction error `||A - Q R||_F / ||A||_F` (returns the
/// absolute error when `A` is zero).
pub fn reconstruction_error<T: Scalar>(a: &Matrix<T>, q: &Matrix<T>, r: &Matrix<T>) -> f64 {
    let (m, n) = a.shape();
    let mut qr = Matrix::<T>::zeros(m, n);
    gemm(
        Trans::No,
        Trans::No,
        T::ONE,
        q.as_ref(),
        r.as_ref(),
        T::ZERO,
        qr.as_mut(),
    );
    let mut diff = 0.0f64;
    for (x, y) in qr.as_slice().iter().zip(a.as_slice()) {
        let d = x.to_f64() - y.to_f64();
        diff += d * d;
    }
    let na = frobenius(a);
    if na > 0.0 {
        diff.sqrt() / na
    } else {
        diff.sqrt()
    }
}

/// Orthogonality error `||Q^T Q - I||_F`.
pub fn orthogonality_error<T: Scalar>(q: &Matrix<T>) -> f64 {
    let n = q.cols();
    let mut qtq = Matrix::<T>::zeros(n, n);
    gemm(
        Trans::Yes,
        Trans::No,
        T::ONE,
        q.as_ref(),
        q.as_ref(),
        T::ZERO,
        qtq.as_mut(),
    );
    let mut acc = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let want = if i == j { 1.0 } else { 0.0 };
            let d = qtq[(i, j)].to_f64() - want;
            acc += d * d;
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        let a = Matrix::from_row_major(2, 2, &[3.0f64, -4.0, 0.0, 0.0]);
        assert!((frobenius(&a) - 5.0).abs() < 1e-14);
        assert_eq!(max_abs(&a), 4.0);
        assert_eq!(one_norm(&a), 4.0);
        assert_eq!(inf_norm(&a), 7.0);
    }

    #[test]
    fn identity_is_perfectly_orthogonal() {
        let q = Matrix::<f64>::eye(6, 4);
        assert!(orthogonality_error(&q) < 1e-15);
    }

    #[test]
    fn reconstruction_error_zero_for_exact_factors() {
        let q = Matrix::<f64>::eye(4, 4);
        let r = Matrix::from_fn(4, 4, |i, j| if i <= j { (i + j + 1) as f64 } else { 0.0 });
        assert!(reconstruction_error(&r, &q, &r) < 1e-15);
    }
}
