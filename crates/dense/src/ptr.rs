//! Shared mutable matrix handle for data-parallel tile kernels.
//!
//! A GPU kernel launch gives every thread block mutable access to its own
//! disjoint tile of one matrix in global memory. Rust's borrow checker cannot
//! express "disjoint tiles of one allocation decided at runtime", so the
//! simulator uses this small unsafe core: a raw column-major pointer plus
//! shape, `Send + Sync`, with all bounds checked (always, not only in debug
//! builds — the cost of the check is irrelevant next to the simulated work).
//! CI additionally runs this module's tests (and the `blas3` packed-GEMM
//! tests that lean on it) under Miri to catch undefined behaviour the
//! asserts cannot.
//!
//! # Safety contract
//!
//! A [`MatPtr`] may only be used inside a kernel launch whose grid assigns
//! **disjoint** element sets to different blocks, and the borrowed matrix
//! must outlive the launch. The launch APIs in `gpu-sim` uphold the lifetime
//! part by scoping execution; grid disjointness is asserted by the kernel
//! constructors in the `caqr` crate (each block index maps to a unique tile).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Unsafe shared-mutable view of a column-major matrix, used as the
/// simulator's "global memory" pointer.
#[derive(Clone, Copy)]
pub struct MatPtr<T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
}

// SAFETY: `MatPtr` is only handed to kernels that write disjoint tiles (see
// module docs); reads of elements written by other blocks within one launch
// are forbidden by the same contract, so there are no data races.
unsafe impl<T: Send> Send for MatPtr<T> {}
unsafe impl<T: Sync> Sync for MatPtr<T> {}

impl<T: Scalar> MatPtr<T> {
    /// Capture a matrix. The caller promises the matrix outlives every use
    /// of the returned handle and that concurrent users touch disjoint tiles.
    pub fn new(m: &mut Matrix<T>) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            ld: m.rows(),
            ptr: m.as_mut_slice().as_mut_ptr(),
        }
    }

    /// Build a handle from raw parts, e.g. over a `MatMut` view with a
    /// leading dimension (`MatMut::as_mut_ptr` + `MatMut::ld`).
    ///
    /// # Safety
    /// `ptr` must point at a column-major matrix of `rows x cols` elements
    /// with leading dimension `ld` that outlives every use of the handle;
    /// concurrent users must touch disjoint tiles per the module contract.
    pub unsafe fn from_raw_parts(ptr: *mut T, rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1));
        Self {
            ptr,
            rows,
            cols,
            ld,
        }
    }

    /// Capture a matrix for read-only kernel use (e.g. the Householder
    /// vectors of an already-factored panel applied to a different matrix).
    ///
    /// The caller promises `set`/`store_tile` are never invoked on the
    /// returned handle, and that no other handle mutates the matrix during
    /// this handle's lifetime; under that contract the const-to-mut cast is
    /// never used for writing.
    pub fn new_readonly(m: &Matrix<T>) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            ld: m.rows(),
            ptr: m.as_slice().as_ptr() as *mut T,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        assert!(
            i < self.rows && j < self.cols,
            "MatPtr index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        let off = j * self.ld + i;
        // Defense in depth for handles built via `from_raw_parts`: the
        // linear offset must stay inside the ld x cols footprint even if a
        // caller lied about the shape. (Free in release; the Miri CI job
        // runs these tests with the checks on.)
        debug_assert!(off < self.ld * self.cols.max(1), "MatPtr offset overflow");
        off
    }

    /// Read element `(i, j)`.
    ///
    /// # Safety
    /// See the module-level contract: the element must not be concurrently
    /// written by another block in the same launch.
    #[inline(always)]
    pub unsafe fn get(&self, i: usize, j: usize) -> T {
        *self.ptr.add(self.idx(i, j))
    }

    /// Write element `(i, j)`.
    ///
    /// # Safety
    /// See the module-level contract: the element must belong to the calling
    /// block's tile.
    #[inline(always)]
    pub unsafe fn set(&self, i: usize, j: usize, v: T) {
        *self.ptr.add(self.idx(i, j)) = v;
    }

    /// Copy the `nr x nc` tile at `(r0, c0)` into `dst` (column-major,
    /// tightly packed with leading dimension `nr`). Returns bytes moved.
    ///
    /// # Safety
    /// The tile must not be concurrently written by another block.
    pub unsafe fn load_tile(
        &self,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        dst: &mut [T],
    ) -> u64 {
        assert!(dst.len() >= nr * nc, "tile buffer too small");
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "tile out of range"
        );
        for j in 0..nc {
            debug_assert!((c0 + j) * self.ld + r0 + nr <= self.ld * self.cols);
            let src = self.ptr.add((c0 + j) * self.ld + r0);
            std::ptr::copy_nonoverlapping(src, dst.as_mut_ptr().add(j * nr), nr);
        }
        nr as u64 * nc as u64 * T::BYTES
    }

    /// Copy the `nr x nc` tile at `(r0, c0)` into `dst` **row-major**
    /// (`dst[r * nc + j] = A(r0 + r, c0 + j)`) — the pre-transposed packing
    /// of the strategy-4 factor micro-kernel, done in a single pass over the
    /// source (contiguous column reads, strided packed writes) with no
    /// intermediate column-major staging buffer. Returns bytes moved.
    ///
    /// # Safety
    /// The tile must not be concurrently written by another block.
    pub unsafe fn load_tile_transposed(
        &self,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        dst: &mut [T],
    ) -> u64 {
        assert!(dst.len() >= nr * nc, "tile buffer too small");
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "tile out of range"
        );
        // Column-outer: contiguous reads from the (large) source matrix;
        // the strided writes land in the small packed buffer, which stays
        // cache-resident.
        for j in 0..nc {
            debug_assert!((c0 + j) * self.ld + r0 + nr <= self.ld * self.cols);
            let src = self.ptr.add((c0 + j) * self.ld + r0);
            for r in 0..nr {
                dst[r * nc + j] = *src.add(r);
            }
        }
        nr as u64 * nc as u64 * T::BYTES
    }

    /// Write `src` (**row-major**, `src[r * nc + j]`) to the tile at
    /// `(r0, c0)` — the inverse of [`Self::load_tile_transposed`], again one
    /// pass with contiguous destination-column writes. Returns bytes moved.
    ///
    /// # Safety
    /// The tile must belong exclusively to the calling block.
    pub unsafe fn store_tile_transposed(
        &self,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        src: &[T],
    ) -> u64 {
        assert!(src.len() >= nr * nc, "tile buffer too small");
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "tile out of range"
        );
        // Column-outer mirror of `load_tile_transposed`: contiguous writes to
        // the (large) destination matrix, strided reads from the
        // cache-resident packed buffer.
        for j in 0..nc {
            debug_assert!((c0 + j) * self.ld + r0 + nr <= self.ld * self.cols);
            let dst = self.ptr.add((c0 + j) * self.ld + r0);
            for r in 0..nr {
                *dst.add(r) = src[r * nc + j];
            }
        }
        nr as u64 * nc as u64 * T::BYTES
    }

    /// Write `src` (column-major, leading dimension `nr`) to the tile at
    /// `(r0, c0)`. Returns bytes moved.
    ///
    /// # Safety
    /// The tile must belong exclusively to the calling block.
    pub unsafe fn store_tile(&self, r0: usize, c0: usize, nr: usize, nc: usize, src: &[T]) -> u64 {
        assert!(src.len() >= nr * nc, "tile buffer too small");
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "tile out of range"
        );
        for j in 0..nc {
            debug_assert!((c0 + j) * self.ld + r0 + nr <= self.ld * self.cols);
            let dst = self.ptr.add((c0 + j) * self.ld + r0);
            std::ptr::copy_nonoverlapping(src.as_ptr().add(j * nr), dst, nr);
        }
        nr as u64 * nc as u64 * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_tiles() {
        let mut m = Matrix::<f64>::zeros(64, 8);
        let p = MatPtr::new(&mut m);
        // 8 blocks each own an 8-row tile; write block id everywhere.
        (0..8u64).into_par_iter().for_each(|b| {
            let r0 = (b as usize) * 8;
            for j in 0..8 {
                for i in 0..8 {
                    unsafe { p.set(r0 + i, j, b as f64) };
                }
            }
        });
        for b in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    assert_eq!(m[(b * 8 + i, j)], b as f64);
                }
            }
        }
    }

    #[test]
    fn tile_load_store_round_trip() {
        let mut m = Matrix::from_fn(10, 10, |i, j| (i * 100 + j) as f32);
        let orig = m.clone();
        let p = MatPtr::new(&mut m);
        let mut buf = vec![0.0f32; 12];
        unsafe {
            let read = p.load_tile(2, 3, 4, 3, &mut buf);
            assert_eq!(read, 48);
            // Perturb then restore.
            for v in buf.iter_mut() {
                *v += 1.0;
            }
            p.store_tile(2, 3, 4, 3, &buf);
        }
        assert_eq!(m[(2, 3)], orig[(2, 3)] + 1.0);
        assert_eq!(m[(5, 5)], orig[(5, 5)] + 1.0);
        assert_eq!(m[(0, 0)], orig[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_get_panics() {
        let mut m = Matrix::<f32>::zeros(4, 4);
        let p = MatPtr::new(&mut m);
        unsafe {
            p.get(4, 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_set_panics() {
        let mut m = Matrix::<f32>::zeros(4, 4);
        let p = MatPtr::new(&mut m);
        unsafe {
            p.set(0, 4, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "tile buffer too small")]
    fn undersized_tile_buffer_panics() {
        let mut m = Matrix::<f32>::zeros(8, 8);
        let p = MatPtr::new(&mut m);
        let mut buf = vec![0.0f32; 3];
        unsafe {
            p.load_tile(0, 0, 2, 2, &mut buf);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_tile_panics() {
        let mut m = Matrix::<f32>::zeros(4, 4);
        let p = MatPtr::new(&mut m);
        let mut buf = vec![0.0f32; 16];
        unsafe {
            p.load_tile(2, 2, 4, 4, &mut buf);
        }
    }
}
