//! Typed errors for the dense substrate.
//!
//! Routines that can be handed malformed input by a *caller* (wrong
//! dimensions, non-finite data) return [`DenseError`] instead of panicking,
//! so the GPU kernels and solvers built on top can degrade gracefully.
//! Invariants that hold by construction inside this crate remain `assert!`s
//! — those are programmer errors, not recoverable conditions (DESIGN.md §9).

/// Error from a dense linear-algebra routine given invalid input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DenseError {
    /// Two dimensions that must agree do not.
    ShapeMismatch {
        /// Which routine/check failed.
        context: &'static str,
        /// The dimension the routine required.
        expected: usize,
        /// The dimension it was given.
        got: usize,
    },
    /// A NaN or infinity where finite data is required.
    NonFinite {
        /// Which routine/check failed.
        context: &'static str,
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
    },
}

impl std::fmt::Display for DenseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenseError::ShapeMismatch {
                context,
                expected,
                got,
            } => {
                write!(f, "{context}: expected dimension {expected}, got {got}")
            }
            DenseError::NonFinite { context, row, col } => {
                write!(f, "{context}: non-finite value at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_context_and_numbers() {
        let e = DenseError::ShapeMismatch {
            context: "larf_left",
            expected: 8,
            got: 5,
        };
        let s = e.to_string();
        assert!(s.contains("larf_left") && s.contains('8') && s.contains('5'));
        let e = DenseError::NonFinite {
            context: "caqr input",
            row: 3,
            col: 1,
        };
        assert!(e.to_string().contains("(3, 1)"));
    }
}
