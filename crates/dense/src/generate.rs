//! Deterministic test/benchmark matrix generators.
//!
//! Every generator takes an explicit seed so experiments are reproducible
//! bit-for-bit across runs and machines.

use crate::blas1::{nrm2, scal};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn uniform<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0f64, 1.0);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(&mut rng)))
}

/// Standard-normal-ish matrix (sum of uniforms, adequate for conditioning
/// purposes and avoids pulling in a normal distribution implementation).
pub fn gaussian_like<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(-0.5f64, 0.5);
    Matrix::from_fn(rows, cols, |_, _| {
        let s: f64 = (0..12).map(|_| dist.sample(&mut rng)).sum();
        T::from_f64(s)
    })
}

/// Matrix with prescribed singular-value decay `sigma_k = decay^k`
/// (`decay < 1` for ill conditioning, `1.0` for orthogonal-like). Built as
/// `Q1 * diag(sigma) * Q2^T` with random orthogonal-ish factors obtained by
/// MGS of random matrices.
pub fn graded<T: Scalar>(rows: usize, cols: usize, decay: f64, seed: u64) -> Matrix<T> {
    assert!(rows >= cols);
    let (q1, _) = crate::gram_schmidt::modified_gram_schmidt(&uniform::<T>(rows, cols, seed));
    let (q2, _) =
        crate::gram_schmidt::modified_gram_schmidt(&uniform::<T>(cols, cols, seed ^ 0x9e37_79b9));
    let mut scaled = q1;
    for j in 0..cols {
        let s = T::from_f64(decay.powi(j as i32));
        scal(s, scaled.col_mut(j));
    }
    let mut out = Matrix::<T>::zeros(rows, cols);
    crate::blas3::gemm(
        crate::blas3::Trans::No,
        crate::blas3::Trans::Yes,
        T::ONE,
        scaled.as_ref(),
        q2.as_ref(),
        T::ZERO,
        out.as_mut(),
    );
    out
}

/// Rank-`r` matrix plus optional additive noise: `sum_{k<r} x_k y_k^T`.
pub fn low_rank<T: Scalar>(
    rows: usize,
    cols: usize,
    rank: usize,
    noise: f64,
    seed: u64,
) -> Matrix<T> {
    let x = uniform::<T>(rows, rank, seed);
    let y = uniform::<T>(cols, rank, seed ^ 0x5151_5151);
    let mut out = Matrix::<T>::zeros(rows, cols);
    crate::blas3::gemm(
        crate::blas3::Trans::No,
        crate::blas3::Trans::Yes,
        T::ONE,
        x.as_ref(),
        y.as_ref(),
        T::ZERO,
        out.as_mut(),
    );
    if noise > 0.0 {
        let n = uniform::<T>(rows, cols, seed ^ 0xabcd);
        for (o, v) in out.as_mut_slice().iter_mut().zip(n.as_slice()) {
            *o += T::from_f64(noise) * *v;
        }
    }
    out
}

/// Krylov-sequence matrix `[v, Av, A^2 v, ..., A^{s-1} v]` for a sparse-ish
/// operator (tridiagonal + random diagonal), the s-step-method workload the
/// paper's introduction motivates. Columns are normalized after each power
/// so entries stay finite, preserving the extreme linear dependence that
/// makes these matrices hard to orthogonalize.
pub fn krylov_basis<T: Scalar>(n: usize, s: usize, seed: u64) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(0.5f64, 1.5);
    let diag: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let mut basis = Matrix::<T>::zeros(n, s);
    // v0 = normalized ones.
    {
        let c0 = basis.col_mut(0);
        c0.fill(T::ONE);
        let nn = nrm2(c0);
        scal(T::ONE / nn, c0);
    }
    for k in 1..s {
        let prev = basis.col(k - 1).to_vec();
        let col = basis.col_mut(k);
        for i in 0..n {
            // Tridiagonal stencil: A = diag(d) + sub/super-diagonal of -0.5.
            let mut acc = T::from_f64(diag[i]) * prev[i];
            if i > 0 {
                acc = T::from_f64(-0.5).mul_add(prev[i - 1], acc);
            }
            if i + 1 < n {
                acc = T::from_f64(-0.5).mul_add(prev[i + 1], acc);
            }
            col[i] = acc;
        }
        let nn = nrm2(col);
        if nn > T::ZERO {
            scal(T::ONE / nn, col);
        }
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::singular_values;

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let a = uniform::<f64>(16, 4, 42);
        let b = uniform::<f64>(16, 4, 42);
        assert_eq!(a, b);
        let c = uniform::<f64>(16, 4, 43);
        assert_ne!(a, c);
        for v in a.as_slice() {
            assert!(*v >= -1.0 && *v < 1.0);
        }
    }

    #[test]
    fn graded_matches_requested_decay() {
        let a = graded::<f64>(40, 6, 0.1, 7);
        let s = singular_values(&a);
        for (k, sv) in s.iter().enumerate() {
            let want = 0.1f64.powi(k as i32);
            assert!(
                (sv / want - 1.0).abs() < 1e-6,
                "sigma_{k} = {sv}, want {want}"
            );
        }
    }

    #[test]
    fn low_rank_has_requested_rank() {
        let a = low_rank::<f64>(30, 20, 3, 0.0, 11);
        let s = singular_values(&a);
        assert!(s[2] > 1e-8);
        assert!(s[3] < 1e-10 * s[0]);
    }

    #[test]
    fn krylov_columns_become_nearly_dependent() {
        // The motivating property: Krylov bases are terribly conditioned.
        let a = krylov_basis::<f64>(256, 12, 3);
        let s = singular_values(&a);
        assert!(s[0] / s[11] > 1e3, "condition {} too small", s[0] / s[11]);
        // All columns unit-normalized.
        for j in 0..12 {
            assert!((crate::blas1::nrm2(a.col(j)) - 1.0).abs() < 1e-12);
        }
    }
}
