//! Runtime SIMD dispatch for the hot microkernels (pulp/faer idiom).
//!
//! Every microkernel in this module is written **once** against the small
//! [`Vf`] vector abstraction (splat/load/store/mul_add/reduce) and
//! instantiated inside per-backend `#[target_feature]` wrappers, so one
//! generic body yields AVX-512, AVX2+FMA, NEON and portable-scalar code.
//! The backend is picked **at runtime** from CPU feature detection, cached
//! in a `OnceLock`, and overridable through the `CAQR_SIMD` environment
//! variable (`scalar`/`fma`/`avx2`/`avx512`/`neon`) for testing and
//! benchmarking.
//!
//! Three kernel families are dispatched:
//!
//! * the packed gemm microkernel ([`GemmKernel`]) — the register tile is
//!   per-backend (`mr x nr`), and `blas3` packs its micro-panels to match;
//! * the fused strategy-4 factor sweep ([`FactorKernels`]) — the dot and
//!   rank-1 row passes of `geqr2_gram_transposed`;
//! * the small dot/axpy column kernels ([`SmallKernels`]) used by the
//!   streaming gemm path and the compact-WY `larfb` column updates.
//!
//! **Oracle discipline**: the scalar kernels are the reference. The factor
//! sweep vectorizes across *independent* per-column accumulator chains with
//! fused ops on both paths, so every backend is **bit-identical** to the
//! scalar oracle there (libm `fma` and hardware FMA are both correctly
//! rounded). The gemm microkernel changes its register tile per backend,
//! which reorders the (associative-only-in-exact-arithmetic) k-loop, so it
//! is gated by ulp-bounded tests instead. Under Miri only the scalar
//! backend is reachable (`cfg(miri)`), keeping the interpreter off vendor
//! intrinsics it cannot execute.

use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Version tag of the dispatched kernel set, stored in the autotuner's
/// `MeasuredProfile` so a `target/caqr_tuned.json` measured against an older
/// kernel generation is invalidated and re-measured. Bump whenever kernel
/// selection or blocking behaviour changes in a way that shifts the optimum.
/// Version 1 was the scalar era; version 2 is the runtime-SIMD dispatch.
pub const KERNEL_VERSION: u32 = 2;

/// Widest microkernel register-tile height any backend uses (AVX-512 f32:
/// two 16-lane vectors). Sizes the ragged-edge spill buffer.
pub(crate) const MAX_MR: usize = 32;

/// Register tile of the portable scalar gemm microkernel (the PR-2 8x4
/// oracle shape).
pub(crate) const SCALAR_MR: usize = 8;
/// Register tile width of the scalar gemm microkernel.
pub(crate) const SCALAR_NR: usize = 4;

/// A SIMD instruction-set backend for the dispatched kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Portable scalar loops — the bit-exact oracle, and the only backend
    /// reachable under Miri.
    Scalar = 0,
    /// Scalar loop bodies compiled with hardware FMA enabled (x86 hosts
    /// with FMA but without AVX2, and the tier that fixes the old
    /// compile-time-only `cfg!(target_feature = "fma")` check).
    Fma = 1,
    /// AVX2 + FMA 256-bit vectors.
    Avx2 = 2,
    /// AVX-512F 512-bit vectors (implies the AVX2+FMA tier for remainders).
    Avx512 = 3,
    /// AArch64 NEON 128-bit vectors (baseline on that architecture).
    Neon = 4,
}

fn has_x86_feature(avx512: bool, avx2: bool) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let mut ok = std::arch::is_x86_feature_detected!("fma");
        if avx2 {
            ok = ok && std::arch::is_x86_feature_detected!("avx2");
        }
        if avx512 {
            ok = ok && std::arch::is_x86_feature_detected!("avx512f");
        }
        ok
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (avx512, avx2);
        false
    }
}

impl Backend {
    /// Stable lowercase name, also the accepted `CAQR_SIMD` value.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Fma => "fma",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Parse a `CAQR_SIMD` value (case-insensitive [`Backend::name`]).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "fma" => Some(Backend::Fma),
            "avx2" => Some(Backend::Avx2),
            "avx512" => Some(Backend::Avx512),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host. Scalar is always
    /// available; under Miri it is the *only* available backend so the
    /// interpreter never sees vendor intrinsics.
    pub fn is_available(self) -> bool {
        if cfg!(miri) {
            return self == Backend::Scalar;
        }
        match self {
            Backend::Scalar => true,
            Backend::Fma => has_x86_feature(false, false),
            Backend::Avx2 => has_x86_feature(false, true),
            Backend::Avx512 => has_x86_feature(true, true),
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Every backend runnable on this host, scalar first.
    pub fn available() -> Vec<Backend> {
        [
            Backend::Scalar,
            Backend::Fma,
            Backend::Avx2,
            Backend::Avx512,
            Backend::Neon,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            1 => Backend::Fma,
            2 => Backend::Avx2,
            3 => Backend::Avx512,
            4 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }
}

fn detect_best() -> Backend {
    if cfg!(miri) {
        return Backend::Scalar;
    }
    for b in [Backend::Avx512, Backend::Avx2, Backend::Fma, Backend::Neon] {
        if b.is_available() {
            return b;
        }
    }
    Backend::Scalar
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();
/// 0 = no override, otherwise `Backend as u8 + 1`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The backend every dispatched kernel uses right now: a test/bench
/// override if one is set ([`set_backend_override`]), otherwise the cached
/// detection result, honouring `CAQR_SIMD` on first call. An unavailable or
/// unknown `CAQR_SIMD` value warns on stderr and falls back to detection;
/// the environment is read once — later changes are ignored.
pub fn active() -> Backend {
    let ov = OVERRIDE.load(Ordering::Relaxed);
    if ov != 0 {
        return Backend::from_u8(ov - 1);
    }
    *ACTIVE.get_or_init(|| {
        let best = detect_best();
        match std::env::var("CAQR_SIMD") {
            Ok(s) => match Backend::parse(&s) {
                Some(b) if b.is_available() => b,
                Some(b) => {
                    eprintln!(
                        "caqr: CAQR_SIMD={} not available on this host; using {}",
                        b.name(),
                        best.name()
                    );
                    best
                }
                None => {
                    eprintln!(
                        "caqr: unknown CAQR_SIMD value {s:?} (want scalar/fma/avx2/avx512/neon); using {}",
                        best.name()
                    );
                    best
                }
            },
            Err(_) => best,
        }
    })
}

/// Force [`active`] to return `Some(backend)` until cleared with `None`.
/// Test/bench hook (the per-backend proptests and `wallclock_report`'s
/// per-ISA rows use it); panics if the backend is not available here.
pub fn set_backend_override(backend: Option<Backend>) {
    match backend {
        Some(b) => {
            assert!(
                b.is_available(),
                "CAQR_SIMD override {:?} is not available on this host",
                b
            );
            OVERRIDE.store(b as u8 + 1, Ordering::Relaxed);
        }
        None => OVERRIDE.store(0, Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Dispatched kernel tables
// ---------------------------------------------------------------------------

/// One backend's packed-gemm microkernel and its register-tile shape. The
/// packing routines in `blas3` pad micro-panels to this `mr`/`nr`.
pub struct GemmKernel<T> {
    /// Register-tile height (rows of C per microkernel call).
    pub mr: usize,
    /// Register-tile width (columns of C per microkernel call).
    pub nr: usize,
    /// `C[i..i+h, j..j+w] += alpha * apanel * bpanel` over a `kb`-deep
    /// packed panel pair: `(kb, apanel, bpanel, alpha, c_ij, ldc, h, w)`
    /// where `c_ij` points at `C(i, j)` in a column-major buffer of leading
    /// dimension `ldc`, and only the live `h x w` corner is written.
    ///
    /// # Safety
    /// `apanel`/`bpanel` must hold `kb * mr` / `kb * nr` packed elements,
    /// `h <= mr`, `w <= nr`, the `h x w` corner at `c_ij` must be in
    /// bounds, and the backend's ISA must be present (guaranteed when the
    /// table came from [`SimdScalar`] with an available backend).
    #[allow(clippy::type_complexity)]
    pub ukr: unsafe fn(usize, *const T, *const T, T, *mut T, usize, usize, usize),
}

// Manual impls: `#[derive(Clone, Copy)]` would bound `T: Clone/Copy`.
impl<T> Clone for GemmKernel<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for GemmKernel<T> {}

/// One backend's fused factor-sweep row passes (see
/// `householder::factor_transposed_core`). Every backend is bit-identical
/// to the scalar oracle: the chains are per-column independent and fused on
/// both paths.
pub struct FactorKernels<T> {
    /// The dot pass: `(at, width, rows, tri_block, j, col, wacc)` — exactly
    /// `householder::dot_rows`'s contract.
    ///
    /// # Safety
    /// Same slice-shape contract as the scalar `dot_rows` (`at` holds
    /// `rows * width`, `col` the reflector tail, `wacc` `width` lanes) plus
    /// backend ISA availability.
    #[allow(clippy::type_complexity)]
    pub dot_rows: unsafe fn(&mut [T], usize, usize, usize, usize, &[T], &mut [T]),
    /// The rank-1 update pass: `(at, width, rows, tri_block, j, col, next,
    /// tw)` — exactly `householder::rank1_rows`'s contract.
    ///
    /// # Safety
    /// Same slice-shape contract as the scalar `rank1_rows` plus backend
    /// ISA availability.
    #[allow(clippy::type_complexity)]
    pub rank1_rows: unsafe fn(&mut [T], usize, usize, usize, usize, &[T], &mut [T], &[T]),
}

impl<T> Clone for FactorKernels<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FactorKernels<T> {}

/// One backend's small column kernels for the streaming-gemm and
/// compact-WY `larfb` column paths.
pub struct SmallKernels<T> {
    /// Fused dot product over the common prefix of two slices. The
    /// reduction order is backend-specific (tolerance-gated, not bitwise).
    ///
    /// # Safety
    /// Backend ISA availability only; slices carry their lengths.
    pub dot: unsafe fn(&[T], &[T]) -> T,
    /// `y[i] += s * x[i]` (fused) over the common prefix — element-wise,
    /// so bit-identical across backends.
    ///
    /// # Safety
    /// Backend ISA availability only; slices carry their lengths.
    pub axpy: unsafe fn(T, &[T], &mut [T]),
}

impl<T> Clone for SmallKernels<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SmallKernels<T> {}

/// Scalar types with dispatched kernel tables. Implemented for `f32`/`f64`;
/// a supertrait of [`Scalar`] so every generic routine can fetch its
/// backend's kernels.
pub trait SimdScalar: Copy + Send + Sync + 'static {
    /// The packed-gemm microkernel for `backend`.
    fn gemm_kernel(backend: Backend) -> GemmKernel<Self>;
    /// The fused factor-sweep row passes for `backend`.
    fn factor_kernels(backend: Backend) -> FactorKernels<Self>;
    /// The small dot/axpy column kernels for `backend`.
    fn small_kernels(backend: Backend) -> SmallKernels<Self>;
}

// ---------------------------------------------------------------------------
// Vector abstraction
// ---------------------------------------------------------------------------

/// A SIMD vector of `T` lanes. Methods are `unsafe` because the caller must
/// guarantee the backing ISA is enabled; every implementation is
/// `#[inline(always)]` so bodies fold into the `#[target_feature]` wrappers
/// they are instantiated from and get compiled with that ISA.
pub(crate) trait Vf<T>: Copy {
    /// Lane count.
    const LANES: usize;
    /// Unaligned load of `LANES` elements.
    unsafe fn load(p: *const T) -> Self;
    /// Unaligned store of `LANES` elements.
    unsafe fn store(self, p: *mut T);
    /// Broadcast one scalar to every lane.
    unsafe fn splat(x: T) -> Self;
    /// Fused `self * b + acc`, per lane.
    unsafe fn mul_add(self, b: Self, acc: Self) -> Self;
    /// Fused `acc - self * b` (fnmadd), per lane.
    unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self;
    /// Lane-wise `self + b`.
    unsafe fn add(self, b: Self) -> Self;
    /// Horizontal sum of all lanes.
    unsafe fn reduce_add(self) -> T;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! 256-bit (AVX2+FMA) and 512-bit (AVX-512F) vector impls.
    use super::Vf;
    use core::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(crate) struct F64x4(__m256d);
    impl Vf<f64> for F64x4 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm256_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm256_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm256_fmadd_pd(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm256_fnmadd_pd(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(_mm256_add_pd(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f64 {
            let lo = _mm256_castpd256_pd128(self.0);
            let hi = _mm256_extractf128_pd(self.0, 1);
            let s = _mm_add_pd(lo, hi);
            let odd = _mm_unpackhi_pd(s, s);
            _mm_cvtsd_f64(_mm_add_sd(s, odd))
        }
    }

    #[derive(Clone, Copy)]
    pub(crate) struct F32x8(__m256);
    impl Vf<f32> for F32x8 {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm256_fmadd_ps(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm256_fnmadd_ps(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(_mm256_add_ps(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f32 {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps(self.0, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
            _mm_cvtss_f32(s)
        }
    }

    #[derive(Clone, Copy)]
    pub(crate) struct F64x8(__m512d);
    impl Vf<f64> for F64x8 {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm512_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm512_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm512_fmadd_pd(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm512_fnmadd_pd(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(_mm512_add_pd(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f64 {
            _mm512_reduce_add_pd(self.0)
        }
    }

    #[derive(Clone, Copy)]
    pub(crate) struct F32x16(__m512);
    impl Vf<f32> for F32x16 {
        const LANES: usize = 16;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(_mm512_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm512_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm512_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm512_fmadd_ps(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(_mm512_fnmadd_ps(self.0, b.0, acc.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(_mm512_add_ps(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f32 {
            _mm512_reduce_add_ps(self.0)
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon_v {
    //! 128-bit NEON vector impls (baseline on aarch64, no detection needed).
    use super::Vf;
    use core::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub(crate) struct F64x2(float64x2_t);
    impl Vf<f64> for F64x2 {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            Self(vld1q_f64(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(vdupq_n_f64(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(vfmaq_f64(acc.0, self.0, b.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(vfmsq_f64(acc.0, self.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(vaddq_f64(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f64 {
            vaddvq_f64(self.0)
        }
    }

    #[derive(Clone, Copy)]
    pub(crate) struct F32x4(float32x4_t);
    impl Vf<f32> for F32x4 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            Self(vld1q_f32(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            vst1q_f32(p, self.0)
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(vdupq_n_f32(x))
        }
        #[inline(always)]
        unsafe fn mul_add(self, b: Self, acc: Self) -> Self {
            Self(vfmaq_f32(acc.0, self.0, b.0))
        }
        #[inline(always)]
        unsafe fn neg_mul_add(self, b: Self, acc: Self) -> Self {
            Self(vfmsq_f32(acc.0, self.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(self, b: Self) -> Self {
            Self(vaddq_f32(self.0, b.0))
        }
        #[inline(always)]
        unsafe fn reduce_add(self) -> f32 {
            vaddvq_f32(self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels (the oracles)
// ---------------------------------------------------------------------------

/// The 8x4 scalar gemm microkernel body, bit-for-bit the PR-2 loop nest.
/// `FUSED` selects fused vs multiply-then-add arithmetic so the same body
/// serves the oracle (compile-time choice) and the [`Backend::Fma`] tier
/// (always fused, compiled under `#[target_feature(enable = "fma")]`).
///
/// # Safety
/// See [`GemmKernel::ukr`]; `mr = 8`, `nr = 4`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_ukr_scalar_body<T: Scalar, const FUSED: bool>(
    kb: usize,
    ap: *const T,
    bp: *const T,
    alpha: T,
    c: *mut T,
    ldc: usize,
    h: usize,
    w: usize,
) {
    #[inline(always)]
    fn f<T: Scalar, const FUSED: bool>(a: T, b: T, acc: T) -> T {
        if FUSED {
            a.mul_add(b, acc)
        } else {
            a * b + acc
        }
    }
    let mut acc = [[T::ZERO; SCALAR_MR]; SCALAR_NR];
    for p in 0..kb {
        let av = ap.add(p * SCALAR_MR);
        let bv = bp.add(p * SCALAR_NR);
        for (jj, accj) in acc.iter_mut().enumerate() {
            let bj = *bv.add(jj);
            for (ii, aij) in accj.iter_mut().enumerate() {
                *aij = f::<T, FUSED>(*av.add(ii), bj, *aij);
            }
        }
    }
    for (jj, accj) in acc.iter().take(w).enumerate() {
        let cj = c.add(jj * ldc);
        for (ii, &av) in accj.iter().take(h).enumerate() {
            let ci = cj.add(ii);
            *ci = f::<T, FUSED>(alpha, av, *ci);
        }
    }
}

/// Portable scalar gemm microkernel — the oracle. Fusedness follows the
/// compile-time target exactly like the PR-2 `fmadd`, so a
/// `CAQR_SIMD=scalar` run reproduces the old results bit-for-bit.
///
/// # Safety
/// See [`GemmKernel::ukr`]; `mr = 8`, `nr = 4`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_ukr_scalar<T: Scalar>(
    kb: usize,
    ap: *const T,
    bp: *const T,
    alpha: T,
    c: *mut T,
    ldc: usize,
    h: usize,
    w: usize,
) {
    if cfg!(any(target_feature = "fma", target_arch = "aarch64")) {
        gemm_ukr_scalar_body::<T, true>(kb, ap, bp, alpha, c, ldc, h, w)
    } else {
        gemm_ukr_scalar_body::<T, false>(kb, ap, bp, alpha, c, ldc, h, w)
    }
}

/// Scalar fused dot over the common prefix — the `gemm_small`/`larfb`
/// column oracle (one `mul_add` chain in ascending index order).
pub(crate) fn small_dot_scalar<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc = T::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// Scalar fused axpy `y += s * x` over the common prefix.
pub(crate) fn small_axpy_scalar<T: Scalar>(s: T, x: &[T], y: &mut [T]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = s.mul_add(xi, *yi);
    }
}

// ---------------------------------------------------------------------------
// Generic SIMD kernel bodies (instantiated inside target_feature wrappers)
// ---------------------------------------------------------------------------

/// Vectorized gemm microkernel: `RV` vectors of `V` tall (`mr = RV *
/// LANES`) by `NR` columns of accumulators. Full tiles are read-modified
/// in-place with vector loads/stores; ragged edges spill the accumulators
/// to a stack buffer and write the live corner scalar-wise.
///
/// # Safety
/// See [`GemmKernel::ukr`] with `mr = RV * V::LANES`, `nr = NR`; the ISA
/// backing `V` must be enabled in the calling context.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_ukr_v<T: Scalar, V: Vf<T>, const RV: usize, const NR: usize>(
    kb: usize,
    ap: *const T,
    bp: *const T,
    alpha: T,
    c: *mut T,
    ldc: usize,
    h: usize,
    w: usize,
) {
    let mr = RV * V::LANES;
    let zero = V::splat(T::ZERO);
    let mut acc = [[zero; RV]; NR];
    for p in 0..kb {
        let a0 = ap.add(p * mr);
        let b0 = bp.add(p * NR);
        let mut av = [zero; RV];
        for (q, aq) in av.iter_mut().enumerate() {
            *aq = V::load(a0.add(q * V::LANES));
        }
        for (jj, accj) in acc.iter_mut().enumerate() {
            let bj = V::splat(*b0.add(jj));
            for (q, aq) in accj.iter_mut().enumerate() {
                *aq = av[q].mul_add(bj, *aq);
            }
        }
    }
    if h == mr && w == NR {
        let va = V::splat(alpha);
        for (jj, accj) in acc.iter().enumerate() {
            let cj = c.add(jj * ldc);
            for (q, &aq) in accj.iter().enumerate() {
                let p = cj.add(q * V::LANES);
                aq.mul_add(va, V::load(p)).store(p);
            }
        }
    } else {
        let mut tmp = [T::ZERO; MAX_MR];
        for (jj, accj) in acc.iter().take(w).enumerate() {
            for (q, &aq) in accj.iter().enumerate() {
                aq.store(tmp.as_mut_ptr().add(q * V::LANES));
            }
            let cj = c.add(jj * ldc);
            for (ii, &tv) in tmp.iter().take(h).enumerate() {
                let ci = cj.add(ii);
                *ci = alpha.mul_add(tv, *ci);
            }
        }
    }
}

/// Vectorized factor-sweep dot pass. Register-resident accumulators when
/// the width is a small multiple of a vector ([`dot_rows_rv`]), otherwise
/// memory-resident lanes chunked wide/narrow/scalar ([`dot_rows_any_v`]).
/// Per-lane chains match the scalar oracle exactly (fused, same row
/// order), so the result is bit-identical on every backend.
///
/// # Safety
/// Scalar `dot_rows` contract + the ISA backing `VW`/`VN` enabled.
#[inline(always)]
unsafe fn dot_rows_v<T: Scalar, VW: Vf<T>, VN: Vf<T>>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    if width.is_multiple_of(VW::LANES) {
        match width / VW::LANES {
            1 => return dot_rows_rv::<T, VW, 1>(at, width, rows, tri_block, j, col, wacc),
            2 => return dot_rows_rv::<T, VW, 2>(at, width, rows, tri_block, j, col, wacc),
            4 => return dot_rows_rv::<T, VW, 4>(at, width, rows, tri_block, j, col, wacc),
            8 => return dot_rows_rv::<T, VW, 8>(at, width, rows, tri_block, j, col, wacc),
            _ => {}
        }
    } else if VN::LANES < VW::LANES && width.is_multiple_of(VN::LANES) {
        match width / VN::LANES {
            1 => return dot_rows_rv::<T, VN, 1>(at, width, rows, tri_block, j, col, wacc),
            2 => return dot_rows_rv::<T, VN, 2>(at, width, rows, tri_block, j, col, wacc),
            4 => return dot_rows_rv::<T, VN, 4>(at, width, rows, tri_block, j, col, wacc),
            8 => return dot_rows_rv::<T, VN, 8>(at, width, rows, tri_block, j, col, wacc),
            _ => {}
        }
    }
    dot_rows_any_v::<T, VW, VN>(at, width, rows, tri_block, j, col, wacc)
}

/// Dot pass with `RV` register-resident accumulator vectors
/// (`width == RV * V::LANES`).
///
/// # Safety
/// Scalar `dot_rows` contract + the ISA backing `V` enabled.
#[inline(always)]
unsafe fn dot_rows_rv<T: Scalar, V: Vf<T>, const RV: usize>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    debug_assert_eq!(width, RV * V::LANES);
    let mut acc = [V::splat(T::ZERO); RV];
    for (q, aq) in acc.iter_mut().enumerate() {
        *aq = V::load(wacc.as_ptr().add(q * V::LANES));
    }
    let base = at.as_mut_ptr();
    if tri_block == 0 {
        for r in j + 1..rows {
            let row = base.add(r * width);
            let vr = col[r - j];
            // Scatter before the loads: lane j must accumulate vr itself,
            // exactly like the scalar sweep.
            *row.add(j) = vr;
            let bv = V::splat(vr);
            for (q, aq) in acc.iter_mut().enumerate() {
                *aq = V::load(row.add(q * V::LANES)).mul_add(bv, *aq);
            }
        }
    } else {
        // Wrapping position counter, no per-row division (see the scalar
        // `dot_rows_w`): rows whose v_r is a structural zero are skipped.
        let mut loc = (j + 1) % tri_block;
        for r in j + 1..rows {
            let skip = loc > j;
            loc += 1;
            if loc == tri_block {
                loc = 0;
            }
            if skip {
                continue;
            }
            let row = base.add(r * width);
            let vr = col[r - j];
            *row.add(j) = vr;
            let bv = V::splat(vr);
            for (q, aq) in acc.iter_mut().enumerate() {
                *aq = V::load(row.add(q * V::LANES)).mul_add(bv, *aq);
            }
        }
    }
    for (q, &aq) in acc.iter().enumerate() {
        aq.store(wacc.as_mut_ptr().add(q * V::LANES));
    }
}

/// Dot pass for widths with no register-tile match: `wacc` stays in
/// memory, each row chunked as wide vectors, then narrow, then scalar.
///
/// # Safety
/// Scalar `dot_rows` contract + the ISA backing `VW`/`VN` enabled.
#[inline(always)]
unsafe fn dot_rows_any_v<T: Scalar, VW: Vf<T>, VN: Vf<T>>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    let nw = width / VW::LANES * VW::LANES;
    let nn = nw + (width - nw) / VN::LANES * VN::LANES;
    let base = at.as_mut_ptr();
    let wp = wacc.as_mut_ptr();
    for r in j + 1..rows {
        if tri_block > 0 && r % tri_block > j {
            continue;
        }
        let row = base.add(r * width);
        let vr = col[r - j];
        *row.add(j) = vr;
        let bw = VW::splat(vr);
        let mut l = 0;
        while l < nw {
            let p = wp.add(l);
            VW::load(row.add(l)).mul_add(bw, VW::load(p)).store(p);
            l += VW::LANES;
        }
        if nn > nw {
            let bn = VN::splat(vr);
            while l < nn {
                let p = wp.add(l);
                VN::load(row.add(l)).mul_add(bn, VN::load(p)).store(p);
                l += VN::LANES;
            }
        }
        while l < width {
            *wp.add(l) = (*row.add(l)).mul_add(vr, *wp.add(l));
            l += 1;
        }
    }
}

/// Vectorized factor-sweep rank-1 update pass, harvesting the next pivot
/// column like the scalar `rank1_rows`. The trailing segment is chunked
/// wide/narrow/scalar; `fnmadd` bit-matches the oracle's
/// `(-tw).mul_add(vr, seg)` on every lane.
///
/// # Safety
/// Scalar `rank1_rows` contract + the ISA backing `VW`/`VN` enabled.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn rank1_rows_v<T: Scalar, VW: Vf<T>, VN: Vf<T>>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    next: &mut [T],
    tw: &[T],
) {
    let nt = width - j - 1;
    let nw = nt / VW::LANES * VW::LANES;
    let nn = nw + (nt - nw) / VN::LANES * VN::LANES;
    let base = at.as_mut_ptr();
    let twp = tw.as_ptr();
    for r in j + 1..rows {
        let rowt = base.add(r * width + j + 1);
        if tri_block > 0 && r % tri_block > j {
            // Untouched by this reflector; its column j + 1 entry is final.
            next[r - j - 1] = *rowt;
            continue;
        }
        let vr = col[r - j];
        let bw = VW::splat(vr);
        let mut l = 0;
        while l < nw {
            let p = rowt.add(l);
            VW::load(twp.add(l)).neg_mul_add(bw, VW::load(p)).store(p);
            l += VW::LANES;
        }
        if nn > nw {
            let bn = VN::splat(vr);
            while l < nn {
                let p = rowt.add(l);
                VN::load(twp.add(l)).neg_mul_add(bn, VN::load(p)).store(p);
                l += VN::LANES;
            }
        }
        while l < nt {
            let p = rowt.add(l);
            *p = (-*twp.add(l)).mul_add(vr, *p);
            l += 1;
        }
        next[r - j - 1] = *rowt;
    }
}

/// Vectorized fused dot with four independent accumulator vectors (the
/// reduction order differs from the scalar oracle — tolerance-gated).
///
/// # Safety
/// The ISA backing `V` must be enabled.
#[inline(always)]
unsafe fn small_dot_v<T: Scalar, V: Vf<T>>(x: &[T], y: &[T]) -> T {
    let n = x.len().min(y.len());
    let xs = x.as_ptr();
    let ys = y.as_ptr();
    let stride = 4 * V::LANES;
    let mut acc = [V::splat(T::ZERO); 4];
    let mut i = 0;
    while i + stride <= n {
        for (q, aq) in acc.iter_mut().enumerate() {
            let o = i + q * V::LANES;
            *aq = V::load(xs.add(o)).mul_add(V::load(ys.add(o)), *aq);
        }
        i += stride;
    }
    while i + V::LANES <= n {
        acc[0] = V::load(xs.add(i)).mul_add(V::load(ys.add(i)), acc[0]);
        i += V::LANES;
    }
    let mut s = acc[0].add(acc[1]).add(acc[2].add(acc[3])).reduce_add();
    while i < n {
        s = (*xs.add(i)).mul_add(*ys.add(i), s);
        i += 1;
    }
    s
}

/// Vectorized fused axpy `y += s * x` — element-wise, bit-identical to the
/// scalar oracle.
///
/// # Safety
/// The ISA backing `V` must be enabled.
#[inline(always)]
unsafe fn small_axpy_v<T: Scalar, V: Vf<T>>(s: T, x: &[T], y: &mut [T]) {
    let n = x.len().min(y.len());
    let sv = V::splat(s);
    let xs = x.as_ptr();
    let yp = y.as_mut_ptr();
    let nv = n / V::LANES * V::LANES;
    let mut i = 0;
    while i < nv {
        let p = yp.add(i);
        V::load(xs.add(i)).mul_add(sv, V::load(p)).store(p);
        i += V::LANES;
    }
    while i < n {
        *yp.add(i) = s.mul_add(*xs.add(i), *yp.add(i));
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Per-backend target_feature wrappers
// ---------------------------------------------------------------------------

/// The [`Backend::Fma`] gemm tier: the scalar 8x4 body, always fused,
/// compiled with hardware FMA enabled. This is the runtime fix for the old
/// compile-time-only `cfg!(target_feature = "fma")` check.
///
/// # Safety
/// See [`GemmKernel::ukr`]; the host must support FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_ukr_x86_fma<T: Scalar>(
    kb: usize,
    ap: *const T,
    bp: *const T,
    alpha: T,
    c: *mut T,
    ldc: usize,
    h: usize,
    w: usize,
) {
    gemm_ukr_scalar_body::<T, true>(kb, ap, bp, alpha, c, ldc, h, w)
}

/// The [`Backend::Fma`] factor dot pass: the scalar sweep compiled with
/// hardware FMA (bit-identical — both are fused).
///
/// # Safety
/// Scalar `dot_rows` contract; the host must support FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn dot_rows_x86_fma<T: Scalar>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    wacc: &mut [T],
) {
    crate::householder::dot_rows(at, width, rows, tri_block, j, col, wacc)
}

/// The [`Backend::Fma`] factor rank-1 pass (see [`dot_rows_x86_fma`]).
///
/// # Safety
/// Scalar `rank1_rows` contract; the host must support FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn rank1_rows_x86_fma<T: Scalar>(
    at: &mut [T],
    width: usize,
    rows: usize,
    tri_block: usize,
    j: usize,
    col: &[T],
    next: &mut [T],
    tw: &[T],
) {
    crate::householder::rank1_rows(at, width, rows, tri_block, j, col, next, tw)
}

/// Auto-vectorized factor-sweep tiers for the wider x86 backends.
///
/// Measured on an avx512 Xeon, LLVM's auto-vectorization of the
/// width-specialized scalar sweep under 256-bit codegen beats both the
/// handwritten vector kernels above (factor_tile 4096x16 f32: auto-avx2
/// ~2.0-2.2 vs handwritten avx2 2.06 / avx512 1.86 GFLOP/s) and 512-bit
/// auto codegen (~1.8) — the sweep is bandwidth-bound, the compiler's
/// unroll-and-jam over the fixed widths wins, and with width-16 panels
/// zmm ops cost more (downclock + tails) than ymm. So Avx2 *and* Avx512
/// reuse the scalar bodies compiled with avx2+fma; the result stays
/// bit-identical (per-element fused chains, no reassociation) which
/// `simd_dispatch.rs` asserts.
macro_rules! x86_factor_auto {
    ($dot:ident, $rank1:ident, $($feat:literal),+) => {
        /// # Safety
        /// Scalar `dot_rows` contract; the host must support the tier's features.
        #[cfg(target_arch = "x86_64")]
        #[target_feature($(enable = $feat),+)]
        unsafe fn $dot<T: Scalar>(
            at: &mut [T],
            width: usize,
            rows: usize,
            tri_block: usize,
            j: usize,
            col: &[T],
            wacc: &mut [T],
        ) {
            crate::householder::dot_rows(at, width, rows, tri_block, j, col, wacc)
        }

        /// # Safety
        /// Scalar `rank1_rows` contract; the host must support the tier's features.
        #[cfg(target_arch = "x86_64")]
        #[target_feature($(enable = $feat),+)]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $rank1<T: Scalar>(
            at: &mut [T],
            width: usize,
            rows: usize,
            tri_block: usize,
            j: usize,
            col: &[T],
            next: &mut [T],
            tw: &[T],
        ) {
            crate::householder::rank1_rows(at, width, rows, tri_block, j, col, next, tw)
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_factor_auto!(dot_rows_x86_avx2, rank1_rows_x86_avx2, "avx2", "fma");

/// Generates one backend's concrete kernel set: `#[target_feature]`
/// wrappers around the generic bodies, monomorphized for one scalar type
/// and vector pair (wide for the main loops, narrow for remainders).
#[cfg(target_arch = "x86_64")]
macro_rules! x86_kernels {
    ($m:ident, $t:ty, $vw:ty, $vn:ty, $rv:literal, $nr:literal, $($feat:literal),+) => {
        mod $m {
            use super::*;

            #[target_feature($(enable = $feat),+)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn ukr(
                kb: usize,
                ap: *const $t,
                bp: *const $t,
                alpha: $t,
                c: *mut $t,
                ldc: usize,
                h: usize,
                w: usize,
            ) {
                gemm_ukr_v::<$t, $vw, $rv, $nr>(kb, ap, bp, alpha, c, ldc, h, w)
            }

            // Not dispatched: the auto-vectorized scalar sweep measured
            // faster on this tier (see `x86_factor_auto`). Kept compiled and
            // bit-verified (`handwritten_x86_factor_kernels_bit_match_oracle`)
            // as the explicit-vector alternative for hosts where the
            // compiler's unroll-and-jam loses.
            #[allow(dead_code)]
            #[target_feature($(enable = $feat),+)]
            pub(crate) unsafe fn dot(
                at: &mut [$t],
                width: usize,
                rows: usize,
                tri_block: usize,
                j: usize,
                col: &[$t],
                wacc: &mut [$t],
            ) {
                dot_rows_v::<$t, $vw, $vn>(at, width, rows, tri_block, j, col, wacc)
            }

            #[allow(dead_code)]
            #[target_feature($(enable = $feat),+)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn rank1(
                at: &mut [$t],
                width: usize,
                rows: usize,
                tri_block: usize,
                j: usize,
                col: &[$t],
                next: &mut [$t],
                tw: &[$t],
            ) {
                rank1_rows_v::<$t, $vw, $vn>(at, width, rows, tri_block, j, col, next, tw)
            }

            #[target_feature($(enable = $feat),+)]
            pub(crate) unsafe fn sdot(x: &[$t], y: &[$t]) -> $t {
                small_dot_v::<$t, $vw>(x, y)
            }

            #[target_feature($(enable = $feat),+)]
            pub(crate) unsafe fn saxpy(s: $t, x: &[$t], y: &mut [$t]) {
                small_axpy_v::<$t, $vw>(s, x, y)
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_kernels!(avx2_f32, f32, x86::F32x8, x86::F32x8, 2, 6, "avx2", "fma");
#[cfg(target_arch = "x86_64")]
x86_kernels!(avx2_f64, f64, x86::F64x4, x86::F64x4, 2, 6, "avx2", "fma");
#[cfg(target_arch = "x86_64")]
x86_kernels!(
    avx512_f32,
    f32,
    x86::F32x16,
    x86::F32x8,
    2,
    8,
    "avx512f",
    "avx2",
    "fma"
);
#[cfg(target_arch = "x86_64")]
x86_kernels!(
    avx512_f64,
    f64,
    x86::F64x8,
    x86::F64x4,
    2,
    8,
    "avx512f",
    "avx2",
    "fma"
);

/// NEON kernels need no detection or `target_feature` (baseline on
/// aarch64), so plain unsafe fns suffice.
#[cfg(target_arch = "aarch64")]
macro_rules! neon_kernels {
    ($m:ident, $t:ty, $v:ty, $rv:literal, $nr:literal) => {
        mod $m {
            use super::*;

            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn ukr(
                kb: usize,
                ap: *const $t,
                bp: *const $t,
                alpha: $t,
                c: *mut $t,
                ldc: usize,
                h: usize,
                w: usize,
            ) {
                gemm_ukr_v::<$t, $v, $rv, $nr>(kb, ap, bp, alpha, c, ldc, h, w)
            }

            pub(crate) unsafe fn dot(
                at: &mut [$t],
                width: usize,
                rows: usize,
                tri_block: usize,
                j: usize,
                col: &[$t],
                wacc: &mut [$t],
            ) {
                dot_rows_v::<$t, $v, $v>(at, width, rows, tri_block, j, col, wacc)
            }

            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn rank1(
                at: &mut [$t],
                width: usize,
                rows: usize,
                tri_block: usize,
                j: usize,
                col: &[$t],
                next: &mut [$t],
                tw: &[$t],
            ) {
                rank1_rows_v::<$t, $v, $v>(at, width, rows, tri_block, j, col, next, tw)
            }

            pub(crate) unsafe fn sdot(x: &[$t], y: &[$t]) -> $t {
                small_dot_v::<$t, $v>(x, y)
            }

            pub(crate) unsafe fn saxpy(s: $t, x: &[$t], y: &mut [$t]) {
                small_axpy_v::<$t, $v>(s, x, y)
            }
        }
    };
}

#[cfg(target_arch = "aarch64")]
neon_kernels!(neon_f32, f32, neon_v::F32x4, 2, 4);
#[cfg(target_arch = "aarch64")]
neon_kernels!(neon_f64, f64, neon_v::F64x2, 2, 4);

// ---------------------------------------------------------------------------
// Kernel tables
// ---------------------------------------------------------------------------

macro_rules! impl_simd_scalar {
    ($t:ty, $avx2:ident, $avx512:ident, $neon:ident) => {
        impl SimdScalar for $t {
            #[allow(clippy::match_single_binding)]
            fn gemm_kernel(backend: Backend) -> GemmKernel<$t> {
                match backend {
                    #[cfg(target_arch = "x86_64")]
                    Backend::Fma => GemmKernel {
                        mr: SCALAR_MR,
                        nr: SCALAR_NR,
                        ukr: gemm_ukr_x86_fma::<$t>,
                    },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => GemmKernel {
                        mr: 2 * 256 / (8 * std::mem::size_of::<$t>()),
                        nr: 6,
                        ukr: $avx2::ukr,
                    },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx512 => GemmKernel {
                        mr: 2 * 512 / (8 * std::mem::size_of::<$t>()),
                        nr: 8,
                        ukr: $avx512::ukr,
                    },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => GemmKernel {
                        mr: 2 * 128 / (8 * std::mem::size_of::<$t>()),
                        nr: 4,
                        ukr: $neon::ukr,
                    },
                    _ => GemmKernel {
                        mr: SCALAR_MR,
                        nr: SCALAR_NR,
                        ukr: gemm_ukr_scalar::<$t>,
                    },
                }
            }

            #[allow(clippy::match_single_binding)]
            fn factor_kernels(backend: Backend) -> FactorKernels<$t> {
                match backend {
                    #[cfg(target_arch = "x86_64")]
                    Backend::Fma => FactorKernels {
                        dot_rows: dot_rows_x86_fma::<$t>,
                        rank1_rows: rank1_rows_x86_fma::<$t>,
                    },
                    // Avx2/Avx512 intentionally take the auto-vectorized
                    // scalar sweep compiled with their codegen features —
                    // measured faster than the handwritten vector kernels
                    // (see `x86_factor_auto`); the handwritten `$avx2::dot`
                    // etc. remain exercised by the conformance tests.
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => FactorKernels {
                        dot_rows: dot_rows_x86_avx2::<$t>,
                        rank1_rows: rank1_rows_x86_avx2::<$t>,
                    },
                    // Avx512 also takes the 256-bit codegen: with width-16
                    // panels the rows span one or two vectors and 512-bit
                    // ops measured slower (downclock + tail cost) than ymm.
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx512 => FactorKernels {
                        dot_rows: dot_rows_x86_avx2::<$t>,
                        rank1_rows: rank1_rows_x86_avx2::<$t>,
                    },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => FactorKernels {
                        dot_rows: $neon::dot,
                        rank1_rows: $neon::rank1,
                    },
                    _ => FactorKernels {
                        dot_rows: crate::householder::dot_rows::<$t>,
                        rank1_rows: crate::householder::rank1_rows::<$t>,
                    },
                }
            }

            #[allow(clippy::match_single_binding)]
            fn small_kernels(backend: Backend) -> SmallKernels<$t> {
                match backend {
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => SmallKernels {
                        dot: $avx2::sdot,
                        axpy: $avx2::saxpy,
                    },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx512 => SmallKernels {
                        dot: $avx512::sdot,
                        axpy: $avx512::saxpy,
                    },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => SmallKernels {
                        dot: $neon::sdot,
                        axpy: $neon::saxpy,
                    },
                    _ => SmallKernels {
                        dot: small_dot_scalar::<$t>,
                        axpy: small_axpy_scalar::<$t>,
                    },
                }
            }
        }
    };
}

impl_simd_scalar!(f32, avx2_f32, avx512_f32, neon_f32);
impl_simd_scalar!(f64, avx2_f64, avx512_f64, neon_f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [
            Backend::Scalar,
            Backend::Fma,
            Backend::Avx2,
            Backend::Avx512,
            Backend::Neon,
        ] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(Backend::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::parse("sse9"), None);
    }

    #[test]
    fn scalar_always_available_and_active_is_available() {
        assert!(Backend::Scalar.is_available());
        assert!(Backend::available().contains(&Backend::Scalar));
        assert!(active().is_available());
    }

    #[test]
    fn override_hook_forces_backend() {
        // Scalar is always available so this cannot perturb the correctness
        // of concurrently running tests (only briefly their backend).
        set_backend_override(Some(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        set_backend_override(None);
        assert!(active().is_available());
    }

    /// Pack a reference accumulation of `alpha * A * B + C` for one
    /// microkernel-shaped problem, in f64 regardless of T.
    fn ukr_reference(
        kb: usize,
        mr: usize,
        nr: usize,
        ap: &[f64],
        bp: &[f64],
        alpha: f64,
        c0: &[f64],
        ldc: usize,
        h: usize,
        w: usize,
    ) -> Vec<f64> {
        let mut c = c0.to_vec();
        for jj in 0..w {
            for ii in 0..h {
                let mut acc = 0.0;
                for p in 0..kb {
                    acc += ap[p * mr + ii] * bp[p * nr + jj];
                }
                c[jj * ldc + ii] += alpha * acc;
            }
        }
        c
    }

    #[test]
    fn gemm_ukr_matches_reference_on_every_available_backend() {
        let kb = 11;
        for backend in Backend::available() {
            let kern = <f64 as SimdScalar>::gemm_kernel(backend);
            let (mr, nr) = (kern.mr, kern.nr);
            assert!(mr <= MAX_MR, "{backend:?} mr {mr} exceeds MAX_MR");
            let ap: Vec<f64> = (0..kb * mr)
                .map(|i| ((i * 7 + 3) % 13) as f64 - 6.0)
                .collect();
            let bp: Vec<f64> = (0..kb * nr)
                .map(|i| ((i * 5 + 1) % 11) as f64 - 5.0)
                .collect();
            let ldc = mr + 3;
            // Full tile and two ragged corners, including 1x1.
            for (h, w) in [(mr, nr), (mr - 1, nr - 1), (1, 1)] {
                let c0: Vec<f64> = (0..ldc * nr).map(|i| (i % 7) as f64 * 0.5).collect();
                let mut c = c0.clone();
                unsafe {
                    (kern.ukr)(kb, ap.as_ptr(), bp.as_ptr(), 1.5, c.as_mut_ptr(), ldc, h, w);
                }
                let want = ukr_reference(kb, mr, nr, &ap, &bp, 1.5, &c0, ldc, h, w);
                for (i, (&got, &wv)) in c.iter().zip(&want).enumerate() {
                    // Off-corner entries must be untouched; live entries are
                    // exact here (small integers).
                    assert!(
                        (got - wv).abs() < 1e-9,
                        "{backend:?} ({h}x{w}) idx {i}: {got} vs {wv}"
                    );
                }
            }
        }
    }

    /// Assert one {dot_rows, rank1_rows} pair is bit-identical to the scalar
    /// oracle on a small tile, over both tri_block regimes.
    fn assert_factor_pair_bit_matches(kern: FactorKernels<f64>, who: &str) {
        let (rows, width, j) = (10usize, 16usize, 2usize);
        {
            let backend = who;
            for tri_block in [0usize, 4] {
                let at0: Vec<f64> = (0..rows * width)
                    .map(|i| (((i * 13 + 5) % 31) as f64 - 15.0) / 7.0)
                    .collect();
                let col: Vec<f64> = (0..rows - j).map(|i| (i as f64 - 3.0) / 5.0).collect();
                let wacc0: Vec<f64> = (0..width).map(|i| (i as f64) * 0.25 - 1.0).collect();

                let mut at_ref = at0.clone();
                let mut wacc_ref = wacc0.clone();
                crate::householder::dot_rows(
                    &mut at_ref,
                    width,
                    rows,
                    tri_block,
                    j,
                    &col,
                    &mut wacc_ref,
                );
                let mut at_got = at0.clone();
                let mut wacc_got = wacc0.clone();
                unsafe {
                    (kern.dot_rows)(&mut at_got, width, rows, tri_block, j, &col, &mut wacc_got);
                }
                assert_eq!(at_ref, at_got, "{backend:?} dot at, tri_block={tri_block}");
                for (l, (&a, &b)) in wacc_ref.iter().zip(&wacc_got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{backend:?} dot wacc lane {l}, tri_block={tri_block}"
                    );
                }

                let tw: Vec<f64> = (0..width - j - 1).map(|i| (i as f64 - 4.0) / 3.0).collect();
                let mut at_ref = at0.clone();
                let mut next_ref = vec![0.0f64; rows];
                crate::householder::rank1_rows(
                    &mut at_ref,
                    width,
                    rows,
                    tri_block,
                    j,
                    &col,
                    &mut next_ref,
                    &tw,
                );
                let mut at_got = at0.clone();
                let mut next_got = vec![0.0f64; rows];
                unsafe {
                    (kern.rank1_rows)(
                        &mut at_got,
                        width,
                        rows,
                        tri_block,
                        j,
                        &col,
                        &mut next_got,
                        &tw,
                    );
                }
                for (l, (&a, &b)) in at_ref.iter().zip(&at_got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{backend:?} rank1 at idx {l}, tri_block={tri_block}"
                    );
                }
                assert_eq!(next_ref, next_got, "{backend:?} rank1 next");
            }
        }
    }

    #[test]
    fn factor_kernels_bit_match_scalar_oracle_on_every_backend() {
        for backend in Backend::available() {
            assert_factor_pair_bit_matches(
                <f64 as SimdScalar>::factor_kernels(backend),
                backend.name(),
            );
        }
    }

    /// The handwritten explicit-vector factor kernels are not dispatched (the
    /// auto-vectorized sweep measured faster; see `x86_factor_auto`) but must
    /// stay bit-exact so they remain a drop-in alternative.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn handwritten_x86_factor_kernels_bit_match_oracle() {
        if Backend::Avx2.is_available() {
            assert_factor_pair_bit_matches(
                FactorKernels {
                    dot_rows: avx2_f64::dot,
                    rank1_rows: avx2_f64::rank1,
                },
                "avx2-handwritten",
            );
        }
        if Backend::Avx512.is_available() {
            assert_factor_pair_bit_matches(
                FactorKernels {
                    dot_rows: avx512_f64::dot,
                    rank1_rows: avx512_f64::rank1,
                },
                "avx512-handwritten",
            );
        }
    }

    #[test]
    fn small_kernels_match_oracle_on_every_backend() {
        let n = 37;
        let x: Vec<f32> = (0..n).map(|i| ((i * 3 + 1) % 17) as f32 - 8.0).collect();
        let y0: Vec<f32> = (0..n).map(|i| ((i * 5 + 2) % 13) as f32 - 6.0).collect();
        let dref = small_dot_scalar(&x, &y0);
        for backend in Backend::available() {
            let sk = <f32 as SimdScalar>::small_kernels(backend);
            let d = unsafe { (sk.dot)(&x, &y0) };
            assert!(
                (d - dref).abs() <= 1e-3 * (1.0 + dref.abs()),
                "{backend:?} dot {d} vs {dref}"
            );
            let mut y = y0.clone();
            unsafe { (sk.axpy)(0.75, &x, &mut y) };
            let mut yref = y0.clone();
            small_axpy_scalar(0.75, &x, &mut yref);
            // axpy is element-wise fused on every backend: bit-identical.
            for (l, (&a, &b)) in yref.iter().zip(&y).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{backend:?} axpy lane {l}");
            }
        }
    }
}
