//! Cholesky factorization (LAPACK `potrf`, lower variant).
//!
//! Used by the CholeskyQR baseline — the method Section II of the paper
//! dismisses as "not as numerically stable" — which we implement precisely to
//! demonstrate that instability in tests.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Error from a failed Cholesky factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Column at which a non-positive pivot appeared.
    pub column: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at column {}", self.column)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower Cholesky factor `L` with `A = L * L^T`. `a` must be symmetric
/// positive definite; only its lower triangle is read.
pub fn potrf_lower<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>, NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "potrf requires a square matrix");
    let mut l = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        // d = a_jj - sum_k l_jk^2
        let mut d = a[(j, j)];
        for k in 0..j {
            d = (-l[(j, k)]).mul_add(l[(j, k)], d);
        }
        if d <= T::ZERO || !d.is_finite() {
            return Err(NotPositiveDefinite { column: j });
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        let inv = T::ONE / djj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s = (-l[(i, k)]).mul_add(l[(j, k)], s);
            }
            l[(i, j)] = s * inv;
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};

    #[test]
    fn factor_reconstructs_spd() {
        // A = B^T B + n*I is SPD.
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let mut a = Matrix::<f64>::zeros(6, 6);
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            b.as_ref(),
            b.as_ref(),
            0.0,
            a.as_mut(),
        );
        for d in 0..6 {
            a[(d, d)] += 6.0;
        }
        let l = potrf_lower(&a).unwrap();
        let mut llt = Matrix::<f64>::zeros(6, 6);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            l.as_ref(),
            l.as_ref(),
            0.0,
            llt.as_mut(),
        );
        for i in 0..6 {
            for j in 0..6 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        // L is lower triangular with positive diagonal.
        for i in 0..6 {
            assert!(l[(i, i)] > 0.0);
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = Matrix::<f64>::eye(3, 3);
        a[(2, 2)] = -1.0;
        let err = potrf_lower(&a).unwrap_err();
        assert_eq!(err.column, 2);
    }

    #[test]
    fn semidefinite_matrix_rejected() {
        // Rank-1 PSD matrix fails at the second pivot.
        let a = Matrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        assert!(potrf_lower(&a).is_err());
    }
}
