//! Strong-scaling report for distributed TSQR (fig8-style, DESIGN.md §11):
//! factors one tall-skinny matrix on clusters of P = 1, 2, 4, 8, 16
//! modelled devices joined by an alpha-beta interconnect, and emits the
//! modelled makespan with a communication/computation breakdown per P to
//! `BENCH_scaling.json` plus a human-readable table.
//!
//! `--quick` shrinks the matrix for the CI smoke run. `--check` gates the
//! run (exit 1 on failure): the distributed `R` and `Q` must be
//! bit-identical to the single-device host path `caqr_cpu` at P = 1 and
//! P = 4, and the modelled time must strictly improve P=1 → P=2 → P=4 —
//! the strong-scaling story the communication-avoiding tree exists to buy.

use caqr::distributed::{distributed_tsqr, DistOptions};
use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{ReductionStrategy, TreeShape};
use caqr_bench::Table;
use gpu_sim::{Cluster, DeviceSpec, LinkSpec, Topology};

struct Entry {
    p: usize,
    makespan_s: f64,
    /// Busiest device's folded compute seconds (the critical path's
    /// compute share).
    compute_max_s: f64,
    /// Sum of compute seconds across devices (work, for efficiency).
    compute_total_s: f64,
    /// Total interconnect port-busy seconds.
    comm_s: f64,
    net_messages: u64,
    net_bytes: u64,
}

fn run(p: usize, m: usize, n: usize, tile: usize) -> (Entry, caqr::DistTsqr<f32>) {
    let cluster = Cluster::new(
        p,
        DeviceSpec::c2050(),
        LinkSpec::infiniband_qdr(),
        Topology::BinomialTree,
    );
    let a = dense::generate::uniform::<f32>(m, n, 7);
    let opts = DistOptions {
        tile_rows: tile,
        tree: TreeShape::DeviceArity,
        strategy: ReductionStrategy::RegisterSerialTransposed,
        verify_checksums: false,
    };
    let f = distributed_tsqr(&cluster, a, opts).expect("distributed TSQR");
    let totals = cluster.net_totals();
    let compute: Vec<f64> = (0..p).map(|d| cluster.compute_seconds(d)).collect();
    let e = Entry {
        p,
        makespan_s: cluster.makespan(),
        compute_max_s: compute.iter().cloned().fold(0.0, f64::max),
        compute_total_s: compute.iter().sum(),
        comm_s: totals.seconds,
        net_messages: totals.messages,
        net_bytes: totals.bytes,
    };
    (e, f)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let (m, n, tile) = if quick {
        (8192, 16, 64)
    } else {
        (65536, 32, 128)
    };

    let mut entries = Vec::new();
    let mut factors = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let (e, f) = run(p, m, n, tile);
        entries.push(e);
        factors.push((p, f));
    }
    let t1 = entries[0].makespan_s;

    let mut table = Table::new(&[
        "P",
        "time ms",
        "speedup",
        "eff %",
        "compute ms",
        "comm ms",
        "msgs",
        "KB",
    ]);
    for e in &entries {
        table.row(vec![
            e.p.to_string(),
            format!("{:.3}", e.makespan_s * 1e3),
            format!("{:.2}x", t1 / e.makespan_s),
            format!("{:.0}", 100.0 * t1 / (e.p as f64 * e.makespan_s)),
            format!("{:.3}", e.compute_max_s * 1e3),
            format!("{:.4}", e.comm_s * 1e3),
            e.net_messages.to_string(),
            format!("{:.1}", e.net_bytes as f64 / 1024.0),
        ]);
    }
    table.emit(&format!(
        "distributed TSQR strong scaling, {m} x {n} (tile {tile}), binomial-tree InfiniBand QDR"
    ));

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"scaling\",\n");
    json.push_str(&format!(
        "  \"shape\": {{\"m\": {m}, \"n\": {n}, \"tile_rows\": {tile}}},\n"
    ));
    json.push_str("  \"link\": {\"name\": \"infiniband_qdr\", \"topology\": \"binomial_tree\"},\n");
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"p\": {}, \"makespan_s\": {:.9}, \"speedup\": {:.4}, \"efficiency\": {:.4}, \"compute_max_s\": {:.9}, \"compute_total_s\": {:.9}, \"comm_s\": {:.9}, \"net_messages\": {}, \"net_bytes\": {}}}{}\n",
            e.p,
            e.makespan_s,
            t1 / e.makespan_s,
            t1 / (e.p as f64 * e.makespan_s),
            e.compute_max_s,
            e.compute_total_s,
            e.comm_s,
            e.net_messages,
            e.net_bytes,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    eprintln!("wrote BENCH_scaling.json ({} device counts)", entries.len());

    if check {
        let mut failed = false;
        // Gate 1: bit-identity against the single-device host path at
        // P = 1 and P = 4 (R and the full skinny Q).
        let reference = caqr_cpu(
            dense::generate::uniform::<f32>(m, n, 7),
            CpuCaqrOptions {
                tile_rows: tile,
                panel_width: n,
                tree: TreeShape::DeviceArity,
                verify_checksums: false,
            },
        )
        .expect("host path factors");
        let (r_ref, q_ref) = (reference.r(), reference.generate_q(n).expect("host Q"));
        for (p, f) in factors.iter().filter(|(p, _)| *p == 1 || *p == 4) {
            if f.r() != r_ref {
                eprintln!("FAIL: P={p} R diverges from the single-device host path");
                failed = true;
            }
            if f.generate_q(n).expect("distributed Q") != q_ref {
                eprintln!("FAIL: P={p} Q diverges from the single-device host path");
                failed = true;
            }
        }
        // Gate 2: modelled strong scaling must be monotone through P = 4.
        for w in entries[..3].windows(2) {
            if w[1].makespan_s >= w[0].makespan_s {
                eprintln!(
                    "FAIL: no speedup P={} -> P={} ({:.6} ms -> {:.6} ms)",
                    w[0].p,
                    w[1].p,
                    w[0].makespan_s * 1e3,
                    w[1].makespan_s * 1e3
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check: P=1/P=4 bit-identical to caqr_cpu; speedup monotone through P=4");
    }
}
