//! Throughput/latency report for the multi-tenant QR service (DESIGN.md
//! §14): a seeded open-loop synthetic workload — mixed shapes, Poisson
//! arrivals, three tenants, three priority classes — driven through
//! [`caqr::Service`] twice (shape-fused batching vs one-at-a-time), plus a
//! direct `factor_many` vs sequential `caqr_cpu` throughput gate on a
//! fused-shape bag. Emits p50/p99 latency per priority class, aggregate
//! GFLOP/s for both modes, and the per-tenant ledger to
//! `BENCH_service.json` alongside human-readable tables.
//!
//! `--quick` shrinks everything for the CI smoke run. `--check` gates the
//! run (exit 1 on failure): batched aggregate GFLOP/s must be at least the
//! one-at-a-time rate on the fused-shape workload, the measured fused reps
//! must run with zero steady-state arena misses, every serviced matrix
//! must be bit-identical to a standalone `caqr_cpu` run, and the ledger
//! must reconcile (per-tenant counters summing to the global row).

use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{factor_many_with_stats, JobOutcome, JobSpec, Priority, Service, ServiceConfig};
use caqr::{BatchStats, TreeShape};
use caqr_bench::Table;
use dense::Matrix;
use std::time::{Duration, Instant};

/// splitmix64: tiny, seeded, dependency-free (rand is only a dev-dep).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap with the given mean (Poisson process).
    fn exp_ms(&mut self, mean_ms: f64) -> f64 {
        -mean_ms * (1.0 - self.unit()).ln()
    }
}

#[derive(Clone, Copy)]
struct Shape {
    m: usize,
    n: usize,
    h: usize,
    w: usize,
    weight: u64,
}

fn opts(h: usize, w: usize) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: h,
        panel_width: w,
        tree: TreeShape::DeviceArity,
        verify_checksums: false,
    }
}

/// One planned arrival of the open-loop workload.
struct Planned {
    at: Duration,
    shape: Shape,
    tenant: &'static str,
    priority: Priority,
    deadline: Option<Duration>,
    seed: u64,
}

fn pick_shape(shapes: &[Shape], rng: &mut Rng) -> Shape {
    let total: u64 = shapes.iter().map(|s| s.weight).sum();
    let mut roll = rng.next() % total;
    for s in shapes {
        if roll < s.weight {
            return *s;
        }
        roll -= s.weight;
    }
    shapes[shapes.len() - 1]
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(((sorted.len() - 1) as f64) * q).round() as usize]
}

struct ClassLatency {
    class: Priority,
    jobs: usize,
    p50_ms: f64,
    p99_ms: f64,
}

struct ServiceRun {
    label: &'static str,
    wall_s: f64,
    gflops: f64,
    fused_jobs: u64,
    solo_jobs: u64,
    batches: u64,
    shed: u64,
    failed: u64,
    classes: Vec<ClassLatency>,
    ledger: caqr::ServiceLedger,
    outcomes: Vec<JobOutcome<f64>>,
}

fn run_service(plan: &[Planned], label: &'static str, max_batch: usize) -> ServiceRun {
    let svc = Service::<f64>::start(ServiceConfig {
        workers: 2,
        queue_capacity: 512,
        max_batch,
        ..ServiceConfig::default()
    });
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(plan.len());
    for p in plan {
        // Open loop: arrivals fire on the wall-clock schedule regardless of
        // how far behind the service is running.
        if let Some(gap) = p.at.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        let a = dense::generate::uniform::<f64>(p.shape.m, p.shape.n, p.seed);
        let mut spec = JobSpec::new(a, opts(p.shape.h, p.shape.w))
            .tenant(p.tenant)
            .priority(p.priority);
        if let Some(d) = p.deadline {
            spec = spec.deadline(d);
        }
        tickets.push(svc.submit(spec).expect("admission while running"));
    }
    let outcomes: Vec<JobOutcome<f64>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("service delivers every outcome"))
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    let ledger = svc.ledger();
    svc.shutdown();

    let mut classes = Vec::new();
    for class in Priority::ALL {
        let mut lat: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.priority == class && o.result.is_ok())
            .map(|o| o.latency.as_secs_f64() * 1e3)
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        classes.push(ClassLatency {
            class,
            jobs: lat.len(),
            p50_ms: percentile_ms(&lat, 0.50),
            p99_ms: percentile_ms(&lat, 0.99),
        });
    }
    ServiceRun {
        label,
        wall_s,
        gflops: ledger.global.flops / wall_s / 1e9,
        fused_jobs: ledger.global.fused_jobs,
        solo_jobs: ledger.global.solo_jobs,
        batches: ledger.batches,
        shed: ledger.global.jobs_shed,
        failed: ledger.global.jobs_failed,
        classes,
        ledger,
        outcomes,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let mut failed = false;

    // ---- Phase 1: fused-shape throughput gate -------------------------
    // A bag of identically shaped jobs, factored batched (`factor_many`,
    // one fused launch sequence for the whole bag) vs one at a time
    // (sequential `caqr_cpu`). Same arithmetic, same results, fewer
    // parallel regions and one shared panel geometry — batched must not be
    // slower.
    // Batching pays in the many-small-jobs regime the service exists for:
    // per-job launch/geometry overhead is the dominant cost there, and the
    // fused group's working set still fits in cache. (Single large
    // factorizations do not need a batching service in the first place.)
    let (gm, gn, gh, gw, gjobs, reps) = if quick {
        (384, 32, 48, 16, 48, 5)
    } else {
        (512, 32, 64, 16, 96, 3)
    };
    let gate_opts = opts(gh, gw);
    let inputs: Vec<Matrix<f64>> = (0..gjobs)
        .map(|i| dense::generate::uniform::<f64>(gm, gn, 0x5EED + i as u64))
        .collect();
    let total_gflop = dense::geqrf_flops(gm, gn) * gjobs as f64 / 1e9;
    let bag = |inputs: &[Matrix<f64>]| -> Vec<(Matrix<f64>, CpuCaqrOptions)> {
        inputs.iter().map(|a| (a.clone(), gate_opts)).collect()
    };

    // Warm up both paths once: fills the arena's thread caches and global
    // pool so the measured reps below run allocation-free.
    dense::arena::prewarm::<f64>(2 * gn.min(gw * 2), 8);
    let (warm, _) = factor_many_with_stats(bag(&inputs));
    for a in &inputs {
        drop(caqr_cpu(a.clone(), gate_opts).expect("warmup solo factor"));
    }
    drop(warm);

    dense::arena::reset_stats::<f64>();
    let mut batched_best_s = f64::INFINITY;
    let mut last_stats = BatchStats::default();
    let mut last_results = Vec::new();
    for _ in 0..reps {
        let jobs = bag(&inputs);
        let t0 = Instant::now();
        let (results, stats) = factor_many_with_stats(jobs);
        let dt = t0.elapsed().as_secs_f64();
        batched_best_s = batched_best_s.min(dt);
        assert!(results.iter().all(|r| r.is_ok()), "gate bag must factor");
        last_stats = stats;
        last_results = results;
    }
    let arena = dense::arena::stats::<f64>();

    let mut solo_best_s = f64::INFINITY;
    for _ in 0..reps {
        let jobs = bag(&inputs);
        let t0 = Instant::now();
        for (a, o) in jobs {
            drop(caqr_cpu(a, o).expect("gate bag must factor solo"));
        }
        solo_best_s = solo_best_s.min(t0.elapsed().as_secs_f64());
    }
    let batched_gflops = total_gflop / batched_best_s;
    let solo_gflops = total_gflop / solo_best_s;

    let mut gate_table = Table::new(&["mode", "GFLOP/s", "time ms", "launches"]);
    gate_table.row(vec![
        "batched".into(),
        format!("{batched_gflops:.3}"),
        format!("{:.3}", batched_best_s * 1e3),
        last_stats.fused_launches.to_string(),
    ]);
    gate_table.row(vec![
        "one-at-a-time".into(),
        format!("{solo_gflops:.3}"),
        format!("{:.3}", solo_best_s * 1e3),
        last_stats.logical_launches.to_string(),
    ]);
    gate_table.emit(&format!(
        "fused-shape gate: {gjobs} x {gm}x{gn} (h {gh}, w {gw}), best of {reps}, arena {}/{} hit/miss",
        arena.hits, arena.misses
    ));

    if check {
        if batched_gflops < solo_gflops {
            eprintln!(
                "FAIL: batched {batched_gflops:.3} GFLOP/s < one-at-a-time {solo_gflops:.3} GFLOP/s"
            );
            failed = true;
        }
        if arena.misses != 0 {
            eprintln!(
                "FAIL: {} steady-state arena misses across {reps} fused reps (want 0)",
                arena.misses
            );
            failed = true;
        }
        for (i, (r, a)) in last_results.iter().zip(&inputs).enumerate() {
            let standalone = caqr_cpu(a.clone(), gate_opts).expect("standalone factors");
            if r.as_ref().expect("batched factors").a != standalone.a {
                eprintln!("FAIL: gate job {i} diverges bitwise from standalone caqr_cpu");
                failed = true;
            }
        }
    }
    drop(last_results);

    // ---- Phase 2: open-loop service workload --------------------------
    // Poisson arrivals of mixed shapes from three tenants across the three
    // priority classes, replayed identically against a batching service
    // (max_batch 8) and a one-at-a-time service (max_batch 1).
    let shapes: &[Shape] = if quick {
        &[
            Shape {
                m: 384,
                n: 32,
                h: 48,
                w: 16,
                weight: 6,
            },
            Shape {
                m: 512,
                n: 24,
                h: 64,
                w: 24,
                weight: 3,
            },
            Shape {
                m: 320,
                n: 40,
                h: 40,
                w: 20,
                weight: 1,
            },
        ]
    } else {
        &[
            Shape {
                m: 768,
                n: 48,
                h: 48,
                w: 16,
                weight: 6,
            },
            Shape {
                m: 1024,
                n: 32,
                h: 64,
                w: 32,
                weight: 3,
            },
            Shape {
                m: 512,
                n: 64,
                h: 64,
                w: 16,
                weight: 1,
            },
        ]
    };
    let (njobs, mean_gap_ms) = if quick { (60, 1.0) } else { (240, 8.0) };
    let tenants = ["acme", "globex", "initech"];
    let mut rng = Rng(0xC0FF_EE00_D15E_A5E5);
    let mut t_ms = 0.0f64;
    let plan: Vec<Planned> = (0..njobs)
        .map(|i| {
            t_ms += rng.exp_ms(mean_gap_ms);
            let shape = pick_shape(shapes, &mut rng);
            let priority = match rng.next() % 10 {
                0..=1 => Priority::Interactive,
                2..=7 => Priority::Standard,
                _ => Priority::Batch,
            };
            Planned {
                at: Duration::from_secs_f64(t_ms / 1e3),
                shape,
                tenant: tenants[(rng.next() % tenants.len() as u64) as usize],
                priority,
                // Generous: deadline misses are recorded, nothing is shed
                // unless the machine stalls outright.
                deadline: (priority == Priority::Interactive).then(|| Duration::from_secs(30)),
                seed: 0xA11CE + i as u64,
            }
        })
        .collect();

    let batched = run_service(&plan, "batched", 8);
    let solo = run_service(&plan, "one-at-a-time", 1);

    let mut svc_table = Table::new(&["mode", "class", "jobs", "p50 ms", "p99 ms", "GFLOP/s"]);
    for run in [&batched, &solo] {
        for c in &run.classes {
            svc_table.row(vec![
                run.label.into(),
                c.class.name().into(),
                c.jobs.to_string(),
                format!("{:.3}", c.p50_ms),
                format!("{:.3}", c.p99_ms),
                format!("{:.3}", run.gflops),
            ]);
        }
    }
    svc_table.emit(&format!(
        "open-loop service: {njobs} Poisson arrivals (mean gap {mean_gap_ms} ms), 3 tenants; batched fused {}/{} jobs over {} batches",
        batched.fused_jobs,
        batched.fused_jobs + batched.solo_jobs,
        batched.batches
    ));

    if check {
        for run in [&batched, &solo] {
            if let Err(e) = run.ledger.reconcile() {
                eprintln!("FAIL: {} ledger does not reconcile: {e}", run.label);
                failed = true;
            }
            if run.failed != 0 || run.shed != 0 {
                eprintln!(
                    "FAIL: {} run lost jobs (failed {}, shed {})",
                    run.label, run.failed, run.shed
                );
                failed = true;
            }
        }
        // Every serviced matrix must be bit-identical to a standalone run.
        for (i, (p, o)) in plan.iter().zip(&batched.outcomes).enumerate() {
            let a = dense::generate::uniform::<f64>(p.shape.m, p.shape.n, p.seed);
            let standalone = caqr_cpu(a, opts(p.shape.h, p.shape.w)).expect("standalone factors");
            match &o.result {
                Ok(f) if f.a == standalone.a => {}
                Ok(_) => {
                    eprintln!("FAIL: serviced job {i} diverges bitwise from caqr_cpu");
                    failed = true;
                }
                Err(e) => {
                    eprintln!("FAIL: serviced job {i} errored: {e}");
                    failed = true;
                }
            }
        }
    }

    // ---- JSON ---------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"fused_gate\": {{\"jobs\": {gjobs}, \"m\": {gm}, \"n\": {gn}, \"tile_rows\": {gh}, \"panel_width\": {gw}, \"reps\": {reps}, \"batched_gflops\": {batched_gflops:.4}, \"one_at_a_time_gflops\": {solo_gflops:.4}, \"speedup\": {:.4}, \"fused_launches\": {}, \"logical_launches\": {}, \"arena_hits\": {}, \"arena_misses\": {}}},\n",
        batched_gflops / solo_gflops,
        last_stats.fused_launches,
        last_stats.logical_launches,
        arena.hits,
        arena.misses
    ));
    json.push_str(&format!(
        "  \"workload\": {{\"jobs\": {njobs}, \"mean_gap_ms\": {mean_gap_ms}, \"tenants\": {}, \"shapes\": [{}]}},\n",
        tenants.len(),
        shapes
            .iter()
            .map(|s| format!(
                "{{\"m\": {}, \"n\": {}, \"tile_rows\": {}, \"panel_width\": {}, \"weight\": {}}}",
                s.m, s.n, s.h, s.w, s.weight
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"service\": [\n");
    for (ri, run) in [&batched, &solo].into_iter().enumerate() {
        let classes = run
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\": \"{}\", \"jobs\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                    c.class.name(),
                    c.jobs,
                    c.p50_ms,
                    c.p99_ms
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let ledger = run
            .ledger
            .tenants
            .iter()
            .map(|(t, c)| {
                format!(
                    "{{\"tenant\": \"{t}\", \"jobs\": {}, \"fused\": {}, \"solo\": {}, \"gflop\": {:.4}, \"queue_s\": {:.6}, \"service_s\": {:.6}}}",
                    c.jobs_completed, c.fused_jobs, c.solo_jobs, c.flops / 1e9, c.queue_seconds, c.service_seconds
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let g = &run.ledger.global;
        let resilience = format!(
            "{{\"shed_overload\": {}, \"lost\": {}, \"aborted\": {}, \"retry_jobs\": {}, \"retry_attempts\": {}, \"retry_launches\": {}, \"retry_seconds\": {:.6}, \"worker_panics\": {}, \"workers_respawned\": {}, \"breaker_opens\": {}, \"breaker_closes\": {}}}",
            g.jobs_shed_overload,
            g.jobs_lost,
            g.jobs_aborted,
            g.retry_jobs,
            g.retry_attempts,
            g.retry_launches,
            g.retry_seconds,
            run.ledger.worker_panics,
            run.ledger.workers_respawned,
            run.ledger.breaker_opens,
            run.ledger.breaker_closes
        );
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_s\": {:.6}, \"gflops\": {:.4}, \"batches\": {}, \"fused_jobs\": {}, \"solo_jobs\": {}, \"shed\": {}, \"failed\": {}, \"resilience\": {resilience}, \"classes\": [{classes}], \"tenants\": [{ledger}]}}{}\n",
            run.label,
            run.wall_s,
            run.gflops,
            run.batches,
            run.fused_jobs,
            run.solo_jobs,
            run.shed,
            run.failed,
            if ri == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    eprintln!("wrote BENCH_service.json");

    if check {
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check: batched >= one-at-a-time on the fused-shape gate, zero steady-state arena misses, all serviced matrices bit-identical, ledgers reconcile"
        );
    }
}
