//! Measured block-size autotuning of the host CAQR factor path.
//!
//! Sweeps the candidate grid of `caqr::tuning::measured_grid` with real
//! wall-clock (`caqr_cpu`, f64), prints the measured surface, and persists
//! the profile to `target/caqr_tuned.json` where
//! `CpuCaqrOptions::tuned_for_width` (and the wallclock report) pick it up.
//!
//! `--quick` calibrates on a small shape with one repetition — the CI smoke
//! configuration. The default run uses the paper-scale 65536x16 panel.

use caqr::tuning::{autotune_measured, MeasuredProfile};
use gpu_sim::DeviceSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, n, reps) = if quick { (8192, 16, 1) } else { (65536, 16, 3) };
    let spec = DeviceSpec::c2050();

    eprintln!("calibrating caqr_cpu on {m}x{n} (best of {reps})...");
    let mut profile = autotune_measured(&spec, m, n, reps);
    // A second sweep at half width keeps narrow-panel callers tuned too.
    let narrow = autotune_measured(&spec, m, n / 2, reps);
    profile
        .points
        .extend(narrow.points.iter().filter(|p| p.bs.w <= n / 2));

    println!("{:>6} {:>6} {:>9}", "h", "w", "GFLOP/s");
    for p in &profile.points {
        println!("{:>6} {:>6} {:>9.3}", p.bs.h, p.bs.w, p.gflops);
    }
    for w in [n / 2, n] {
        if let Some(best) = profile.best_for_width(w) {
            println!(
                "best w={w}: {}x{} at {:.3} GFLOP/s",
                best.bs.h, best.bs.w, best.gflops
            );
        }
    }

    let path = MeasuredProfile::default_path();
    profile.save(&path).expect("persist tuned profile");
    // Round-trip through `load`, which rejects profiles whose SIMD backend
    // or kernel generation doesn't match this process — proving the file
    // just written carries the tags that will keep it valid (and that a
    // later kernel bump or different machine will retire it).
    let back = MeasuredProfile::load(&path)
        .expect("freshly saved profile must reload under the current backend/kernel tags");
    assert_eq!(back.backend, dense::simd::active().name());
    assert_eq!(back.kernel_version, dense::simd::KERNEL_VERSION);
    println!(
        "wrote {} (backend {}, kernel generation {})",
        path.display(),
        back.backend,
        back.kernel_version
    );
}
