//! Section IV-E / IV-G: the kernel-tuning progression on 128 x 16 blocks.
//!
//! The paper improves `apply_qt_h` from 55 GFLOPS (shared-memory parallel
//! reductions) through 168 (shared-memory serial) and 194 (register-file
//! serial) to 388 GFLOPS (register-file serial + pre-transposed panels).
//!
//! ```text
//! cargo run -p caqr-bench --release --bin tuning_progression [-- --csv]
//! ```

use caqr::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use caqr::BlockSize;
use caqr_bench::{gf, Table};
use gpu_sim::DeviceSpec;

fn main() {
    let spec = DeviceSpec::c2050();
    let bs = BlockSize::c2050_best();
    let paper = [55.0, 168.0, 194.0, 388.0];

    let mut table = Table::new(&["strategy", "modelled GFLOP/s", "paper GFLOP/s"]);
    for (s, p) in ReductionStrategy::ALL.into_iter().zip(paper) {
        table.row(vec![
            s.to_string(),
            gf(apply_qt_h_block_gflops(&spec, bs, s)),
            gf(p),
        ]);
    }
    table.emit("Tuning progression: apply_qt_h on 128x16 blocks (C2050)");
}
