//! Figure 7: modelled `apply_qt_h` performance (single-precision GFLOP/s)
//! for the block-size candidate grid on the C2050, using the shipping
//! strategy (register-file serial reductions + pre-transposed panels).
//!
//! The paper reports the best shape as 128 x 16 at 388 GFLOPS.
//!
//! ```text
//! cargo run -p caqr-bench --release --bin fig7_block_size [-- --csv]
//! ```

use caqr::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use caqr::tuning::{autotune, block_size_grid};
use caqr_bench::{gf, Table};
use gpu_sim::DeviceSpec;

fn main() {
    let spec = DeviceSpec::c2050();
    let strategy = ReductionStrategy::RegisterSerialTransposed;

    // The surface, organized as heights x widths like the paper's figure.
    let heights = [32usize, 64, 128, 256, 512];
    let widths = [4usize, 8, 16, 32, 64];
    let mut table = Table::new(&["height \\ width", "4", "8", "16", "32", "64"]);
    for h in heights {
        let mut row = vec![format!("{h}")];
        for w in widths {
            let bs = caqr::BlockSize { h, w };
            if bs.validate().is_ok() {
                row.push(gf(apply_qt_h_block_gflops(&spec, bs, strategy)));
            } else {
                row.push("-".into());
            }
        }
        table.row(row);
    }
    table.emit("Figure 7: apply_qt_h GFLOP/s by block size (C2050, strategy 4)");

    let best = autotune(&spec, strategy);
    println!(
        "\nautotuned best: {}x{} at {} GFLOP/s over {} candidates (paper: 128x16 at 388)",
        best.bs.h,
        best.bs.w,
        gf(best.gflops),
        block_size_grid().len()
    );
}
