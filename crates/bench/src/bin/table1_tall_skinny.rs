//! Table I: single-precision `SGEQRF` GFLOP/s for very tall-skinny matrices
//! (1k..1M rows x 192 columns) across CAQR, MAGMA, CULA and MKL.
//!
//! Paper values:
//!
//! | size       | CAQR | MAGMA | CULA | MKL  |
//! |------------|------|-------|------|------|
//! | 1k x 192   | 39.6 | 5.01  | 2.99 | 3.12 |
//! | 10k x 192  | 111  | 18.7  | 9.67 | 16.9 |
//! | 50k x 192  | 174  | 20.8  | 9.42 | 22.8 |
//! | 100k x 192 | 180  | 18.8  | 8.90 | 21.4 |
//! | 500k x 192 | 194  | 12.4  | 8.40 | 17.8 |
//! | 1M x 192   | 195  | 11.4  | 7.79 | 16.5 |
//!
//! ```text
//! cargo run -p caqr-bench --release --bin table1_tall_skinny [-- --csv]
//! ```

use baselines::QrImpl;
use caqr_bench::{gf, Table};

fn main() {
    let sizes: [(usize, &str); 6] = [
        (1_000, "1k x 192"),
        (10_000, "10k x 192"),
        (50_000, "50k x 192"),
        (100_000, "100k x 192"),
        (500_000, "500k x 192"),
        (1_000_000, "1M x 192"),
    ];
    let mut table = Table::new(&[
        "matrix",
        "CAQR",
        "MAGMA",
        "CULA",
        "MKL",
        "vs GPU libs",
        "vs MKL",
    ]);
    for (m, label) in sizes {
        let g: Vec<f64> = QrImpl::ALL.iter().map(|i| i.model_gflops(m, 192)).collect();
        let best_gpu_lib = g[1].max(g[2]);
        table.row(vec![
            label.to_string(),
            gf(g[0]),
            gf(g[1]),
            gf(g[2]),
            gf(g[3]),
            format!("{:.1}x", g[0] / best_gpu_lib),
            format!("{:.1}x", g[0] / g[3]),
        ]);
    }
    table.emit("Table I: SP GFLOP/s for very tall-skinny matrices (modelled)");
    println!("\npaper headline: up to 17x over GPU libraries, 12x over MKL at 1M x 192");
}
