//! Figure 8: speedup of CAQR over each library's `SGEQRF` across a grid of
//! matrix shapes — skinny matrices on the left, square on the right, with a
//! crossover "to the right of which the libraries outperform our QR".
//!
//! The sweep covers heights 2^13..2^20 and widths 2^6..height (capped so a
//! point stays under ~2^26 elements, matching a 256 MB single-precision
//! GPU allocation).
//!
//! The `streams` column reports the stream-scheduled DAG (4 streams,
//! lookahead) relative to the synchronous CAQR loop at the same shape.
//!
//! ```text
//! cargo run -p caqr-bench --release --bin fig8_speedup [-- --csv]
//! ```

use baselines::QrImpl;
use caqr::schedule::model_caqr_dag_seconds;
use caqr::{CaqrOptions, ScheduleOptions};
use caqr_bench::Table;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let heights = [8192usize, 16384, 65536, 262_144, 1_048_576];
    let widths = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192];
    let max_elems = 1usize << 26;

    let mut table = Table::new(&[
        "height",
        "width",
        "vs MAGMA",
        "vs CULA",
        "vs MKL",
        "streams",
        "CAQR wins",
    ]);
    let mut wins_skinny = 0;
    let mut total_skinny = 0;
    for m in heights {
        for n in widths {
            if n > m || m * n > max_elems {
                continue;
            }
            let caqr_s = QrImpl::Caqr.model_seconds(m, n);
            let su = |i: QrImpl| i.model_seconds(m, n) / caqr_s;
            let (sm, sc, sk) = (su(QrImpl::Magma), su(QrImpl::Cula), su(QrImpl::Mkl));
            let dag_s = model_caqr_dag_seconds(
                &Gpu::new(DeviceSpec::c2050()),
                m,
                n,
                ScheduleOptions {
                    caqr: CaqrOptions::default(),
                    streams: 4,
                    lookahead: true,
                },
            )
            .unwrap();
            let wins = sm > 1.0 && sc > 1.0;
            if m / n >= 64 {
                total_skinny += 1;
                if wins {
                    wins_skinny += 1;
                }
            }
            table.row(vec![
                m.to_string(),
                n.to_string(),
                format!("{sm:.1}x"),
                format!("{sc:.1}x"),
                format!("{sk:.1}x"),
                format!("{:.2}x", caqr_s / dag_s),
                if wins { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table.emit("Figure 8: CAQR speedup vs each library's SGEQRF (modelled)");
    println!(
        "\nCAQR beats both GPU libraries on {wins_skinny}/{total_skinny} shapes with aspect ratio >= 64 \
         (paper: CAQR wins everywhere left of the dashed crossover)"
    );
}
