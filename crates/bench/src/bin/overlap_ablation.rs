//! Overlap ablation: stream-scheduled CAQR (DAG + lookahead) against the
//! synchronous Figure-4 loop on the Table I tall-skinny shapes, sweeping the
//! stream count and toggling lookahead. The numerics are bit-identical
//! across every row (see `tests/stream_scheduling.rs`); only the modelled
//! schedule changes, so the deltas isolate what kernel overlap buys.
//!
//! With `--trace <file>`, also writes the Chrome `trace_event` JSON of the
//! best configuration's 100k x 192 schedule (open in `chrome://tracing` or
//! Perfetto).
//!
//! ```text
//! cargo run -p caqr-bench --release --bin overlap_ablation [-- --csv] [-- --trace trace.json]
//! ```

use caqr::schedule::{model_caqr_dag_seconds, model_caqr_dag_timeline};
use caqr::{CaqrOptions, ScheduleOptions};
use caqr_bench::Table;
use gpu_sim::{DeviceSpec, Gpu};

const WIDTH: usize = 192;

fn dag_seconds(m: usize, streams: usize, lookahead: bool) -> f64 {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let opts = ScheduleOptions {
        caqr: CaqrOptions::default(),
        streams,
        lookahead,
    };
    model_caqr_dag_seconds(&gpu, m, WIDTH, opts).unwrap()
}

fn main() {
    let heights = [1_000usize, 10_000, 100_000, 1_000_000];

    let mut table = Table::new(&[
        "height",
        "sync ms",
        "s=1 barrier",
        "s=4 barrier",
        "s=2 lookahead",
        "s=4 lookahead",
        "best speedup",
    ]);
    let mut best_overall: Option<(usize, bool, f64)> = None;
    for m in heights {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let sync = caqr::model::model_caqr_seconds(&gpu, m, WIDTH, CaqrOptions::default()).unwrap();
        let cases = [(1usize, false), (4, false), (2, true), (4, true)];
        let times: Vec<f64> = cases.iter().map(|&(s, la)| dag_seconds(m, s, la)).collect();
        let (bi, bt) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let speedup = sync / bt;
        if best_overall.is_none_or(|(_, _, sp)| speedup > sp) {
            best_overall = Some((cases[bi].0, cases[bi].1, speedup));
        }
        let ms = |t: f64| format!("{:.3}", t * 1e3);
        table.row(vec![
            m.to_string(),
            ms(sync),
            ms(times[0]),
            ms(times[1]),
            ms(times[2]),
            ms(times[3]),
            format!("{speedup:.3}x"),
        ]);
    }
    table.emit(&format!(
        "Overlap ablation: modelled CAQR time, n = {WIDTH} (sync loop vs stream DAG)"
    ));
    let (bs, bla, bsp) = best_overall.unwrap();
    println!(
        "\nbest schedule: {bs} streams, lookahead={bla} ({bsp:.3}x over the synchronous loop); \
         1 stream without lookahead reproduces the synchronous time exactly"
    );

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next().expect("--trace needs a file path");
            let gpu = Gpu::new(DeviceSpec::c2050());
            let opts = ScheduleOptions {
                caqr: CaqrOptions::default(),
                streams: 4,
                lookahead: true,
            };
            let (_, tl) = model_caqr_dag_timeline(&gpu, 100_000, WIDTH, opts).unwrap();
            std::fs::write(&path, tl.to_chrome_trace()).expect("write trace file");
            println!(
                "wrote {} intervals ({} streams, makespan {:.3} ms) to {path}",
                tl.intervals.len(),
                opts.streams,
                tl.makespan * 1e3
            );
        }
    }
}
