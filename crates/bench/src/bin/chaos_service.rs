//! Chaos soak for the multi-tenant QR service (DESIGN.md §15): drives a
//! seeded mixed-fault storm — launch faults, silent data corruption,
//! hangs, host panics, periodic worker kills — through [`caqr::Service`]
//! with batch verification on, and gates the service-tier resilience
//! contract:
//!
//! 1. **Every ticket resolves.** A watchdog thread kills the process
//!    (exit 2) if the soak wedges; a bounded resubmission loop must drive
//!    every job to a successful factorization.
//! 2. **Bit identity.** Every recovered matrix equals a standalone
//!    `caqr_cpu` run, bit for bit — carve-outs and retries never perturb
//!    riders or survivors.
//! 3. **Ledger reconciliation.** Per-tenant rows (shed/lost/retry
//!    counters included) sum exactly to the global row after the storm.
//! 4. **Fault-free overhead.** The plain fused path must stay within 10%
//!    of the `BENCH_service.json` throughput floor recorded by
//!    `service_report` (compared only when that file's `--quick` mode
//!    matches this run's).
//!
//! `--quick` shrinks the workload for the CI smoke run; `--check` turns
//! gate violations into a nonzero exit. Emits `BENCH_chaos_service.json`.

use caqr::multicore::{caqr_cpu, CpuCaqrOptions};
use caqr::{
    factor_many_resilient, factor_many_with_stats, JobSpec, Priority, RecoveryPolicy,
    ResilienceConfig, RetryBudget, Service, ServiceConfig, ServiceFaultPlan, ShedPolicy, TreeShape,
};
use caqr_bench::Table;
use dense::Matrix;
use gpu_sim::FaultPlan;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn opts(h: usize, w: usize) -> CpuCaqrOptions {
    CpuCaqrOptions {
        tile_rows: h,
        panel_width: w,
        tree: TreeShape::DeviceArity,
        verify_checksums: false,
    }
}

/// Swallow the backtraces of deliberately injected panics (worker kills,
/// host-panic faults); anything else still prints.
fn silence_injected_panics() {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.to_string()));
        if msg.as_deref().is_some_and(|m| m.contains("injected")) {
            return;
        }
        hook(info);
    }));
}

/// Pull the fused-gate `batched_gflops` floor out of `BENCH_service.json`
/// by string search (the repo carries no JSON parser), but only when that
/// report was produced in the same `--quick` mode as this run — the gate
/// bag dimensions differ between modes, so cross-mode floors do not
/// compare.
fn parse_floor(json: &str, quick: bool) -> Option<f64> {
    if !json.contains(&format!("\"quick\": {quick}")) {
        return None;
    }
    let key = "\"batched_gflops\": ";
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let mut failed = false;
    silence_injected_panics();

    // ---- Phase 1: fault-free overhead gate ----------------------------
    // Same bag dimensions as service_report's fused gate, so the stored
    // floor compares like for like. The plain path (what fault-free
    // traffic takes through the service) must hold ≥ 90% of the recorded
    // floor; the verified path's ABFT overhead is reported alongside.
    let (gm, gn, gh, gw, gjobs, reps) = if quick {
        (384, 32, 48, 16, 48, 5)
    } else {
        (512, 32, 64, 16, 96, 3)
    };
    let gate_opts = opts(gh, gw);
    let inputs: Vec<Matrix<f64>> = (0..gjobs)
        .map(|i| dense::generate::uniform::<f64>(gm, gn, 0xCAFE + i as u64))
        .collect();
    let bag = || -> Vec<(Matrix<f64>, CpuCaqrOptions)> {
        inputs.iter().map(|a| (a.clone(), gate_opts)).collect()
    };
    let total_gflop = dense::geqrf_flops(gm, gn) * gjobs as f64 / 1e9;
    let no_faults = vec![None; gjobs];
    let policy = RecoveryPolicy::default();

    // Warm both paths once so the measured reps run out of the arena.
    drop(factor_many_with_stats(bag()));
    drop(factor_many_resilient(bag(), &no_faults, true, &policy));

    let mut plain_best_s = f64::INFINITY;
    let mut verified_best_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (results, _) = factor_many_with_stats(bag());
        plain_best_s = plain_best_s.min(t0.elapsed().as_secs_f64());
        assert!(results.iter().all(Result::is_ok), "gate bag must factor");

        let t0 = Instant::now();
        let (results, _) = factor_many_resilient(bag(), &no_faults, true, &policy);
        verified_best_s = verified_best_s.min(t0.elapsed().as_secs_f64());
        assert!(
            results.iter().all(Result::is_ok),
            "verified gate bag must factor"
        );
    }
    let plain_gflops = total_gflop / plain_best_s;
    let verified_gflops = total_gflop / verified_best_s;
    let floor = std::fs::read_to_string("BENCH_service.json")
        .ok()
        .and_then(|j| parse_floor(&j, quick));

    let mut gate_table = Table::new(&["path", "GFLOP/s", "time ms", "vs floor"]);
    let vs = |g: f64| {
        floor.map_or_else(
            || "n/a".to_string(),
            |f| format!("{:+.1}%", (g / f - 1.0) * 100.0),
        )
    };
    gate_table.row(vec![
        "plain fused".into(),
        format!("{plain_gflops:.3}"),
        format!("{:.3}", plain_best_s * 1e3),
        vs(plain_gflops),
    ]);
    gate_table.row(vec![
        "verified fused".into(),
        format!("{verified_gflops:.3}"),
        format!("{:.3}", verified_best_s * 1e3),
        vs(verified_gflops),
    ]);
    gate_table.emit(&format!(
        "fault-free overhead gate: {gjobs} x {gm}x{gn} (h {gh}, w {gw}), best of {reps}, floor {}",
        floor.map_or_else(|| "unavailable".to_string(), |f| format!("{f:.3} GFLOP/s"))
    ));

    if check {
        match floor {
            Some(f) if plain_gflops < 0.9 * f => {
                eprintln!(
                    "FAIL: fault-free fused path {plain_gflops:.3} GFLOP/s fell below 90% of the BENCH_service.json floor {f:.3}"
                );
                failed = true;
            }
            Some(_) => {}
            None => eprintln!(
                "note: no mode-matching BENCH_service.json floor; overhead gate compared nothing"
            ),
        }
    }

    // ---- Phase 2: seeded chaos soak -----------------------------------
    let (njobs, seed, budget_s) = if quick { (24, 11, 120) } else { (96, 11, 300) };
    let shapes = [(160usize, 8usize, 24usize, 8usize), (240, 16, 48, 16)];
    let tenants = ["acme", "globex", "initech"];
    let queue_capacity = if quick { 16 } else { 32 };
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity,
        max_batch: 4,
        shed: ShedPolicy::recommended(queue_capacity),
        resilience: ResilienceConfig {
            verify_batches: true,
            faults: Some(
                ServiceFaultPlan::new(FaultPlan::seeded_service_mix(seed, 0.05, 0.05, 0.03, 0.02))
                    .worker_panic_every(7),
            ),
            retry: RetryBudget {
                max_retries: 3,
                backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
            },
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    };

    // Watchdog: every admitted ticket must resolve — if the soak wedges
    // (a lost wakeup, an unresolved flight), die loudly instead of letting
    // CI time the whole job out.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(budget_s));
            if !done.load(Ordering::SeqCst) {
                eprintln!("FAIL: chaos soak wedged — a ticket failed to resolve in {budget_s}s");
                std::process::exit(2);
            }
        });
    }

    let svc = Service::<f64>::start(cfg);
    // The workload: njobs across two shape classes, three tenants, three
    // priority classes, with a standalone `caqr_cpu` answer for each.
    struct Job {
        a: Matrix<f64>,
        o: CpuCaqrOptions,
        tenant: &'static str,
        priority: Priority,
        want: Matrix<f64>,
    }
    let jobs: Vec<Job> = (0..njobs as u64)
        .map(|s| {
            let (m, n, h, w) = shapes[(s % 2) as usize];
            let a = dense::generate::uniform::<f64>(m, n, 0xD00D + s);
            let o = opts(h, w);
            let want = caqr_cpu(a.clone(), o)
                .expect("standalone reference factors")
                .a;
            Job {
                a,
                o,
                tenant: tenants[(s % 3) as usize],
                priority: Priority::ALL[(s % 3) as usize],
                want,
            }
        })
        .collect();

    // Bounded resubmission: typed failures (worker lost, overload shed,
    // retry exhausted, carved terminal errors) go back into the queue —
    // a fresh submission draws a fresh fault sequence — until every job
    // has factored bitwise or the round budget is spent.
    let max_rounds = 50usize;
    let mut pending: Vec<usize> = (0..jobs.len()).collect();
    let mut rounds = 0usize;
    let mut resubmitted = 0u64;
    let mut typed_failures = 0u64;
    let soak_t0 = Instant::now();
    while !pending.is_empty() {
        rounds += 1;
        if rounds > max_rounds {
            eprintln!(
                "FAIL: {} jobs still unresolved after {max_rounds} resubmission rounds",
                pending.len()
            );
            failed = true;
            break;
        }
        let tickets: Vec<_> = pending
            .iter()
            .map(|&j| {
                let job = &jobs[j];
                svc.submit(
                    JobSpec::new(job.a.clone(), job.o)
                        .tenant(job.tenant)
                        .priority(job.priority),
                )
                .expect("chaos soak submissions are admitted")
            })
            .collect();
        let mut next = Vec::new();
        for (&j, t) in pending.iter().zip(tickets) {
            // Gate 1: the ticket resolves (the watchdog catches a wedge).
            let out = t.wait().expect("every chaos ticket resolves");
            match out.result {
                Ok(f) => {
                    // Gate 2: bit identity against the standalone answer.
                    if f.a != jobs[j].want {
                        eprintln!("FAIL: job {j} diverges bitwise from standalone caqr_cpu");
                        failed = true;
                    }
                }
                Err(e) => {
                    typed_failures += 1;
                    resubmitted += 1;
                    let _ = e; // typed error: resubmit next round
                    next.push(j);
                }
            }
        }
        pending = next;
    }
    let soak_s = soak_t0.elapsed().as_secs_f64();
    let ledger = svc.ledger();
    svc.shutdown();
    done.store(true, Ordering::SeqCst);

    // Gate 3: the ledger reconciles after the storm.
    if let Err(e) = ledger.reconcile() {
        eprintln!("FAIL: post-chaos ledger does not reconcile: {e}");
        failed = true;
    }

    let g = &ledger.global;
    let mut soak_table = Table::new(&["counter", "value"]);
    for (name, v) in [
        ("jobs factored bitwise", njobs as u64),
        ("resubmission rounds", rounds as u64),
        ("typed failures resubmitted", resubmitted),
        ("jobs_completed", g.jobs_completed),
        ("jobs_failed", g.jobs_failed),
        ("jobs_lost (worker died)", g.jobs_lost),
        ("jobs_shed_overload", g.jobs_shed_overload),
        ("deadline/shed", g.jobs_shed),
        ("retry_jobs", g.retry_jobs),
        ("retry_attempts", g.retry_attempts),
        ("retry_launches", g.retry_launches),
        ("worker_panics", ledger.worker_panics),
        ("workers_respawned", ledger.workers_respawned),
        ("breaker_opens", ledger.breaker_opens),
        ("breaker_closes", ledger.breaker_closes),
    ] {
        soak_table.row(vec![name.into(), v.to_string()]);
    }
    soak_table.emit(&format!(
        "chaos soak: {njobs} jobs, seeded mix (seed {seed}), worker kill every 7th batch, {soak_s:.2}s"
    ));

    // ---- JSON ---------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"chaos_service\",\n  \"quick\": {quick},\n  \"gate\": {{\"jobs\": {gjobs}, \"m\": {gm}, \"n\": {gn}, \"plain_gflops\": {plain_gflops:.4}, \"verified_gflops\": {verified_gflops:.4}, \"verify_overhead\": {:.4}, \"floor_gflops\": {}}},\n  \"soak\": {{\"jobs\": {njobs}, \"seed\": {seed}, \"rounds\": {rounds}, \"resubmitted\": {resubmitted}, \"typed_failures\": {typed_failures}, \"wall_s\": {soak_s:.4}, \"jobs_completed\": {}, \"jobs_failed\": {}, \"jobs_lost\": {}, \"jobs_shed_overload\": {}, \"jobs_shed\": {}, \"retry_jobs\": {}, \"retry_attempts\": {}, \"retry_launches\": {}, \"retry_seconds\": {:.6}, \"worker_panics\": {}, \"workers_respawned\": {}, \"breaker_opens\": {}, \"breaker_closes\": {}}}\n}}\n",
        plain_gflops / verified_gflops,
        floor.map_or_else(|| "null".to_string(), |f| format!("{f:.4}")),
        g.jobs_completed,
        g.jobs_failed,
        g.jobs_lost,
        g.jobs_shed_overload,
        g.jobs_shed,
        g.retry_jobs,
        g.retry_attempts,
        g.retry_launches,
        g.retry_seconds,
        ledger.worker_panics,
        ledger.workers_respawned,
        ledger.breaker_opens,
        ledger.breaker_closes,
    );
    std::fs::write("BENCH_chaos_service.json", &json).expect("write BENCH_chaos_service.json");
    eprintln!("wrote BENCH_chaos_service.json");

    if check {
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check: all tickets resolved, every recovered matrix bit-identical, ledger reconciles, fault-free path within 10% of floor"
        );
    }
}
