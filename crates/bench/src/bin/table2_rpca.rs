//! Table II: Robust PCA iteration rates for stationary-video background
//! subtraction on the 110,592 x 100 video matrix (288 x 384 pixels, 100
//! frames).
//!
//! Paper values: MKL SVD (4 cores) 0.9 it/s, BLAS2 QR (GTX480) 8.7 it/s,
//! CAQR (GTX480) 27.0 it/s — a 3x gain from CAQR over the tuned BLAS2 QR
//! and 30x over the CPU pipeline.
//!
//! Pass `--solve` to additionally run the *real* Robust PCA solver on a
//! reduced synthetic clip and report convergence + separation quality.
//!
//! ```text
//! cargo run -p caqr-bench --release --bin table2_rpca [-- --csv] [-- --solve]
//! ```

use caqr_bench::Table;
use rpca::{model_iteration_seconds, model_iterations_per_second, RpcaImpl};

fn main() {
    let paper = [0.9, 8.7, 27.0];
    let mut table = Table::new(&[
        "SVD type",
        "modelled it/s",
        "paper it/s",
        "ms per iteration",
    ]);
    for (i, p) in RpcaImpl::ALL.into_iter().zip(paper) {
        table.row(vec![
            i.name().to_string(),
            format!("{:.1}", model_iterations_per_second(i)),
            format!("{p:.1}"),
            format!("{:.1}", model_iteration_seconds(i, 110_592, 100) * 1e3),
        ]);
    }
    table.emit("Table II: Robust PCA iterations per second (110,592 x 100)");

    let caqr = model_iterations_per_second(RpcaImpl::CaqrGpu);
    let blas2 = model_iterations_per_second(RpcaImpl::Blas2GpuQr);
    let cpu = model_iterations_per_second(RpcaImpl::MklSvdCpu);
    println!("\nCAQR vs BLAS2 QR: {:.1}x (paper ~3x)", caqr / blas2);
    println!("CAQR vs CPU:      {:.1}x (paper ~30x)", caqr / cpu);
    println!(
        "500 iterations: {:.0} s on CAQR vs {:.0} s on the CPU (paper: 17 s vs 9+ minutes)",
        500.0 / caqr,
        500.0 / cpu
    );

    if std::env::args().any(|a| a == "--sweep") {
        scaling_sweep();
    }
    if std::env::args().any(|a| a == "--solve") {
        solve_demo();
    }
}

/// Extension: how the three pipelines scale with clip length and
/// resolution (the paper fixes 100 frames at 288 x 384; longer clips and
/// higher resolutions only widen CAQR's lead while the small-SVD cost
/// grows cubically with the frame count).
fn scaling_sweep() {
    let mut t = Table::new(&[
        "video matrix",
        "CPU it/s",
        "BLAS2 it/s",
        "CAQR it/s",
        "CAQR/BLAS2",
    ]);
    let cases = [
        (110_592usize, 50usize, "288x384, 50 frames"),
        (110_592, 100, "288x384, 100 frames"),
        (110_592, 200, "288x384, 200 frames"),
        (442_368, 100, "576x768, 100 frames"),
        (27_648, 100, "144x192, 100 frames"),
    ];
    for (m, n, label) in cases {
        let r: Vec<f64> = RpcaImpl::ALL
            .iter()
            .map(|&i| 1.0 / model_iteration_seconds(i, m, n))
            .collect();
        t.row(vec![
            label.to_string(),
            format!("{:.1}", r[0]),
            format!("{:.1}", r[1]),
            format!("{:.1}", r[2]),
            format!("{:.1}x", r[2] / r[1]),
        ]);
    }
    t.emit("Extension: iteration-rate scaling with clip length / resolution");
}

/// Run the real solver on a reduced clip to show the algorithm converging.
fn solve_demo() {
    use rpca::video::{generate, sparsity, VideoConfig};
    use rpca::{rpca, CpuQrBackend, RpcaParams};

    let cfg = VideoConfig {
        width: 48,
        height: 36,
        frames: 40,
        ..VideoConfig::tiny()
    };
    println!(
        "\nsolving Robust PCA on a {}x{} synthetic clip ({} frames, matrix {}x{})...",
        cfg.width,
        cfg.height,
        cfg.frames,
        cfg.pixels(),
        cfg.frames
    );
    let video = generate::<f64>(&cfg);
    let t0 = std::time::Instant::now();
    let r = rpca(&CpuQrBackend, &video.matrix, &RpcaParams::default()).expect("rpca solve failed");
    println!(
        "converged={} iterations={} rank(L)={} residual={:.2e} sparsity(S)={:.3} wall={:.2}s",
        r.converged,
        r.iterations,
        r.rank,
        r.residual,
        sparsity(&r.s, 0.3),
        t0.elapsed().as_secs_f64()
    );
}
