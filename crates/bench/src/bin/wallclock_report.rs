//! Wall-clock kernel report: times the real host arithmetic behind each
//! kernel class (packed GEMM, per-reflector larf apply, compact-WY larfb
//! apply, the pre-transposed factor micro-kernel vs its pre-arena reference,
//! host CAQR factor) and emits `BENCH_kernels.json` with GFLOP/s and arena
//! hit/miss counts per kernel per shape, plus a human-readable table.
//!
//! `--quick` shrinks shapes and repetitions for the CI smoke run; without
//! it the shapes match the EXPERIMENTS.md entries.
//! `--check-factor <min_gflops>` fails (exit 1) if any `caqr_cpu_factor`
//! row lands below the threshold or any arena-backed kernel still allocates
//! in steady state — the CI regression gate for the factor hot path.

use caqr::block::tile_panel;
use caqr::blockops;
use caqr::{caqr_cpu, CpuCaqrOptions};
use caqr_bench::Table;
use dense::arena;
use dense::blas3::{gemm, Trans};
use dense::matrix::Matrix;
use dense::{MatPtr, PoolScalar};
use std::time::Instant;

struct Entry {
    kernel: &'static str,
    shape: String,
    /// SIMD backend the row was measured on (`dense::Backend::name()`).
    /// GEMM rows are swept over every reachable backend via the dispatch
    /// override; the other kernels record the auto-selected one.
    backend: String,
    seconds: f64,
    gflops: f64,
    /// Arena requests served from the pool during the timed (steady-state)
    /// repetitions.
    arena_hits: u64,
    /// Arena requests that had to allocate during the timed repetitions.
    /// Zero for every arena-backed kernel once the pool is warm — this is
    /// the "no per-launch allocation" evidence.
    arena_misses: u64,
}

/// The auto-selected SIMD backend's name, recorded on every row that is
/// not explicitly swept over backends.
fn active_name() -> String {
    dense::simd::active().name().to_string()
}

/// Best-of-`reps` wall-clock of `f`, charged with `flops` useful flops.
/// `f` is run once untimed to warm the arena pools; the hit/miss counters
/// then cover exactly the timed repetitions.
fn time_kernel<T: PoolScalar>(
    reps: usize,
    flops: f64,
    mut f: impl FnMut(),
) -> (f64, f64, u64, u64) {
    f(); // warm caches and arena pools
    arena::reset_stats::<T>();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    let s = arena::stats::<T>();
    (best, flops / best / 1e9, s.hits, s.misses)
}

fn bench_gemm(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize, usize)]) {
    // Sweep every backend this CPU can reach (the dispatch override forces
    // each in turn) so the report records the full SIMD speedup ladder —
    // scalar is the PR-2 baseline every vector row is compared against.
    for backend in dense::Backend::available() {
        dense::simd::set_backend_override(Some(backend));
        for &(m, n, k) in shapes {
            let a = dense::generate::uniform::<f32>(m, k, 1);
            let b = dense::generate::uniform::<f32>(k, n, 2);
            let mut c = Matrix::<f32>::zeros(m, n);
            let (seconds, gflops, hits, misses) =
                time_kernel::<f32>(reps, 2.0 * (m * n * k) as f64, || {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        a.as_ref(),
                        b.as_ref(),
                        0.0,
                        c.as_mut(),
                    );
                    std::hint::black_box(&c);
                });
            entries.push(Entry {
                kernel: "gemm",
                shape: format!("{m}x{n}x{k}"),
                backend: backend.name().to_string(),
                seconds,
                gflops,
                arena_hits: hits,
                arena_misses: misses,
            });
        }
    }
    dense::simd::set_backend_override(None);
}

fn bench_apply(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize, usize)]) {
    for &(m, w, h) in shapes {
        let mut panel = dense::generate::uniform::<f32>(m, w, 3);
        let tiles = tile_panel(0, m, h, w);
        let wys: Vec<_> = {
            let p = MatPtr::new(&mut panel);
            tiles
                .iter()
                .map(|&t| blockops::factor_tile(p, t, 0, w))
                .collect()
        };
        let c0 = dense::generate::uniform::<f32>(m, w, 4);
        // Both paths apply the same w reflectors per tile to a w-column
        // target: 4*rows*w*w useful flops per tile.
        let flops = 4.0 * (m * w * w) as f64;
        let shape = format!("{m}x{w}");
        let mut cm = c0.clone();
        let (seconds, gflops, hits, misses) = time_kernel::<f32>(reps, flops, || {
            cm.as_mut_slice().copy_from_slice(c0.as_slice());
            let cp = MatPtr::new(&mut cm);
            for (ti, &tile) in tiles.iter().enumerate() {
                blockops::apply_tile_wy(&wys[ti], cp, tile, 0, w, true);
            }
            std::hint::black_box(&cm);
        });
        entries.push(Entry {
            kernel: "apply_larfb_wy",
            shape: shape.clone(),
            backend: active_name(),
            seconds,
            gflops,
            arena_hits: hits,
            arena_misses: misses,
        });
        let (seconds, gflops, hits, misses) = time_kernel::<f32>(reps, flops, || {
            cm.as_mut_slice().copy_from_slice(c0.as_slice());
            let cp = MatPtr::new(&mut cm);
            let vp = MatPtr::new_readonly(&panel);
            for (ti, &tile) in tiles.iter().enumerate() {
                blockops::apply_tile_reflectors(vp, cp, tile, 0, w, &wys[ti].tau, 0, w, true);
            }
            std::hint::black_box(&cm);
        });
        entries.push(Entry {
            kernel: "apply_larf_per_reflector",
            shape,
            backend: active_name(),
            seconds,
            gflops,
            arena_hits: hits,
            arena_misses: misses,
        });
    }
}

/// The factor hot path in isolation: the pre-transposed arena-backed
/// micro-kernel (`factor_tile`) against the pre-PR fresh-allocation
/// reference (`factor_tile_ref`) — the before/after pair for this
/// optimisation, on identical tiles.
fn bench_factor_tile(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize, usize)]) {
    for &(m, w, h) in shapes {
        let a0 = dense::generate::uniform::<f64>(m, w, 6);
        let tiles = tile_panel(0, m, h, w);
        let flops = 2.0 * (m * w * w) as f64 - 2.0 / 3.0 * (w * w * w) as f64;
        let shape = format!("{m}x{w}");
        let mut a = a0.clone();
        let (seconds, gflops, hits, misses) = time_kernel::<f64>(reps, flops, || {
            a.as_mut_slice().copy_from_slice(a0.as_slice());
            let p = MatPtr::new(&mut a);
            for &tile in &tiles {
                std::hint::black_box(blockops::factor_tile(p, tile, 0, w));
            }
        });
        entries.push(Entry {
            kernel: "factor_tile",
            shape: shape.clone(),
            backend: active_name(),
            seconds,
            gflops,
            arena_hits: hits,
            arena_misses: misses,
        });
        let (seconds, gflops, hits, misses) = time_kernel::<f64>(reps, flops, || {
            a.as_mut_slice().copy_from_slice(a0.as_slice());
            let p = MatPtr::new(&mut a);
            for &tile in &tiles {
                std::hint::black_box(blockops::factor_tile_ref(p, tile, 0, w));
            }
        });
        entries.push(Entry {
            kernel: "factor_tile_ref",
            shape,
            backend: active_name(),
            seconds,
            gflops,
            arena_hits: hits,
            arena_misses: misses,
        });
    }
}

fn bench_caqr_cpu(
    entries: &mut Vec<Entry>,
    overheads: &mut Vec<(String, f64, f64)>,
    reps: usize,
    shapes: &[(usize, usize)],
) {
    for &(m, n) in shapes {
        let a = dense::generate::uniform::<f64>(m, n, 5);
        // Tall-skinny QR: ~ 2 m n^2 - (2/3) n^3 useful flops.
        let flops = 2.0 * (m * n * n) as f64 - 2.0 / 3.0 * (n * n * n) as f64;
        // Consume the measured autotuning profile when one has been
        // persisted (`cargo run --bin autotune`); fall back to the static
        // heuristic otherwise. The checksummed twin differs only in the
        // ABFT verification — the row pair behind `--check-overhead`.
        let plain = CpuCaqrOptions::tuned_for_width(n);
        let checked = CpuCaqrOptions {
            verify_checksums: true,
            ..plain
        };
        // `caqr_cpu` factors in place, so each repetition consumes a fresh
        // copy of the input; the copies are prepared outside the timed
        // region so the rows measure the factorization, not memcpy. The
        // two variants are timed in *interleaved* repetitions: the
        // overhead gate divides one row by the other, so both sides must
        // sample the same noise environment rather than back-to-back
        // windows a load spike can land in asymmetrically.
        let variants = [
            ("caqr_cpu_factor", plain),
            ("caqr_cpu_checksummed", checked),
        ];
        let mut inputs: Vec<_> = (0..2 * (reps + 1)).map(|_| a.clone()).collect();
        for (_, o) in &variants {
            let f = caqr_cpu(inputs.pop().expect("warmup copy"), *o).unwrap();
            std::hint::black_box(f.a.as_slice().len());
        }
        let mut best = [f64::INFINITY; 2];
        let mut hits = [0u64; 2];
        let mut misses = [0u64; 2];
        let mut ratios = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut pair = [0.0f64; 2];
            for (side, (_, o)) in variants.iter().enumerate() {
                let input = inputs.pop().expect("one input copy per repetition");
                arena::reset_stats::<f64>();
                let t = Instant::now();
                let f = caqr_cpu(input, *o).unwrap();
                std::hint::black_box(f.a.as_slice().len());
                pair[side] = t.elapsed().as_secs_f64();
                best[side] = best[side].min(pair[side]);
                let s = arena::stats::<f64>();
                hits[side] += s.hits;
                misses[side] += s.misses;
            }
            ratios.push(pair[1] / pair[0]);
        }
        // Overhead as the *lower quartile* of per-repetition ratios: each
        // ratio pairs runs adjacent in time, and scheduler spikes only ever
        // push a ratio *up* (whichever side they land in dominates), so the
        // low end of the distribution tracks the true overhead. A real
        // checksum regression shifts every ratio, quartile included.
        //
        // The budget is per shape: a single-panel run pays only the factor
        // checksums (the ISSUE's <10% factor gate), while a multi-panel run
        // also pays the orthogonality probe and trailing column-sum
        // prediction on every panel with trailing columns — structurally
        // heavier, so it carries its own documented budget (DESIGN.md §10).
        ratios.sort_by(|a, b| a.total_cmp(b));
        let budget = if n > plain.panel_width { 0.20 } else { 0.10 };
        overheads.push((format!("{m}x{n}"), ratios[ratios.len() / 4] - 1.0, budget));
        for (side, (kernel, _)) in variants.iter().enumerate() {
            entries.push(Entry {
                kernel,
                shape: format!("{m}x{n}"),
                backend: active_name(),
                seconds: best[side],
                gflops: flops / best[side] / 1e9,
                arena_hits: hits[side],
                arena_misses: misses[side],
            });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_factor: Option<f64> = args
        .iter()
        .position(|a| a == "--check-factor")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--check-factor expects a number"));
    let check_gemm: Option<f64> = args
        .iter()
        .position(|a| a == "--check-gemm")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--check-gemm expects a number"));
    let check_overhead = args.iter().any(|a| a == "--check-overhead");
    let reps = if quick { 2 } else { 5 };
    let mut entries = Vec::new();
    let mut overheads = Vec::new();

    if quick {
        // GEMM repetitions are milliseconds each; best-of-10 keeps the
        // `--check-gemm` gate out of scheduler-noise territory on a shared
        // CI core where best-of-2 swings by 30%.
        bench_gemm(
            &mut entries,
            reps.max(10),
            &[(256, 256, 256), (4096, 16, 16)],
        );
        bench_apply(&mut entries, reps, &[(4096, 16, 128)]);
        bench_factor_tile(&mut entries, reps, &[(4096, 16, 1024)]);
        // The second, multi-panel shape exercises the trailing-update
        // checksums (probe + column-sum prediction) for `--check-overhead`,
        // and is big enough that a millisecond scheduler preemption cannot
        // dominate a repetition. Extra repetitions give the quartile-of-
        // ratios estimate enough clean pairs on a noisy CI box.
        bench_caqr_cpu(
            &mut entries,
            &mut overheads,
            reps.max(8),
            &[(4096, 16), (8192, 64)],
        );
    } else {
        bench_gemm(
            &mut entries,
            reps,
            &[(512, 512, 512), (1024, 1024, 1024), (8192, 16, 16)],
        );
        bench_apply(&mut entries, reps, &[(10240, 16, 128), (65536, 16, 128)]);
        bench_factor_tile(&mut entries, reps, &[(65536, 16, 1024)]);
        bench_caqr_cpu(
            &mut entries,
            &mut overheads,
            reps,
            &[(65536, 16), (131072, 8), (16384, 64)],
        );
    }

    let mut table = Table::new(&[
        "kernel",
        "shape",
        "backend",
        "seconds",
        "GFLOP/s",
        "arena hit/miss",
    ]);
    for e in &entries {
        table.row(vec![
            e.kernel.to_string(),
            e.shape.clone(),
            e.backend.clone(),
            format!("{:.6}", e.seconds),
            format!("{:.2}", e.gflops),
            format!("{}/{}", e.arena_hits, e.arena_misses),
        ]);
    }
    print!("{}", table.render());
    eprintln!("detected SIMD backend: {}", active_name());

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"detected_backend\": \"{}\",\n", active_name()));
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"backend\": \"{}\", \"seconds\": {:.6}, \"gflops\": {:.3}, \"arena_hits\": {}, \"arena_misses\": {}}}{}\n",
            e.kernel,
            e.shape,
            e.backend,
            e.seconds,
            e.gflops,
            e.arena_hits,
            e.arena_misses,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json ({} entries)", entries.len());

    if let Some(min) = check_factor {
        let mut failed = false;
        for e in &entries {
            if e.kernel == "caqr_cpu_factor" && e.gflops < min {
                eprintln!(
                    "FAIL: {} {} at {:.3} GFLOP/s is below the floor {min}",
                    e.kernel, e.shape, e.gflops
                );
                failed = true;
            }
            // The reference path allocates by design; every other kernel
            // must be allocation-free once the arena is warm.
            let arena_backed =
                !e.kernel.ends_with("_ref") && e.kernel != "apply_larf_per_reflector";
            if arena_backed && e.arena_misses != 0 {
                eprintln!(
                    "FAIL: {} {} allocated {} times in steady state",
                    e.kernel, e.shape, e.arena_misses
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check-factor: all caqr_cpu_factor rows >= {min} GFLOP/s, steady-state allocation-free"
        );
    }

    if let Some(min) = check_gemm {
        // The GEMM regression gate covers the rows where the packed
        // microkernel actually dominates: square shapes on the backend the
        // dispatcher auto-selects for this CPU. Tall-skinny rows (e.g.
        // 4096x16x16) are packing-overhead-bound and forced-slower-backend
        // rows are informational only, so neither is gated.
        let active = active_name();
        let mut failed = false;
        let mut gated = 0usize;
        for e in &entries {
            if e.kernel != "gemm" || e.backend != active {
                continue;
            }
            let dims: Vec<usize> = e
                .shape
                .split('x')
                .map(|d| d.parse().expect("gemm shape is MxNxK"))
                .collect();
            if !(dims.len() == 3 && dims[0] == dims[1] && dims[1] == dims[2]) {
                continue;
            }
            gated += 1;
            if e.gflops < min {
                eprintln!(
                    "FAIL: gemm {} ({}) at {:.3} GFLOP/s is below the floor {min}",
                    e.shape, e.backend, e.gflops
                );
                failed = true;
            }
        }
        if gated == 0 {
            eprintln!("FAIL: no square gemm rows on the active backend to gate");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check-gemm: all {gated} square gemm rows on '{active}' >= {min} GFLOP/s");
    }

    if check_overhead {
        // The ABFT checksum gate (DESIGN.md §10): per shape, the checksummed
        // factorization may cost at most its budget over the plain one —
        // 10% for the single-panel factor gate, 20% for multi-panel shapes
        // that also run the probe and trailing column-sum checks — measured
        // as the lower quartile of interleaved per-repetition ratios.
        let mut failed = false;
        for (shape, overhead, budget) in &overheads {
            eprintln!(
                "check-overhead: {shape} checksum overhead {:+.1}% (budget {:.0}%)",
                overhead * 100.0,
                budget * 100.0
            );
            if *overhead > *budget {
                eprintln!(
                    "FAIL: {shape} checksummed run is {:.1}% slower (budget {:.0}%)",
                    overhead * 100.0,
                    budget * 100.0
                );
                failed = true;
            }
        }
        if failed || overheads.is_empty() {
            if overheads.is_empty() {
                eprintln!("FAIL: no caqr_cpu_factor/caqr_cpu_checksummed pairs to compare");
            }
            std::process::exit(1);
        }
    }
}
