//! Wall-clock kernel report: times the real host arithmetic behind each
//! kernel class (packed GEMM, per-reflector larf apply, compact-WY larfb
//! apply, host CAQR factor) and emits `BENCH_kernels.json` with GFLOP/s per
//! kernel per shape, plus a human-readable table on stdout.
//!
//! `--quick` shrinks shapes and repetitions for the CI smoke run; without
//! it the shapes match the EXPERIMENTS.md entries.

use caqr::block::tile_panel;
use caqr::blockops;
use caqr::{caqr_cpu, CpuCaqrOptions};
use caqr_bench::Table;
use dense::blas3::{gemm, Trans};
use dense::matrix::Matrix;
use dense::MatPtr;
use std::time::Instant;

struct Entry {
    kernel: &'static str,
    shape: String,
    seconds: f64,
    gflops: f64,
}

/// Best-of-`reps` wall-clock of `f`, charged with `flops` useful flops.
fn time_kernel(reps: usize, flops: f64, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, flops / best / 1e9)
}

fn bench_gemm(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize, usize)]) {
    for &(m, n, k) in shapes {
        let a = dense::generate::uniform::<f32>(m, k, 1);
        let b = dense::generate::uniform::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        let (seconds, gflops) = time_kernel(reps, 2.0 * (m * n * k) as f64, || {
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                a.as_ref(),
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
            std::hint::black_box(&c);
        });
        entries.push(Entry {
            kernel: "gemm",
            shape: format!("{m}x{n}x{k}"),
            seconds,
            gflops,
        });
    }
}

fn bench_apply(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize, usize)]) {
    for &(m, w, h) in shapes {
        let mut panel = dense::generate::uniform::<f32>(m, w, 3);
        let tiles = tile_panel(0, m, h, w);
        let wys: Vec<_> = {
            let p = MatPtr::new(&mut panel);
            tiles
                .iter()
                .map(|&t| blockops::factor_tile(p, t, 0, w))
                .collect()
        };
        let c0 = dense::generate::uniform::<f32>(m, w, 4);
        // Both paths apply the same w reflectors per tile to a w-column
        // target: 4*rows*w*w useful flops per tile.
        let flops = 4.0 * (m * w * w) as f64;
        let shape = format!("{m}x{w}");
        let mut cm = c0.clone();
        let (seconds, gflops) = time_kernel(reps, flops, || {
            cm.as_mut_slice().copy_from_slice(c0.as_slice());
            let cp = MatPtr::new(&mut cm);
            for (ti, &tile) in tiles.iter().enumerate() {
                blockops::apply_tile_wy(&wys[ti], cp, tile, 0, w, true);
            }
            std::hint::black_box(&cm);
        });
        entries.push(Entry {
            kernel: "apply_larfb_wy",
            shape: shape.clone(),
            seconds,
            gflops,
        });
        let (seconds, gflops) = time_kernel(reps, flops, || {
            cm.as_mut_slice().copy_from_slice(c0.as_slice());
            let cp = MatPtr::new(&mut cm);
            let vp = MatPtr::new_readonly(&panel);
            for (ti, &tile) in tiles.iter().enumerate() {
                blockops::apply_tile_reflectors(vp, cp, tile, 0, w, &wys[ti].tau, 0, w, true);
            }
            std::hint::black_box(&cm);
        });
        entries.push(Entry {
            kernel: "apply_larf_per_reflector",
            shape,
            seconds,
            gflops,
        });
    }
}

fn bench_caqr_cpu(entries: &mut Vec<Entry>, reps: usize, shapes: &[(usize, usize)]) {
    for &(m, n) in shapes {
        let a = dense::generate::uniform::<f64>(m, n, 5);
        // Tall-skinny QR: ~ 2 m n^2 - (2/3) n^3 useful flops.
        let flops = 2.0 * (m * n * n) as f64 - 2.0 / 3.0 * (n * n * n) as f64;
        let (seconds, gflops) = time_kernel(reps, flops, || {
            let f = caqr_cpu(a.clone(), CpuCaqrOptions::for_width(n)).unwrap();
            std::hint::black_box(f.a.as_slice().len());
        });
        entries.push(Entry {
            kernel: "caqr_cpu_factor",
            shape: format!("{m}x{n}"),
            seconds,
            gflops,
        });
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 2 } else { 5 };
    let mut entries = Vec::new();

    if quick {
        bench_gemm(&mut entries, reps, &[(256, 256, 256), (4096, 16, 16)]);
        bench_apply(&mut entries, reps, &[(4096, 16, 128)]);
        bench_caqr_cpu(&mut entries, reps, &[(4096, 16)]);
    } else {
        bench_gemm(
            &mut entries,
            reps,
            &[(512, 512, 512), (1024, 1024, 1024), (8192, 16, 16)],
        );
        bench_apply(&mut entries, reps, &[(10240, 16, 128), (65536, 16, 128)]);
        bench_caqr_cpu(&mut entries, reps, &[(65536, 16), (131072, 8)]);
    }

    let mut table = Table::new(&["kernel", "shape", "seconds", "GFLOP/s"]);
    for e in &entries {
        table.row(vec![
            e.kernel.to_string(),
            e.shape.clone(),
            format!("{:.6}", e.seconds),
            format!("{:.2}", e.gflops),
        ]);
    }
    print!("{}", table.render());

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"seconds\": {:.6}, \"gflops\": {:.3}}}{}\n",
            e.kernel,
            e.shape,
            e.seconds,
            e.gflops,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json ({} entries)", entries.len());
}
