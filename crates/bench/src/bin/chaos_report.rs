//! Chaos report: runs the resilient CAQR executor under a battery of fault
//! plans — clean, seeded mixed faults, explicit silent data corruption,
//! explicit hangs — and prints one table of what the escalation ladder did:
//! faults absorbed, replays per tier, ABFT overhead share, and stream-lane
//! occupancy. Every faulted run's `R` must be bit-identical to the clean
//! run's; any divergence fails the process (exit 1) — this is the CI chaos
//! smoke gate.
//!
//! `--quick` shrinks the matrix and seed count for the CI smoke run.

use caqr::recovery::{caqr_resilient, RecoveryOptions, RecoveryReport};
use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use caqr_bench::Table;
use dense::matrix::Matrix;
use gpu_sim::{DeviceSpec, FaultPlan, Gpu, RetryPolicy, Timeline};

struct Scenario {
    name: &'static str,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
}

fn opts() -> CaqrOptions {
    CaqrOptions {
        bs: BlockSize { h: 64, w: 16 },
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: caqr::block::TreeShape::DeviceArity,
        check_finite: true,
    }
}

/// Occupancy across the run: busy lane-seconds over `streams` lanes against
/// the whole modelled run time. The ledger accumulates intervals across
/// every synchronize, so total modelled seconds is the makespan that covers
/// them all (host-side checksum and snapshot passes included — time the
/// lanes genuinely sat idle).
fn utilization(gpu: &Gpu, streams: usize) -> f64 {
    let l = gpu.ledger();
    let tl = Timeline {
        intervals: l.intervals.clone(),
        makespan: l.seconds,
    };
    tl.utilization(streams)
}

fn run_scenario(
    a: &Matrix<f64>,
    recovery: RecoveryOptions,
    s: &Scenario,
) -> (Matrix<f64>, RecoveryReport, gpu_sim::CostLedger, f64) {
    let gpu = Gpu::new(DeviceSpec::c2050());
    if let Some(plan) = &s.plan {
        gpu.set_fault_plan_with_policy(plan.clone(), s.retry);
    }
    let (f, report) = match caqr_resilient(&gpu, a.clone(), recovery) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("FAIL: scenario '{}' did not recover: {e}", s.name);
            std::process::exit(1);
        }
    };
    let util = utilization(&gpu, recovery.streams);
    (f.r(), report, gpu.ledger(), util)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, n) = if quick { (2048, 32) } else { (16384, 48) };
    let a = dense::generate::uniform::<f64>(m, n, 17);
    let recovery = RecoveryOptions {
        caqr: opts(),
        streams: 3,
        ..RecoveryOptions::default()
    };

    // Launches 0 and 1 are the input health check and the pre-transpose;
    // the explicit plans target real factor/apply launches past them. The
    // seeded mix draws independently per (launch, attempt), so a generous
    // attempt budget keeps launch-level retries from exhausting before the
    // ABFT tiers even engage.
    let chaos_retry = RetryPolicy {
        max_attempts: 6,
        backoff_us: 5.0,
    };
    let mut scenarios = vec![
        Scenario {
            name: "clean",
            plan: None,
            retry: RetryPolicy::default(),
        },
        Scenario {
            name: "explicit-sdc",
            plan: Some(FaultPlan::sdc_at_launches(&[2, 5, 9])),
            retry: RetryPolicy::default(),
        },
        Scenario {
            name: "explicit-hang",
            plan: Some(FaultPlan::hang_at_launches(&[3])),
            retry: RetryPolicy::default(),
        },
    ];
    let seeds: &[u64] = if quick { &[11] } else { &[11, 12, 13, 14] };
    for &seed in seeds {
        scenarios.push(Scenario {
            name: match seed {
                11 => "seeded-mix/11",
                12 => "seeded-mix/12",
                13 => "seeded-mix/13",
                _ => "seeded-mix/14",
            },
            plan: Some(FaultPlan::seeded_mix(seed, 0.05, 0.03, 0.03)),
            retry: chaos_retry,
        });
    }

    let mut table = Table::new(&[
        "scenario",
        "ms",
        "faults",
        "hangs",
        "sdc",
        "ck fail",
        "replays t/p/r",
        "launches",
        "abft %",
        "util %",
        "R",
    ]);
    let mut clean_r: Option<Matrix<f64>> = None;
    let mut failed = false;
    for s in &scenarios {
        let (r, report, ledger, util) = run_scenario(&a, recovery, s);
        let identical = match &clean_r {
            None => {
                clean_r = Some(r);
                true
            }
            Some(clean) => *clean == r,
        };
        if !identical {
            eprintln!(
                "FAIL: scenario '{}' diverged from the clean run's R",
                s.name
            );
            failed = true;
        }
        // ABFT share: detection passes + snapshot traffic, as a fraction of
        // the whole modelled run (DESIGN.md §10's measurable-overhead claim).
        let abft: f64 = ["checksum_verify", "snapshot"]
            .iter()
            .filter_map(|op| ledger.per_op.get(op))
            .map(|o| o.seconds)
            .sum();
        table.row(vec![
            s.name.to_string(),
            format!("{:.3}", ledger.seconds * 1e3),
            format!("{}", ledger.faults),
            format!("{}", ledger.hangs),
            format!("{}", ledger.sdc_injected),
            format!("{}", report.checksum_failures),
            format!(
                "{}/{}/{}",
                report.task_replays, report.panel_replays, report.run_retries
            ),
            format!("{}", report.launches),
            format!("{:.1}", abft / ledger.seconds * 100.0),
            format!("{:.1}", util * 100.0),
            if identical {
                "ok".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    print!("{}", table.render());

    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "chaos_report: {} scenarios at {m}x{n}, every recovered R bit-identical to clean",
        scenarios.len()
    );
}
