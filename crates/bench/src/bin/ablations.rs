//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Reduction-tree shape** (§II-B): the GPU wants the highest-arity tree
//!    the block size allows (fewest dependent launches); binomial trees —
//!    the multicore choice — pay a launch per extra level.
//! 2. **Kernel strategy on the full factorization** (§IV-E): the 55->388
//!    GFLOPS kernel progression seen end-to-end.
//! 3. **Communication volume** (the "communication-avoiding" in CAQR):
//!    DRAM passes over the matrix for CAQR vs the BLAS2 QR, against the
//!    read-once + write-once lower bound.
//! 4. **Launch-overhead / bandwidth sensitivity**: which machine parameter
//!    governs which regime of Table I.
//!
//! ```text
//! cargo run -p caqr-bench --release --bin ablations [-- --csv]
//! ```

use caqr::model::{model_caqr_gflops, model_caqr_seconds};
use caqr::{BlockSize, CaqrOptions, ReductionStrategy, TreeShape};
use caqr_bench::{gf, Table};
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    tree_shape();
    strategy_end_to_end();
    communication();
    sensitivity();
    mapping_options();
}

fn tree_shape() {
    let shapes: [(&str, TreeShape); 4] = [
        ("device (8-ary)", TreeShape::DeviceArity),
        ("quad", TreeShape::Arity(4)),
        ("binomial", TreeShape::Binomial),
        ("flat", TreeShape::Flat),
    ];
    let mut table = Table::new(&["matrix", "device (8-ary)", "quad", "binomial", "flat"]);
    for m in [10_000usize, 100_000, 1_000_000] {
        let mut row = vec![format!("{m} x 192")];
        for &(_, tree) in &shapes {
            let gpu = Gpu::new(DeviceSpec::c2050());
            let opts = CaqrOptions {
                tree,
                ..CaqrOptions::default()
            };
            match model_caqr_gflops(&gpu, m, 192, opts) {
                Ok(g) => row.push(gf(g)),
                Err(_) => row.push("launch fails".into()),
            }
        }
        table.row(row);
    }
    table.emit("Ablation 1: reduction-tree shape (modelled SGEQRF GFLOP/s, C2050)");
    println!(
        "\nThe device-arity tree wins on the GPU (fewest dependent launches);\n\
         binomial — the multicore choice of [10] — pays log2 vs log8 levels.\n\
         The flat tree stacks every panel's R factors into one block whose\n\
         staged U overflows shared memory — the launch fails, exactly the\n\
         constraint that makes reduction trees necessary."
    );
}

fn strategy_end_to_end() {
    let mut table = Table::new(&[
        "strategy",
        "kernel GFLOP/s",
        "full CAQR GFLOP/s (100k x 192)",
    ]);
    let spec = DeviceSpec::c2050();
    for s in ReductionStrategy::ALL {
        let kernel = caqr::microkernels::apply_qt_h_block_gflops(&spec, BlockSize::c2050_best(), s);
        let gpu = Gpu::new(spec.clone());
        let opts = CaqrOptions {
            strategy: s,
            ..CaqrOptions::default()
        };
        let full = model_caqr_gflops(&gpu, 100_000, 192, opts).unwrap();
        table.row(vec![s.to_string(), gf(kernel), gf(full)]);
    }
    table.emit("Ablation 2: tuning strategy, kernel-level vs end-to-end");
}

fn communication() {
    let mut table = Table::new(&[
        "matrix",
        "CAQR passes",
        "BLAS2 QR passes",
        "lower bound",
        "CAQR/bound",
    ]);
    for m in [50_000usize, 200_000, 1_000_000] {
        let n = 192usize;
        let elem_bytes = 4.0 * m as f64 * n as f64;
        // CAQR: read the modelled DRAM traffic off the ledger.
        let gpu = Gpu::new(DeviceSpec::c2050());
        model_caqr_seconds(&gpu, m, n, CaqrOptions::default()).unwrap();
        let caqr_passes = gpu.ledger().dram_bytes / elem_bytes;
        // BLAS2 QR: three streams of the trailing matrix per reflector.
        let mut blas2_bytes = 0.0;
        for j in 0..n {
            blas2_bytes += 4.0 * (m - j) as f64 * (n - j) as f64 * 3.0;
        }
        let blas2_passes = blas2_bytes / elem_bytes;
        // Lower bound: read the input once, write the factors once.
        let bound = 2.0;
        table.row(vec![
            format!("{m} x {n}"),
            format!("{caqr_passes:.1}"),
            format!("{blas2_passes:.1}"),
            format!("{bound:.1}"),
            format!("{:.1}x", caqr_passes / bound),
        ]);
    }
    table.emit("Ablation 3: DRAM passes over the matrix (communication volume)");
    println!(
        "\nCAQR's traffic is shape-independent and an order of magnitude below\n\
         the BLAS2 algorithm, which re-streams the trailing matrix per\n\
         reflector (~3n/4 passes at n = 192). The remaining gap to the\n\
         read+write bound is the per-panel trailing update inherent to a\n\
         16-column panel (about n/w + const passes)."
    );
}

fn mapping_options() {
    // Section III: Option A (CPU TSQR panels + GPU trailing updates) vs
    // Option B (everything on the GPU, the paper's choice).
    use baselines::option_a::model_caqr_option_a_gflops;
    use gpu_sim::{CpuSpec, PcieSpec};
    let gpu = DeviceSpec::c2050();
    let pcie = PcieSpec::gen2_x16();
    let cpu = CpuSpec::nehalem_8core();
    let bs = BlockSize::c2050_best();
    let mut table = Table::new(&["matrix", "Option A (hybrid)", "Option B (all-GPU)", "B/A"]);
    for (m, n) in [
        (1_000usize, 192usize),
        (110_592, 100),
        (1_000_000, 192),
        (8192, 4096),
    ] {
        let a = model_caqr_option_a_gflops(&gpu, &pcie, &cpu, m, n, bs);
        let b = {
            let g = Gpu::new(gpu.clone());
            model_caqr_gflops(&g, m, n, CaqrOptions::default()).unwrap()
        };
        table.row(vec![
            format!("{m} x {n}"),
            gf(a),
            gf(b),
            format!("{:.2}x", b / a),
        ]);
    }
    table.emit("Ablation 5: Section III mapping — CPU-panel hybrid vs all-GPU CAQR");
    println!(
        "\nOption B (the paper's choice) wins wherever panels are a large\n\
         fraction of the work — exactly the tall-skinny regime; the PCIe\n\
         round-trip per panel is the Option A tax."
    );
}

fn sensitivity() {
    let mut table = Table::new(&["variant", "1k x 192", "100k x 192", "1M x 192"]);
    let variants: Vec<(&str, DeviceSpec)> = vec![
        ("baseline C2050", DeviceSpec::c2050()),
        ("launch overhead 5 us", {
            let mut s = DeviceSpec::c2050();
            s.launch_overhead_us = 5.0;
            s
        }),
        ("launch overhead 100 us", {
            let mut s = DeviceSpec::c2050();
            s.launch_overhead_us = 100.0;
            s
        }),
        ("2x DRAM bandwidth", {
            let mut s = DeviceSpec::c2050();
            s.dram_bw_gbs *= 2.0;
            s
        }),
        ("2x SM count", {
            let mut s = DeviceSpec::c2050();
            s.sms *= 2;
            s
        }),
    ];
    for (name, spec) in variants {
        let mut row = vec![name.to_string()];
        for m in [1_000usize, 100_000, 1_000_000] {
            let gpu = Gpu::new(spec.clone());
            row.push(gf(
                model_caqr_gflops(&gpu, m, 192, CaqrOptions::default()).unwrap()
            ));
        }
        table.row(row);
    }
    table.emit("Ablation 4: machine-parameter sensitivity of CAQR (GFLOP/s)");
    println!(
        "\nSmall matrices are launch-overhead-bound (the 1k column moves with\n\
         overhead and barely with bandwidth); large matrices are compute-bound\n\
         (they scale with SM count, not bandwidth) — the paper's compute-bound\n\
         kernels claim."
    );
}
