//! Figure 9: `SGEQRF` GFLOP/s vs matrix width at fixed height 8192 for
//! CAQR, MAGMA, CULA and MKL. The paper's crossover — where the blocked-
//! Householder libraries overtake CAQR — sits near 4000 columns.
//!
//! With `--explicit-q`, also reports the modelled `SORGQR` (explicit-Q
//! retrieval) time for CAQR, which Section V-C observes is "just as
//! efficient as factoring the matrix".
//!
//! ```text
//! cargo run -p caqr-bench --release --bin fig9_width_sweep [-- --csv] [-- --explicit-q]
//! ```

use baselines::QrImpl;
use caqr::schedule::model_caqr_dag_gflops;
use caqr::{CaqrOptions, ScheduleOptions};
use caqr_bench::{gf, Table};
use gpu_sim::{DeviceSpec, Gpu};

const HEIGHT: usize = 8192;

fn main() {
    let widths = [
        64usize, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192,
    ];
    let mut table = Table::new(&[
        "width", "CAQR", "CAQR s=4", "MAGMA", "CULA", "MKL", "winner",
    ]);
    let mut crossover: Option<usize> = None;
    for n in widths {
        let g: Vec<f64> = QrImpl::ALL
            .iter()
            .map(|i| i.model_gflops(HEIGHT, n))
            .collect();
        let dag = model_caqr_dag_gflops(
            &Gpu::new(DeviceSpec::c2050()),
            HEIGHT,
            n,
            ScheduleOptions {
                caqr: CaqrOptions::default(),
                streams: 4,
                lookahead: true,
            },
        )
        .unwrap();
        let best_lib = g[1..].iter().cloned().fold(0.0, f64::max);
        let winner = if g[0] >= best_lib { "CAQR" } else { "library" };
        if g[0] < best_lib && crossover.is_none() {
            crossover = Some(n);
        }
        table.row(vec![
            n.to_string(),
            gf(g[0]),
            gf(dag),
            gf(g[1]),
            gf(g[2]),
            gf(g[3]),
            winner.to_string(),
        ]);
    }
    table.emit("Figure 9: SGEQRF GFLOP/s vs width, height = 8192 (modelled)");
    match crossover {
        Some(n) => println!("\ncrossover: libraries overtake CAQR at ~{n} columns (paper: ~4000)"),
        None => println!("\nno crossover found in the swept range"),
    }

    if std::env::args().any(|a| a == "--explicit-q") {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let opts = CaqrOptions::default();
        let mut t2 = Table::new(&["width", "factor ms", "explicit-Q ms", "ratio"]);
        for n in [64usize, 192, 512, 1024, 2048] {
            let f = caqr::model::model_caqr_seconds(&gpu, HEIGHT, n, opts).unwrap();
            let q = caqr::model::model_caqr_apply_seconds(&gpu, HEIGHT, n, n, opts).unwrap();
            t2.row(vec![
                n.to_string(),
                format!("{:.2}", f * 1e3),
                format!("{:.2}", q * 1e3),
                format!("{:.2}", q / f),
            ]);
        }
        t2.emit("Section V-C: SORGQR (explicit Q) vs factorization, height = 8192");
    }
}
