//! Shared output helpers for the figure/table harness binaries.
//!
//! Every harness prints a plain-text table mirroring the paper's rows or
//! series, and can optionally append the same data as CSV (pass `--csv` as
//! an argument) for plotting.

#![warn(missing_docs)]

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, w) in cells.iter().zip(widths) {
                out.push_str(&format!("{c:>width$}  ", width = w));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the table; with `--csv` in `std::env::args`, also print CSV.
    pub fn emit(&self, title: &str) {
        println!("\n== {title} ==\n");
        print!("{}", self.render());
        if std::env::args().any(|a| a == "--csv") {
            println!("\n--- csv ---\n{}", self.csv());
        }
    }
}

/// Format a GFLOP/s value like the paper's tables.
pub fn gf(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["size", "gflops"]);
        t.row(vec!["1k x 192".into(), "39.6".into()]);
        t.row(vec!["1M x 192".into(), "195".into()]);
        let r = t.render();
        assert!(r.contains("size"));
        assert!(r.contains("1M x 192"));
        let csv = t.csv();
        assert!(csv.starts_with("size,gflops\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn gf_formatting() {
        assert_eq!(gf(39.63), "39.6");
        assert_eq!(gf(194.8), "195");
    }
}
