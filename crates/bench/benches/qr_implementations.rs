//! Cross-implementation benches: CAQR on the simulated GPU vs the host
//! blocked-Householder reference vs Gram-Schmidt, all computing the same
//! factorization for real; plus the evaluation speed of the analytic models
//! that drive the figure sweeps.

use caqr::CaqrOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;

fn bench_real_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_qr_8192x64");
    group.sample_size(10);
    let a = dense::generate::uniform::<f32>(8192, 64, 1);

    group.bench_function("caqr_sim_gpu", |b| {
        let gpu = Gpu::new(DeviceSpec::c2050());
        b.iter(|| {
            let f = caqr::caqr::caqr(&gpu, a.clone(), CaqrOptions::default()).unwrap();
            black_box(f.r())
        });
    });
    group.bench_function("blocked_householder_cpu", |b| {
        b.iter(|| {
            let mut f = a.clone();
            black_box(dense::blocked::geqrf(&mut f, 32))
        });
    });
    group.bench_function("caqr_multicore_cpu", |b| {
        b.iter(|| {
            let f = caqr::caqr_cpu(a.clone(), caqr::CpuCaqrOptions::for_width(64)).unwrap();
            black_box(f.r())
        });
    });
    group.bench_function("modified_gram_schmidt", |b| {
        b.iter(|| black_box(dense::gram_schmidt::modified_gram_schmidt(&a)));
    });
    group.bench_function("cholesky_qr", |b| {
        b.iter(|| black_box(dense::gram_schmidt::cholesky_qr(&a).unwrap()));
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_models");
    group.bench_function("model_caqr_1M_x_192", |b| {
        let gpu = Gpu::new(DeviceSpec::c2050());
        b.iter(|| {
            black_box(
                caqr::model::model_caqr_gflops(&gpu, 1_000_000, 192, CaqrOptions::default())
                    .unwrap(),
            )
        });
    });
    group.bench_function("model_all_baselines_1M_x_192", |b| {
        b.iter(|| {
            for i in baselines::QrImpl::ALL {
                black_box(i.model_gflops(1_000_000, 192));
            }
        });
    });
    group.finish();
}

fn bench_host_tall_skinny(c: &mut Criterion) {
    // The communication-avoiding effect on the *host* hardware: for a
    // 500k x 16 matrix, cache-resident TSQR tiles vs the panel-streaming
    // blocked Householder reference.
    let mut group = c.benchmark_group("host_tall_skinny_500k_x_16");
    group.sample_size(10);
    let a = dense::generate::uniform::<f32>(500_000, 16, 9);
    group.bench_function("caqr_multicore_cpu", |b| {
        b.iter(|| {
            let f = caqr::caqr_cpu(a.clone(), caqr::CpuCaqrOptions::for_width(16)).unwrap();
            black_box(f.r())
        });
    });
    group.bench_function("blocked_householder_cpu", |b| {
        b.iter(|| {
            let mut f = a.clone();
            black_box(dense::blocked::geqrf(&mut f, 16))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_real_qr, bench_models, bench_host_tall_skinny);
criterion_main!(benches);
