//! Criterion wall-clock benches of the real kernel arithmetic: the
//! simulated GPU actually computes every factorization on the rayon pool,
//! and these benches measure that execution (host wall-clock, not the
//! modelled GPU time — the modelled numbers come from the harness binaries).

use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;

fn bench_tsqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsqr_factor");
    group.sample_size(10);
    for &m in &[4096usize, 16384, 65536] {
        let a = dense::generate::uniform::<f32>(m, 16, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let gpu = Gpu::new(DeviceSpec::c2050());
            b.iter(|| {
                let f = caqr::tsqr(
                    &gpu,
                    a.clone(),
                    BlockSize::c2050_best(),
                    ReductionStrategy::RegisterSerialTransposed,
                )
                .unwrap();
                black_box(f.r())
            });
        });
    }
    group.finish();
}

fn bench_caqr_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("caqr_factor");
    group.sample_size(10);
    for &(m, n) in &[(4096usize, 64usize), (8192, 64), (8192, 128)] {
        let a = dense::generate::uniform::<f32>(m, n, 2);
        group.bench_with_input(
            BenchmarkId::new("sim_gpu", format!("{m}x{n}")),
            &m,
            |b, _| {
                let gpu = Gpu::new(DeviceSpec::c2050());
                b.iter(|| {
                    let f = caqr::caqr::caqr(&gpu, a.clone(), CaqrOptions::default()).unwrap();
                    black_box(f.r())
                });
            },
        );
    }
    group.finish();
}

fn bench_apply_qt(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_qt");
    group.sample_size(10);
    let m = 16384;
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(m, 16, 3);
    let f = caqr::tsqr(
        &gpu,
        a,
        BlockSize::c2050_best(),
        ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let c0 = dense::generate::uniform::<f32>(m, 16, 4);
    group.bench_function("tsqr_qt_16k_x_16", |b| {
        b.iter(|| {
            let mut cm = c0.clone();
            f.apply_qt(&gpu, &mut cm).unwrap();
            black_box(cm)
        });
    });
    group.finish();
}

fn bench_dense_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense");
    group.sample_size(10);
    let a = dense::generate::uniform::<f32>(512, 512, 5);
    let b_m = dense::generate::uniform::<f32>(512, 512, 6);
    group.bench_function("gemm_512", |bch| {
        bch.iter(|| {
            let mut out = dense::Matrix::<f32>::zeros(512, 512);
            dense::blas3::gemm(
                dense::blas3::Trans::No,
                dense::blas3::Trans::No,
                1.0,
                a.as_ref(),
                b_m.as_ref(),
                0.0,
                out.as_mut(),
            );
            black_box(out)
        });
    });
    let tall = dense::generate::uniform::<f32>(8192, 32, 7);
    group.bench_function("geqrf_8192x32", |bch| {
        bch.iter(|| {
            let mut f = tall.clone();
            black_box(dense::blocked::geqrf(&mut f, 32))
        });
    });
    let small = dense::generate::uniform::<f64>(100, 100, 8);
    group.bench_function("jacobi_svd_100", |bch| {
        bch.iter(|| black_box(dense::svd::svd(&small).sigma));
    });
    group.bench_function("golub_kahan_svd_100", |bch| {
        bch.iter(|| black_box(dense::gk_svd::svd_golub_kahan(&small).sigma));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tsqr,
    bench_caqr_factor,
    bench_apply_qt,
    bench_dense_primitives
);
criterion_main!(benches);
