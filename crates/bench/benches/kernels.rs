//! Criterion wall-clock benches of the real kernel arithmetic: the
//! simulated GPU actually computes every factorization on the rayon pool,
//! and these benches measure that execution (host wall-clock, not the
//! modelled GPU time — the modelled numbers come from the harness binaries).

use caqr::{BlockSize, CaqrOptions, ReductionStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;

fn bench_tsqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsqr_factor");
    group.sample_size(10);
    for &m in &[4096usize, 16384, 65536] {
        let a = dense::generate::uniform::<f32>(m, 16, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let gpu = Gpu::new(DeviceSpec::c2050());
            b.iter(|| {
                let f = caqr::tsqr(
                    &gpu,
                    a.clone(),
                    BlockSize::c2050_best(),
                    ReductionStrategy::RegisterSerialTransposed,
                )
                .unwrap();
                black_box(f.r())
            });
        });
    }
    group.finish();
}

fn bench_caqr_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("caqr_factor");
    group.sample_size(10);
    for &(m, n) in &[(4096usize, 64usize), (8192, 64), (8192, 128)] {
        let a = dense::generate::uniform::<f32>(m, n, 2);
        group.bench_with_input(
            BenchmarkId::new("sim_gpu", format!("{m}x{n}")),
            &m,
            |b, _| {
                let gpu = Gpu::new(DeviceSpec::c2050());
                b.iter(|| {
                    let f = caqr::caqr::caqr(&gpu, a.clone(), CaqrOptions::default()).unwrap();
                    black_box(f.r())
                });
            },
        );
    }
    group.finish();
}

fn bench_apply_qt(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_qt");
    group.sample_size(10);
    let m = 16384;
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f32>(m, 16, 3);
    let f = caqr::tsqr(
        &gpu,
        a,
        BlockSize::c2050_best(),
        ReductionStrategy::RegisterSerialTransposed,
    )
    .unwrap();
    let c0 = dense::generate::uniform::<f32>(m, 16, 4);
    group.bench_function("tsqr_qt_16k_x_16", |b| {
        b.iter(|| {
            let mut cm = c0.clone();
            f.apply_qt(&gpu, &mut cm).unwrap();
            black_box(cm)
        });
    });
    group.finish();
}

fn bench_dense_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense");
    group.sample_size(10);
    let a = dense::generate::uniform::<f32>(512, 512, 5);
    let b_m = dense::generate::uniform::<f32>(512, 512, 6);
    group.bench_function("gemm_512", |bch| {
        bch.iter(|| {
            let mut out = dense::Matrix::<f32>::zeros(512, 512);
            dense::blas3::gemm(
                dense::blas3::Trans::No,
                dense::blas3::Trans::No,
                1.0,
                a.as_ref(),
                b_m.as_ref(),
                0.0,
                out.as_mut(),
            );
            black_box(out)
        });
    });
    let tall = dense::generate::uniform::<f32>(8192, 32, 7);
    group.bench_function("geqrf_8192x32", |bch| {
        bch.iter(|| {
            let mut f = tall.clone();
            black_box(dense::blocked::geqrf(&mut f, 32))
        });
    });
    let small = dense::generate::uniform::<f64>(100, 100, 8);
    group.bench_function("jacobi_svd_100", |bch| {
        bch.iter(|| black_box(dense::svd::svd(&small).sigma));
    });
    group.bench_function("golub_kahan_svd_100", |bch| {
        bch.iter(|| black_box(dense::gk_svd::svd_golub_kahan(&small).sigma));
    });
    group.finish();
}

/// The tentpole comparison: per-reflector BLAS2 `larf` sweeps vs the
/// compact-WY 3-GEMM `larfb` apply, on the paper's tall-skinny panel shape.
/// Both paths run the same tile grid over the same factored panel; only the
/// inner apply differs.
fn bench_larf_vs_larfb(c: &mut Criterion) {
    use caqr::block::tile_panel;
    use caqr::blockops;
    use dense::MatPtr;

    let mut group = c.benchmark_group("apply_qt_h");
    group.sample_size(10);
    for &(m, w, h) in &[(10240usize, 16usize, 128usize), (4096, 8, 64)] {
        let mut panel = dense::generate::uniform::<f32>(m, w, 11);
        let tiles = tile_panel(0, m, h, w);
        let wys: Vec<_> = {
            let p = MatPtr::new(&mut panel);
            tiles
                .iter()
                .map(|&t| blockops::factor_tile(p, t, 0, w))
                .collect()
        };
        let c0 = dense::generate::uniform::<f32>(m, w, 12);
        let shape = format!("{m}x{w}");
        group.bench_with_input(BenchmarkId::new("larfb_wy", &shape), &m, |b, _| {
            b.iter(|| {
                let mut cm = c0.clone();
                let cp = MatPtr::new(&mut cm);
                for (ti, &tile) in tiles.iter().enumerate() {
                    blockops::apply_tile_wy(&wys[ti], cp, tile, 0, w, true);
                }
                black_box(cm)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("larf_per_reflector", &shape),
            &m,
            |b, _| {
                b.iter(|| {
                    let mut cm = c0.clone();
                    let cp = MatPtr::new(&mut cm);
                    let vp = MatPtr::new_readonly(&panel);
                    for (ti, &tile) in tiles.iter().enumerate() {
                        blockops::apply_tile_reflectors(
                            vp,
                            cp,
                            tile,
                            0,
                            w,
                            &wys[ti].tau,
                            0,
                            w,
                            true,
                        );
                    }
                    black_box(cm)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tsqr,
    bench_caqr_factor,
    bench_apply_qt,
    bench_dense_primitives,
    bench_larf_vs_larfb
);
criterion_main!(benches);
