//! Benches of the Robust PCA application path: the SVD-via-QR pipeline and
//! a full solve of a small synthetic clip (real arithmetic end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{DeviceSpec, Gpu};
use rpca::video::{generate, VideoConfig};
use rpca::{rpca, svd_via_qr, CpuQrBackend, GpuCaqrBackend, RpcaParams};
use std::hint::black_box;

fn bench_svd_via_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_via_qr_4096x32");
    group.sample_size(10);
    let a = dense::generate::uniform::<f64>(4096, 32, 1);
    group.bench_function("cpu_backend", |b| {
        b.iter(|| black_box(svd_via_qr(&CpuQrBackend, &a).unwrap().sigma));
    });
    group.bench_function("sim_gpu_caqr_backend", |b| {
        let gpu = Gpu::new(DeviceSpec::gtx480());
        let backend = GpuCaqrBackend {
            gpu: &gpu,
            opts: caqr::CaqrOptions::default(),
        };
        b.iter(|| black_box(svd_via_qr(&backend, &a).unwrap().sigma));
    });
    group.finish();
}

fn bench_rpca_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpca_solve");
    group.sample_size(10);
    let video = generate::<f64>(&VideoConfig::tiny());
    group.bench_function("tiny_clip_432x20", |b| {
        b.iter(|| {
            let r = rpca(&CpuQrBackend, &video.matrix, &RpcaParams::default()).unwrap();
            black_box((r.iterations, r.rank))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_svd_via_qr, bench_rpca_solve);
criterion_main!(benches);
