//! Cache-aware cost model for a CPU BLAS2 panel factorization — the
//! building block every blocked-Householder baseline shares.
//!
//! An `m_p x nb` panel is factored with `nb` Householder steps, each a
//! `gemv` plus a `ger` over the remaining panel. If the panel fits in the
//! last-level cache it streams from DRAM once and the steps run at the
//! machine's in-cache BLAS2 rate; if it does not (the tall-skinny case),
//! every step re-streams the panel from DRAM. This cliff is the reason
//! blocked Householder collapses on tall-skinny matrices and is exactly the
//! memory traffic TSQR's cache-sized blocks avoid (Section II-B).

use gpu_sim::CpuSpec;

/// Flops of an `m x nb` panel factorization (unblocked Householder).
pub fn panel_flops(m: usize, nb: usize) -> f64 {
    // 2 m nb^2 - (2/3) nb^3, plus the nb norm computations.
    let (m, nb) = (m as f64, nb as f64);
    2.0 * m * nb * nb - 2.0 / 3.0 * nb * nb * nb + 3.0 * m * nb
}

/// Modelled seconds for factoring an `m x nb` panel on `cpu`.
pub fn panel_seconds(cpu: &CpuSpec, m: usize, nb: usize) -> f64 {
    let flops = panel_flops(m, nb);
    let panel_bytes = 4.0 * m as f64 * nb as f64;
    let bw = cpu.dram_bw_gbs * 1.0e9;
    // Two BLAS calls (gemv + ger) per Householder step.
    let overhead = 2.0 * nb as f64 * cpu.call_overhead_us * 1.0e-6;
    if panel_bytes <= cpu.cache_bytes as f64 {
        // Stream once, then compute in cache.
        let stream = 2.0 * panel_bytes / bw;
        let compute = flops / (cpu.blas2_cache_gflops * 1.0e9);
        stream + compute + overhead
    } else {
        // Every step re-reads and re-writes the remaining panel:
        // sum_i 2 * 4 * m * (nb - i) ~= 4 * m * nb^2 bytes.
        let traffic = 4.0 * m as f64 * (nb * nb) as f64;
        let compute = flops / (cpu.blas2_cache_gflops * 1.0e9);
        (traffic / bw).max(compute) + overhead
    }
}

/// Modelled seconds for the `larfb` trailing update on the CPU:
/// `C -= V (T (V^T C))` with `C` being `m x nc`, `V` `m x nb` — three GEMMs
/// at the machine's BLAS3 efficiency, DRAM-roofline limited.
pub fn cpu_update_seconds(cpu: &CpuSpec, m: usize, nc: usize, nb: usize) -> f64 {
    if nc == 0 {
        return 0.0;
    }
    let flops = 4.0 * m as f64 * nc as f64 * nb as f64; // two big GEMMs dominate
    let bytes = 4.0 * (2.0 * m as f64 * nc as f64 + 2.0 * m as f64 * nb as f64);
    let peak = cpu.peak_gflops() * 1.0e9 * cpu.gemm_efficiency;
    let compute = flops / peak;
    let memory = bytes / (cpu.dram_bw_gbs * 1.0e9);
    compute.max(memory) + 3.0 * cpu.call_overhead_us * 1.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_cliff_exists() {
        // A DRAM-resident panel re-streams per reflector: its time must far
        // exceed the single-stream lower bound (nb/2 extra passes), while a
        // cache-resident panel stays within a small factor of it.
        let cpu = CpuSpec::nehalem_8core();
        let bw = cpu.dram_bw_gbs * 1.0e9;

        let big_rows = 4_000_000; // 512 MB panel: DRAM resident
        let big = panel_seconds(&cpu, big_rows, 32);
        let one_stream_big = 2.0 * 4.0 * big_rows as f64 * 32.0 / bw;
        assert!(
            big > 8.0 * one_stream_big,
            "no cliff: {big} vs {one_stream_big}"
        );

        let small_rows = 8192; // 1 MB panel: cache resident
        let small = panel_seconds(&cpu, small_rows, 32);
        let one_stream_small = 2.0 * 4.0 * small_rows as f64 * 32.0 / bw;
        // Bounded by compute + call overheads, not repeated streaming.
        let compute = panel_flops(small_rows, 32) / (cpu.blas2_cache_gflops * 1.0e9);
        let overhead = 64.0 * cpu.call_overhead_us * 1.0e-6;
        assert!(small <= one_stream_small + compute + overhead + 1e-9);
    }

    #[test]
    fn panel_flops_matches_geqrf_shape() {
        // For nb << m the count approaches 2 m nb^2.
        let f = panel_flops(1_000_000, 32);
        assert!((f / (2.0 * 1.0e6 * 1024.0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn update_is_compute_bound_when_wide() {
        let cpu = CpuSpec::nehalem_8core();
        let t = cpu_update_seconds(&cpu, 4096, 4096, 64);
        let gf = 4.0 * 4096.0 * 4096.0 * 64.0 / t / 1e9;
        assert!(
            gf > 50.0,
            "wide update should run near BLAS3 rate, got {gf}"
        );
    }

    #[test]
    fn empty_update_is_free() {
        let cpu = CpuSpec::nehalem_8core();
        assert_eq!(cpu_update_seconds(&cpu, 1000, 0, 32), 0.0);
    }
}
