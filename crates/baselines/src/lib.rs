//! # baselines — the QR implementations the paper compares against
//!
//! Performance models (and, for the CPU path, instrumented real executions)
//! of the four comparison points in Section V:
//!
//! * [`mkl`] — Intel MKL-class multithreaded blocked Householder on the
//!   8-core Nehalem host, plus the `SGESDD` SVD cost for Table II,
//! * [`hybrid`] — MAGMA (CPU panel + GPU update with lookahead overlap) and
//!   CULA/Volkov (same without overlap),
//! * [`blas2gpu`] — the authors' own pre-CAQR bandwidth-bound BLAS2 GPU QR,
//!   the middle row of Table II,
//! * [`panel`] — the shared cache-aware CPU panel cost model.
//!
//! [`QrImpl`] wraps them (together with CAQR itself) behind one enum so the
//! figure harnesses can sweep all implementations uniformly.

#![warn(missing_docs)]

pub mod blas2gpu;
pub mod hybrid;
pub mod mkl;
pub mod option_a;
pub mod panel;

use caqr::CaqrOptions;
use gpu_sim::{CpuSpec, DeviceSpec, Gpu, PcieSpec};

/// The implementations compared in Figures 8/9 and Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QrImpl {
    /// This paper's CAQR on the C2050 (the `caqr` crate's cost model).
    Caqr,
    /// MAGMA 1.0 hybrid blocked Householder on C2050 + host.
    Magma,
    /// CULA (Volkov-style) blocked Householder on C2050 + host.
    Cula,
    /// Intel MKL on the 8-core Nehalem host.
    Mkl,
}

impl QrImpl {
    /// All four, in the paper's table order.
    pub const ALL: [QrImpl; 4] = [QrImpl::Caqr, QrImpl::Magma, QrImpl::Cula, QrImpl::Mkl];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            QrImpl::Caqr => "CAQR (C2050)",
            QrImpl::Magma => "MAGMA (C2050)",
            QrImpl::Cula => "CULA (C2050)",
            QrImpl::Mkl => "MKL (8 cores)",
        }
    }

    /// Modelled seconds for `SGEQRF` of an `m x n` single-precision matrix
    /// (GPU-resident input for the GPU implementations, as in the paper).
    pub fn model_seconds(self, m: usize, n: usize) -> f64 {
        match self {
            QrImpl::Caqr => {
                let gpu = Gpu::new(DeviceSpec::c2050());
                caqr::model::model_caqr_seconds(&gpu, m, n, CaqrOptions::default())
                    .expect("CAQR model launch failed")
            }
            QrImpl::Magma => hybrid::model_hybrid_seconds(
                &DeviceSpec::c2050(),
                &PcieSpec::gen2_x16(),
                &hybrid::HybridConfig::magma(),
                m,
                n,
            ),
            QrImpl::Cula => hybrid::model_hybrid_seconds(
                &DeviceSpec::c2050(),
                &PcieSpec::gen2_x16(),
                &hybrid::HybridConfig::cula(),
                m,
                n,
            ),
            QrImpl::Mkl => mkl::model_mkl_geqrf_seconds(&CpuSpec::nehalem_8core(), m, n),
        }
    }

    /// Modelled `SGEQRF` GFLOP/s.
    pub fn model_gflops(self, m: usize, n: usize) -> f64 {
        dense::geqrf_flops(m, n) / self.model_seconds(m, n) / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ordering_holds_at_1m_x_192() {
        // Paper: CAQR 195 >> MKL 16.5 > MAGMA 11.4 > CULA 7.79.
        let g: Vec<f64> = QrImpl::ALL
            .iter()
            .map(|i| i.model_gflops(1_000_000, 192))
            .collect();
        let (caqr_g, magma, cula, mkl) = (g[0], g[1], g[2], g[3]);
        assert!(caqr_g > 4.0 * mkl, "CAQR {caqr_g} must dominate MKL {mkl}");
        assert!(
            caqr_g > 8.0 * cula,
            "CAQR {caqr_g} must dominate CULA {cula}"
        );
        assert!(mkl > magma, "paper has MKL {mkl} above MAGMA {magma} at 1M");
        assert!(magma > cula, "MAGMA {magma} above CULA {cula}");
    }

    #[test]
    fn speedup_at_1m_x_192_is_order_ten_to_twenty() {
        // "we saw speedups of up to 17x over GPU linear algebra libraries
        // and 12x vs MKL".
        let caqr_g = QrImpl::Caqr.model_gflops(1_000_000, 192);
        let cula = QrImpl::Cula.model_gflops(1_000_000, 192);
        let mkl = QrImpl::Mkl.model_gflops(1_000_000, 192);
        let vs_gpu = caqr_g / cula;
        let vs_mkl = caqr_g / mkl;
        assert!(vs_gpu > 8.0 && vs_gpu < 40.0, "CAQR/CULA speedup {vs_gpu}");
        assert!(vs_mkl > 6.0 && vs_mkl < 25.0, "CAQR/MKL speedup {vs_mkl}");
    }

    #[test]
    fn crossover_near_4000_columns_at_height_8192() {
        // Figure 9: "The crossover point, where CAQR becomes slower than the
        // best GPU libraries, is around 4000 columns wide."
        let best_lib = |n: usize| {
            QrImpl::ALL[1..]
                .iter()
                .map(|i| i.model_gflops(8192, n))
                .fold(0.0, f64::max)
        };
        let caqr_wins_at_1024 = QrImpl::Caqr.model_gflops(8192, 1024) > best_lib(1024);
        let libs_win_at_8192 = QrImpl::Caqr.model_gflops(8192, 8192) < best_lib(8192);
        assert!(caqr_wins_at_1024, "CAQR must win at 1024 columns");
        assert!(libs_win_at_8192, "libraries must win at 8192 columns");
        // Locate the crossover: somewhere between 1.5k and 8k.
        let mut crossover = None;
        for n in [1024, 1536, 2048, 3072, 4096, 6144, 8192] {
            if QrImpl::Caqr.model_gflops(8192, n) < best_lib(n) {
                crossover = Some(n);
                break;
            }
        }
        let c = crossover.expect("no crossover found");
        assert!((1536..=8192).contains(&c), "crossover at {c} columns");
    }

    #[test]
    fn gpu_impls_beat_cpu_for_square() {
        let magma = QrImpl::Magma.model_gflops(8192, 8192);
        let mkl = QrImpl::Mkl.model_gflops(8192, 8192);
        assert!(magma > 3.0 * mkl);
    }
}
