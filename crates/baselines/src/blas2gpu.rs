//! The "BLAS2 QR (GTX480)" baseline of Table II: a pure matrix-vector
//! Householder QR running entirely on the GPU, hand-tuned for tall-skinny
//! matrices (the authors' own pre-CAQR code).
//!
//! Every Householder step launches a fused `norm + gemv` kernel and a `ger`
//! kernel over the trailing matrix; all operands stream from DRAM, so the
//! algorithm is bandwidth-bound end to end — no tree, no blocking, but also
//! no CPU round-trips.

use gpu_sim::DeviceSpec;

/// Kernel launches per Householder step (fused norm+gemv, then ger).
const LAUNCHES_PER_STEP: f64 = 2.0;

/// Modelled seconds for the BLAS2 GPU QR of an `m x n` matrix.
pub fn model_blas2_gpu_seconds(gpu: &DeviceSpec, m: usize, n: usize) -> f64 {
    let k = m.min(n);
    let bw = gpu.dram_bw_gbs * 1.0e9;
    let mut t = 0.0;
    for j in 0..k {
        let mp = (m - j) as f64;
        let nc = (n - j) as f64;
        // gemv reads the trailing block; ger reads and writes it.
        let bytes = 4.0 * mp * nc * 3.0;
        t += bytes / bw + LAUNCHES_PER_STEP * gpu.launch_overhead_us * 1.0e-6;
    }
    t
}

/// Modelled `SGEQRF` GFLOP/s.
pub fn model_blas2_gpu_gflops(gpu: &DeviceSpec, m: usize, n: usize) -> f64 {
    dense::geqrf_flops(m, n) / model_blas2_gpu_seconds(gpu, m, n) / 1.0e9
}

/// Modelled seconds for forming the explicit `m x n` Q (`SORGQR`) from a
/// BLAS2 factorization: the reflectors stream back over the accumulating
/// `Q` one at a time, so it costs as much as the factorization itself —
/// unlike CAQR, where the apply kernels run at the same compute-bound rate
/// as factoring (Section V-C).
pub fn model_blas2_gpu_orgqr_seconds(gpu: &DeviceSpec, m: usize, n: usize) -> f64 {
    let k = m.min(n);
    let bw = gpu.dram_bw_gbs * 1.0e9;
    let mut t = 0.0;
    for j in (0..k).rev() {
        let mp = (m - j) as f64;
        let nc = (n - j) as f64;
        let bytes = 4.0 * mp * nc * 3.0;
        t += bytes / bw + LAUNCHES_PER_STEP * gpu.launch_overhead_us * 1.0e-6;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blas2_gpu_is_bandwidth_bound() {
        // 2 flops per ~6 streamed bytes at 177 GB/s caps the GTX480 around
        // 60 GFLOP/s no matter how big the matrix gets.
        let gpu = DeviceSpec::gtx480();
        let g = model_blas2_gpu_gflops(&gpu, 1_000_000, 100);
        assert!(g < 65.0, "BLAS2 GPU QR modelled at {g}");
        assert!(g > 10.0);
    }

    #[test]
    fn launch_overhead_dominates_small_matrices() {
        let gpu = DeviceSpec::gtx480();
        let t = model_blas2_gpu_seconds(&gpu, 1000, 100);
        // 100 steps x 2 launches x 25 us = 5 ms floor.
        assert!(t > 4.9e-3, "got {t}");
    }

    #[test]
    fn video_matrix_qr_under_100ms() {
        // Sanity for the Table II pipeline: one QR of the 110,592 x 100
        // video matrix should sit in the tens of milliseconds.
        let gpu = DeviceSpec::gtx480();
        let t = model_blas2_gpu_seconds(&gpu, 110_592, 100);
        assert!(t > 5.0e-3 && t < 0.15, "got {t}");
    }
}
