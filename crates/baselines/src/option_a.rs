//! Section III-A — "First option: CPU panel factorization and GPU trailing
//! matrix update" — the heterogeneous mapping of *CAQR itself* that the
//! paper considered and rejected in favour of the all-GPU Option B.
//!
//! Per panel: the CPU factors the panel with TSQR (cache-resident tiles, so
//! no bandwidth cliff), the factors round-trip over PCIe, and the GPU runs
//! the same `apply_qt_h` / `apply_qt_tree` trailing updates as Option B.
//! The panel work can overlap the previous trailing update (the "potential"
//! overlap Section III-A mentions), which we model optimistically — and
//! Option B still wins for skinny matrices, because for them the panel+
//! transfer chain *is* the critical path.

use caqr::block::{plan_tree, tile_panel, BlockSize, TreeShape};
use caqr::kernels::{apply_qt_h_block_cost, apply_qt_tree_block_cost};
use caqr::microkernels::ReductionStrategy;
use caqr::tsqr::col_blocks;
use gpu_sim::{CpuSpec, DeviceSpec, PcieSpec};

/// Modelled seconds for the CPU-side TSQR of one `m_p x w` panel: the panel
/// streams from DRAM twice (read + write) while the per-tile factorizations
/// run from cache across the cores.
fn cpu_tsqr_panel_seconds(cpu: &CpuSpec, mp: usize, w: usize) -> f64 {
    let flops = 2.2 * mp as f64 * (w * w) as f64; // level-0 + tree slack
    let traffic = 2.0 * 4.0 * mp as f64 * w as f64;
    let compute = flops / (cpu.blas2_cache_gflops * 1.0e9);
    let stream = traffic / (cpu.dram_bw_gbs * 1.0e9);
    compute.max(stream) + 2.0 * cpu.call_overhead_us * 1.0e-6
}

/// Modelled seconds for the GPU trailing update of one panel (the same
/// kernel grid Option B launches).
fn gpu_trailing_seconds(
    gpu: &DeviceSpec,
    bs: BlockSize,
    row0: usize,
    m: usize,
    width: usize,
    trailing_cols: usize,
) -> f64 {
    if trailing_cols == 0 {
        return 0.0;
    }
    let strategy = ReductionStrategy::RegisterSerialTransposed;
    let tiles = tile_panel(row0, m - row0, bs.h, bs.w);
    let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
    let plan = plan_tree(&starts, TreeShape::DeviceArity.arity(bs));
    let cbs = col_blocks(row0 + width, row0 + width + trailing_cols, bs.w);
    let cycle = gpu.cycle_seconds();
    let mut t = 0.0;
    // apply_qt_h launch.
    {
        let c = apply_qt_h_block_cost(gpu, bs.h.min(tiles[0].rows), width, bs.w, strategy, 4);
        let blocks = tiles.len() * cbs.len();
        let issue = blocks.div_ceil(gpu.sms) as f64 * c.issue_cycles * cycle;
        let dram = blocks as f64 * c.gmem_bytes / (gpu.dram_bw_gbs * 1.0e9);
        t += gpu.launch_overhead_us * 1.0e-6 + issue.max(dram);
    }
    // apply_qt_tree per level.
    for level in &plan.levels {
        let arity = level.iter().map(|g| g.members.len()).max().unwrap_or(2);
        let c = apply_qt_tree_block_cost(gpu, arity, width, bs.w, strategy, 4);
        let blocks = level.len() * cbs.len();
        let issue = blocks.div_ceil(gpu.sms) as f64 * c.issue_cycles * cycle;
        let dram = blocks as f64 * c.gmem_bytes / (gpu.dram_bw_gbs * 1.0e9);
        t += gpu.launch_overhead_us * 1.0e-6 + issue.max(dram);
    }
    t
}

/// Modelled seconds for Option A CAQR of an `m x n` matrix: CPU TSQR panels
/// + PCIe round-trips + GPU trailing updates, with panel/update overlap.
pub fn model_caqr_option_a_seconds(
    gpu: &DeviceSpec,
    pcie: &PcieSpec,
    cpu: &CpuSpec,
    m: usize,
    n: usize,
    bs: BlockSize,
) -> f64 {
    let w = bs.w;
    let k = m.min(n);
    let mut total = 0.0;
    let mut pending_update = 0.0;
    let mut c = 0;
    while c < k {
        let width = w.min(k - c);
        let mp = m - c;
        let panel_bytes = (4 * mp * width) as u64;
        let cpu_side = cpu_tsqr_panel_seconds(cpu, mp, width)
            + pcie.transfer_seconds(panel_bytes)   // panel down to the host
            + pcie.transfer_seconds(panel_bytes); // factors back up
        let update = gpu_trailing_seconds(gpu, bs, c, m, width, n - c - width);
        // Overlap the CPU chain with the previous GPU update.
        total += cpu_side.max(pending_update);
        pending_update = update;
        c += width;
    }
    total + pending_update
}

/// Modelled `SGEQRF` GFLOP/s for Option A.
pub fn model_caqr_option_a_gflops(
    gpu: &DeviceSpec,
    pcie: &PcieSpec,
    cpu: &CpuSpec,
    m: usize,
    n: usize,
    bs: BlockSize,
) -> f64 {
    dense::geqrf_flops(m, n) / model_caqr_option_a_seconds(gpu, pcie, cpu, m, n, bs) / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr::CaqrOptions;
    use gpu_sim::Gpu;

    fn setup() -> (DeviceSpec, PcieSpec, CpuSpec, BlockSize) {
        (
            DeviceSpec::c2050(),
            PcieSpec::gen2_x16(),
            CpuSpec::nehalem_8core(),
            BlockSize::c2050_best(),
        )
    }

    #[test]
    fn option_b_wins_for_skinny_matrices() {
        // The paper's §III conclusion: "for this size problem, the latency
        // of transferring data to the CPU will have high adverse impact".
        let (gpu, pcie, cpu, bs) = setup();
        for (m, n) in [(110_592usize, 100usize), (1_000_000, 192), (100_000, 64)] {
            let a = model_caqr_option_a_seconds(&gpu, &pcie, &cpu, m, n, bs);
            let b = {
                let g = Gpu::new(gpu.clone());
                caqr::model::model_caqr_seconds(&g, m, n, CaqrOptions::default()).unwrap()
            };
            assert!(b < a, "Option B must beat Option A at {m}x{n}: {b} vs {a}");
        }
    }

    #[test]
    fn option_a_still_beats_plain_magma_on_tall_skinny() {
        // Option A is CAQR-with-CPU-panels: its panels are cache-friendly
        // TSQR, so it should beat MAGMA's cliff-bound BLAS2 panels for very
        // tall matrices even with the same transfer burden.
        let (gpu, pcie, cpu, bs) = setup();
        let a = model_caqr_option_a_gflops(&gpu, &pcie, &cpu, 1_000_000, 192, bs);
        let magma = crate::hybrid::model_hybrid_gflops(
            &gpu,
            &pcie,
            &crate::hybrid::HybridConfig::magma(),
            1_000_000,
            192,
        );
        assert!(a > magma, "Option A {a} vs MAGMA {magma}");
    }

    #[test]
    fn transfer_latency_dominates_small_problems() {
        let (gpu, pcie, cpu, bs) = setup();
        let t = model_caqr_option_a_seconds(&gpu, &pcie, &cpu, 1_000, 192, bs);
        // 12 panels x 2 transfers x >=15 us latency each as a hard floor.
        assert!(t > 12.0 * 2.0 * 15.0e-6, "got {t}");
    }
}
