//! Hybrid CPU+GPU blocked-Householder baselines: MAGMA and CULA/Volkov.
//!
//! Both follow Figure 1's algorithm with the mapping of Section III-A: the
//! BLAS2 panel goes to (one core of) the CPU, the BLAS3 trailing update runs
//! as GEMMs on the GPU, and each panel round-trips over PCIe. MAGMA overlaps
//! the next panel's CPU factorization with the current GPU update
//! (lookahead); CULA — whose QR the paper observes performs like Volkov's
//! 2008 code — serializes them.

use crate::panel::panel_seconds;
use gpu_sim::{CpuSpec, DeviceSpec, PcieSpec};

/// Configuration of a hybrid blocked-Householder QR.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// CPU resource used for panels (a single host core).
    pub panel_cpu: CpuSpec,
    /// Panel width.
    pub nb: usize,
    /// Whether CPU panel work overlaps GPU updates (MAGMA lookahead).
    pub overlap: bool,
    /// Extra CPU<->GPU synchronizations per panel beyond the two transfers.
    pub syncs_per_panel: f64,
    /// GPU kernel launches per trailing update (the three `larfb` GEMMs).
    pub launches_per_update: f64,
}

impl HybridConfig {
    /// MAGMA 1.0: lookahead overlap.
    pub fn magma() -> Self {
        HybridConfig {
            panel_cpu: CpuSpec::panel_core(),
            nb: 32,
            overlap: true,
            syncs_per_panel: 2.0,
            launches_per_update: 3.0,
        }
    }

    /// CULA (Volkov-style): same structure without the overlap, and a
    /// slightly less tuned panel path.
    pub fn cula() -> Self {
        let mut cpu = CpuSpec::panel_core();
        cpu.dram_bw_gbs = 3.2;
        cpu.blas2_cache_gflops = 2.8;
        HybridConfig {
            panel_cpu: cpu,
            nb: 32,
            overlap: false,
            syncs_per_panel: 2.0,
            launches_per_update: 3.0,
        }
    }
}

/// Modelled GPU seconds of one `larfb` trailing update (`m_p x nc` trailing
/// matrix, `nb`-wide reflector block): three GEMMs at the device's large-GEMM
/// rate, DRAM-roofline limited, plus launch overheads.
fn gpu_update_seconds(
    gpu: &DeviceSpec,
    cfg: &HybridConfig,
    mp: usize,
    nc: usize,
    nb: usize,
) -> f64 {
    if nc == 0 {
        return 0.0;
    }
    let flops = 4.0 * mp as f64 * nc as f64 * nb as f64;
    let bytes = 4.0 * (2.0 * mp as f64 * nc as f64 + 2.0 * mp as f64 * nb as f64);
    let compute = flops / (gpu.gemm_gflops() * 1.0e9);
    let memory = bytes / (gpu.dram_bw_gbs * 1.0e9);
    compute.max(memory) + cfg.launches_per_update * gpu.launch_overhead_us * 1.0e-6
}

/// Modelled seconds of a hybrid blocked-Householder `SGEQRF` of an `m x n`
/// matrix (matrix resident on the GPU, as in the paper's measurements).
pub fn model_hybrid_seconds(
    gpu: &DeviceSpec,
    pcie: &PcieSpec,
    cfg: &HybridConfig,
    m: usize,
    n: usize,
) -> f64 {
    let k = m.min(n);
    let mut total = 0.0;
    let mut pending_update = 0.0; // GPU update still in flight (overlap mode)
    let mut j = 0;
    while j < k {
        let jb = cfg.nb.min(k - j);
        let mp = m - j;
        // Panel travels down, gets factored, and the V/T factors travel back.
        let panel_bytes = (4 * mp * jb) as u64;
        let xfer = pcie.transfer_seconds(panel_bytes)
            + pcie.transfer_seconds(panel_bytes)
            + cfg.syncs_per_panel * pcie.latency_us * 1.0e-6;
        let cpu_side = panel_seconds(&cfg.panel_cpu, mp, jb) + xfer;
        let update = gpu_update_seconds(gpu, cfg, mp, n - j - jb, jb);
        if cfg.overlap {
            // Lookahead: the CPU factors panel p+1 while the GPU applies
            // panel p; each round costs the slower of the two.
            total += cpu_side.max(pending_update);
            pending_update = update;
        } else {
            total += cpu_side + update;
        }
        j += jb;
    }
    total + pending_update
}

/// Modelled `SGEQRF` GFLOP/s for a hybrid baseline.
pub fn model_hybrid_gflops(
    gpu: &DeviceSpec,
    pcie: &PcieSpec,
    cfg: &HybridConfig,
    m: usize,
    n: usize,
) -> f64 {
    dense::geqrf_flops(m, n) / model_hybrid_seconds(gpu, pcie, cfg, m, n) / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2050() -> (DeviceSpec, PcieSpec) {
        (DeviceSpec::c2050(), PcieSpec::gen2_x16())
    }

    #[test]
    fn magma_tall_skinny_matches_paper_scale() {
        // Table I MAGMA row: 5.01 / 18.7 / 20.8 / 18.8 / 12.4 / 11.4.
        let (gpu, pcie) = c2050();
        let g = model_hybrid_gflops(&gpu, &pcie, &HybridConfig::magma(), 1_000_000, 192);
        assert!(g > 5.0 && g < 30.0, "MAGMA 1M x 192 modelled at {g}");
    }

    #[test]
    fn cula_slower_than_magma_on_tall_skinny() {
        // Table I: CULA 7.79 vs MAGMA 11.4 at 1M x 192.
        let (gpu, pcie) = c2050();
        let magma = model_hybrid_gflops(&gpu, &pcie, &HybridConfig::magma(), 1_000_000, 192);
        let cula = model_hybrid_gflops(&gpu, &pcie, &HybridConfig::cula(), 1_000_000, 192);
        assert!(cula < magma, "cula {cula} vs magma {magma}");
    }

    #[test]
    fn magma_square_reaches_gemm_rates() {
        // Figure 9: MAGMA climbs to ~450 GFLOP/s at 8192 x 8192.
        let (gpu, pcie) = c2050();
        let g = model_hybrid_gflops(&gpu, &pcie, &HybridConfig::magma(), 8192, 8192);
        assert!(g > 250.0 && g < 620.0, "MAGMA square modelled at {g}");
    }

    #[test]
    fn overlap_only_helps() {
        let (gpu, pcie) = c2050();
        let mut no_overlap = HybridConfig::magma();
        no_overlap.overlap = false;
        for (m, n) in [(1_000_000, 192), (8192, 8192), (8192, 512)] {
            let with = model_hybrid_seconds(&gpu, &pcie, &HybridConfig::magma(), m, n);
            let without = model_hybrid_seconds(&gpu, &pcie, &no_overlap, m, n);
            assert!(with <= without + 1e-12, "overlap slower at {m}x{n}?");
        }
    }

    #[test]
    fn hybrids_collapse_when_matrix_gets_skinnier() {
        // The core motivation: at fixed height the hybrids' GFLOP/s fall off
        // a cliff as the width shrinks (panel + transfer dominated).
        let (gpu, pcie) = c2050();
        let cfg = HybridConfig::magma();
        let wide = model_hybrid_gflops(&gpu, &pcie, &cfg, 8192, 8192);
        let skinny = model_hybrid_gflops(&gpu, &pcie, &cfg, 8192, 128);
        assert!(wide > 5.0 * skinny, "{wide} vs {skinny}");
    }
}
