//! MKL-class baseline: multithreaded blocked Householder QR on the host CPU
//! (LAPACK `SGEQRF` linked against a tuned BLAS), plus the `SGESDD`-style
//! SVD cost used by the Robust PCA comparison.
//!
//! Two paths are provided: [`model_mkl_geqrf_seconds`] is the pure cost
//! model used by the figure sweeps; [`execute_geqrf`] really factors a
//! matrix with `dense::blocked::geqrf` while charging the same model to a
//! [`CpuMachine`] ledger, so tests can pin the two together.

use crate::panel::{cpu_update_seconds, panel_flops, panel_seconds};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use gpu_sim::{CpuMachine, CpuSpec};

/// Panel width MKL-class `geqrf` uses.
pub const MKL_NB: usize = 32;

/// Modelled seconds for a multithreaded blocked-Householder `SGEQRF` of an
/// `m x n` matrix on `cpu`.
pub fn model_mkl_geqrf_seconds(cpu: &CpuSpec, m: usize, n: usize) -> f64 {
    let k = m.min(n);
    let mut t = 0.0;
    let mut j = 0;
    while j < k {
        let jb = MKL_NB.min(k - j);
        let mp = m - j;
        t += panel_seconds(cpu, mp, jb);
        t += cpu_update_seconds(cpu, mp, n - j - jb, jb);
        j += jb;
    }
    t
}

/// Modelled `SGEQRF` GFLOP/s (the paper's reporting convention).
pub fn model_mkl_geqrf_gflops(cpu: &CpuSpec, m: usize, n: usize) -> f64 {
    dense::geqrf_flops(m, n) / model_mkl_geqrf_seconds(cpu, m, n) / 1.0e9
}

/// Really factor `a` with the blocked Householder algorithm while charging
/// the cost model to `machine`'s ledger. Returns the `tau` array.
pub fn execute_geqrf<T: Scalar>(machine: &CpuMachine, a: &mut Matrix<T>) -> Vec<T> {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut j = 0;
    while j < k {
        let jb = MKL_NB.min(k - j);
        let mp = m - j;
        machine.call("mkl_panel", panel_flops(mp, jb), 0.0, 1.0); // time overridden below
        machine.idle(panel_seconds(machine.spec(), mp, jb));
        machine.idle(cpu_update_seconds(machine.spec(), mp, n - j - jb, jb));
        j += jb;
    }
    // The arithmetic itself (bit-exact with dense::blocked::geqrf).
    dense::blocked::geqrf(a, MKL_NB)
}

/// Modelled seconds for a full tall-skinny `SGESDD`-style SVD (`m x n`,
/// `m >> n`) on the CPU — the "MKL SVD" variant of Table II. Dominated by
/// the BLAS2 bidiagonalization, which streams the matrix per column pair
/// (same bandwidth cliff as the QR panel, but over the full width `n`),
/// plus the back-transformation GEMMs.
pub fn model_mkl_svd_seconds(cpu: &CpuSpec, m: usize, n: usize) -> f64 {
    assert!(m >= n);
    let bw = cpu.dram_bw_gbs * 1.0e9;
    let matrix_bytes = 4.0 * m as f64 * n as f64;
    // Bidiagonalization: 2n BLAS2 sweeps over the shrinking trailing matrix;
    // a tall matrix never fits cache, so each sweep streams it (read+write).
    let bidiag_traffic = if matrix_bytes <= cpu.cache_bytes as f64 {
        2.0 * matrix_bytes
    } else {
        // sum_j 8 bytes * m * (n - j) ~= 4 m n^2 bytes, twice (left+right
        // reflectors per column).
        8.0 * m as f64 * (n * n) as f64 / 2.0 * 2.0
    };
    let bidiag_flops = 8.0 * m as f64 * (n * n) as f64 / 2.0;
    let bidiag = (bidiag_traffic / bw).max(bidiag_flops / (cpu.blas2_cache_gflops * 1.0e9));
    // Small n x n SVD of the bidiagonal core (QR iteration, ~ O(n^3)).
    let core = 30.0 * (n * n * n) as f64 / (cpu.blas2_cache_gflops * 1.0e9);
    // Back-transformation: U = A-sized GEMM.
    let backtransform = {
        let flops = 2.0 * m as f64 * (n * n) as f64;
        let peak = cpu.peak_gflops() * 1.0e9 * cpu.gemm_efficiency;
        (flops / peak).max(2.0 * matrix_bytes / bw)
    };
    bidiag + core + backtransform + 2.0 * n as f64 * cpu.call_overhead_us * 1.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkl_tall_skinny_matches_paper_scale() {
        // Table I MKL row: 3.12 / 16.9 / 22.8 / 21.4 / 17.8 / 16.5 GFLOP/s.
        let cpu = CpuSpec::nehalem_8core();
        let g1m = model_mkl_geqrf_gflops(&cpu, 1_000_000, 192);
        assert!(g1m > 8.0 && g1m < 40.0, "1M x 192 MKL modelled at {g1m}");
        let g1k = model_mkl_geqrf_gflops(&cpu, 1_000, 192);
        assert!(g1k < 15.0, "1k x 192 MKL is overhead-bound, got {g1k}");
    }

    #[test]
    fn mkl_square_reaches_blas3_rates() {
        // Figure 9's MKL curve: flat around 60-90 GFLOP/s for wide matrices.
        let cpu = CpuSpec::nehalem_8core();
        let g = model_mkl_geqrf_gflops(&cpu, 8192, 8192);
        assert!(g > 40.0 && g < 95.0, "square MKL modelled at {g}");
    }

    #[test]
    fn mkl_square_beats_tall_skinny_per_flop() {
        let cpu = CpuSpec::nehalem_8core();
        let square = model_mkl_geqrf_gflops(&cpu, 8192, 8192);
        let skinny = model_mkl_geqrf_gflops(&cpu, 1_000_000, 192);
        assert!(square > 1.5 * skinny, "{square} vs {skinny}");
    }

    #[test]
    fn execute_matches_reference_factorization() {
        let machine = CpuMachine::new(CpuSpec::nehalem_8core());
        let a0 = dense::generate::uniform::<f64>(128, 24, 5);
        let mut a = a0.clone();
        let tau = execute_geqrf(&machine, &mut a);
        let mut reference = a0.clone();
        let tau_ref = dense::blocked::geqrf(&mut reference, MKL_NB);
        assert_eq!(a, reference);
        assert_eq!(tau, tau_ref);
        assert!(machine.elapsed() > 0.0);
    }

    #[test]
    fn svd_slower_than_qr_for_same_matrix() {
        // The whole point of the QR-first trick in Section VI-B.
        let cpu = CpuSpec::corei7_4core();
        let qr = model_mkl_geqrf_seconds(&cpu, 110_592, 100);
        let svd = model_mkl_svd_seconds(&cpu, 110_592, 100);
        assert!(svd > qr, "svd {svd} should exceed qr {qr}");
    }
}
