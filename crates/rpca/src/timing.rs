//! Table II: modelled Robust PCA iteration rates for the three
//! implementations the paper compares on the 110,592 x 100 video matrix.
//!
//! | paper variant          | iterations/s |
//! |------------------------|--------------|
//! | MKL SVD (4 cores)      | 0.9          |
//! | BLAS2 QR (GTX480)      | 8.7          |
//! | CAQR (GTX480)          | 27.0         |
//!
//! One iteration = singular-value threshold (the SVD, by far the dominant
//! cost — hence the Amdahl-limited 3x end-to-end speedup from a >3x faster
//! QR) + shrinkage + multiplier update.

use baselines::blas2gpu::model_blas2_gpu_seconds;
use baselines::mkl::model_mkl_svd_seconds;
use caqr::CaqrOptions;
use gpu_sim::{CpuSpec, DeviceSpec, Gpu, PcieSpec};

/// The three Robust PCA implementations of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcaImpl {
    /// All-CPU: MKL `SGESDD` on the 4-core Core i7.
    MklSvdCpu,
    /// GPU pipeline with the authors' bandwidth-bound BLAS2 QR (GTX480).
    Blas2GpuQr,
    /// GPU pipeline with CAQR (GTX480).
    CaqrGpu,
}

impl RpcaImpl {
    /// All three, in the paper's table order.
    pub const ALL: [RpcaImpl; 3] = [RpcaImpl::MklSvdCpu, RpcaImpl::Blas2GpuQr, RpcaImpl::CaqrGpu];

    /// Display name matching Table II.
    pub fn name(self) -> &'static str {
        match self {
            RpcaImpl::MklSvdCpu => "MKL SVD (4 cores)",
            RpcaImpl::Blas2GpuQr => "BLAS2 QR (GTX480)",
            RpcaImpl::CaqrGpu => "CAQR (GTX480)",
        }
    }
}

/// Elementwise passes over the `m x n` iterate per iteration: forming
/// `M - S + Y/mu`, the shrinkage of `S`, the residual and the `Y` update
/// (each a read-heavy streaming pass).
const ELEMENTWISE_PASSES: f64 = 15.0;

/// Kernel launches for the elementwise phase on the GPU.
const ELEMENTWISE_LAUNCHES: f64 = 8.0;

fn gemm_seconds_gpu(gpu: &DeviceSpec, m: usize, n: usize, k: usize) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
    (flops / (gpu.gemm_gflops() * 1.0e9)).max(bytes / (gpu.dram_bw_gbs * 1.0e9))
        + gpu.launch_overhead_us * 1.0e-6
}

/// Seconds for the small `n x n` SVD of `R` on the host CPU.
fn small_svd_seconds(cpu: &CpuSpec, n: usize) -> f64 {
    // gesdd-style O(n^3) with a healthy constant, cache resident.
    22.0 * (n * n * n) as f64 / (cpu.blas2_cache_gflops * 1.0e9)
}

/// Modelled seconds of one Robust PCA iteration on an `m x n` video matrix.
pub fn model_iteration_seconds(which: RpcaImpl, m: usize, n: usize) -> f64 {
    match which {
        RpcaImpl::MklSvdCpu => {
            let cpu = CpuSpec::corei7_4core();
            let bw = cpu.dram_bw_gbs * 1.0e9;
            let bytes = 4.0 * m as f64 * n as f64;
            let svd = model_mkl_svd_seconds(&cpu, m, n);
            // L = U Sigma V^T back-multiplication.
            let gemm = {
                let flops = 2.0 * m as f64 * (n * n) as f64;
                (flops / (cpu.peak_gflops() * 1.0e9 * cpu.gemm_efficiency)).max(3.0 * bytes / bw)
            };
            let elementwise = ELEMENTWISE_PASSES * bytes / bw;
            svd + gemm + elementwise
        }
        RpcaImpl::Blas2GpuQr | RpcaImpl::CaqrGpu => {
            let gpu_spec = DeviceSpec::gtx480();
            let pcie = PcieSpec::gen2_x16();
            let cpu = CpuSpec::corei7_4core();
            let qr = match which {
                RpcaImpl::Blas2GpuQr => {
                    // Factor, then build explicit Q the BLAS2 way — both
                    // bandwidth-bound full passes.
                    model_blas2_gpu_seconds(&gpu_spec, m, n)
                        + baselines::blas2gpu::model_blas2_gpu_orgqr_seconds(&gpu_spec, m, n)
                }
                RpcaImpl::CaqrGpu => {
                    let gpu = Gpu::new(gpu_spec.clone());
                    // Factor + explicit Q, both on the GPU (Section V-C).
                    let f = caqr::model::model_caqr_seconds(&gpu, m, n, CaqrOptions::default())
                        .expect("CAQR model");
                    let q = caqr::model::model_caqr_apply_seconds(
                        &gpu,
                        m,
                        n,
                        n,
                        CaqrOptions::default(),
                    )
                    .expect("CAQR apply model");
                    f + q
                }
                RpcaImpl::MklSvdCpu => unreachable!(),
            };
            // R down to the host, small SVD there, U back up (Section VI-B:
            // "the SVD of R ... is cheap ... and done on the CPU").
            let r_bytes = (4 * n * n) as u64;
            let host_svd = pcie.transfer_seconds(r_bytes)
                + small_svd_seconds(&cpu, n)
                + pcie.transfer_seconds(r_bytes);
            // U' = Q * U, then L = U' (shrunk Sigma) V^T — two GPU GEMMs.
            let gemms = gemm_seconds_gpu(&gpu_spec, m, n, n) + gemm_seconds_gpu(&gpu_spec, m, n, n);
            let bytes = 4.0 * m as f64 * n as f64;
            let elementwise = ELEMENTWISE_PASSES * bytes / (gpu_spec.dram_bw_gbs * 1.0e9)
                + ELEMENTWISE_LAUNCHES * gpu_spec.launch_overhead_us * 1.0e-6;
            qr + host_svd + gemms + elementwise
        }
    }
}

/// Modelled iterations per second (the Table II metric) at the paper's
/// 110,592 x 100 video size.
pub fn model_iterations_per_second(which: RpcaImpl) -> f64 {
    1.0 / model_iteration_seconds(which, 110_592, 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ordering_and_scale() {
        // Paper: 0.9 / 8.7 / 27.0 iterations per second.
        let cpu = model_iterations_per_second(RpcaImpl::MklSvdCpu);
        let blas2 = model_iterations_per_second(RpcaImpl::Blas2GpuQr);
        let caqr = model_iterations_per_second(RpcaImpl::CaqrGpu);
        assert!(cpu < blas2 && blas2 < caqr, "{cpu} {blas2} {caqr}");
        assert!(cpu > 0.3 && cpu < 4.0, "MKL SVD modelled at {cpu} it/s");
        assert!(
            blas2 > 4.0 && blas2 < 20.0,
            "BLAS2 QR modelled at {blas2} it/s"
        );
        assert!(caqr > 15.0 && caqr < 60.0, "CAQR modelled at {caqr} it/s");
    }

    #[test]
    fn caqr_gives_about_3x_over_blas2() {
        // "we see an additional speedup of about 3x when using CAQR as
        // compared to the BLAS2 QR" — Amdahl-limited end-to-end.
        let blas2 = model_iterations_per_second(RpcaImpl::Blas2GpuQr);
        let caqr = model_iterations_per_second(RpcaImpl::CaqrGpu);
        let speedup = caqr / blas2;
        assert!(
            speedup > 1.6 && speedup < 5.0,
            "CAQR/BLAS2 iteration speedup {speedup}"
        );
    }

    #[test]
    fn gpu_gives_order_30x_over_cpu() {
        // "Overall our GPU solution gives us a 30x speedup over the original
        // CPU code".
        let cpu = model_iterations_per_second(RpcaImpl::MklSvdCpu);
        let caqr = model_iterations_per_second(RpcaImpl::CaqrGpu);
        let speedup = caqr / cpu;
        assert!(
            speedup > 10.0 && speedup < 60.0,
            "overall speedup {speedup}"
        );
    }

    #[test]
    fn qr_dominates_the_gpu_iteration() {
        // The premise of the whole application section: the SVD (QR) step is
        // where the time goes.
        let gpu_spec = DeviceSpec::gtx480();
        let qr = model_blas2_gpu_seconds(&gpu_spec, 110_592, 100)
            + baselines::blas2gpu::model_blas2_gpu_orgqr_seconds(&gpu_spec, 110_592, 100);
        let total = model_iteration_seconds(RpcaImpl::Blas2GpuQr, 110_592, 100);
        assert!(qr / total > 0.5, "QR fraction {}", qr / total);
    }

    #[test]
    fn five_hundred_iterations_in_about_20_seconds() {
        // "reducing the time to solve the problem completely from over nine
        // minutes to 17 seconds" (500+ iterations).
        let secs = 500.0 * model_iteration_seconds(RpcaImpl::CaqrGpu, 110_592, 100);
        assert!(
            secs > 8.0 && secs < 40.0,
            "500 iterations modelled at {secs} s"
        );
        let cpu_secs = 500.0 * model_iteration_seconds(RpcaImpl::MklSvdCpu, 110_592, 100);
        assert!(
            cpu_secs > 150.0,
            "CPU 500 iterations modelled at {cpu_secs} s"
        );
    }
}
