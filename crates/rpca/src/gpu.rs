//! The all-GPU Robust PCA loop: every bulk step — QR, `Q * U`, the
//! `L = U' (shrunk Sigma) V^T` back-multiplication, shrinkage, residual and
//! multiplier updates — runs as kernels on the simulated device, with only
//! the tiny `n x n` SVD of `R` on the host (Section VI-B: "the SVD of R ...
//! is cheap ... and done on the CPU"). The device ledger therefore carries
//! the complete modelled iteration cost — the executed counterpart of the
//! Table II model.

use crate::gpu_ops::launch;
use crate::solver::{RpcaParams, RpcaResult};
use caqr::{CaqrError, CaqrOptions};
use dense::matrix::Matrix;
use dense::norms::frobenius;
use dense::scalar::Scalar;
use dense::svd::svd;
use gpu_sim::Gpu;

/// `(U', sigma, V)` from the device SVD pipeline.
type GpuSvdFactors<T> = (Matrix<T>, Vec<T>, Matrix<T>);

/// SVD of a tall matrix with everything but the small `R`-SVD on the
/// device. Returns `(U', sigma, V)`.
fn gpu_svd<T: Scalar>(
    gpu: &Gpu,
    opts: CaqrOptions,
    a: &Matrix<T>,
) -> Result<GpuSvdFactors<T>, CaqrError> {
    let (m, n) = a.shape();
    let f = caqr::caqr::caqr(gpu, a.clone(), opts)?;
    let q = f.generate_q(gpu, n)?;
    let r = f.r();
    // R down to the host, small SVD, factors back up.
    gpu.transfer_d2h((n * n) as u64 * T::BYTES);
    let small = svd(&r);
    gpu.transfer_h2d((2 * n * n) as u64 * T::BYTES);
    // U' = Q * U on the device.
    let mut u = Matrix::<T>::zeros(m, n);
    launch::gemm_small_rhs(gpu, &mut u, &q, small.u)?;
    Ok((u, small.sigma, small.v))
}

/// Solve Robust PCA with the full GPU pipeline. Produces the same iterates
/// as [`crate::solver::rpca`] (verified by tests) while charging every bulk
/// operation to the device ledger.
pub fn rpca_gpu<T: Scalar>(
    gpu: &Gpu,
    opts: CaqrOptions,
    m_mat: &Matrix<T>,
    params: &RpcaParams,
) -> Result<RpcaResult<T>, CaqrError> {
    let (m, n) = m_mat.shape();
    if m < n {
        return Err(CaqrError::BadShape(format!(
            "rpca_gpu expects the tall orientation ({m}x{n})"
        )));
    }
    if let Some((row, col)) = caqr::first_nonfinite(m_mat) {
        return Err(CaqrError::NonFinite {
            context: "rpca_gpu input",
            row,
            col,
        });
    }
    let lambda = T::from_f64(params.lambda.unwrap_or(1.0 / (m.max(n) as f64).sqrt()));
    let m_norm = frobenius(m_mat);
    if m_norm == 0.0 {
        return Ok(RpcaResult {
            l: Matrix::zeros(m, n),
            s: Matrix::zeros(m, n),
            iterations: 0,
            converged: true,
            rank: 0,
            residual: 0.0,
        });
    }

    // Video matrix moves to the device once; "the cost of initially
    // transferring the video matrix to GPU memory is easily amortized".
    gpu.transfer_h2d((m * n) as u64 * T::BYTES);

    let (_, sigma, _) = gpu_svd(gpu, opts, m_mat)?;
    let sigma1 = sigma[0].to_f64().max(1e-30);
    let max_abs = dense::norms::max_abs(m_mat);
    let scale = sigma1.max(max_abs / lambda.to_f64());
    let mut y = m_mat.clone();
    for v in y.as_mut_slice() {
        *v /= T::from_f64(scale);
    }
    let mut mu = T::from_f64(1.25 / sigma1);
    let mu_max = T::from_f64(1.25 / sigma1 * 1.0e7);
    let rho = T::from_f64(params.rho);

    let mut l = Matrix::<T>::zeros(m, n);
    let mut s = Matrix::<T>::zeros(m, n);
    let mut work = Matrix::<T>::zeros(m, n);
    let mut rank = 0;
    let mut residual = f64::INFINITY;

    for iter in 0..params.max_iter {
        let inv_mu = T::ONE / mu;
        // work = M - S + Y/mu (device kernel).
        launch::combine(gpu, &mut work, m_mat, &s, &y, inv_mu)?;
        // Singular-value threshold via the GPU SVD pipeline. A non-finite
        // iterate is a solver breakdown, not a caller error.
        let (u, sigma, v) = gpu_svd(gpu, opts, &work).map_err(|e| match e {
            CaqrError::NonFinite { row, col, .. } => CaqrError::Breakdown {
                context: format!("rpca_gpu iterate {iter} went non-finite at ({row}, {col})"),
            },
            other => other,
        })?;
        rank = sigma.iter().filter(|&&sv| sv > inv_mu).count();
        // L = U[:, :r] * (shrunk Sigma V^T)[:r, :] — small right factor
        // assembled on the host, multiplied on the device.
        let mut small = Matrix::<T>::zeros(n, n);
        for k in 0..rank {
            let sk = sigma[k] - inv_mu;
            for j in 0..n {
                small[(k, j)] = sk * v[(j, k)];
            }
        }
        launch::gemm_small_rhs(gpu, &mut l, &u, small)?;
        // S = shrink(M - L + Y/mu, lambda/mu) (device kernel).
        launch::shrink(gpu, &mut s, m_mat, &l, &y, inv_mu, lambda * inv_mu)?;
        // Residual + multiplier update (device kernel).
        let z_norm = launch::residual_update(gpu, m_mat, &l, &s, &mut y, mu)?;
        residual = z_norm / m_norm;
        if residual < params.tol {
            return Ok(RpcaResult {
                l,
                s,
                iterations: iter + 1,
                converged: true,
                rank,
                residual,
            });
        }
        mu = (mu * rho).minimum(mu_max);
    }

    Ok(RpcaResult {
        l,
        s,
        iterations: params.max_iter,
        converged: false,
        rank,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::rpca;
    use crate::svd_qr::CpuQrBackend;
    use crate::video::{generate, VideoConfig};
    use gpu_sim::DeviceSpec;

    fn small_opts() -> CaqrOptions {
        CaqrOptions {
            bs: caqr::BlockSize { h: 32, w: 8 },
            strategy: caqr::ReductionStrategy::RegisterSerialTransposed,
            tree: caqr::TreeShape::DeviceArity,
            check_finite: true,
        }
    }

    #[test]
    fn gpu_loop_matches_cpu_solver() {
        let video = generate::<f64>(&VideoConfig::tiny());
        let params = RpcaParams {
            tol: 1e-5,
            ..Default::default()
        };
        let cpu = rpca(&CpuQrBackend, &video.matrix, &params).unwrap();
        let gpu = Gpu::new(DeviceSpec::gtx480());
        let dev = rpca_gpu(&gpu, small_opts(), &video.matrix, &params).unwrap();
        assert_eq!(cpu.iterations, dev.iterations);
        assert_eq!(cpu.rank, dev.rank);
        let mut max_d = 0.0f64;
        for (a, b) in cpu.l.as_slice().iter().zip(dev.l.as_slice()) {
            max_d = max_d.max((a - b).abs());
        }
        assert!(max_d < 1e-8, "L drifted between CPU and GPU loops: {max_d}");
    }

    #[test]
    fn gpu_loop_charges_every_stage() {
        let video = generate::<f64>(&VideoConfig::tiny());
        let gpu = Gpu::new(DeviceSpec::gtx480());
        let params = RpcaParams {
            tol: 1e-4,
            max_iter: 8,
            ..Default::default()
        };
        let _ = rpca_gpu(&gpu, small_opts(), &video.matrix, &params).unwrap();
        let ledger = gpu.ledger();
        for op in [
            "factor",
            "apply_qt_h",
            "gpu_gemm",
            "ew_combine",
            "ew_shrink",
            "ew_residual",
        ] {
            assert!(
                ledger.per_op.contains_key(op),
                "stage {op} missing from the device ledger"
            );
        }
        // The video matrix travelled to the device exactly once; R/SVD
        // factors round-trip per iteration.
        assert!(ledger.h2d_bytes as usize >= video.matrix.rows() * video.matrix.cols() * 8);
        assert!(ledger.transfers > 2);
        assert!(ledger.seconds > 0.0);
    }
}
