//! Simulated-GPU elementwise and GEMM kernels for the Robust PCA loop, so
//! the whole iteration — not just the QR — runs through the device model
//! with its traffic and launch costs accounted (the paper's pipeline keeps
//! the video matrix resident on the GPU for exactly this reason).

use crate::solver::shrink_scalar;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{BlockCtx, Gpu, Kernel, LaunchConfig};
use parking_lot::Mutex;

/// Rows per elementwise thread block.
const TILE_ROWS: usize = 4096;

/// Elementwise operations fused into one kernel pass.
#[derive(Clone, Copy, Debug)]
pub enum TriadOp<T> {
    /// `out = a - b + c * scale` — forms `M - S + Y/mu`.
    Combine {
        /// The multiplier on `c` (i.e. `1/mu`).
        scale: T,
    },
    /// `out = shrink(a - b + c * scale, threshold)` — the `S` update.
    Shrink {
        /// The multiplier on `c`.
        scale: T,
        /// Soft threshold (`lambda/mu`).
        threshold: T,
    },
}

/// Three-input elementwise kernel over row tiles of `m x n` matrices.
pub struct TriadKernel<T: Scalar> {
    /// Output matrix.
    pub out: MatPtr<T>,
    /// First input.
    pub a: MatPtr<T>,
    /// Second input (subtracted).
    pub b: MatPtr<T>,
    /// Third input (scaled).
    pub c: MatPtr<T>,
    /// Operation.
    pub op: TriadOp<T>,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
}

impl<T: Scalar> TriadKernel<T> {
    fn tiles(&self) -> usize {
        self.rows.div_ceil(TILE_ROWS)
    }
}

impl<T: Scalar> Kernel<T> for TriadKernel<T> {
    fn name(&self) -> &'static str {
        match self.op {
            TriadOp::Combine { .. } => "ew_combine",
            TriadOp::Shrink { .. } => "ew_shrink",
        }
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            blocks: self.tiles(),
            threads_per_block: 256,
            shared_mem_bytes: 0,
            regs_per_thread: 16,
        }
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let r0 = b * TILE_ROWS;
        let rows = TILE_ROWS.min(self.rows - r0);
        for j in 0..self.cols {
            for i in r0..r0 + rows {
                // SAFETY: row tiles are disjoint across blocks; inputs are
                // read-only during the launch.
                unsafe {
                    let v = match self.op {
                        TriadOp::Combine { scale } => self
                            .c
                            .get(i, j)
                            .mul_add(scale, self.a.get(i, j) - self.b.get(i, j)),
                        TriadOp::Shrink { scale, threshold } => shrink_scalar(
                            self.c
                                .get(i, j)
                                .mul_add(scale, self.a.get(i, j) - self.b.get(i, j)),
                            threshold,
                        ),
                    };
                    self.out.set(i, j, v);
                }
            }
        }
        let elems = (rows * self.cols) as u64;
        ctx.meter.gmem(3 * elems, T::BYTES, true); // three input streams
        ctx.meter.fma(2 * elems); // combine + (shrink) arithmetic
        ctx.meter.gmem(elems, T::BYTES, true); // output stream
    }
}

/// Residual/multiplier kernel: `z = m - l - s; y += mu * z`, accumulating
/// `sum(z^2)` per block for the convergence test.
pub struct ResidualKernel<'a, T: Scalar> {
    /// Observed matrix.
    pub m: MatPtr<T>,
    /// Low-rank iterate.
    pub l: MatPtr<T>,
    /// Sparse iterate.
    pub s: MatPtr<T>,
    /// Multiplier (updated in place).
    pub y: MatPtr<T>,
    /// Penalty parameter.
    pub mu: T,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Per-block partial sums of `z^2`.
    pub partials: &'a [Mutex<f64>],
}

impl<'a, T: Scalar> Kernel<T> for ResidualKernel<'a, T> {
    fn name(&self) -> &'static str {
        "ew_residual"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            blocks: self.rows.div_ceil(TILE_ROWS),
            threads_per_block: 256,
            shared_mem_bytes: 256 * std::mem::size_of::<T>(),
            regs_per_thread: 16,
        }
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let r0 = b * TILE_ROWS;
        let rows = TILE_ROWS.min(self.rows - r0);
        let mut acc = 0.0f64;
        for j in 0..self.cols {
            for i in r0..r0 + rows {
                // SAFETY: disjoint row tiles; only `y` is written.
                unsafe {
                    let z = self.m.get(i, j) - self.l.get(i, j) - self.s.get(i, j);
                    acc += z.to_f64() * z.to_f64();
                    self.y.set(i, j, self.mu.mul_add(z, self.y.get(i, j)));
                }
            }
        }
        *self.partials[b].lock() += acc;
        let elems = (rows * self.cols) as u64;
        ctx.meter.gmem(4 * elems, T::BYTES, true); // m, l, s, y reads
        ctx.meter.fma(3 * elems);
        ctx.meter.gmem(elems, T::BYTES, true); // y write
        ctx.meter.smem(256); // block reduction of the partial
        ctx.meter.sync();
    }
}

/// Row-tiled GEMM kernel `C = A * B` for the `Q * U` and `L = U' Sigma V^T`
/// back-multiplications (`B` is the small `k x n` factor, staged per block).
pub struct GemmKernel<T: Scalar> {
    /// Output, `m x n`.
    pub c_out: MatPtr<T>,
    /// Left operand, `m x k`.
    pub a: MatPtr<T>,
    /// Right operand (small), `k x n`, staged through fast memory.
    pub b: Matrix<T>,
    /// Rows of `A`/`C`.
    pub rows: usize,
}

impl<T: Scalar> Kernel<T> for GemmKernel<T> {
    fn name(&self) -> &'static str {
        "gpu_gemm"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            blocks: self.rows.div_ceil(TILE_ROWS),
            threads_per_block: 256,
            shared_mem_bytes: (self.b.rows() * self.b.cols() * std::mem::size_of::<T>())
                .min(40 * 1024),
            regs_per_thread: 32,
        }
    }

    fn run_block(&self, blk: usize, ctx: &mut BlockCtx<T>) {
        let r0 = blk * TILE_ROWS;
        let rows = TILE_ROWS.min(self.rows - r0);
        let k = self.b.rows();
        let n = self.b.cols();
        for j in 0..n {
            for i in r0..r0 + rows {
                let mut acc = T::ZERO;
                for l in 0..k {
                    // SAFETY: disjoint row tiles of C; A read-only.
                    acc = unsafe { self.a.get(i, l) }.mul_add(self.b[(l, j)], acc);
                }
                unsafe { self.c_out.set(i, j, acc) };
            }
        }
        let elems = (rows * n) as u64;
        ctx.meter.gmem((rows * k) as u64, T::BYTES, true); // A strip
        ctx.meter.gmem((k * n) as u64, T::BYTES, true); // B staged once
        ctx.meter.smem((k * n) as u64);
        ctx.meter.fma(elems * k as u64);
        ctx.meter.gmem(elems, T::BYTES, true); // C out
    }
}

/// Launch helpers used by the all-GPU Robust PCA loop. Each returns the
/// typed [`CaqrError`] so injected device faults surface to the solver
/// instead of panicking.
pub mod launch {
    use super::*;
    use caqr::CaqrError;

    /// `out = a - b + c * scale` on the device.
    pub fn combine<T: Scalar>(
        gpu: &Gpu,
        out: &mut Matrix<T>,
        a: &Matrix<T>,
        b: &Matrix<T>,
        c: &Matrix<T>,
        scale: T,
    ) -> Result<(), CaqrError> {
        let (rows, cols) = out.shape();
        let k = TriadKernel {
            out: MatPtr::new(out),
            a: MatPtr::new_readonly(a),
            b: MatPtr::new_readonly(b),
            c: MatPtr::new_readonly(c),
            op: TriadOp::Combine { scale },
            rows,
            cols,
        };
        gpu.launch(&k)?;
        Ok(())
    }

    /// `out = shrink(a - b + c * scale, threshold)` on the device.
    #[allow(clippy::too_many_arguments)]
    pub fn shrink<T: Scalar>(
        gpu: &Gpu,
        out: &mut Matrix<T>,
        a: &Matrix<T>,
        b: &Matrix<T>,
        c: &Matrix<T>,
        scale: T,
        threshold: T,
    ) -> Result<(), CaqrError> {
        let (rows, cols) = out.shape();
        let k = TriadKernel {
            out: MatPtr::new(out),
            a: MatPtr::new_readonly(a),
            b: MatPtr::new_readonly(b),
            c: MatPtr::new_readonly(c),
            op: TriadOp::Shrink { scale, threshold },
            rows,
            cols,
        };
        gpu.launch(&k)?;
        Ok(())
    }

    /// Residual + multiplier update; returns `||M - L - S||_F`.
    pub fn residual_update<T: Scalar>(
        gpu: &Gpu,
        m: &Matrix<T>,
        l: &Matrix<T>,
        s: &Matrix<T>,
        y: &mut Matrix<T>,
        mu: T,
    ) -> Result<f64, CaqrError> {
        let (rows, cols) = y.shape();
        let partials: Vec<Mutex<f64>> = (0..rows.div_ceil(TILE_ROWS))
            .map(|_| Mutex::new(0.0))
            .collect();
        {
            let k = ResidualKernel {
                m: MatPtr::new_readonly(m),
                l: MatPtr::new_readonly(l),
                s: MatPtr::new_readonly(s),
                y: MatPtr::new(y),
                mu,
                rows,
                cols,
                partials: &partials,
            };
            gpu.launch(&k)?;
        }
        Ok(partials
            .into_iter()
            .map(|p| p.into_inner())
            .sum::<f64>()
            .sqrt())
    }

    /// `C = A * B` with a small `B`, on the device.
    pub fn gemm_small_rhs<T: Scalar>(
        gpu: &Gpu,
        c: &mut Matrix<T>,
        a: &Matrix<T>,
        b: Matrix<T>,
    ) -> Result<(), CaqrError> {
        if a.rows() != c.rows() || a.cols() != b.rows() || b.cols() != c.cols() {
            return Err(CaqrError::BadShape(format!(
                "gemm_small_rhs: C {}x{} vs A {}x{} * B {}x{}",
                c.rows(),
                c.cols(),
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let rows = c.rows();
        let k = GemmKernel {
            c_out: MatPtr::new(c),
            a: MatPtr::new_readonly(a),
            b,
            rows,
        };
        gpu.launch(&k)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::launch;
    use dense::matrix::Matrix;
    use gpu_sim::{DeviceSpec, Gpu};

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::gtx480())
    }

    #[test]
    fn combine_matches_scalar_loop() {
        let g = gpu();
        let a = dense::generate::uniform::<f64>(5000, 3, 1);
        let b = dense::generate::uniform::<f64>(5000, 3, 2);
        let c = dense::generate::uniform::<f64>(5000, 3, 3);
        let mut out = Matrix::<f64>::zeros(5000, 3);
        launch::combine(&g, &mut out, &a, &b, &c, 0.25).unwrap();
        for i in 0..5000 {
            for j in 0..3 {
                let want = a[(i, j)] - b[(i, j)] + 0.25 * c[(i, j)];
                assert!((out[(i, j)] - want).abs() < 1e-14);
            }
        }
        // Two row tiles at 4096 rows per block.
        assert_eq!(g.ledger().per_op["ew_combine"].calls, 1);
    }

    #[test]
    fn shrink_matches_reference() {
        let g = gpu();
        let a = dense::generate::uniform::<f64>(100, 4, 4);
        let z = Matrix::<f64>::zeros(100, 4);
        let mut out = Matrix::<f64>::zeros(100, 4);
        launch::shrink(&g, &mut out, &a, &z, &z, 0.0, 0.3).unwrap();
        for (o, x) in out.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(*o, crate::solver::shrink_scalar(*x, 0.3));
        }
    }

    #[test]
    fn residual_update_returns_frobenius_and_updates_y() {
        let g = gpu();
        let m = dense::generate::uniform::<f64>(300, 5, 5);
        let l = dense::generate::uniform::<f64>(300, 5, 6);
        let s = dense::generate::uniform::<f64>(300, 5, 7);
        let mut y = Matrix::<f64>::zeros(300, 5);
        let r = launch::residual_update(&g, &m, &l, &s, &mut y, 2.0).unwrap();
        let mut want = 0.0f64;
        for i in 0..300 {
            for j in 0..5 {
                let z = m[(i, j)] - l[(i, j)] - s[(i, j)];
                want += z * z;
                assert!((y[(i, j)] - 2.0 * z).abs() < 1e-13);
            }
        }
        assert!((r - want.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn gemm_small_rhs_matches_dense_gemm() {
        let g = gpu();
        let a = dense::generate::uniform::<f64>(5000, 8, 8);
        let b = dense::generate::uniform::<f64>(8, 6, 9);
        let mut c = Matrix::<f64>::zeros(5000, 6);
        launch::gemm_small_rhs(&g, &mut c, &a, b.clone()).unwrap();
        let mut want = Matrix::<f64>::zeros(5000, 6);
        dense::blas3::gemm(
            dense::blas3::Trans::No,
            dense::blas3::Trans::No,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            want.as_mut(),
        );
        for (x, y) in c.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-11);
        }
    }
}
