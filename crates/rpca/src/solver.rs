//! Robust PCA by the inexact augmented-Lagrangian alternating-directions
//! method (Section VI-C, following the paper's reference \[19\]):
//!
//! ```text
//! minimize ||L||_* + lambda ||S||_1   subject to   M = L + S
//! ```
//!
//! Each iteration thresholds the singular values of `M - S + Y/mu`
//! (computed with the tall-skinny SVD-via-QR pipeline — "the vast majority
//! of the runtime is spent in the singular value threshold"), shrinks
//! `M - L + Y/mu` entrywise, and updates the multiplier `Y`.

use crate::svd_qr::{svd_via_qr, QrBackend};
use caqr::CaqrError;
use dense::matrix::Matrix;
use dense::norms::frobenius;
use dense::scalar::Scalar;

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct RpcaParams {
    /// Sparsity weight; `None` uses the standard `1/sqrt(max(m, n))`.
    pub lambda: Option<f64>,
    /// Convergence tolerance on `||M - L - S||_F / ||M||_F`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Multiplier growth factor per iteration.
    pub rho: f64,
}

impl Default for RpcaParams {
    fn default() -> Self {
        RpcaParams {
            lambda: None,
            tol: 1.0e-6,
            max_iter: 500,
            rho: 1.5,
        }
    }
}

/// Solver output.
pub struct RpcaResult<T: Scalar> {
    /// Low-rank component (the video background).
    pub l: Matrix<T>,
    /// Sparse component (the foreground).
    pub s: Matrix<T>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
    /// Rank of `L` at exit (singular values that survived thresholding).
    pub rank: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Soft-threshold a scalar: `sign(x) * max(|x| - t, 0)`.
#[inline]
pub fn shrink_scalar<T: Scalar>(x: T, t: T) -> T {
    let a = x.abs() - t;
    if a > T::ZERO {
        x.sign() * a
    } else {
        T::ZERO
    }
}

/// Entrywise soft-thresholding (the "shrinkage operation ... pushing the
/// values of the matrix towards zero").
pub fn shrink_matrix<T: Scalar>(m: &mut Matrix<T>, t: T) {
    for v in m.as_mut_slice() {
        *v = shrink_scalar(*v, t);
    }
}

/// Solve Robust PCA for a tall matrix `m_mat` (`rows >= cols`).
pub fn rpca<T: Scalar>(
    backend: &dyn QrBackend<T>,
    m_mat: &Matrix<T>,
    params: &RpcaParams,
) -> Result<RpcaResult<T>, CaqrError> {
    let (m, n) = m_mat.shape();
    if m < n {
        return Err(CaqrError::BadShape(format!(
            "rpca expects the tall orientation ({m}x{n})"
        )));
    }
    if let Some((row, col)) = caqr::first_nonfinite(m_mat) {
        return Err(CaqrError::NonFinite {
            context: "rpca input",
            row,
            col,
        });
    }
    let lambda = T::from_f64(params.lambda.unwrap_or(1.0 / (m.max(n) as f64).sqrt()));
    let m_norm = frobenius(m_mat);
    if m_norm == 0.0 {
        return Ok(RpcaResult {
            l: Matrix::zeros(m, n),
            s: Matrix::zeros(m, n),
            iterations: 0,
            converged: true,
            rank: 0,
            residual: 0.0,
        });
    }

    // Initial dual variable and penalty, following the inexact-ALM recipe:
    // Y = M / max(sigma_1(M), ||M||_inf / lambda), mu = 1.25 / sigma_1(M).
    let sigma1 = svd_via_qr(backend, m_mat)?.sigma[0].to_f64().max(1e-30);
    let max_abs = dense::norms::max_abs(m_mat);
    let scale = sigma1.max(max_abs / lambda.to_f64());
    let mut y = m_mat.clone();
    for v in y.as_mut_slice() {
        *v /= T::from_f64(scale);
    }
    let mut mu = T::from_f64(1.25 / sigma1);
    let mu_max = T::from_f64(1.25 / sigma1 * 1.0e7);
    let rho = T::from_f64(params.rho);

    let mut l = Matrix::<T>::zeros(m, n);
    let mut s = Matrix::<T>::zeros(m, n);
    let mut work = Matrix::<T>::zeros(m, n);
    let mut rank = 0;
    let mut residual = f64::INFINITY;

    for iter in 0..params.max_iter {
        let inv_mu = T::ONE / mu;
        // work = M - S + Y/mu  (the matrix whose singular values we threshold)
        for (((w, mm), ss), yy) in work
            .as_mut_slice()
            .iter_mut()
            .zip(m_mat.as_slice())
            .zip(s.as_slice())
            .zip(y.as_slice())
        {
            *w = *mm - *ss + *yy * inv_mu;
        }
        // Singular-value thresholding via the SVD-of-QR pipeline. A
        // non-finite iterate means the iteration itself diverged, which is a
        // breakdown rather than a caller error.
        let svd = svd_via_qr(backend, &work).map_err(|e| match e {
            CaqrError::NonFinite { row, col, .. } => CaqrError::Breakdown {
                context: format!("rpca iterate {iter} went non-finite at ({row}, {col})"),
            },
            other => other,
        })?;
        rank = svd.sigma.iter().filter(|&&sv| sv > inv_mu).count();
        // L = U * shrink(Sigma) * V^T using only the surviving components.
        l.as_mut_slice().fill(T::ZERO);
        for k in 0..rank {
            let sk = svd.sigma[k] - inv_mu;
            let uk = svd.u.col(k);
            for j in 0..n {
                let vkj = svd.v[(j, k)] * sk;
                if vkj != T::ZERO {
                    let lj = l.col_mut(j);
                    for (li, &ui) in lj.iter_mut().zip(uk) {
                        *li = vkj.mul_add(ui, *li);
                    }
                }
            }
        }
        // S = shrink(M - L + Y/mu, lambda/mu)
        let thr = lambda * inv_mu;
        for (((ss, mm), ll), yy) in s
            .as_mut_slice()
            .iter_mut()
            .zip(m_mat.as_slice())
            .zip(l.as_slice())
            .zip(y.as_slice())
        {
            *ss = shrink_scalar(*mm - *ll + *yy * inv_mu, thr);
        }
        // Residual Z = M - L - S; Y += mu * Z.
        let mut z2 = 0.0f64;
        for (((yy, mm), ll), ss) in y
            .as_mut_slice()
            .iter_mut()
            .zip(m_mat.as_slice())
            .zip(l.as_slice())
            .zip(s.as_slice())
        {
            let z = *mm - *ll - *ss;
            z2 += z.to_f64() * z.to_f64();
            *yy = mu.mul_add(z, *yy);
        }
        residual = z2.sqrt() / m_norm;
        if residual < params.tol {
            return Ok(RpcaResult {
                l,
                s,
                iterations: iter + 1,
                converged: true,
                rank,
                residual,
            });
        }
        mu = (mu * rho).minimum(mu_max);
    }

    Ok(RpcaResult {
        l,
        s,
        iterations: params.max_iter,
        converged: false,
        rank,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd_qr::CpuQrBackend;
    use crate::video::{generate, sparsity, VideoConfig};
    use dense::generate as gen;
    use dense::svd::singular_values;

    #[test]
    fn shrink_scalar_cases() {
        assert_eq!(shrink_scalar(3.0f64, 1.0), 2.0);
        assert_eq!(shrink_scalar(-3.0f64, 1.0), -2.0);
        assert_eq!(shrink_scalar(0.5f64, 1.0), 0.0);
        assert_eq!(shrink_scalar(-0.5f64, 1.0), 0.0);
        assert_eq!(shrink_scalar(0.0f64, 1.0), 0.0);
    }

    #[test]
    fn recovers_planted_low_rank_plus_sparse() {
        // Classic RPCA recovery: random rank-2 L0 + 5%-support sparse S0.
        let m = 80;
        let n = 20;
        let l0 = gen::low_rank::<f64>(m, n, 2, 0.0, 11);
        let mut s0 = Matrix::<f64>::zeros(m, n);
        // Deterministic sparse support with large entries.
        let mut count = 0;
        for j in 0..n {
            for i in 0..m {
                if (i * 7 + j * 13) % 19 == 0 {
                    s0[(i, j)] = if (i + j) % 2 == 0 { 4.0 } else { -4.0 };
                    count += 1;
                }
            }
        }
        assert!(count > 20);
        let mut observed = l0.clone();
        for (o, s) in observed.as_mut_slice().iter_mut().zip(s0.as_slice()) {
            *o += *s;
        }
        let r = rpca(&CpuQrBackend, &observed, &RpcaParams::default()).unwrap();
        assert!(
            r.converged,
            "did not converge in {} iters (residual {})",
            r.iterations, r.residual
        );
        let mut err_l = 0.0f64;
        for (a, b) in r.l.as_slice().iter().zip(l0.as_slice()) {
            err_l += (a - b) * (a - b);
        }
        let rel = err_l.sqrt() / frobenius(&l0);
        assert!(rel < 1e-3, "L recovery error {rel}");
        assert_eq!(r.rank, 2, "recovered rank {}", r.rank);
    }

    #[test]
    fn separates_synthetic_video() {
        // The motivating application end to end on a tiny clip.
        let video = generate::<f64>(&VideoConfig::tiny());
        let r = rpca(
            &CpuQrBackend,
            &video.matrix,
            &RpcaParams {
                tol: 1e-5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        // Background: L close to the planted background.
        let mut err = 0.0f64;
        for (a, b) in r.l.as_slice().iter().zip(video.background.as_slice()) {
            err += (a - b) * (a - b);
        }
        let rel = err.sqrt() / frobenius(&video.background);
        assert!(rel < 0.08, "background error {rel}");
        // L is genuinely low rank.
        let sv = singular_values(&r.l);
        assert!(sv[3] < 0.05 * sv[0], "L not low-rank: {:?}", &sv[..4]);
        // Foreground: S is sparse and hits the blob support.
        let frac = sparsity(&r.s, 0.3);
        assert!(frac < 0.2, "S not sparse: {frac}");
        let mut hits = 0;
        let mut blob_pixels = 0;
        for (s, f) in r.s.as_slice().iter().zip(video.foreground.as_slice()) {
            if f.abs() > 0.5 {
                blob_pixels += 1;
                if s.abs() > 0.3 {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / blob_pixels as f64;
        assert!(recall > 0.85, "foreground recall {recall}");
    }

    #[test]
    fn zero_matrix_trivially_converges() {
        let z = Matrix::<f64>::zeros(30, 5);
        let r = rpca(&CpuQrBackend, &z, &RpcaParams::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.rank, 0);
    }

    #[test]
    fn iteration_cap_respected() {
        let video = generate::<f64>(&VideoConfig::tiny());
        let r = rpca(
            &CpuQrBackend,
            &video.matrix,
            &RpcaParams {
                max_iter: 2,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.iterations, 2);
        assert!(!r.converged);
    }
}
