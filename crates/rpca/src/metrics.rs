//! Quality metrics for background/foreground separation, used by the tests
//! and the video example to quantify how well Robust PCA recovers the
//! planted decomposition.

use dense::matrix::Matrix;
use dense::norms::frobenius;
use dense::scalar::Scalar;

/// Precision/recall/F1 of foreground detection against a planted mask.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Detected foreground pixels that are truly foreground / all detected.
    pub precision: f64,
    /// Truly foreground pixels detected / all true foreground.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Compare a recovered sparse component against the planted foreground:
/// a pixel counts as detected when `|s| > threshold`, as true foreground
/// when `|truth| > truth_threshold`.
pub fn foreground_detection<T: Scalar>(
    s: &Matrix<T>,
    truth: &Matrix<T>,
    threshold: f64,
    truth_threshold: f64,
) -> Detection {
    assert_eq!(s.shape(), truth.shape());
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fne = 0u64;
    for (sv, tv) in s.as_slice().iter().zip(truth.as_slice()) {
        let detected = sv.to_f64().abs() > threshold;
        let actual = tv.to_f64().abs() > truth_threshold;
        match (detected, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fne += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        1.0
    };
    let recall = if tp + fne > 0 {
        tp as f64 / (tp + fne) as f64
    } else {
        1.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Detection {
        precision,
        recall,
        f1,
    }
}

/// Peak signal-to-noise ratio (dB) of a recovered image/matrix against the
/// ground truth, with `peak` the nominal signal range (1.0 for our videos).
pub fn psnr<T: Scalar>(recovered: &Matrix<T>, truth: &Matrix<T>, peak: f64) -> f64 {
    assert_eq!(recovered.shape(), truth.shape());
    let n = (recovered.rows() * recovered.cols()) as f64;
    let mut mse = 0.0f64;
    for (a, b) in recovered.as_slice().iter().zip(truth.as_slice()) {
        let d = a.to_f64() - b.to_f64();
        mse += d * d;
    }
    mse /= n;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / mse).log10()
    }
}

/// Relative Frobenius error `||recovered - truth||_F / ||truth||_F`.
pub fn relative_error<T: Scalar>(recovered: &Matrix<T>, truth: &Matrix<T>) -> f64 {
    assert_eq!(recovered.shape(), truth.shape());
    let mut diff = 0.0f64;
    for (a, b) in recovered.as_slice().iter().zip(truth.as_slice()) {
        let d = a.to_f64() - b.to_f64();
        diff += d * d;
    }
    let denom = frobenius(truth);
    if denom > 0.0 {
        diff.sqrt() / denom
    } else {
        diff.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let truth = Matrix::from_row_major(2, 2, &[1.0f64, 0.0, 0.0, 1.0]);
        let d = foreground_detection(&truth, &truth, 0.5, 0.5);
        assert_eq!(d.precision, 1.0);
        assert_eq!(d.recall, 1.0);
        assert_eq!(d.f1, 1.0);
    }

    #[test]
    fn misses_reduce_recall_not_precision() {
        let truth = Matrix::from_row_major(1, 4, &[1.0f64, 1.0, 0.0, 0.0]);
        let got = Matrix::from_row_major(1, 4, &[1.0f64, 0.0, 0.0, 0.0]);
        let d = foreground_detection(&got, &truth, 0.5, 0.5);
        assert_eq!(d.precision, 1.0);
        assert_eq!(d.recall, 0.5);
        assert!((d.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn false_alarms_reduce_precision() {
        let truth = Matrix::from_row_major(1, 4, &[1.0f64, 0.0, 0.0, 0.0]);
        let got = Matrix::from_row_major(1, 4, &[1.0f64, 1.0, 0.0, 0.0]);
        let d = foreground_detection(&got, &truth, 0.5, 0.5);
        assert_eq!(d.precision, 0.5);
        assert_eq!(d.recall, 1.0);
    }

    #[test]
    fn psnr_of_exact_recovery_is_infinite() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64 / 8.0);
        assert!(psnr(&a, &a, 1.0).is_infinite());
        // A small perturbation gives a large finite PSNR.
        let mut b = a.clone();
        b[(0, 0)] += 1.0e-3;
        let p = psnr(&b, &a, 1.0);
        assert!(p > 40.0 && p.is_finite(), "{p}");
    }

    #[test]
    fn relative_error_scales() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut b = a.clone();
        for v in b.as_mut_slice() {
            *v *= 1.01;
        }
        let e = relative_error(&b, &a);
        assert!((e - 0.01).abs() < 1e-12, "{e}");
    }
}
