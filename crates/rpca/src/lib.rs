//! # rpca — Robust PCA for stationary-video background subtraction
//!
//! The paper's motivating application (Section VI): a surveillance clip
//! becomes a 110,592 x 100 tall-skinny matrix; Robust PCA splits it into a
//! low-rank background and a sparse foreground by iterating a singular-value
//! threshold whose dominant cost is a tall-skinny SVD — computed as
//! QR -> small SVD of `R` -> `Q * U`, which is where CAQR earns its 3x
//! end-to-end speedup.
//!
//! * [`video`] — deterministic synthetic surveillance-clip generator (the
//!   ViSOR substitution; see DESIGN.md §2),
//! * [`svd_qr`] — the SVD-via-QR pipeline with pluggable QR backends (host
//!   blocked Householder or simulated-GPU CAQR),
//! * [`solver`] — the inexact-ALM alternating-directions solver,
//! * [`timing`] — the Table II iteration-rate models.

#![warn(missing_docs)]

pub mod gpu;
pub mod gpu_ops;
pub mod metrics;
pub mod solver;
pub mod svd_qr;
pub mod timing;
pub mod video;

pub use gpu::rpca_gpu;
pub use metrics::{foreground_detection, psnr, relative_error, Detection};
pub use solver::{rpca, RpcaParams, RpcaResult};
pub use svd_qr::{svd_via_qr, CpuQrBackend, GpuCaqrBackend, QrBackend};
pub use timing::{model_iteration_seconds, model_iterations_per_second, RpcaImpl};
pub use video::{generate as generate_video, SyntheticVideo, VideoConfig};
