//! Synthetic surveillance-video generator — the stand-in for the ViSOR
//! benchmark clip (DESIGN.md §2).
//!
//! "A surveillance video is transformed into a tall-skinny matrix where each
//! column contains all pixels in a frame, and the number of columns is equal
//! to the number of frames" (Section VI-A). The generator plants exactly the
//! structure Robust PCA assumes: a static low-rank background (a smooth
//! gradient plus fixed furniture rectangles, optionally with slow global
//! illumination drift giving rank 2) and a sparse foreground of moving
//! blobs, plus small sensor noise.

use dense::matrix::Matrix;
use dense::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a synthetic clip.
#[derive(Clone, Debug)]
pub struct VideoConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of frames (columns of the video matrix).
    pub frames: usize,
    /// Number of moving foreground blobs ("people").
    pub blobs: usize,
    /// Blob edge length in pixels.
    pub blob_size: usize,
    /// Foreground intensity added on top of the background.
    pub foreground_intensity: f64,
    /// Sensor noise amplitude (uniform in `[-a, a]`).
    pub noise: f64,
    /// Relative amplitude of the slow illumination drift (0 disables; the
    /// background is then exactly rank 1).
    pub illumination_drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VideoConfig {
    /// The paper's clip at full scale: 288 x 384 pixels, 100 frames —
    /// a 110,592 x 100 matrix.
    pub fn paper_scale() -> Self {
        VideoConfig {
            width: 384,
            height: 288,
            frames: 100,
            blobs: 3,
            blob_size: 24,
            foreground_intensity: 0.8,
            noise: 0.01,
            illumination_drift: 0.05,
            seed: 2011,
        }
    }

    /// A small clip for tests and examples (milliseconds to solve).
    pub fn tiny() -> Self {
        VideoConfig {
            width: 24,
            height: 18,
            frames: 20,
            blobs: 2,
            blob_size: 4,
            foreground_intensity: 1.0,
            noise: 0.004,
            illumination_drift: 0.0,
            seed: 7,
        }
    }

    /// Pixels per frame (rows of the video matrix).
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// A generated clip with its planted ground truth.
pub struct SyntheticVideo<T: Scalar> {
    /// The observed video matrix, `pixels x frames`.
    pub matrix: Matrix<T>,
    /// The planted background component (low rank by construction).
    pub background: Matrix<T>,
    /// The planted sparse foreground component (noise-free).
    pub foreground: Matrix<T>,
    /// Configuration used.
    pub config: VideoConfig,
}

/// Generate a clip.
pub fn generate<T: Scalar>(config: &VideoConfig) -> SyntheticVideo<T> {
    let m = config.pixels();
    let f = config.frames;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let unit = Uniform::new(0.0f64, 1.0);

    // Static background image: smooth gradient + a few fixed rectangles.
    let mut bg_image = vec![0.0f64; m];
    for y in 0..config.height {
        for x in 0..config.width {
            bg_image[y * config.width + x] = 0.3
                + 0.4 * (x as f64 / config.width as f64)
                + 0.2 * (y as f64 / config.height as f64);
        }
    }
    for _ in 0..3 {
        let rx = (unit.sample(&mut rng) * config.width as f64 * 0.7) as usize;
        let ry = (unit.sample(&mut rng) * config.height as f64 * 0.7) as usize;
        let rw = (config.width / 5).max(1);
        let rh = (config.height / 5).max(1);
        let shade = 0.25 + 0.5 * unit.sample(&mut rng);
        for y in ry..(ry + rh).min(config.height) {
            for x in rx..(rx + rw).min(config.width) {
                bg_image[y * config.width + x] = shade;
            }
        }
    }

    // Blob trajectories: linear motion with per-blob velocity, wrapping.
    let trajectories: Vec<(f64, f64, f64, f64)> = (0..config.blobs)
        .map(|_| {
            (
                unit.sample(&mut rng) * config.width as f64,
                unit.sample(&mut rng) * config.height as f64,
                (unit.sample(&mut rng) - 0.5) * 6.0,
                (unit.sample(&mut rng) - 0.5) * 3.0,
            )
        })
        .collect();

    let mut background = Matrix::<T>::zeros(m, f);
    let mut foreground = Matrix::<T>::zeros(m, f);
    let mut matrix = Matrix::<T>::zeros(m, f);
    let noise_dist = Uniform::new(-config.noise, config.noise.max(1e-12));

    // Second spatial mode for the illumination drift (a window-light
    // gradient), giving the background rank 2 when drift is enabled.
    let illum_pattern: Vec<f64> = (0..m)
        .map(|i| {
            let y = i / config.width;
            0.5 + 0.5 * (y as f64 / config.height.max(1) as f64)
        })
        .collect();

    for frame in 0..f {
        // Rank-<=2 background: static image plus drifting illumination mode.
        let drift = config.illumination_drift
            * (2.0 * std::f64::consts::PI * frame as f64 / f as f64).sin();
        {
            let col = background.col_mut(frame);
            for ((c, &b), &p) in col.iter_mut().zip(&bg_image).zip(&illum_pattern) {
                *c = T::from_f64(b + drift * p);
            }
        }
        // Moving blobs.
        for &(x0, y0, vx, vy) in &trajectories {
            let cx = (x0 + vx * frame as f64).rem_euclid(config.width as f64) as usize;
            let cy = (y0 + vy * frame as f64).rem_euclid(config.height as f64) as usize;
            for dy in 0..config.blob_size {
                for dx in 0..config.blob_size {
                    let x = (cx + dx) % config.width;
                    let y = (cy + dy) % config.height;
                    foreground[(y * config.width + x, frame)] =
                        T::from_f64(config.foreground_intensity);
                }
            }
        }
        // Observation = background + foreground + noise.
        for i in 0..m {
            let n = if config.noise > 0.0 {
                noise_dist.sample(&mut rng)
            } else {
                0.0
            };
            matrix[(i, frame)] = background[(i, frame)] + foreground[(i, frame)] + T::from_f64(n);
        }
    }

    SyntheticVideo {
        matrix,
        background,
        foreground,
        config: config.clone(),
    }
}

/// Fraction of entries of `s` that are "active" (above `threshold` in
/// absolute value) — used to check foreground sparsity.
pub fn sparsity<T: Scalar>(s: &Matrix<T>, threshold: f64) -> f64 {
    let total = s.rows() * s.cols();
    let active = s
        .as_slice()
        .iter()
        .filter(|v| v.to_f64().abs() > threshold)
        .count();
    active as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::svd::singular_values;

    #[test]
    fn paper_scale_dimensions() {
        let c = VideoConfig::paper_scale();
        assert_eq!(c.pixels(), 110_592);
        assert_eq!(c.frames, 100);
    }

    #[test]
    fn background_is_low_rank() {
        let v = generate::<f64>(&VideoConfig::tiny());
        let s = singular_values(&v.background);
        // Rank 1 (no illumination drift in tiny config).
        assert!(s[0] > 1.0);
        assert!(s[1] < 1e-10 * s[0], "background rank > 1: {:?}", &s[..3]);
    }

    #[test]
    fn drifting_background_is_rank_two() {
        let mut cfg = VideoConfig::tiny();
        cfg.illumination_drift = 0.1;
        let v = generate::<f64>(&cfg);
        let s = singular_values(&v.background);
        assert!(s[1] > 1e-6 * s[0], "drift should add a second mode");
        assert!(
            s[2] < 1e-8 * s[0],
            "but nothing beyond rank 2: {:?}",
            &s[..4]
        );
    }

    #[test]
    fn foreground_is_sparse_and_moving() {
        let v = generate::<f64>(&VideoConfig::tiny());
        let frac = sparsity(&v.foreground, 0.5);
        // 2 blobs of 16 pixels in 432 pixels: < 10% active.
        assert!(frac > 0.0 && frac < 0.12, "foreground sparsity {frac}");
        // The blobs move: consecutive frames differ.
        let f0 = v.foreground.col(0);
        let f1 = v.foreground.col(7);
        assert_ne!(f0, f1);
    }

    #[test]
    fn observation_decomposes_exactly_without_noise() {
        let mut cfg = VideoConfig::tiny();
        cfg.noise = 0.0;
        let v = generate::<f64>(&cfg);
        for i in 0..v.matrix.rows() {
            for j in 0..v.matrix.cols() {
                let sum = v.background[(i, j)] + v.foreground[(i, j)];
                assert!((v.matrix[(i, j)] - sum).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate::<f32>(&VideoConfig::tiny());
        let b = generate::<f32>(&VideoConfig::tiny());
        assert_eq!(a.matrix, b.matrix);
    }
}
