//! Tall-skinny SVD via QR (Section VI-B):
//!
//! ```text
//! A = Q R,   R = U Σ V^T   =>   A = (Q U) Σ V^T
//! ```
//!
//! The expensive part is the QR of the tall matrix; the `n x n` SVD of `R`
//! is "cheap ... and done on the CPU". The QR step is pluggable so the
//! Robust PCA solver can run on the plain CPU path or through the simulated
//! GPU CAQR — the Table II comparison.

use caqr::{Caqr, CaqrError, CaqrOptions};
use dense::blas3::{gemm, Trans};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::svd::{svd, Svd};
use gpu_sim::Gpu;

/// A QR engine usable by the SVD-via-QR pipeline: returns explicit `Q`
/// (`m x n`) and `R` (`n x n`).
pub trait QrBackend<T: Scalar> {
    /// Factor `a` and return `(Q, R)`.
    fn qr(&self, a: &Matrix<T>) -> Result<(Matrix<T>, Matrix<T>), CaqrError>;
    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Blocked Householder QR on the host (`dense::blocked`).
pub struct CpuQrBackend;

impl<T: Scalar> QrBackend<T> for CpuQrBackend {
    fn qr(&self, a: &Matrix<T>) -> Result<(Matrix<T>, Matrix<T>), CaqrError> {
        if let Some((row, col)) = caqr::first_nonfinite(a) {
            return Err(CaqrError::NonFinite {
                context: "cpu qr input",
                row,
                col,
            });
        }
        let n = a.cols();
        let mut f = a.clone();
        let tau = dense::blocked::geqrf(&mut f, dense::blocked::DEFAULT_NB);
        let q = dense::blocked::orgqr(&f, &tau, n, dense::blocked::DEFAULT_NB);
        Ok((q, f.upper_triangular()))
    }
    fn name(&self) -> &'static str {
        "cpu-blocked-householder"
    }
}

/// CAQR on the simulated GPU (the paper's pipeline).
pub struct GpuCaqrBackend<'a> {
    /// The simulated device (its ledger accumulates the modelled time).
    pub gpu: &'a Gpu,
    /// CAQR options.
    pub opts: CaqrOptions,
}

impl<'a, T: Scalar> QrBackend<T> for GpuCaqrBackend<'a> {
    fn qr(&self, a: &Matrix<T>) -> Result<(Matrix<T>, Matrix<T>), CaqrError> {
        let n = a.cols();
        let f: Caqr<T> = caqr::caqr::caqr(self.gpu, a.clone(), self.opts)?;
        let q = f.generate_q(self.gpu, n)?;
        Ok((q, f.r()))
    }
    fn name(&self) -> &'static str {
        "gpu-caqr"
    }
}

/// SVD of a tall-skinny matrix via QR + small SVD of `R` + `Q * U`.
pub fn svd_via_qr<T: Scalar>(
    backend: &dyn QrBackend<T>,
    a: &Matrix<T>,
) -> Result<Svd<T>, CaqrError> {
    let (m, n) = a.shape();
    if m < n {
        return Err(CaqrError::BadShape(format!(
            "svd_via_qr requires a tall matrix, got {m}x{n}"
        )));
    }
    let (q, r) = backend.qr(a)?;
    let small = svd(&r); // the cheap n x n SVD ("done on the CPU")
                         // Left singular vectors of A: U' = Q * U.
    let mut u = Matrix::<T>::zeros(m, n);
    gemm(
        Trans::No,
        Trans::No,
        T::ONE,
        q.as_ref(),
        small.u.as_ref(),
        T::ZERO,
        u.as_mut(),
    );
    Ok(Svd {
        u,
        sigma: small.sigma,
        v: small.v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::generate;
    use dense::norms::orthogonality_error;
    use gpu_sim::DeviceSpec;

    fn reconstruct(s: &Svd<f64>, m: usize, n: usize) -> Matrix<f64> {
        let mut us = s.u.clone();
        for j in 0..n {
            let sj = s.sigma[j];
            for v in us.col_mut(j) {
                *v *= sj;
            }
        }
        let mut out = Matrix::<f64>::zeros(m, n);
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            us.as_ref(),
            s.v.as_ref(),
            0.0,
            out.as_mut(),
        );
        out
    }

    #[test]
    fn cpu_pipeline_matches_direct_svd() {
        let a = generate::uniform::<f64>(120, 10, 3);
        let via_qr = svd_via_qr(&CpuQrBackend, &a).unwrap();
        let direct = svd(&a);
        for (x, y) in via_qr.sigma.iter().zip(&direct.sigma) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
        let r = reconstruct(&via_qr, 120, 10);
        for i in 0..120 {
            for j in 0..10 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        assert!(orthogonality_error(&via_qr.u) < 1e-12);
    }

    #[test]
    fn gpu_pipeline_matches_cpu_pipeline() {
        let gpu = Gpu::new(DeviceSpec::gtx480());
        let backend = GpuCaqrBackend {
            gpu: &gpu,
            opts: CaqrOptions {
                bs: caqr::BlockSize { h: 32, w: 8 },
                strategy: caqr::ReductionStrategy::RegisterSerialTransposed,
                tree: caqr::block::TreeShape::DeviceArity,
                check_finite: true,
            },
        };
        let a = generate::uniform::<f64>(200, 12, 4);
        let g = svd_via_qr(&backend, &a).unwrap();
        let c = svd_via_qr(&CpuQrBackend, &a).unwrap();
        for (x, y) in g.sigma.iter().zip(&c.sigma) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        // The GPU ledger advanced (the QR really went through the simulator).
        assert!(gpu.elapsed() > 0.0);
        let r = reconstruct(&g, 200, 12);
        for i in 0..200 {
            for j in 0..12 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_deficient_input_survives() {
        let a = generate::low_rank::<f64>(80, 12, 3, 0.0, 5);
        let s = svd_via_qr(&CpuQrBackend, &a).unwrap();
        assert!(s.sigma[2] > 1e-8);
        assert!(s.sigma[3] < 1e-8 * s.sigma[0].max(1.0));
        let r = reconstruct(&s, 80, 12);
        for i in 0..80 {
            for j in 0..12 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
