//! Property tests pinning the compact-WY fast path to the per-reflector
//! reference: the 3-GEMM `larfb` apply and the structured stacked-V tree
//! apply must agree with one-reflector-at-a-time `larf` sweeps on random
//! shapes, and the end-to-end factorizations must still reconstruct `A`.

use caqr::block::Tile;
use caqr::blockops;
use caqr::{BlockSize, ReductionStrategy};
use dense::matrix::Matrix;
use dense::norms::{orthogonality_error, reconstruction_error};
use dense::MatPtr;
use gpu_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

const STRAT: ReductionStrategy = ReductionStrategy::RegisterSerialTransposed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One tile: the WY (3-GEMM) apply equals the per-reflector larf sweep.
    #[test]
    fn wy_apply_matches_larf_sweep(
        rows in 4usize..96,
        width in 1usize..12,
        wc in 1usize..10,
        seed in 0u64..500,
        tr in 0u8..2,
    ) {
        prop_assume!(rows >= width);
        let transpose = tr == 1;
        let tile = Tile { start: 0, rows };
        let mut panel = dense::generate::uniform::<f64>(rows, width, seed);
        let wy = blockops::factor_tile(MatPtr::new(&mut panel), tile, 0, width);
        let c0 = dense::generate::uniform::<f64>(rows, wc, seed ^ 0xabcd);
        let mut c_wy = c0.clone();
        let mut c_ref = c0.clone();
        blockops::apply_tile_wy(&wy, MatPtr::new(&mut c_wy), tile, 0, wc, transpose);
        blockops::apply_tile_reflectors(
            MatPtr::new_readonly(&panel),
            MatPtr::new(&mut c_ref),
            tile,
            0,
            width,
            &wy.tau,
            0,
            wc,
            transpose,
        );
        for i in 0..rows {
            for j in 0..wc {
                let (a, b) = (c_wy[(i, j)], c_ref[(i, j)]);
                prop_assert!(
                    (a - b).abs() <= 1e-10 * (1.0 + b.abs()),
                    "({i},{j}): wy {a} vs larf {b}"
                );
            }
        }
    }

    /// Tree level: the structured stacked-V apply (unit top block skipped,
    /// triangular lower blocks) equals the dense per-reflector sweep over
    /// the full stacked `V`.
    #[test]
    fn stacked_wy_apply_matches_larf_sweep(
        members in 2usize..5,
        w in 1usize..9,
        wc in 1usize..8,
        seed in 0u64..500,
        tr in 0u8..2,
    ) {
        let transpose = tr == 1;
        // Plant `members` upper-triangular blocks with boosted diagonals at
        // spaced rows, as the level-0 factorization would leave them.
        let gap = 2 * w + 3;
        let starts: Vec<usize> = (0..members).map(|t| t * gap).collect();
        let mut a = Matrix::<f64>::zeros(members * gap, w);
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for &r0 in &starts {
            for j in 0..w {
                for i in 0..=j {
                    a[(r0 + i, j)] = next() + if i == j { 4.0 } else { 0.0 };
                }
            }
        }
        let node = blockops::factor_tree_group(MatPtr::new(&mut a), &starts, 0, w);
        let c0 = dense::generate::uniform::<f64>(members * w, wc, seed ^ 0x55);
        let mut c_wy = c0.clone();
        let mut c_ref = c0.clone();
        blockops::apply_stacked_wy(&node, w, c_wy.as_mut(), transpose);
        caqr::microkernels::apply_block_reflectors(
            node.u.as_ref(),
            &node.tau,
            transpose,
            c_ref.as_mut(),
        );
        for i in 0..members * w {
            for j in 0..wc {
                let (x, y) = (c_wy[(i, j)], c_ref[(i, j)]);
                prop_assert!(
                    (x - y).abs() <= 1e-10 * (1.0 + y.abs()),
                    "({i},{j}): stacked-wy {x} vs larf {y}"
                );
            }
        }
    }
}

/// End-to-end TSQR on (scaled-down) Table-I tall-skinny shapes: the WY
/// trailing updates must leave `||A - QR||` and `||Q^T Q - I||` at the
/// usual factorization accuracy.
#[test]
fn tsqr_reconstructs_table1_shapes() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    for &(m, w, h, seed) in &[
        (2048usize, 16usize, 128usize, 1u64),
        (1024, 8, 64, 2),
        (3000, 4, 96, 3),
    ] {
        let a = dense::generate::uniform::<f64>(m, w, seed);
        let f = caqr::tsqr(&gpu, a.clone(), BlockSize { h, w }, STRAT).unwrap();
        let q = f.generate_q(&gpu).unwrap();
        let r = f.r();
        assert!(
            reconstruction_error(&a, &q, &r) < 1e-12,
            "{m}x{w}: ||A - QR|| too large"
        );
        assert!(orthogonality_error(&q) < 1e-12, "{m}x{w}: Q not orthogonal");
    }
}

/// End-to-end CAQR on a wider block: same reconstruction bound through the
/// panel-by-panel WY trailing updates.
#[test]
fn caqr_reconstructs_with_wy_updates() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let a = dense::generate::uniform::<f64>(768, 96, 4);
    let f = caqr::caqr::caqr(
        &gpu,
        a.clone(),
        caqr::CaqrOptions {
            bs: BlockSize { h: 64, w: 16 },
            strategy: STRAT,
            tree: caqr::TreeShape::DeviceArity,
            check_finite: true,
        },
    )
    .unwrap();
    let q = f.generate_q(&gpu, 96).unwrap();
    let r = f.r();
    assert!(reconstruction_error(&a, &q, &r) < 1e-12);
    assert!(orthogonality_error(&q) < 1e-12);
}
