//! Direct tests of the four GPU kernels in isolation (the drivers exercise
//! them end-to-end; these pin each kernel's contract individually).

use caqr::block::{tile_panel, TreeGroup};
use caqr::kernels::{ApplyQtHKernel, FactorKernel, FactorTreeKernel};
use caqr::microkernels::ReductionStrategy;
use caqr::tsqr::{TreeNode, WyTile};
use dense::matrix::Matrix;
use dense::MatPtr;
use gpu_sim::{DeviceSpec, Gpu};
use parking_lot::Mutex;

const STRAT: ReductionStrategy = ReductionStrategy::RegisterSerialTransposed;

#[test]
fn factor_kernel_factors_every_tile_like_geqr2() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let mut a = dense::generate::uniform::<f64>(200, 8, 1);
    let reference = a.clone();
    let tiles = tile_panel(0, 200, 64, 8);
    let wy: Vec<Mutex<Option<WyTile<f64>>>> = tiles.iter().map(|_| Mutex::new(None)).collect();
    {
        let k = FactorKernel {
            a: MatPtr::new(&mut a),
            tiles: &tiles,
            col0: 0,
            width: 8,
            strategy: STRAT,
            spec: gpu.spec(),
            wy: &wy,
        };
        gpu.launch(&k).unwrap();
    }
    // Each tile must hold exactly the geqr2 factorization of its rows, and
    // its output slot the matching compact-WY factors.
    for (ti, tile) in tiles.iter().enumerate() {
        let mut want = reference.extract(tile.start, 0, tile.rows, 8);
        let mut tau_want = vec![0.0; tile.rows.min(8)];
        dense::householder::geqr2(want.as_mut(), &mut tau_want);
        let got = a.extract(tile.start, 0, tile.rows, 8);
        assert_eq!(got, want, "tile {ti} factorization differs");
        let slot = wy[ti].lock();
        let w = slot.as_ref().expect("factor kernel must fill the WY slot");
        assert_eq!(w.tau, tau_want, "tile {ti} taus differ");
        assert_eq!(
            w.v,
            dense::blocked::extract_v(want.as_ref(), 8),
            "tile {ti} packed V differs"
        );
        assert_eq!(
            w.t,
            dense::blocked::larft(w.v.as_ref(), &w.tau),
            "tile {ti} T factor differs"
        );
    }
}

#[test]
fn factor_tree_kernel_eliminates_triangles() {
    // Two stacked upper-triangular Rs; the kernel must produce the QR of
    // the stack, write R to the leader and leave members' data untouched
    // except their triangles.
    let gpu = Gpu::new(DeviceSpec::c2050());
    let w = 6;
    let mut a = Matrix::<f64>::zeros(64, w);
    // Plant two triangles at rows 0 and 32.
    for (t, r0) in [0usize, 32].into_iter().enumerate() {
        for j in 0..w {
            for i in 0..=j {
                a[(r0 + i, j)] =
                    ((t * 31 + i * 7 + j * 3) % 13) as f64 - 6.0 + if i == j { 9.0 } else { 0.0 };
            }
        }
    }
    // Reference: dense QR of the 2w x w stack.
    let mut stack = Matrix::<f64>::zeros(2 * w, w);
    for (t, r0) in [0usize, 32].into_iter().enumerate() {
        for j in 0..w {
            for i in 0..=j {
                stack[(t * w + i, j)] = a[(r0 + i, j)];
            }
        }
    }
    let mut stack_f = stack.clone();
    let mut tau_ref = vec![0.0; w];
    dense::householder::geqr2(stack_f.as_mut(), &mut tau_ref);

    let groups = [TreeGroup {
        members: vec![0, 32],
    }];
    let out: Vec<Mutex<Option<TreeNode<f64>>>> = vec![Mutex::new(None)];
    {
        let k = FactorTreeKernel {
            a: MatPtr::new(&mut a),
            groups: &groups,
            col0: 0,
            width: w,
            strategy: STRAT,
            spec: gpu.spec(),
            out: &out,
        };
        gpu.launch(&k).unwrap();
    }
    let node = out.into_iter().next().unwrap().into_inner().unwrap();
    assert_eq!(node.members, vec![0, 32]);
    assert_eq!(node.tau, tau_ref);
    assert_eq!(node.u, stack_f);
    // Leader triangle now holds the reduced R.
    for j in 0..w {
        for i in 0..=j {
            assert!(
                (a[(i, j)] - stack_f[(i, j)]).abs() < 1e-14,
                "R not written back at ({i},{j})"
            );
        }
    }
}

#[test]
fn apply_qt_h_kernel_matches_host_application() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    // Factor one 32x4 tile, then apply its Q^T to a 32x6 target both via
    // the kernel and via the dense reference.
    let panel0 = dense::generate::uniform::<f64>(32, 4, 2);
    let mut v = panel0.clone();
    let mut tau = vec![0.0; 4];
    dense::householder::geqr2(v.as_mut(), &mut tau);

    let target0 = dense::generate::uniform::<f64>(32, 6, 3);
    let mut target = target0.clone();
    let tiles = tile_panel(0, 32, 32, 4);
    let vexp = dense::blocked::extract_v(v.view(0, 0, 32, 4), 4);
    let wy = vec![WyTile {
        tau: tau.clone(),
        t: dense::blocked::larft(vexp.as_ref(), &tau),
        v: vexp,
        healthy: true,
    }];
    let cols = [(0usize, 6usize)];
    {
        let k = ApplyQtHKernel {
            c: MatPtr::new(&mut target),
            tiles: &tiles,
            width: 4,
            wy: &wy,
            col_blocks: &cols,
            transpose: true,
            strategy: STRAT,
            spec: gpu.spec(),
        };
        gpu.launch(&k).unwrap();
    }
    let mut want = target0.clone();
    dense::householder::apply_q2(&v, &tau, true, &mut want);
    for i in 0..32 {
        for j in 0..6 {
            assert!((target[(i, j)] - want[(i, j)]).abs() < 1e-13, "({i},{j})");
        }
    }
}

#[test]
fn apply_qt_h_forward_backward_cancels() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let panel0 = dense::generate::uniform::<f64>(96, 8, 4);
    let mut v = panel0.clone();
    // Factor via the tsqr driver to exercise multi-tile V.
    let pf = caqr::tsqr::factor_panel(
        &gpu,
        &mut v,
        0,
        0,
        8,
        caqr::BlockSize { h: 32, w: 8 },
        STRAT,
    )
    .unwrap();
    let c0 = dense::generate::uniform::<f64>(96, 5, 5);
    let mut c = c0.clone();
    caqr::tsqr::apply_panel_to(&gpu, &pf, &mut c, true).unwrap();
    // Something must have changed...
    let changed = c
        .as_slice()
        .iter()
        .zip(c0.as_slice())
        .any(|(a, b)| (a - b).abs() > 1e-9);
    assert!(changed);
    // ...and applying Q undoes it.
    caqr::tsqr::apply_panel_to(&gpu, &pf, &mut c, false).unwrap();
    for (a, b) in c.as_slice().iter().zip(c0.as_slice()) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn kernels_count_positive_flops_and_traffic() {
    let gpu = Gpu::new(DeviceSpec::c2050());
    let mut a = dense::generate::uniform::<f32>(256, 8, 6);
    let tiles = tile_panel(0, 256, 64, 8);
    let wy: Vec<Mutex<Option<WyTile<f32>>>> = tiles.iter().map(|_| Mutex::new(None)).collect();
    {
        let k = FactorKernel {
            a: MatPtr::new(&mut a),
            tiles: &tiles,
            col0: 0,
            width: 8,
            strategy: STRAT,
            spec: gpu.spec(),
            wy: &wy,
        };
        let report = gpu.launch(&k).unwrap();
        assert_eq!(report.blocks, 4);
        assert!(report.total.flops > 0);
        assert!(
            report.total.gmem_bytes >= (2 * 256 * 8 * 4) as f64,
            "load + store traffic"
        );
        assert!(report.gflops > 0.0);
    }
}
