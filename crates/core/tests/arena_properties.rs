//! Property tests of the workspace-arena hot paths: the arena-backed factor
//! kernels must be indistinguishable from the fresh-allocation reference
//! implementations on random shapes, and stale (even deliberately poisoned)
//! pool contents must never leak into results — the two guarantees the
//! allocation-free fast path rests on.

use caqr::block::Tile;
use caqr::blockops;
use dense::arena;
use dense::matrix::Matrix;
use dense::MatPtr;
use proptest::prelude::*;

/// Bit-level equality helper with a readable failure.
fn assert_bits_eq(name: &str, got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert!(
        got.len() == want.len(),
        "{} length: {} != {}",
        name,
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            g.to_bits() == w.to_bits(),
            "{}[{}]: {:e} ({:#x}) != {:e} ({:#x})",
            name,
            i,
            g,
            g.to_bits(),
            w,
            w.to_bits()
        );
    }
    Ok(())
}

/// Value equality (zero signs may differ where the structured tree path
/// skips exact `±0.0` products).
fn assert_values_eq(name: &str, got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert!(
        got.len() == want.len(),
        "{} length: {} != {}",
        name,
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            g == w || (g.is_nan() && w.is_nan()),
            "{}[{}]: {:e} != {:e}",
            name,
            i,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The arena-backed pre-transposed `factor_tile` is bit-identical to the
    /// fresh-allocation column-major reference: same factored tile, same
    /// `tau`, `V` and `T` — even when the pools it draws from were poisoned
    /// with NaN beforehand (stale contents cannot leak).
    #[test]
    fn arena_factor_tile_is_bit_identical_to_fresh_allocation(
        rows in 2usize..96,
        width in 1usize..12,
        seed in 0u64..500,
        poison in 0u8..2,
    ) {
        prop_assume!(rows >= width);
        if poison == 1 {
            arena::poison_pools::<f64>(f64::NAN);
        }
        let tile = Tile { start: 0, rows };
        let a0 = dense::generate::uniform::<f64>(rows, width, seed);

        let mut a_fast = a0.clone();
        let wy_fast = blockops::factor_tile(MatPtr::new(&mut a_fast), tile, 0, width);
        let mut a_ref = a0.clone();
        let wy_ref = blockops::factor_tile_ref(MatPtr::new(&mut a_ref), tile, 0, width);

        assert_bits_eq("tile", a_fast.as_slice(), a_ref.as_slice())?;
        assert_bits_eq("tau", &wy_fast.tau, &wy_ref.tau)?;
        assert_bits_eq("v", wy_fast.v.as_slice(), wy_ref.v.as_slice())?;
        assert_bits_eq("t", wy_fast.t.as_slice(), wy_ref.t.as_slice())?;
        prop_assert_eq!(wy_fast.healthy, wy_ref.healthy);
    }

    /// The arena-backed structured `factor_tree_group` agrees with the
    /// fresh-allocation dense reference on every value (the structured path
    /// skips exact-zero products, so only zero signs may differ), again
    /// regardless of poisoned pools.
    #[test]
    fn arena_factor_tree_group_matches_fresh_allocation(
        arity in 2usize..6,
        width in 1usize..10,
        seed in 0u64..500,
        poison in 0u8..2,
    ) {
        if poison == 1 {
            arena::poison_pools::<f64>(f64::NAN);
        }
        let rows = arity * width;
        let members: Vec<usize> = (0..arity).map(|t| t * width).collect();
        // Upper-triangularize each member's strip, as after level 0.
        let mut a0 = dense::generate::uniform::<f64>(rows, width, seed);
        for &r0 in &members {
            for i in 0..width {
                for j in 0..i.min(width) {
                    a0[(r0 + i, j)] = 0.0;
                }
            }
        }

        let mut a_fast = a0.clone();
        let node_fast =
            blockops::factor_tree_group(MatPtr::new(&mut a_fast), &members, 0, width);
        let mut a_ref = a0.clone();
        let node_ref =
            blockops::factor_tree_group_ref(MatPtr::new(&mut a_ref), &members, 0, width);

        assert_values_eq("leader R", a_fast.as_slice(), a_ref.as_slice())?;
        assert_values_eq("tau", &node_fast.tau, &node_ref.tau)?;
        assert_values_eq("u", node_fast.u.as_slice(), node_ref.u.as_slice())?;
        assert_values_eq("tmat", node_fast.tmat.as_slice(), node_ref.tmat.as_slice())?;
        prop_assert_eq!(node_fast.healthy, node_ref.healthy);
    }

    /// Re-running the same factorization after poisoning every pool with NaN
    /// reproduces the clean run bit-for-bit: the arena contract (`take_dirty`
    /// users overwrite every element they read) holds on the whole caqr_cpu
    /// pipeline, not just the leaf kernels.
    #[test]
    fn poisoned_pools_cannot_perturb_caqr_cpu(
        m in 16usize..200,
        n in 1usize..8,
        seed in 0u64..500,
    ) {
        prop_assume!(m >= 2 * n);
        let a = dense::generate::uniform::<f64>(m, n, seed);
        let opts = caqr::CpuCaqrOptions {
            tile_rows: (m / 2).max(2 * n),
            panel_width: n,
            tree: caqr::TreeShape::DeviceArity,
                    verify_checksums: false,
        };
        let clean = caqr_cpu_bits(&a, opts);
        arena::poison_pools::<f64>(f64::NAN);
        let poisoned = caqr_cpu_bits(&a, opts);
        assert_bits_eq("factored matrix", &clean, &poisoned)?;
    }
}

fn caqr_cpu_bits(a: &Matrix<f64>, opts: caqr::CpuCaqrOptions) -> Vec<f64> {
    let f = caqr::caqr_cpu(a.clone(), opts).expect("factorization");
    f.a.as_slice().to_vec()
}

/// Steady state really is allocation-free: after a warm-up run, repeating
/// the same factor shape produces pool hits only.
#[test]
fn steady_state_factor_serves_from_pool() {
    let rows = 192;
    let width = 12;
    let tile = Tile { start: 0, rows };
    let mut a = dense::generate::uniform::<f64>(rows, width, 7);
    blockops::factor_tile(MatPtr::new(&mut a), tile, 0, width); // warm
    arena::reset_stats::<f64>();
    for _ in 0..8 {
        blockops::factor_tile(MatPtr::new(&mut a), tile, 0, width);
    }
    let stats = arena::stats::<f64>();
    assert!(stats.hits > 0, "no pooled requests recorded: {stats:?}");
    assert_eq!(stats.misses, 0, "steady state allocated: {stats:?}");
}
