//! CAQR — Communication-Avoiding QR for general matrices (Section II-C),
//! running entirely on the simulated GPU with the host pseudocode of
//! Figure 4:
//!
//! ```text
//! foreach panel
//!     do small QRs in panel                  (factor)
//!     foreach level in tree
//!         do small QRs in tree               (factor_tree)
//!     apply Q^T horizontally across trailing (apply_qt_h)
//!     foreach level in tree
//!         apply Q^T from the tree            (apply_qt_tree)
//! ```
//!
//! After each panel the grid is redrawn `w` rows lower ("the trailing matrix
//! becomes both shorter and narrower after each step").

use crate::backend::{drive, DriveConfig, Mode, SimBackend};
use crate::block::{BlockSize, TreeShape};
use crate::error::CaqrError;
use crate::kernels::THREADS;
use crate::microkernels::ReductionStrategy;
use crate::tsqr::{apply_panel_ptr, col_blocks, PanelFactor};
use dense::blas2::trsv_upper;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::Gpu;

/// Options for a CAQR factorization.
#[derive(Clone, Copy, Debug)]
pub struct CaqrOptions {
    /// Block size (panel width = `bs.w`).
    pub bs: BlockSize,
    /// Kernel tuning strategy (affects modelled cost only).
    pub strategy: ReductionStrategy,
    /// Reduction-tree shape (the GPU default is the `h/w`-ary device tree).
    pub tree: TreeShape,
    /// Scan the input for NaN/inf with a charged `health_check` launch
    /// before factoring (on by default — "garbage in" becomes a typed
    /// [`CaqrError::NonFinite`] instead of silent NaN propagation). The
    /// launch is counted by [`Caqr::launches`] and charged identically by
    /// [`crate::model::model_caqr_seconds`].
    pub check_finite: bool,
}

impl Default for CaqrOptions {
    /// The paper's shipping configuration: 128 x 16 blocks, register-file
    /// serial reductions with pre-transposed panels, input health check on.
    fn default() -> Self {
        CaqrOptions {
            bs: BlockSize::c2050_best(),
            strategy: ReductionStrategy::RegisterSerialTransposed,
            tree: TreeShape::DeviceArity,
            check_finite: true,
        }
    }
}

/// How a [`Caqr`] was launched — the synchronous Figure-4 loop, or the
/// stream-scheduled task DAG of [`crate::schedule::caqr_dag`]. The two issue
/// different launch counts for the same shape (the DAG splits trailing
/// updates into per-stream apply chains), so launch accounting needs to know.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchPlan {
    /// One factor chain + one whole-trailing apply chain per panel.
    Sync,
    /// DAG-scheduled; the scheduler counted its launches as it enqueued them.
    Dag {
        /// Exact number of kernel launches the scheduler issued.
        launches: usize,
    },
}

/// A completed CAQR factorization.
pub struct Caqr<T: Scalar> {
    /// The factored matrix: `R` in the upper triangle, per-panel Householder
    /// tails below it.
    pub a: Matrix<T>,
    /// Per-panel TSQR factors, in factorization order.
    pub panels: Vec<PanelFactor<T>>,
    /// Options used.
    pub opts: CaqrOptions,
    /// How the factorization's kernels were issued (for launch accounting).
    pub launch_plan: LaunchPlan,
}

/// Factor `a` with CAQR on the simulated GPU. Supports any shape (wide
/// matrices factor the leading `min(m, n)` panels and update the rest).
///
/// A thin shim over the generic [`crate::backend::drive`] loop on a
/// synchronous [`SimBackend`] (DESIGN.md §13) — the Figure-4 pseudocode
/// lives there now, shared with every other executor.
pub fn caqr<T: Scalar>(gpu: &Gpu, a: Matrix<T>, opts: CaqrOptions) -> Result<Caqr<T>, CaqrError> {
    let cfg = DriveConfig {
        bs: opts.bs,
        strategy: opts.strategy,
        tree: opts.tree,
        check_finite: opts.check_finite,
        verify_checksums: false,
        health_context: "caqr input",
    };
    let out = drive(&SimBackend::sync(gpu), a, &cfg, Mode::Sync)?;
    Ok(Caqr {
        a: out.a,
        panels: out.panels,
        opts,
        launch_plan: LaunchPlan::Sync,
    })
}

impl<T: Scalar> Caqr<T> {
    /// The `min(m,n) x n` upper-triangular factor.
    pub fn r(&self) -> Matrix<T> {
        self.a.upper_triangular()
    }

    /// Apply `Q^T` to `c` (full row count) in place — panels in
    /// factorization order.
    pub fn apply_qt(&self, gpu: &Gpu, c: &mut Matrix<T>) -> Result<(), CaqrError> {
        self.check_apply_rows(c.rows())?;
        let cols = col_blocks(0, c.cols(), self.opts.bs.w);
        let cp = MatPtr::new(c);
        for pf in &self.panels {
            apply_panel_ptr(gpu, cp, pf, &cols, true)?;
        }
        Ok(())
    }

    fn check_apply_rows(&self, rows: usize) -> Result<(), CaqrError> {
        if rows != self.a.rows() {
            return Err(CaqrError::BadShape(format!(
                "apply target has {rows} rows; factorization has {}",
                self.a.rows()
            )));
        }
        Ok(())
    }

    /// Apply `Q` to `c` in place — panels in reverse order.
    pub fn apply_q(&self, gpu: &Gpu, c: &mut Matrix<T>) -> Result<(), CaqrError> {
        self.check_apply_rows(c.rows())?;
        let cols = col_blocks(0, c.cols(), self.opts.bs.w);
        let cp = MatPtr::new(c);
        for pf in self.panels.iter().rev() {
            apply_panel_ptr(gpu, cp, pf, &cols, false)?;
        }
        Ok(())
    }

    /// Form the explicit `m x k` orthogonal factor (`SORGQR` analogue).
    pub fn generate_q(&self, gpu: &Gpu, k: usize) -> Result<Matrix<T>, CaqrError> {
        let m = self.a.rows();
        if k > m {
            return Err(CaqrError::BadShape(format!(
                "cannot form {k} Q columns from an {m}-row factorization"
            )));
        }
        let mut q = Matrix::<T>::eye(m, k);
        self.apply_q(gpu, &mut q)?;
        Ok(q)
    }

    /// Solve the least-squares problem `min ||A x - b||` from this
    /// factorization: `x = R^-1 (Q^T b)[0..n]`.
    pub fn least_squares(&self, gpu: &Gpu, b: &[T]) -> Result<Vec<T>, CaqrError> {
        let (m, n) = self.a.shape();
        self.check_least_squares(m, n, b.len())?;
        let mut c = Matrix::from_fn(m, 1, |i, _| b[i]);
        self.apply_qt(gpu, &mut c)?;
        let mut x: Vec<T> = (0..n).map(|i| c[(i, 0)]).collect();
        trsv_upper(self.a.view(0, 0, n, n), &mut x);
        Ok(x)
    }

    /// Solve `min ||A X - B||` column-wise for multiple right-hand sides:
    /// one `Q^T` sweep over all columns of `B` (the apply kernels process
    /// every column block in a single grid), then a triangular solve per
    /// column. Returns the `n x nrhs` solution matrix.
    pub fn least_squares_multi(&self, gpu: &Gpu, b: &Matrix<T>) -> Result<Matrix<T>, CaqrError> {
        let (m, n) = self.a.shape();
        self.check_least_squares(m, n, b.rows())?;
        let mut c = b.clone();
        self.apply_qt(gpu, &mut c)?;
        let nrhs = b.cols();
        let mut x = Matrix::<T>::zeros(n, nrhs);
        for j in 0..nrhs {
            let mut col: Vec<T> = (0..n).map(|i| c[(i, j)]).collect();
            trsv_upper(self.a.view(0, 0, n, n), &mut col);
            x.col_mut(j).copy_from_slice(&col);
        }
        Ok(x)
    }

    fn check_least_squares(&self, m: usize, n: usize, got_rows: usize) -> Result<(), CaqrError> {
        if m < n {
            return Err(CaqrError::BadShape(format!(
                "least squares needs a tall matrix (got {m}x{n})"
            )));
        }
        if got_rows != m {
            return Err(CaqrError::BadShape(format!(
                "right-hand side has {got_rows} rows; expected {m}"
            )));
        }
        Ok(())
    }

    /// Total kernel launches this factorization issued — exposed for the
    /// communication/launch accounting tests. For the synchronous plan the
    /// count is reconstructed from the panel structure; the DAG scheduler
    /// records its exact count while enqueueing.
    pub fn launches(&self) -> usize {
        match self.launch_plan {
            LaunchPlan::Dag { launches } => launches,
            LaunchPlan::Sync => {
                let mut n = 0;
                for pf in &self.panels {
                    n += 1 + pf.levels.len(); // factor + factor_tree per level
                    n += if pf.col0 + pf.width < self.a.cols() {
                        1 + pf.levels.len() // apply_qt_h + apply_qt_tree per level
                    } else {
                        0
                    };
                }
                n + usize::from(self.opts.strategy.needs_pretranspose())
                    + usize::from(self.opts.check_finite)
            }
        }
    }
}

/// Convenience: factor and return `(Q, R)` explicitly (test/demo helper;
/// production callers keep the implicit form).
pub fn caqr_qr<T: Scalar>(
    gpu: &Gpu,
    a: Matrix<T>,
    opts: CaqrOptions,
) -> Result<(Matrix<T>, Matrix<T>), CaqrError> {
    let k = a.rows().min(a.cols());
    let f = caqr(gpu, a, opts)?;
    let q = f.generate_q(gpu, k)?;
    Ok((q, f.r()))
}

/// Hint for `THREADS`-related sizing reused by downstream crates.
pub const fn threads_per_block() -> usize {
    THREADS
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::generate;
    use dense::norms::{orthogonality_error, reconstruction_error};
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn opts_small() -> CaqrOptions {
        CaqrOptions {
            bs: BlockSize { h: 32, w: 8 },
            strategy: ReductionStrategy::RegisterSerialTransposed,
            tree: TreeShape::DeviceArity,
            check_finite: true,
        }
    }

    fn check_caqr(m: usize, n: usize, opts: CaqrOptions, seed: u64) {
        let a = generate::uniform::<f64>(m, n, seed);
        let g = gpu();
        let (q, r) = caqr_qr(&g, a.clone(), opts).unwrap();
        let rec = reconstruction_error(&a, &q, &r);
        let ort = orthogonality_error(&q);
        assert!(rec < 1e-12, "reconstruction {rec} for {m}x{n}");
        assert!(ort < 1e-12, "orthogonality {ort} for {m}x{n}");
        // R upper triangular.
        for j in 0..r.cols() {
            for i in j + 1..r.rows() {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn caqr_tall_multi_panel() {
        check_caqr(256, 24, opts_small(), 21);
    }

    #[test]
    fn caqr_square() {
        check_caqr(64, 64, opts_small(), 22);
    }

    #[test]
    fn caqr_ragged_everything() {
        // Rows not a tile multiple, columns not a panel multiple.
        check_caqr(213, 29, opts_small(), 23);
    }

    #[test]
    fn caqr_wide_matrix() {
        check_caqr(40, 70, opts_small(), 24);
    }

    #[test]
    fn caqr_single_panel_degenerates_to_tsqr() {
        check_caqr(200, 8, opts_small(), 25);
    }

    #[test]
    fn caqr_paper_block_size() {
        check_caqr(1024, 48, CaqrOptions::default(), 26);
    }

    #[test]
    fn caqr_r_matches_blocked_householder_up_to_sign() {
        let a = generate::uniform::<f64>(300, 40, 27);
        let g = gpu();
        let f = caqr(&g, a.clone(), opts_small()).unwrap();
        let r = f.r();
        let mut af = a.clone();
        dense::blocked::geqrf(&mut af, 16);
        for j in 0..40 {
            for i in 0..=j {
                assert!(
                    (r[(i, j)].abs() - af[(i, j)].abs()).abs() < 1e-10,
                    "|R| mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn caqr_least_squares_recovers_planted_solution() {
        let m = 180;
        let n = 14;
        let a = generate::uniform::<f64>(m, n, 28);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7) - 3.0).collect();
        let mut b = vec![0.0; m];
        for j in 0..n {
            for i in 0..m {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let g = gpu();
        let f = caqr(&g, a, opts_small()).unwrap();
        let x = f.least_squares(&g, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn multi_rhs_least_squares_matches_single() {
        let m = 120;
        let n = 10;
        let a = generate::uniform::<f64>(m, n, 55);
        let b = generate::uniform::<f64>(m, 3, 56);
        let g = gpu();
        let f = caqr(&g, a, opts_small()).unwrap();
        let x = f.least_squares_multi(&g, &b).unwrap();
        for j in 0..3 {
            let xj = f.least_squares(&g, b.col(j)).unwrap();
            for i in 0..n {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_qt_q_round_trip() {
        let a = generate::uniform::<f64>(150, 20, 29);
        let g = gpu();
        let f = caqr(&g, a, opts_small()).unwrap();
        let c0 = generate::uniform::<f64>(150, 5, 30);
        let mut c = c0.clone();
        f.apply_qt(&g, &mut c).unwrap();
        f.apply_q(&g, &mut c).unwrap();
        for i in 0..150 {
            for j in 0..5 {
                assert!((c[(i, j)] - c0[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn launch_count_matches_ledger() {
        let g = gpu();
        let a = generate::uniform::<f64>(256, 24, 31);
        let f = caqr(&g, a, opts_small()).unwrap();
        assert_eq!(f.launches() as u64, g.ledger().calls);
    }

    #[test]
    fn tree_shape_does_not_change_the_factorization_quality() {
        // Different tree shapes pick different Householder orderings, so R
        // entries differ in sign/rounding — but reconstruction and
        // orthogonality must be equally good, and |R| diagonals must agree
        // (column norms are shape-invariant).
        let a = generate::uniform::<f64>(640, 24, 33);
        let mut diags: Vec<Vec<f64>> = Vec::new();
        for tree in [
            TreeShape::DeviceArity,
            TreeShape::Binomial,
            TreeShape::Arity(3),
        ] {
            let g = gpu();
            let o = CaqrOptions {
                tree,
                ..opts_small()
            };
            let (q, r) = caqr_qr(&g, a.clone(), o).unwrap();
            assert!(reconstruction_error(&a, &q, &r) < 1e-12, "{tree:?}");
            assert!(orthogonality_error(&q) < 1e-12, "{tree:?}");
            diags.push((0..24).map(|d| r[(d, d)].abs()).collect());
        }
        for d in &diags[1..] {
            for (x, y) in d.iter().zip(&diags[0]) {
                assert!(
                    (x - y).abs() < 1e-10,
                    "diagonal magnitude changed with tree shape"
                );
            }
        }
    }

    #[test]
    fn binomial_tree_issues_more_launches_than_device_tree() {
        let a = generate::uniform::<f64>(2048, 16, 34);
        let launches = |tree: TreeShape| {
            let g = gpu();
            let o = CaqrOptions {
                tree,
                bs: BlockSize { h: 64, w: 16 },
                ..opts_small()
            };
            let _ = caqr(&g, a.clone(), o).unwrap();
            g.ledger().calls
        };
        assert!(launches(TreeShape::Binomial) > launches(TreeShape::DeviceArity));
    }

    #[test]
    fn empty_matrix_rejected() {
        let g = gpu();
        let a = Matrix::<f64>::zeros(0, 0);
        assert!(caqr(&g, a, opts_small()).is_err());
    }

    #[test]
    fn zero_matrix_factors_cleanly() {
        // All-zero input: R must be zero, Q orthogonal (identity-ish).
        let g = gpu();
        let a = Matrix::<f64>::zeros(96, 16);
        let (q, r) = caqr_qr(&g, a, opts_small()).unwrap();
        assert!(dense::norms::max_abs(&r) == 0.0);
        assert!(orthogonality_error(&q) < 1e-13);
    }
}
