//! DAG-scheduled CAQR: the Figure-4 host loop re-expressed as a task graph
//! (panel TSQR chains, per-column-block trailing updates) mapped onto
//! simulated CUDA streams, with optional lookahead — panel `k+1` is factored
//! as soon as its own column block has been updated by panel `k`, while the
//! bulk trailing update of panel `k` is still in flight on other streams.
//!
//! # Stream assignment and correctness
//!
//! Columns are partitioned into a *fixed* global grid of `w`-wide blocks
//! (block `j` covers columns `[j*w, min((j+1)*w, n))`), and block `j` is
//! permanently owned by stream `j % s`. Every operation that touches block
//! `j` — each panel's apply and, when `j` indexes a panel, its factor — is
//! queued on that one stream, so in-stream FIFO order alone gives each
//! column block the same operation sequence the synchronous loop issues.
//! The only cross-stream dependencies are "apply of panel `k` needs the
//! factor of panel `k`", expressed with one recorded event per factor chain.
//!
//! Numerics are *bit-identical* to [`crate::caqr::caqr`]: the simulator runs
//! kernel arithmetic eagerly at enqueue time in host order (a valid
//! topological order of this DAG), operations on disjoint column blocks
//! commute exactly, and within the apply kernels each column is processed
//! independently of how columns are grouped into launches. The equivalence
//! tests in `tests/stream_scheduling.rs` assert this across shapes.

use crate::caqr::{Caqr, CaqrOptions, LaunchPlan};
use crate::error::CaqrError;
use crate::kernels::PretransposeKernel;
use crate::model::{
    model_apply_chain_on, model_factor_chain_on, model_health_on, model_pretranspose_on,
};
use crate::tsqr::{apply_panel_ptr_on, factor_panel_with_tree_on, PanelFactor};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{EventId, Exec, Gpu, StreamId, Timeline};

/// Options for a stream-scheduled CAQR factorization.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// The numerical configuration (block size, strategy, tree shape).
    pub caqr: CaqrOptions,
    /// Number of streams to spread the DAG over. `1` degenerates to the
    /// synchronous schedule (identical modelled time up to the extra apply
    /// chain the lookahead split issues).
    pub streams: usize,
    /// Factor panel `k+1` as soon as panel `k` has updated its column block,
    /// ahead of panel `k`'s bulk trailing update. `false` reproduces the
    /// barrier schedule: each factor waits for the whole previous update.
    pub lookahead: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            lookahead: true,
        }
    }
}

/// The static shape of one panel step of the DAG — shared by the executing
/// scheduler, its model-only replay, and the fault-recovery executor
/// ([`crate::recovery`]) so all three enqueue, event-for-event, the same
/// schedule.
pub(crate) struct PanelStep {
    /// Panel index.
    pub(crate) p: usize,
    /// First column (== first row) of the panel.
    pub(crate) c: usize,
    /// Panel width.
    pub(crate) width: usize,
}

/// Driver-independent schedule geometry.
pub(crate) struct Dag {
    w: usize,
    n: usize,
    /// Global column-grid block count.
    pub(crate) nb: usize,
    /// Panel steps over the leading `min(m, n)` columns.
    pub(crate) steps: Vec<PanelStep>,
    pub(crate) streams: Vec<StreamId>,
}

impl Dag {
    pub(crate) fn new(
        gpu: &Gpu,
        m: usize,
        n: usize,
        opts: &ScheduleOptions,
    ) -> Result<Dag, CaqrError> {
        opts.caqr.bs.validate().map_err(CaqrError::BadShape)?;
        if m == 0 || n == 0 {
            return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
        }
        if opts.streams == 0 {
            return Err(CaqrError::BadShape("streams must be >= 1".into()));
        }
        let w = opts.caqr.bs.w;
        let k = m.min(n);
        let mut steps = Vec::with_capacity(k.div_ceil(w));
        let mut c = 0;
        while c < k {
            let width = w.min(k - c);
            steps.push(PanelStep {
                p: steps.len(),
                c,
                width,
            });
            c += width;
        }
        Ok(Dag {
            w,
            n,
            nb: n.div_ceil(w),
            steps,
            streams: (0..opts.streams).map(|_| gpu.create_stream()).collect(),
        })
    }

    /// Home stream index of global column block `j`.
    pub(crate) fn home(&self, j: usize) -> usize {
        j % self.streams.len()
    }

    pub(crate) fn stream(&self, j: usize) -> StreamId {
        self.streams[self.home(j)]
    }

    /// The fixed-grid column block `j`.
    pub(crate) fn block(&self, j: usize) -> (usize, usize) {
        let start = j * self.w;
        (start, self.w.min(self.n - start))
    }

    /// The trailing column ranges panel `step` must update, already
    /// partitioned by home stream: fixed-grid blocks `first_block..nb`, plus
    /// — for a narrow last panel of a wide matrix — the tail of the panel's
    /// own block (columns `[c + width, min((p+1)*w, n))`), which stays on
    /// the panel's stream.
    pub(crate) fn groups(&self, step: &PanelStep, first_block: usize) -> Vec<Vec<(usize, usize)>> {
        let s = self.streams.len();
        let mut groups = vec![Vec::new(); s];
        let tail_end = ((step.p + 1) * self.w).min(self.n);
        if step.c + step.width < tail_end {
            groups[self.home(step.p)].push((step.c + step.width, tail_end - step.c - step.width));
        }
        for j in first_block..self.nb {
            groups[self.home(j)].push(self.block(j));
        }
        groups
    }
}

/// Factor `a` with stream-scheduled CAQR. The result is numerically
/// bit-identical to [`crate::caqr::caqr`] with `opts.caqr`; the returned
/// [`Timeline`] holds the resolved per-stream kernel intervals (its
/// `makespan` is what [`Gpu::elapsed`] advanced by).
pub fn caqr_dag<T: Scalar>(
    gpu: &Gpu,
    mut a: Matrix<T>,
    opts: ScheduleOptions,
) -> Result<(Caqr<T>, Timeline), CaqrError> {
    let (m, n) = a.shape();
    let dag = Dag::new(gpu, m, n, &opts)?;
    let o = opts.caqr;
    let mut launches = 0usize;

    // Numerical health check, queued first on stream 0 (arithmetic runs
    // eagerly at enqueue, so a NaN aborts before any factor work is queued).
    if o.check_finite {
        crate::health::check_matrix_finite(
            gpu,
            Exec::Stream(dag.streams[0]),
            &a,
            o.bs,
            "caqr input",
        )?;
        launches += 1;
    }

    // Strategy 4's out-of-place preprocessing, queued ahead of the first
    // factor on its stream; every other stream's first op waits (directly or
    // transitively) on the first factor's event, so no extra event is needed.
    if o.strategy.needs_pretranspose() {
        let tiles = m.div_ceil(o.bs.h) * n.div_ceil(o.bs.w);
        let kernel = PretransposeKernel {
            blocks: tiles,
            tile_rows: o.bs.h,
            tile_cols: o.bs.w,
            spec: gpu.spec(),
        };
        gpu.launch_on::<T>(Exec::Stream(dag.streams[0]), &kernel)?;
        launches += 1;
    }

    let npanels = dag.steps.len();
    let mut panels: Vec<PanelFactor<T>> = Vec::with_capacity(npanels);
    // Barrier mode: apply-completion events the next factor must wait on.
    let mut pending: Vec<EventId> = Vec::new();
    // Lookahead mode: the next panel's factor, done ahead of schedule.
    let mut next: Option<(PanelFactor<T>, EventId)> = None;

    for p in 0..npanels {
        let step = &dag.steps[p];
        let (pf, f_ev) = match next.take() {
            Some(x) => x,
            None => {
                let sid = dag.stream(p);
                for ev in pending.drain(..) {
                    gpu.wait_event(sid, ev);
                }
                let pf = factor_panel_with_tree_on(
                    gpu,
                    Exec::Stream(sid),
                    &mut a,
                    step.c,
                    step.c,
                    step.width,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
                launches += 1 + pf.levels.len();
                let ev = gpu.record_event(sid);
                (pf, ev)
            }
        };
        let chain = 1 + pf.levels.len();

        if opts.lookahead && p + 1 < npanels {
            // Lookahead: update only the next panel's column block, factor
            // it immediately, then fan the bulk update out to every stream.
            let sid_next = dag.stream(p + 1);
            if dag.home(p + 1) != dag.home(p) {
                gpu.wait_event(sid_next, f_ev);
            }
            let ap = MatPtr::new(&mut a);
            apply_panel_ptr_on(
                gpu,
                Exec::Stream(sid_next),
                ap,
                &pf,
                &[dag.block(p + 1)],
                true,
            )?;
            launches += chain;

            let nstep = &dag.steps[p + 1];
            let pf2 = factor_panel_with_tree_on(
                gpu,
                Exec::Stream(sid_next),
                &mut a,
                nstep.c,
                nstep.c,
                nstep.width,
                o.bs,
                o.strategy,
                o.tree,
            )?;
            launches += 1 + pf2.levels.len();
            let ev2 = gpu.record_event(sid_next);
            next = Some((pf2, ev2));

            let ap = MatPtr::new(&mut a);
            for (t, cols) in dag.groups(step, p + 2).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != dag.home(p) {
                    gpu.wait_event(dag.streams[t], f_ev);
                }
                apply_panel_ptr_on(gpu, Exec::Stream(dag.streams[t]), ap, &pf, &cols, true)?;
                launches += chain;
            }
        } else {
            // Barrier mode (and the last panel of either mode): fan the
            // whole trailing update out, one apply chain per stream.
            let ap = MatPtr::new(&mut a);
            for (t, cols) in dag.groups(step, p + 1).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != dag.home(p) {
                    gpu.wait_event(dag.streams[t], f_ev);
                }
                apply_panel_ptr_on(gpu, Exec::Stream(dag.streams[t]), ap, &pf, &cols, true)?;
                launches += chain;
                if !opts.lookahead && p + 1 < npanels {
                    pending.push(gpu.record_event(dag.streams[t]));
                }
            }
        }
        panels.push(pf);
    }

    let timeline = gpu
        .try_synchronize()
        .map_err(|context| CaqrError::Breakdown { context })?;
    Ok((
        Caqr {
            a,
            panels,
            opts: o,
            launch_plan: LaunchPlan::Dag { launches },
        },
        timeline,
    ))
}

/// Model-only replay of [`caqr_dag`] for an `m x n` single-precision matrix:
/// the same streams, events and launch sequence, with per-block costs from
/// the analytic cost functions instead of execution — so Table-I-scale
/// shapes (1M x 192) can be scheduled without 768 MB of arithmetic. Returns
/// the modelled seconds (the schedule's makespan).
pub fn model_caqr_dag_seconds(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<f64, CaqrError> {
    Ok(model_caqr_dag_timeline(gpu, m, n, opts)?.0)
}

/// [`model_caqr_dag_seconds`], also returning the resolved [`Timeline`]
/// (for per-stream interval inspection and Chrome trace export).
pub fn model_caqr_dag_timeline(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<(f64, Timeline), CaqrError> {
    let t0 = gpu.elapsed();
    let dag = Dag::new(gpu, m, n, &opts)?;
    let o = opts.caqr;

    if o.check_finite {
        model_health_on(gpu, Exec::Stream(dag.streams[0]), m, n, o.bs)?;
    }
    if o.strategy.needs_pretranspose() {
        model_pretranspose_on(gpu, Exec::Stream(dag.streams[0]), m, n, o.bs)?;
    }

    let npanels = dag.steps.len();
    let mut pending: Vec<EventId> = Vec::new();
    let mut next: Option<EventId> = None;

    for p in 0..npanels {
        let step = &dag.steps[p];
        let f_ev = match next.take() {
            Some(ev) => ev,
            None => {
                let sid = dag.stream(p);
                for ev in pending.drain(..) {
                    gpu.wait_event(sid, ev);
                }
                model_factor_chain_on(
                    gpu,
                    Exec::Stream(sid),
                    m,
                    step.c,
                    step.width,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
                gpu.record_event(sid)
            }
        };

        if opts.lookahead && p + 1 < npanels {
            let sid_next = dag.stream(p + 1);
            if dag.home(p + 1) != dag.home(p) {
                gpu.wait_event(sid_next, f_ev);
            }
            model_apply_chain_on(
                gpu,
                Exec::Stream(sid_next),
                m,
                step.c,
                step.width,
                &[dag.block(p + 1)],
                o.bs,
                o.strategy,
                o.tree,
            )?;
            let nstep = &dag.steps[p + 1];
            model_factor_chain_on(
                gpu,
                Exec::Stream(sid_next),
                m,
                nstep.c,
                nstep.width,
                o.bs,
                o.strategy,
                o.tree,
            )?;
            next = Some(gpu.record_event(sid_next));

            for (t, cols) in dag.groups(step, p + 2).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != dag.home(p) {
                    gpu.wait_event(dag.streams[t], f_ev);
                }
                model_apply_chain_on(
                    gpu,
                    Exec::Stream(dag.streams[t]),
                    m,
                    step.c,
                    step.width,
                    &cols,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
            }
        } else {
            for (t, cols) in dag.groups(step, p + 1).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != dag.home(p) {
                    gpu.wait_event(dag.streams[t], f_ev);
                }
                model_apply_chain_on(
                    gpu,
                    Exec::Stream(dag.streams[t]),
                    m,
                    step.c,
                    step.width,
                    &cols,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
                if !opts.lookahead && p + 1 < npanels {
                    pending.push(gpu.record_event(dag.streams[t]));
                }
            }
        }
    }

    let tl = gpu
        .try_synchronize()
        .map_err(|context| CaqrError::Breakdown { context })?;
    Ok((gpu.elapsed() - t0, tl))
}

/// Convenience mirror of [`crate::model::model_caqr_gflops`] for the
/// stream-scheduled path (SGEQRF flops over the DAG's modelled makespan).
pub fn model_caqr_dag_gflops(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<f64, CaqrError> {
    let secs = model_caqr_dag_seconds(gpu, m, n, opts)?;
    Ok(dense::geqrf_flops(m, n) / secs / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockSize, TreeShape};
    use crate::caqr::caqr;
    use crate::microkernels::ReductionStrategy;
    use dense::generate;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn opts(streams: usize, lookahead: bool) -> ScheduleOptions {
        ScheduleOptions {
            caqr: CaqrOptions {
                bs: BlockSize { h: 32, w: 8 },
                strategy: ReductionStrategy::RegisterSerialTransposed,
                tree: TreeShape::DeviceArity,
                check_finite: true,
            },
            streams,
            lookahead,
        }
    }

    #[test]
    fn dag_r_is_bit_identical_to_synchronous() {
        for &(m, n) in &[(256usize, 24usize), (213, 29), (40, 70), (200, 8)] {
            let a = generate::uniform::<f64>(m, n, 77);
            let sync = caqr(&gpu(), a.clone(), opts(4, true).caqr).unwrap();
            for &s in &[1usize, 2, 4, 5] {
                for &la in &[false, true] {
                    let (f, _tl) = caqr_dag(&gpu(), a.clone(), opts(s, la)).unwrap();
                    for j in 0..n {
                        for i in 0..m {
                            assert_eq!(
                                f.a[(i, j)],
                                sync.a[(i, j)],
                                "factored matrix diverged at ({i},{j}) for {m}x{n} s={s} la={la}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dag_launch_count_matches_ledger() {
        for &la in &[false, true] {
            let g = gpu();
            let a = generate::uniform::<f64>(256, 24, 31);
            let (f, _tl) = caqr_dag(&g, a, opts(3, la)).unwrap();
            assert_eq!(f.launches() as u64, g.ledger().calls, "lookahead={la}");
        }
    }

    #[test]
    fn model_replay_matches_execution() {
        for &(m, n) in &[(256usize, 32usize), (301, 27), (64, 80)] {
            for &s in &[1usize, 3, 4] {
                for &la in &[false, true] {
                    let o = opts(s, la);
                    let g1 = gpu();
                    let a = generate::uniform::<f32>(m, n, 42);
                    let (f, _tl) = caqr_dag(&g1, a, o).unwrap();
                    let exec = g1.ledger();

                    let g2 = gpu();
                    let secs = model_caqr_dag_seconds(&g2, m, n, o).unwrap();
                    let modeled = g2.ledger();

                    assert_eq!(exec.calls, modeled.calls, "{m}x{n} s={s} la={la}");
                    assert_eq!(f.launches() as u64, modeled.calls);
                    let dt = (exec.seconds - modeled.seconds).abs() / exec.seconds;
                    assert!(
                        dt < 1e-9,
                        "{m}x{n} s={s} la={la}: {} vs {}",
                        exec.seconds,
                        modeled.seconds
                    );
                    assert!((secs - exec.seconds).abs() / exec.seconds < 1e-9);
                }
            }
        }
    }

    #[test]
    fn lookahead_beats_barrier_on_tall_skinny() {
        // Launch-bound Table-I-style shape: overlapping the next factor with
        // the trailing update must shorten the modelled makespan.
        let o = ScheduleOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            lookahead: true,
        };
        let t_look = model_caqr_dag_seconds(&gpu(), 100_000, 192, o).unwrap();
        let t_barrier = model_caqr_dag_seconds(
            &gpu(),
            100_000,
            192,
            ScheduleOptions {
                lookahead: false,
                ..o
            },
        )
        .unwrap();
        assert!(
            t_look < t_barrier,
            "lookahead {t_look} should beat barrier {t_barrier}"
        );
    }

    #[test]
    fn zero_streams_rejected() {
        let a = generate::uniform::<f64>(64, 16, 1);
        assert!(caqr_dag(&gpu(), a, opts(0, true)).is_err());
    }
}
