//! DAG-scheduled CAQR: the Figure-4 host loop re-expressed as a task graph
//! (panel TSQR chains, per-column-block trailing updates) mapped onto
//! simulated CUDA streams, with optional lookahead — panel `k+1` is factored
//! as soon as its own column block has been updated by panel `k`, while the
//! bulk trailing update of panel `k` is still in flight on other streams.
//!
//! # Stream assignment and correctness
//!
//! Columns are partitioned into a *fixed* global grid of `w`-wide blocks
//! (block `j` covers columns `[j*w, min((j+1)*w, n))`), and block `j` is
//! permanently owned by stream `j % s`. Every operation that touches block
//! `j` — each panel's apply and, when `j` indexes a panel, its factor — is
//! queued on that one stream, so in-stream FIFO order alone gives each
//! column block the same operation sequence the synchronous loop issues.
//! The only cross-stream dependencies are "apply of panel `k` needs the
//! factor of panel `k`", expressed with one recorded event per factor chain.
//!
//! Numerics are *bit-identical* to [`crate::caqr::caqr`]: the simulator runs
//! kernel arithmetic eagerly at enqueue time in host order (a valid
//! topological order of this DAG), operations on disjoint column blocks
//! commute exactly, and within the apply kernels each column is processed
//! independently of how columns are grouped into launches. The equivalence
//! tests in `tests/stream_scheduling.rs` assert this across shapes.
//!
//! This module packs one factorization's tasks across streams; the
//! [`crate::service`] batcher is the same idea one level up — it packs the
//! lockstep panel steps of *many independent* factorizations into shared
//! parallel regions, walking the identical
//! [`DagGeometry`](crate::backend::DagGeometry) panel grid, with the same
//! bit-identity argument (tasks of different jobs touch disjoint matrices,
//! so fusing their launches cannot reorder any job's own arithmetic).

use crate::backend::{drive, DagGeometry, DriveConfig, Mode, SimBackend};
use crate::caqr::{Caqr, CaqrOptions, LaunchPlan};
use crate::error::CaqrError;
use crate::model::{
    model_apply_chain_on, model_factor_chain_on, model_health_on, model_pretranspose_on,
};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use gpu_sim::{EventId, Exec, Gpu, StreamId, Timeline};

/// Options for a stream-scheduled CAQR factorization.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// The numerical configuration (block size, strategy, tree shape).
    pub caqr: CaqrOptions,
    /// Number of streams to spread the DAG over. `1` degenerates to the
    /// synchronous schedule (identical modelled time up to the extra apply
    /// chain the lookahead split issues).
    pub streams: usize,
    /// Factor panel `k+1` as soon as panel `k` has updated its column block,
    /// ahead of panel `k`'s bulk trailing update. `false` reproduces the
    /// barrier schedule: each factor waits for the whole previous update.
    pub lookahead: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            lookahead: true,
        }
    }
}

/// Factor `a` with stream-scheduled CAQR. The result is numerically
/// bit-identical to [`crate::caqr::caqr`] with `opts.caqr`; the returned
/// [`Timeline`] holds the resolved per-stream kernel intervals (its
/// `makespan` is what [`Gpu::elapsed`] advanced by).
///
/// A thin shim over the generic [`crate::backend::drive`] loop in
/// [`Mode::Dag`] on a streamed [`SimBackend`] (DESIGN.md §13): the schedule
/// described above lives there now, shared with the model replay below and
/// the fault-recovery executor.
pub fn caqr_dag<T: Scalar>(
    gpu: &Gpu,
    a: Matrix<T>,
    opts: ScheduleOptions,
) -> Result<(Caqr<T>, Timeline), CaqrError> {
    let o = opts.caqr;
    o.bs.validate().map_err(CaqrError::BadShape)?;
    let backend = SimBackend::streams(gpu, opts.streams)?;
    let cfg = DriveConfig {
        bs: o.bs,
        strategy: o.strategy,
        tree: o.tree,
        check_finite: o.check_finite,
        verify_checksums: false,
        health_context: "caqr input",
    };
    let out = drive(
        &backend,
        a,
        &cfg,
        Mode::Dag {
            lookahead: opts.lookahead,
        },
    )?;
    let timeline = gpu
        .try_synchronize()
        .map_err(|context| CaqrError::Breakdown { context })?;
    Ok((
        Caqr {
            a: out.a,
            panels: out.panels,
            opts: o,
            launch_plan: LaunchPlan::Dag {
                launches: out.launches,
            },
        },
        timeline,
    ))
}

/// Shared validation + geometry + stream creation for the model replay,
/// mirroring what the executing path's shim and driver do.
fn model_setup(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: &ScheduleOptions,
) -> Result<(DagGeometry, Vec<StreamId>), CaqrError> {
    opts.caqr.bs.validate().map_err(CaqrError::BadShape)?;
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    if opts.streams == 0 {
        return Err(CaqrError::BadShape("streams must be >= 1".into()));
    }
    let geo = DagGeometry::new(m, n, opts.caqr.bs.w, opts.streams);
    let streams = (0..opts.streams).map(|_| gpu.create_stream()).collect();
    Ok((geo, streams))
}

/// Model-only replay of [`caqr_dag`] for an `m x n` single-precision matrix:
/// the same streams, events and launch sequence, with per-block costs from
/// the analytic cost functions instead of execution — so Table-I-scale
/// shapes (1M x 192) can be scheduled without 768 MB of arithmetic. Returns
/// the modelled seconds (the schedule's makespan).
pub fn model_caqr_dag_seconds(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<f64, CaqrError> {
    Ok(model_caqr_dag_timeline(gpu, m, n, opts)?.0)
}

/// [`model_caqr_dag_seconds`], also returning the resolved [`Timeline`]
/// (for per-stream interval inspection and Chrome trace export).
pub fn model_caqr_dag_timeline(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<(f64, Timeline), CaqrError> {
    let t0 = gpu.elapsed();
    let (geo, streams) = model_setup(gpu, m, n, &opts)?;
    let o = opts.caqr;

    if o.check_finite {
        model_health_on(gpu, Exec::Stream(streams[0]), m, n, o.bs)?;
    }
    if o.strategy.needs_pretranspose() {
        model_pretranspose_on(gpu, Exec::Stream(streams[0]), m, n, o.bs)?;
    }

    let npanels = geo.steps.len();
    let mut pending: Vec<EventId> = Vec::new();
    let mut next: Option<EventId> = None;

    for p in 0..npanels {
        let step = &geo.steps[p];
        let f_ev = match next.take() {
            Some(ev) => ev,
            None => {
                let sid = streams[geo.home(p)];
                for ev in pending.drain(..) {
                    gpu.wait_event(sid, ev);
                }
                model_factor_chain_on(
                    gpu,
                    Exec::Stream(sid),
                    m,
                    step.c,
                    step.width,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
                gpu.record_event(sid)
            }
        };

        if opts.lookahead && p + 1 < npanels {
            let sid_next = streams[geo.home(p + 1)];
            if geo.home(p + 1) != geo.home(p) {
                gpu.wait_event(sid_next, f_ev);
            }
            model_apply_chain_on(
                gpu,
                Exec::Stream(sid_next),
                m,
                step.c,
                step.width,
                &[geo.block(p + 1)],
                o.bs,
                o.strategy,
                o.tree,
            )?;
            let nstep = &geo.steps[p + 1];
            model_factor_chain_on(
                gpu,
                Exec::Stream(sid_next),
                m,
                nstep.c,
                nstep.width,
                o.bs,
                o.strategy,
                o.tree,
            )?;
            next = Some(gpu.record_event(sid_next));

            for (t, cols) in geo.groups(step, p + 2).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != geo.home(p) {
                    gpu.wait_event(streams[t], f_ev);
                }
                model_apply_chain_on(
                    gpu,
                    Exec::Stream(streams[t]),
                    m,
                    step.c,
                    step.width,
                    &cols,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
            }
        } else {
            for (t, cols) in geo.groups(step, p + 1).into_iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if t != geo.home(p) {
                    gpu.wait_event(streams[t], f_ev);
                }
                model_apply_chain_on(
                    gpu,
                    Exec::Stream(streams[t]),
                    m,
                    step.c,
                    step.width,
                    &cols,
                    o.bs,
                    o.strategy,
                    o.tree,
                )?;
                if !opts.lookahead && p + 1 < npanels {
                    pending.push(gpu.record_event(streams[t]));
                }
            }
        }
    }

    let tl = gpu
        .try_synchronize()
        .map_err(|context| CaqrError::Breakdown { context })?;
    Ok((gpu.elapsed() - t0, tl))
}

/// Convenience mirror of [`crate::model::model_caqr_gflops`] for the
/// stream-scheduled path (SGEQRF flops over the DAG's modelled makespan).
pub fn model_caqr_dag_gflops(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: ScheduleOptions,
) -> Result<f64, CaqrError> {
    let secs = model_caqr_dag_seconds(gpu, m, n, opts)?;
    Ok(dense::geqrf_flops(m, n) / secs / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockSize, TreeShape};
    use crate::caqr::caqr;
    use crate::microkernels::ReductionStrategy;
    use dense::generate;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn opts(streams: usize, lookahead: bool) -> ScheduleOptions {
        ScheduleOptions {
            caqr: CaqrOptions {
                bs: BlockSize { h: 32, w: 8 },
                strategy: ReductionStrategy::RegisterSerialTransposed,
                tree: TreeShape::DeviceArity,
                check_finite: true,
            },
            streams,
            lookahead,
        }
    }

    #[test]
    fn dag_r_is_bit_identical_to_synchronous() {
        for &(m, n) in &[(256usize, 24usize), (213, 29), (40, 70), (200, 8)] {
            let a = generate::uniform::<f64>(m, n, 77);
            let sync = caqr(&gpu(), a.clone(), opts(4, true).caqr).unwrap();
            for &s in &[1usize, 2, 4, 5] {
                for &la in &[false, true] {
                    let (f, _tl) = caqr_dag(&gpu(), a.clone(), opts(s, la)).unwrap();
                    for j in 0..n {
                        for i in 0..m {
                            assert_eq!(
                                f.a[(i, j)],
                                sync.a[(i, j)],
                                "factored matrix diverged at ({i},{j}) for {m}x{n} s={s} la={la}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dag_launch_count_matches_ledger() {
        for &la in &[false, true] {
            let g = gpu();
            let a = generate::uniform::<f64>(256, 24, 31);
            let (f, _tl) = caqr_dag(&g, a, opts(3, la)).unwrap();
            assert_eq!(f.launches() as u64, g.ledger().calls, "lookahead={la}");
        }
    }

    #[test]
    fn model_replay_matches_execution() {
        for &(m, n) in &[(256usize, 32usize), (301, 27), (64, 80)] {
            for &s in &[1usize, 3, 4] {
                for &la in &[false, true] {
                    let o = opts(s, la);
                    let g1 = gpu();
                    let a = generate::uniform::<f32>(m, n, 42);
                    let (f, _tl) = caqr_dag(&g1, a, o).unwrap();
                    let exec = g1.ledger();

                    let g2 = gpu();
                    let secs = model_caqr_dag_seconds(&g2, m, n, o).unwrap();
                    let modeled = g2.ledger();

                    assert_eq!(exec.calls, modeled.calls, "{m}x{n} s={s} la={la}");
                    assert_eq!(f.launches() as u64, modeled.calls);
                    let dt = (exec.seconds - modeled.seconds).abs() / exec.seconds;
                    assert!(
                        dt < 1e-9,
                        "{m}x{n} s={s} la={la}: {} vs {}",
                        exec.seconds,
                        modeled.seconds
                    );
                    assert!((secs - exec.seconds).abs() / exec.seconds < 1e-9);
                }
            }
        }
    }

    #[test]
    fn lookahead_beats_barrier_on_tall_skinny() {
        // Launch-bound Table-I-style shape: overlapping the next factor with
        // the trailing update must shorten the modelled makespan.
        let o = ScheduleOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            lookahead: true,
        };
        let t_look = model_caqr_dag_seconds(&gpu(), 100_000, 192, o).unwrap();
        let t_barrier = model_caqr_dag_seconds(
            &gpu(),
            100_000,
            192,
            ScheduleOptions {
                lookahead: false,
                ..o
            },
        )
        .unwrap();
        assert!(
            t_look < t_barrier,
            "lookahead {t_look} should beat barrier {t_barrier}"
        );
    }

    #[test]
    fn zero_streams_rejected() {
        let a = generate::uniform::<f64>(64, 16, 1);
        assert!(caqr_dag(&gpu(), a, opts(0, true)).is_err());
    }
}
