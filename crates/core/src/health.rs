//! Numerical health check: a charged `health_check` kernel that scans the
//! matrix tile-by-tile for NaN/inf before factorization starts.
//!
//! The scan is a real GPU pass in the simulator's accounting — one block per
//! row tile, each streaming its `rows x n` slab from global memory — so
//! enabling it shows up in the ledger and the modelled figures exactly like
//! any other kernel. [`crate::model::model_caqr_seconds`] charges the same
//! per-block cost function, keeping model and execution bit-consistent.
//!
//! Drivers call [`check_matrix_finite`]; the first offending entry (in
//! column-major order) comes back as [`CaqrError::NonFinite`].

use crate::block::{tile_panel, BlockSize, Tile};
use crate::error::CaqrError;
use crate::kernels::THREADS;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{BlockCost, BlockCtx, CostMeter, DeviceSpec, Exec, Gpu, Kernel, LaunchConfig};
use parking_lot::Mutex;

/// Cost of one `health_check` block: a single coalesced read pass over a
/// `rows x cols` slab (no flops — comparisons are not counted as useful
/// arithmetic, matching the pretranspose convention).
pub fn health_block_cost(
    spec: &DeviceSpec,
    rows: usize,
    cols: usize,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    m.gmem((rows * cols) as u64, elem_bytes, true);
    m.cost
}

/// Launch configuration of the health scan — shared with the model replay so
/// both paths submit identical launches.
pub(crate) fn health_cfg(blocks: usize) -> LaunchConfig {
    LaunchConfig {
        blocks,
        threads_per_block: THREADS,
        shared_mem_bytes: 0,
        regs_per_thread: 8,
    }
}

/// The row tiles the health scan covers for an `m`-row matrix (the same
/// tiling the factor grid would use, so ragged remainders match).
pub(crate) fn health_tiles(m: usize, bs: BlockSize) -> Vec<Tile> {
    tile_panel(0, m, bs.h, bs.w)
}

/// `health_check`: block `b` scans row tile `b` across every column and
/// records the first non-finite entry it sees (column-major order).
pub struct HealthCheckKernel<'a, T: Scalar> {
    /// Read-only handle of the matrix being validated.
    pub a: MatPtr<T>,
    /// Row tiles (disjoint — the grid contract).
    pub tiles: &'a [Tile],
    /// Device description for cost derivation (borrowed: launch descriptors
    /// are transient, the spec outlives every launch).
    pub spec: &'a DeviceSpec,
    /// Per-block output slot: first `(row, col)` holding NaN/inf, if any.
    pub first_bad: &'a [Mutex<Option<(usize, usize)>>],
}

impl<'a, T: Scalar> Kernel<T> for HealthCheckKernel<'a, T> {
    fn name(&self) -> &'static str {
        "health_check"
    }

    fn config(&self) -> LaunchConfig {
        health_cfg(self.tiles.len())
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let tile = self.tiles[b];
        let cols = self.a.cols();
        let mut bad = None;
        'scan: for j in 0..cols {
            for i in 0..tile.rows {
                // SAFETY: read-only scan; nothing writes during this launch.
                let v = unsafe { self.a.get(tile.start + i, j) };
                if !v.is_finite() {
                    bad = Some((tile.start + i, j));
                    break 'scan;
                }
            }
        }
        *self.first_bad[b].lock() = bad;
        ctx.meter
            .charge(&health_block_cost(self.spec, tile.rows, cols, T::BYTES));
    }
}

/// Scan `a` for NaN/inf with a charged `health_check` launch. Returns
/// `Err(CaqrError::NonFinite)` naming the first offending entry in
/// column-major order, or `Ok(())` when every entry is finite.
pub fn check_matrix_finite<T: Scalar>(
    gpu: &Gpu,
    exec: Exec,
    a: &Matrix<T>,
    bs: BlockSize,
    context: &'static str,
) -> Result<(), CaqrError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Ok(());
    }
    let tiles = health_tiles(a.rows(), bs);
    let slots: Vec<Mutex<Option<(usize, usize)>>> =
        tiles.iter().map(|_| Mutex::new(None)).collect();
    {
        let kernel = HealthCheckKernel {
            a: MatPtr::new_readonly(a),
            tiles: &tiles,
            spec: gpu.spec(),
            first_bad: &slots,
        };
        gpu.launch_on(exec, &kernel)?;
    }
    // Blocks cover disjoint row ranges; the globally first entry in
    // column-major order is the one with the smallest (col, row).
    let mut first: Option<(usize, usize)> = None;
    for slot in slots {
        if let Some((i, j)) = slot.into_inner() {
            first = Some(match first {
                Some((fi, fj)) if (fj, fi) <= (j, i) => (fi, fj),
                _ => (i, j),
            });
        }
    }
    match first {
        Some((row, col)) => Err(CaqrError::NonFinite { context, row, col }),
        None => Ok(()),
    }
}

/// Host-side finiteness scan (no simulator, no charge) for the CPU drivers.
/// Returns the first non-finite entry in column-major order.
#[allow(clippy::eq_op)] // the `x - x` probe is +0.0 iff `x` is finite, NaN otherwise
pub fn first_nonfinite<T: Scalar>(a: &Matrix<T>) -> Option<(usize, usize)> {
    // Scan in blocks with a branchless lane accumulation of `x - x`
    // (exactly `+0.0` for finite `x`, NaN otherwise) so the common
    // all-finite path vectorizes; only a block that trips the check is
    // re-scanned scalar to locate the first offender, so the returned
    // index is identical to the naive element-by-element scan.
    const LANES: usize = 8;
    const BLOCK: usize = 64;
    for j in 0..a.cols() {
        let col = a.col(j);
        let mut base = 0;
        let mut blocks = col.chunks_exact(BLOCK);
        for b in &mut blocks {
            let mut acc = [T::ZERO; LANES];
            for c in b.chunks_exact(LANES) {
                for l in 0..LANES {
                    acc[l] += c[l] - c[l];
                }
            }
            if acc.iter().any(|&x| x != T::ZERO) {
                for (i, v) in b.iter().enumerate() {
                    if !v.is_finite() {
                        return Some((base + i, j));
                    }
                }
            }
            base += BLOCK;
        }
        for (i, v) in blocks.remainder().iter().enumerate() {
            if !v.is_finite() {
                return Some((base + i, j));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// ABFT checksums (DESIGN.md §10)
// ---------------------------------------------------------------------------
//
// The recovery executor verifies every task's output against an
// algorithm-based checksum computed from the task's *inputs*, so a silent
// data corruption is caught at the producing task instead of surfacing as a
// wrong answer (or not at all) after the run:
//
// * factor tasks — QR preserves column norms: for each panel column,
//   `sum_i A[i,j]^2` over the panel rows (taken before the factorization)
//   must equal the norm of the surviving `R` column, `sum_{i<=j} R[i,j]^2`.
//   A corrupted `R` element or a corrupted reflector (which perturbs `R`
//   through the tree reduction) breaks the invariant.
// * packed factors — the apply kernels never reread the tails in the
//   matrix; they consume the packed `V`/`T`/`tau` copies. Those are checked
//   with an orthogonality probe: `u = Q_p . 1` must satisfy
//   `||u||^2 == m` because `Q_p` is orthogonal (identity above the panel).
// * apply tasks — column sums are linear, so the post-update sum of each
//   trailing column is predicted from pre-update data as `u^T C[:,j]`
//   (`1^T Q_p^T C = (Q_p 1)^T C`). The comparison tolerance scales with
//   `sum_i |u_i C[i,j]|`, the condition of the predicted sum.
//
// All accumulations are f64 regardless of `T`. Tolerances are
// `64 * rows * eps(T)` relative — loose enough for the sequential-sum
// rounding of `rows`-long reductions, tight enough that the injected
// `x -> 2x + 1` corruption exceeds them by orders of magnitude. For `f32`
// at very large `rows` the relative tolerance approaches O(1) and the
// factor check goes soft; the chaos soak therefore runs in `f64`.

use crate::tsqr::{TreeNode, WyTile};

/// Relative checksum tolerance for reductions over `rows` elements of `T`.
pub fn checksum_tol<T: Scalar>(rows: usize) -> f64 {
    64.0 * rows as f64 * T::epsilon().to_f64()
}

/// Per-column `sum_i a[i, j]^2` over rows `row0..` of panel columns
/// `col0..col0+width` (f64 accumulation) — the pre-factor checksum.
pub fn panel_col_sumsq<T: Scalar>(
    a: &Matrix<T>,
    row0: usize,
    col0: usize,
    width: usize,
) -> Vec<f64> {
    (0..width)
        .map(|j| {
            a.col(col0 + j)[row0..]
                .iter()
                .map(|&v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum()
        })
        .collect()
}

/// Per-column norm of the surviving `R` triangle: `sum_{i<=j} R[i,j]^2`
/// read from the factored matrix at `(row0, col0)`.
pub fn r_col_sumsq<T: Scalar>(a: &Matrix<T>, row0: usize, col0: usize, width: usize) -> Vec<f64> {
    (0..width)
        .map(|j| {
            a.col(col0 + j)[row0..row0 + j + 1]
                .iter()
                .map(|&v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum()
        })
        .collect()
}

/// Check the factor-stage invariant `pre[j] == post[j]` to relative
/// tolerance; `col0` converts the panel-local index of the first mismatch
/// into the global column reported by [`CaqrError::ChecksumMismatch`].
pub fn verify_factor_checksums<T: Scalar>(
    pre: &[f64],
    post: &[f64],
    rows: usize,
    panel: usize,
    col0: usize,
) -> Result<(), CaqrError> {
    let tol = checksum_tol::<T>(rows);
    for (j, (&p, &q)) in pre.iter().zip(post).enumerate() {
        if (p - q).abs() > tol * p.abs().max(q.abs()).max(f64::MIN_POSITIVE) {
            return Err(CaqrError::ChecksumMismatch {
                stage: "factor",
                panel,
                col: col0 + j,
            });
        }
    }
    Ok(())
}

/// `u = Q_p . 1`: apply the panel's packed factors (`Q`, not `Q^T`) to an
/// all-ones `m`-vector. Rows above the panel stay exactly `1` (the implicit
/// identity), so `||u||^2 == m` when the packed factors are intact.
///
/// Takes the panel's components rather than a [`crate::tsqr::PanelFactor`]
/// so the host-multicore path (whose `CpuPanel` mirrors the layout) can
/// share it.
pub fn q_ones_probe<T: Scalar>(
    m: usize,
    width: usize,
    tiles: &[Tile],
    wy0: &[WyTile<T>],
    levels: &[Vec<TreeNode<T>>],
) -> Vec<T> {
    let mut ones = Matrix::from_fn(m, 1, |_, _| T::ONE);
    let p = MatPtr::new(&mut ones);
    // Q = (level-0 applies) . (tree applies bottom-up)^T reversed: the same
    // transpose=false order as `apply_panel_ptr_on` / `apply_panel_cpu`.
    for nodes in levels.iter().rev() {
        for node in nodes {
            crate::blockops::apply_tree_node(p, node, width, 0, 1, false);
        }
    }
    for (tile, wy) in tiles.iter().zip(wy0) {
        crate::blockops::apply_tile_wy(wy, p, *tile, 0, 1, false);
    }
    ones.col(0).to_vec()
}

/// Check the orthogonality probe: `||u||^2` must equal `u.len()` to
/// relative tolerance. Failure means the packed `V`/`T`/`tau` factors the
/// applies consume are corrupted, reported against the panel's first column.
pub fn verify_probe<T: Scalar>(u: &[T], panel: usize, col0: usize) -> Result<(), CaqrError> {
    let sumsq: f64 = u
        .iter()
        .map(|&v| {
            let x = v.to_f64();
            x * x
        })
        .sum();
    let m = u.len() as f64;
    if !sumsq.is_finite() || (sumsq - m).abs() > checksum_tol::<T>(u.len()) * m {
        return Err(CaqrError::ChecksumMismatch {
            stage: "factor",
            panel,
            col: col0,
        });
    }
    Ok(())
}

/// Per-column `(prediction, scale)` of the post-update sums of the columns
/// in `col_blocks`, computed from *pre-update* data: prediction
/// `sum_i u[i] * c[i,j]`, scale `sum_i |u[i] * c[i,j]|` (the tolerance
/// reference for the cancellation-prone prediction).
pub fn predicted_col_sums<T: Scalar>(
    u: &[T],
    c: &Matrix<T>,
    col_blocks: &[(usize, usize)],
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(c0, wc) in col_blocks {
        for j in c0..c0 + wc {
            let col = c.col(j);
            let mut pred = 0.0f64;
            let mut scale = 0.0f64;
            for (ui, cij) in u.iter().zip(col) {
                let term = ui.to_f64() * cij.to_f64();
                pred += term;
                scale += term.abs();
            }
            out.push((pred, scale));
        }
    }
    out
}

/// Per-column sums of the columns in `col_blocks` (f64 accumulation) — the
/// post-update observation the predictions are checked against.
pub fn actual_col_sums<T: Scalar>(c: &Matrix<T>, col_blocks: &[(usize, usize)]) -> Vec<f64> {
    let mut out = Vec::new();
    for &(c0, wc) in col_blocks {
        for j in c0..c0 + wc {
            out.push(c.col(j).iter().map(|&v| v.to_f64()).sum());
        }
    }
    out
}

/// Check the apply-stage checksums: each observed column sum must match its
/// prediction within `tol * scale`. The first mismatch is reported with the
/// *global* column index recovered from `col_blocks`.
pub fn verify_apply_checksums<T: Scalar>(
    pred: &[(f64, f64)],
    actual: &[f64],
    col_blocks: &[(usize, usize)],
    rows: usize,
    panel: usize,
) -> Result<(), CaqrError> {
    let tol = checksum_tol::<T>(rows);
    let cols = col_blocks.iter().flat_map(|&(c0, wc)| c0..c0 + wc);
    for ((&(p, scale), &a), col) in pred.iter().zip(actual).zip(cols) {
        if !a.is_finite() || (p - a).abs() > tol * scale.max(f64::MIN_POSITIVE) {
            return Err(CaqrError::ChecksumMismatch {
                stage: "apply",
                panel,
                col,
            });
        }
    }
    Ok(())
}

/// Composite factor-stage verification: read the surviving `R` column
/// norms at `(c, c)` and check them against the pre-factor checksums
/// `pre` ([`panel_col_sumsq`] of the same columns). `panel` and `c` locate
/// the mismatch report; the tolerance scales with the panel height
/// `m - c`. Shared by the sync driver ([`crate::backend::drive`]) and the
/// fused-batch verified path so both report identical errors.
pub fn factor_norm_check<T: Scalar>(
    a: &Matrix<T>,
    pre: &[f64],
    m: usize,
    panel: usize,
    c: usize,
    width: usize,
) -> Result<(), CaqrError> {
    let post = r_col_sumsq(a, c, c, width);
    verify_factor_checksums::<T>(&pre[..width], &post, m - c, panel, c)
}

/// Composite apply-stage verification: observe the post-update column sums
/// of `cols` and check them against the predictions `pred`
/// ([`predicted_col_sums`] over the same blocks). The counterpart of
/// [`factor_norm_check`] for the trailing update.
pub fn apply_sum_check<T: Scalar>(
    a: &Matrix<T>,
    pred: &[(f64, f64)],
    cols: &[(usize, usize)],
    m: usize,
    panel: usize,
) -> Result<(), CaqrError> {
    let actual = actual_col_sums(a, cols);
    verify_apply_checksums::<T>(pred, &actual, cols, m, panel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn bs() -> BlockSize {
        BlockSize { h: 32, w: 8 }
    }

    #[test]
    fn finite_matrix_passes_and_charges_one_launch() {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f64>(100, 12, 1);
        check_matrix_finite(&g, Exec::Sync, &a, bs(), "test input").unwrap();
        let l = g.ledger();
        assert_eq!(l.calls, 1);
        assert_eq!(l.per_op["health_check"].calls, 1);
        // One full read pass over the matrix.
        assert!(l.dram_bytes >= (100 * 12 * 8) as f64);
        assert_eq!(l.flops, 0.0);
    }

    #[test]
    fn first_offender_is_column_major_even_across_tiles() {
        let g = Gpu::new(DeviceSpec::c2050());
        let mut a = dense::generate::uniform::<f64>(100, 12, 2);
        // A later-column NaN in an early tile and an earlier-column NaN in a
        // late tile: column-major order picks the latter.
        a[(3, 7)] = f64::NAN;
        a[(90, 2)] = f64::INFINITY;
        let e = check_matrix_finite(&g, Exec::Sync, &a, bs(), "test input").unwrap_err();
        assert_eq!(
            e,
            CaqrError::NonFinite {
                context: "test input",
                row: 90,
                col: 2
            }
        );
        assert_eq!(first_nonfinite(&a), Some((90, 2)));
    }

    #[test]
    fn host_scan_matches_kernel_scan_on_clean_input() {
        let a = dense::generate::uniform::<f32>(64, 4, 3);
        assert_eq!(first_nonfinite(&a), None);
    }

    // -- ABFT checksums -----------------------------------------------------

    use crate::microkernels::ReductionStrategy;
    use crate::tsqr::{apply_panel_ptr, col_blocks, factor_panel_with_tree};
    use crate::TreeShape;

    fn factored_panel(
        m: usize,
        n: usize,
        w: usize,
    ) -> (Gpu, Matrix<f64>, Vec<f64>, crate::tsqr::PanelFactor<f64>) {
        let g = Gpu::new(DeviceSpec::c2050());
        let mut a = dense::generate::uniform::<f64>(m, n, 42);
        let pre = panel_col_sumsq(&a, 0, 0, w);
        let pf = factor_panel_with_tree(
            &g,
            &mut a,
            0,
            0,
            w,
            bs(),
            ReductionStrategy::RegisterSerialTransposed,
            TreeShape::Binomial,
        )
        .unwrap();
        (g, a, pre, pf)
    }

    #[test]
    fn factor_checksums_hold_on_a_clean_panel_and_catch_a_corrupted_r() {
        let (_g, mut a, pre, _pf) = factored_panel(160, 16, 8);
        let post = r_col_sumsq(&a, 0, 0, 8);
        verify_factor_checksums::<f64>(&pre, &post, 160, 0, 0).unwrap();

        // An SDC-style bump on one R element breaks the invariant at that
        // column.
        a[(2, 5)] = a[(2, 5)] * 2.0 + 1.0;
        let post = r_col_sumsq(&a, 0, 0, 8);
        let e = verify_factor_checksums::<f64>(&pre, &post, 160, 3, 0).unwrap_err();
        assert_eq!(
            e,
            CaqrError::ChecksumMismatch {
                stage: "factor",
                panel: 3,
                col: 5
            }
        );
    }

    #[test]
    fn ones_probe_is_unit_norm_per_row_and_catches_a_corrupted_t_factor() {
        let (_g, a, _pre, mut pf) = factored_panel(160, 16, 8);
        let u = q_ones_probe(a.rows(), pf.width, &pf.tiles, &pf.wy0, &pf.levels);
        verify_probe(&u, 0, 0).unwrap();

        pf.wy0[1].t[(0, 3)] += 0.5;
        let u = q_ones_probe(a.rows(), pf.width, &pf.tiles, &pf.wy0, &pf.levels);
        let e = verify_probe(&u, 0, 0).unwrap_err();
        assert!(matches!(
            e,
            CaqrError::ChecksumMismatch {
                stage: "factor",
                ..
            }
        ));
    }

    #[test]
    fn apply_checksums_predict_trailing_sums_and_catch_a_bumped_element() {
        let (g, mut a, _pre, pf) = factored_panel(160, 24, 8);
        let u = q_ones_probe(a.rows(), pf.width, &pf.tiles, &pf.wy0, &pf.levels);
        let cols = col_blocks(8, 24, 8);
        let pred = predicted_col_sums(&u, &a, &cols);
        let ptr = MatPtr::new(&mut a);
        apply_panel_ptr(&g, ptr, &pf, &cols, true).unwrap();
        let actual = actual_col_sums(&a, &cols);
        verify_apply_checksums::<f64>(&pred, &actual, &cols, 160, 0).unwrap();

        // Corrupt one updated element: the checksum localizes the column.
        a[(40, 13)] = a[(40, 13)] * 2.0 + 1.0;
        let actual = actual_col_sums(&a, &cols);
        let e = verify_apply_checksums::<f64>(&pred, &actual, &cols, 160, 2).unwrap_err();
        assert_eq!(
            e,
            CaqrError::ChecksumMismatch {
                stage: "apply",
                panel: 2,
                col: 13
            }
        );
    }
}
