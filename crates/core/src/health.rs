//! Numerical health check: a charged `health_check` kernel that scans the
//! matrix tile-by-tile for NaN/inf before factorization starts.
//!
//! The scan is a real GPU pass in the simulator's accounting — one block per
//! row tile, each streaming its `rows x n` slab from global memory — so
//! enabling it shows up in the ledger and the modelled figures exactly like
//! any other kernel. [`crate::model::model_caqr_seconds`] charges the same
//! per-block cost function, keeping model and execution bit-consistent.
//!
//! Drivers call [`check_matrix_finite`]; the first offending entry (in
//! column-major order) comes back as [`CaqrError::NonFinite`].

use crate::block::{tile_panel, BlockSize, Tile};
use crate::error::CaqrError;
use crate::kernels::THREADS;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{BlockCost, BlockCtx, CostMeter, DeviceSpec, Exec, Gpu, Kernel, LaunchConfig};
use parking_lot::Mutex;

/// Cost of one `health_check` block: a single coalesced read pass over a
/// `rows x cols` slab (no flops — comparisons are not counted as useful
/// arithmetic, matching the pretranspose convention).
pub fn health_block_cost(
    spec: &DeviceSpec,
    rows: usize,
    cols: usize,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    m.gmem((rows * cols) as u64, elem_bytes, true);
    m.cost
}

/// Launch configuration of the health scan — shared with the model replay so
/// both paths submit identical launches.
pub(crate) fn health_cfg(blocks: usize) -> LaunchConfig {
    LaunchConfig {
        blocks,
        threads_per_block: THREADS,
        shared_mem_bytes: 0,
        regs_per_thread: 8,
    }
}

/// The row tiles the health scan covers for an `m`-row matrix (the same
/// tiling the factor grid would use, so ragged remainders match).
pub(crate) fn health_tiles(m: usize, bs: BlockSize) -> Vec<Tile> {
    tile_panel(0, m, bs.h, bs.w)
}

/// `health_check`: block `b` scans row tile `b` across every column and
/// records the first non-finite entry it sees (column-major order).
pub struct HealthCheckKernel<'a, T: Scalar> {
    /// Read-only handle of the matrix being validated.
    pub a: MatPtr<T>,
    /// Row tiles (disjoint — the grid contract).
    pub tiles: &'a [Tile],
    /// Device description for cost derivation (borrowed: launch descriptors
    /// are transient, the spec outlives every launch).
    pub spec: &'a DeviceSpec,
    /// Per-block output slot: first `(row, col)` holding NaN/inf, if any.
    pub first_bad: &'a [Mutex<Option<(usize, usize)>>],
}

impl<'a, T: Scalar> Kernel<T> for HealthCheckKernel<'a, T> {
    fn name(&self) -> &'static str {
        "health_check"
    }

    fn config(&self) -> LaunchConfig {
        health_cfg(self.tiles.len())
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let tile = self.tiles[b];
        let cols = self.a.cols();
        let mut bad = None;
        'scan: for j in 0..cols {
            for i in 0..tile.rows {
                // SAFETY: read-only scan; nothing writes during this launch.
                let v = unsafe { self.a.get(tile.start + i, j) };
                if !v.is_finite() {
                    bad = Some((tile.start + i, j));
                    break 'scan;
                }
            }
        }
        *self.first_bad[b].lock() = bad;
        ctx.meter
            .charge(&health_block_cost(self.spec, tile.rows, cols, T::BYTES));
    }
}

/// Scan `a` for NaN/inf with a charged `health_check` launch. Returns
/// `Err(CaqrError::NonFinite)` naming the first offending entry in
/// column-major order, or `Ok(())` when every entry is finite.
pub fn check_matrix_finite<T: Scalar>(
    gpu: &Gpu,
    exec: Exec,
    a: &Matrix<T>,
    bs: BlockSize,
    context: &'static str,
) -> Result<(), CaqrError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Ok(());
    }
    let tiles = health_tiles(a.rows(), bs);
    let slots: Vec<Mutex<Option<(usize, usize)>>> =
        tiles.iter().map(|_| Mutex::new(None)).collect();
    {
        let kernel = HealthCheckKernel {
            a: MatPtr::new_readonly(a),
            tiles: &tiles,
            spec: gpu.spec(),
            first_bad: &slots,
        };
        gpu.launch_on(exec, &kernel)?;
    }
    // Blocks cover disjoint row ranges; the globally first entry in
    // column-major order is the one with the smallest (col, row).
    let mut first: Option<(usize, usize)> = None;
    for slot in slots {
        if let Some((i, j)) = slot.into_inner() {
            first = Some(match first {
                Some((fi, fj)) if (fj, fi) <= (j, i) => (fi, fj),
                _ => (i, j),
            });
        }
    }
    match first {
        Some((row, col)) => Err(CaqrError::NonFinite { context, row, col }),
        None => Ok(()),
    }
}

/// Host-side finiteness scan (no simulator, no charge) for the CPU drivers.
/// Returns the first non-finite entry in column-major order.
#[allow(clippy::eq_op)] // the `x - x` probe is +0.0 iff `x` is finite, NaN otherwise
pub fn first_nonfinite<T: Scalar>(a: &Matrix<T>) -> Option<(usize, usize)> {
    // Scan in blocks with a branchless lane accumulation of `x - x`
    // (exactly `+0.0` for finite `x`, NaN otherwise) so the common
    // all-finite path vectorizes; only a block that trips the check is
    // re-scanned scalar to locate the first offender, so the returned
    // index is identical to the naive element-by-element scan.
    const LANES: usize = 8;
    const BLOCK: usize = 64;
    for j in 0..a.cols() {
        let col = a.col(j);
        let mut base = 0;
        let mut blocks = col.chunks_exact(BLOCK);
        for b in &mut blocks {
            let mut acc = [T::ZERO; LANES];
            for c in b.chunks_exact(LANES) {
                for l in 0..LANES {
                    acc[l] += c[l] - c[l];
                }
            }
            if acc.iter().any(|&x| x != T::ZERO) {
                for (i, v) in b.iter().enumerate() {
                    if !v.is_finite() {
                        return Some((base + i, j));
                    }
                }
            }
            base += BLOCK;
        }
        for (i, v) in blocks.remainder().iter().enumerate() {
            if !v.is_finite() {
                return Some((base + i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn bs() -> BlockSize {
        BlockSize { h: 32, w: 8 }
    }

    #[test]
    fn finite_matrix_passes_and_charges_one_launch() {
        let g = Gpu::new(DeviceSpec::c2050());
        let a = dense::generate::uniform::<f64>(100, 12, 1);
        check_matrix_finite(&g, Exec::Sync, &a, bs(), "test input").unwrap();
        let l = g.ledger();
        assert_eq!(l.calls, 1);
        assert_eq!(l.per_op["health_check"].calls, 1);
        // One full read pass over the matrix.
        assert!(l.dram_bytes >= (100 * 12 * 8) as f64);
        assert_eq!(l.flops, 0.0);
    }

    #[test]
    fn first_offender_is_column_major_even_across_tiles() {
        let g = Gpu::new(DeviceSpec::c2050());
        let mut a = dense::generate::uniform::<f64>(100, 12, 2);
        // A later-column NaN in an early tile and an earlier-column NaN in a
        // late tile: column-major order picks the latter.
        a[(3, 7)] = f64::NAN;
        a[(90, 2)] = f64::INFINITY;
        let e = check_matrix_finite(&g, Exec::Sync, &a, bs(), "test input").unwrap_err();
        assert_eq!(
            e,
            CaqrError::NonFinite {
                context: "test input",
                row: 90,
                col: 2
            }
        );
        assert_eq!(first_nonfinite(&a), Some((90, 2)));
    }

    #[test]
    fn host_scan_matches_kernel_scan_on_clean_input() {
        let a = dense::generate::uniform::<f32>(64, 4, 3);
        assert_eq!(first_nonfinite(&a), None);
    }
}
