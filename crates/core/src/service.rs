//! Batched multi-tenant QR service: a bounded admission queue feeding
//! worker threads that pack many independent CAQR jobs into **shape-fused
//! launches** (DESIGN.md §14).
//!
//! The paper's design wins by keeping the hardware saturated; production
//! traffic is not one 65536x16 matrix but thousands of concurrent
//! small-to-large factorizations. At tall-skinny widths the host path is
//! launch-bound, not flop-bound — the vendored rayon shim (like a real GPU
//! at small grid sizes) pays a fixed fan-out cost per parallel region — so
//! the throughput core here is [`factor_many`]: jobs whose matrices share a
//! shape class walk the synchronous panel schedule **in lockstep**, with
//! every per-tile task of every job packed into one parallel region
//! (per-job offsets into one flat work list). Because each
//! [`crate::blockops`] task is a pure function of its own job's matrix
//! region, fusion changes *where* tasks run and nothing about what they
//! compute: every serviced matrix is bit-identical to a standalone
//! [`caqr_cpu`] run, which the conformance suite pins.
//!
//! On top of the batch engine sits [`Service`]: a bounded, backpressured
//! admission queue ([`Service::submit`] blocks when full,
//! [`Service::try_submit`] returns the job), priority classes, optional
//! per-job deadlines (expired jobs are shed at dispatch — the admission
//! analogue of the gpu-sim watchdog that kills hung launches), and a
//! per-tenant [`ServiceLedger`] split out of the global counters, whose
//! per-tenant sums reconcile exactly against the global row.

use crate::backend::DagGeometry;
use crate::block::{plan_tree, tile_panel, BlockSize};
use crate::blockops;
use crate::error::{checked_elems, CaqrError};
use crate::health;
use crate::multicore::{caqr_cpu, CpuCaqr, CpuCaqrOptions, CpuPanel};
use crate::tsqr::{col_blocks, TreeNode, WyTile};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use rayon::prelude::*;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover a lock even if a holder panicked: the queue and ledger hold
/// plain data whose invariants are re-established by every transition, so
/// continuing after a poisoned lock beats deadlocking the service.
fn lock<'a, S>(m: &'a Mutex<S>) -> MutexGuard<'a, S> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// Priority class of a service job. Lower is served first when the queue
/// has a backlog; within a class, admission order wins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: always dispatched ahead of a backlog.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic that tolerates queueing.
    Batch,
}

impl Priority {
    /// All classes, in dispatch-preference order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable lowercase name (report keys, ledger rows).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// One factorization request: the matrix, the host options, and the
/// multi-tenant metadata the scheduler and ledger act on.
pub struct JobSpec<T: Scalar> {
    /// The matrix to factor.
    pub a: Matrix<T>,
    /// Host CAQR options (tile shape, tree, checksums).
    pub opts: CpuCaqrOptions,
    /// Accounting identity the job is charged to.
    pub tenant: String,
    /// Dispatch priority class.
    pub priority: Priority,
    /// Optional completion deadline, relative to submission. A job still
    /// queued past its deadline is **shed** at dispatch with
    /// [`ServiceError::DeadlineExpired`] instead of burning worker time; a
    /// job that completes late is served but counted as a deadline miss.
    pub deadline: Option<Duration>,
}

impl<T: Scalar> JobSpec<T> {
    /// A default-tenant, standard-priority, deadline-free job.
    pub fn new(a: Matrix<T>, opts: CpuCaqrOptions) -> JobSpec<T> {
        JobSpec {
            a,
            opts,
            tenant: "default".to_string(),
            priority: Priority::Standard,
            deadline: None,
        }
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the completion deadline (relative to submission).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

// ---------------------------------------------------------------------------
// The shape-fused batch engine
// ---------------------------------------------------------------------------

/// The fusion key: jobs agreeing on all of this factor under one packed
/// launch sequence. Tree shapes are keyed by their *effective arity* — a
/// `DeviceArity` tree and an explicit `Arity(h/w)` tree plan identically.
/// Checksummed jobs never fuse (their verification passes interleave the
/// panel loop) and fall back to per-job [`caqr_cpu`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct FuseKey {
    m: usize,
    n: usize,
    h: usize,
    w: usize,
    arity: usize,
}

/// Classify one job: `Some(key)` if it can enter a fused group, `None` if
/// it must run solo (odd/invalid shapes, checksummed jobs). Solo jobs go
/// through [`caqr_cpu`] untouched, so invalid inputs surface exactly the
/// typed error a standalone run would produce.
fn fuse_key<T: Scalar>(a: &Matrix<T>, opts: &CpuCaqrOptions) -> Option<FuseKey> {
    let (m, n) = a.shape();
    let bs = BlockSize {
        h: opts.tile_rows,
        w: opts.panel_width,
    };
    if opts.verify_checksums
        || m == 0
        || n == 0
        || bs.validate().is_err()
        || checked_elems(m, n, "matrix element count").is_err()
    {
        return None;
    }
    Some(FuseKey {
        m,
        n,
        h: bs.h,
        w: bs.w,
        arity: opts.tree.arity(bs),
    })
}

/// What one [`factor_many`] call did, for the ledger and the benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Jobs that ran inside a fused group of two or more.
    pub fused_jobs: usize,
    /// Jobs that ran as standalone `caqr_cpu` calls (odd shapes, checksum
    /// jobs, or the only member of their shape class).
    pub solo_jobs: usize,
    /// Fused groups executed.
    pub fused_groups: usize,
    /// Parallel regions actually issued by the fused groups — the number a
    /// one-at-a-time schedule would multiply by the group size.
    pub fused_launches: usize,
    /// Sum over jobs of the launch count the synchronous driver would
    /// report for that job alone ([`crate::DriveOutcome::launches`]).
    pub logical_launches: usize,
}

/// The launch count [`crate::backend::drive`] reports for one completed
/// host factorization: per panel, one level-0 factor launch plus one per
/// tree level, and the same again for the trailing apply when the panel
/// has trailing columns. The host health scan issues zero launches.
pub fn logical_launches<T: Scalar>(f: &CpuCaqr<T>) -> usize {
    let n = f.a.cols();
    f.panels
        .iter()
        .map(|p| {
            let chain = 1 + p.levels.len();
            if p.col0 + p.width < n {
                2 * chain
            } else {
                chain
            }
        })
        .sum()
}

/// Factor many independent matrices, fusing same-shape jobs into packed
/// lockstep launches. Returns one result per job, in input order, each
/// **bit-identical** to `caqr_cpu(a, opts)` on the same input.
///
/// Jobs are grouped by [shape class](FuseKey); each group of two or more
/// walks the synchronous panel schedule in lockstep, with the per-tile
/// factor tasks, per-group tree reductions, and per-(tile × column-block)
/// trailing updates of *all* jobs packed into one parallel region per
/// schedule step (a flat work list with per-job offsets). Odd shapes,
/// checksummed jobs, and singleton classes fall back to per-job
/// [`caqr_cpu`] runs. Fusion preserves bit-identity because every packed
/// task reads and writes only its own job's matrix and the schedule per
/// job is unchanged — see the conformance proptest in
/// `tests/service_batching.rs`.
pub fn factor_many<T: Scalar>(
    jobs: Vec<(Matrix<T>, CpuCaqrOptions)>,
) -> Vec<Result<CpuCaqr<T>, CaqrError>> {
    factor_many_with_stats(jobs).0
}

/// [`factor_many`] plus the fusion accounting the service ledger records.
pub fn factor_many_with_stats<T: Scalar>(
    jobs: Vec<(Matrix<T>, CpuCaqrOptions)>,
) -> (Vec<Result<CpuCaqr<T>, CaqrError>>, BatchStats) {
    let njobs = jobs.len();
    let mut stats = BatchStats::default();
    let mut mats: Vec<Option<Matrix<T>>> = Vec::with_capacity(njobs);
    let mut optsv: Vec<CpuCaqrOptions> = Vec::with_capacity(njobs);
    let mut out: Vec<Option<Result<CpuCaqr<T>, CaqrError>>> = Vec::with_capacity(njobs);
    let mut groups: BTreeMap<FuseKey, Vec<usize>> = BTreeMap::new();
    let mut solo: Vec<usize> = Vec::new();
    for (idx, (a, opts)) in jobs.into_iter().enumerate() {
        match fuse_key(&a, &opts) {
            Some(key) => groups.entry(key).or_default().push(idx),
            None => solo.push(idx),
        }
        mats.push(Some(a));
        optsv.push(opts);
        out.push(None);
    }

    for (key, idxs) in groups {
        if idxs.len() < 2 {
            solo.extend(idxs);
            continue;
        }
        run_fused_group(&key, &idxs, &mut mats, &optsv, &mut out, &mut stats);
    }
    for idx in solo {
        let a = mats[idx]
            .take()
            .expect("solo job matrix consumed exactly once");
        let res = caqr_cpu(a, optsv[idx]);
        if let Ok(f) = &res {
            stats.logical_launches += logical_launches(f);
        }
        stats.solo_jobs += 1;
        out[idx] = Some(res);
    }

    let results = out
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect();
    (results, stats)
}

/// Run one fused shape class: the synchronous panel schedule, executed in
/// lockstep across all member jobs with one packed work list per launch.
fn run_fused_group<T: Scalar>(
    key: &FuseKey,
    idxs: &[usize],
    mats: &mut [Option<Matrix<T>>],
    optsv: &[CpuCaqrOptions],
    out: &mut [Option<Result<CpuCaqr<T>, CaqrError>>],
    stats: &mut BatchStats,
) {
    let (m, n) = (key.m, key.n);
    let bs = BlockSize { h: key.h, w: key.w };

    // Fused health scan: one parallel region over the group, one verdict
    // per job. A NaN fails only its own job (same typed error, same first
    // offending coordinate, as a standalone run), and the group shrinks.
    let scans: Vec<Option<(usize, usize)>> = {
        let views: Vec<&Matrix<T>> = idxs
            .iter()
            .map(|&i| {
                mats[i]
                    .as_ref()
                    .expect("grouped job matrix present until consumed")
            })
            .collect();
        views
            .par_iter()
            .map(|a| health::first_nonfinite(a))
            .collect()
    };
    stats.fused_launches += 1;
    let mut members: Vec<usize> = Vec::with_capacity(idxs.len());
    for (&idx, scan) in idxs.iter().zip(&scans) {
        match scan {
            Some((row, col)) => {
                out[idx] = Some(Err(CaqrError::NonFinite {
                    context: "caqr_cpu input",
                    row: *row,
                    col: *col,
                }));
                mats[idx] = None;
                stats.solo_jobs += 1;
            }
            None => members.push(idx),
        }
    }
    if members.is_empty() {
        return;
    }

    let g = members.len();
    let mut owned: Vec<Matrix<T>> = members
        .iter()
        .map(|&i| mats[i].take().expect("fused job matrix consumed once"))
        .collect();
    // Lifetime-erased per-job matrix handles, shared by every packed task.
    // Safety contract (as in `factor_panel_host` / `apply_panel_parts`):
    // each task touches only its own job's disjoint tile / column block,
    // and `owned` is not accessed through any other path until the fused
    // loop finishes.
    let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();

    let mut pan: Vec<Vec<CpuPanel<T>>> = (0..g).map(|_| Vec::new()).collect();
    let mut logical = 0usize;
    for step in DagGeometry::panel_steps(m, n, bs.w) {
        // Level 0, fused: the (job × tile) grid in one parallel region.
        // Job j's tasks occupy the packed range [j * nt, (j + 1) * nt).
        let tiles = tile_panel(step.c, m - step.c, bs.h, bs.w);
        let nt = tiles.len();
        let work: Vec<(usize, usize)> = (0..g)
            .flat_map(|j| (0..nt).map(move |ti| (j, ti)))
            .collect();
        let wy_flat: Vec<WyTile<T>> = work
            .par_iter()
            .map(|&(j, ti)| blockops::factor_tile(ptrs[j], tiles[ti], step.c, step.width))
            .collect();
        stats.fused_launches += 1;
        let mut wy_it = wy_flat.into_iter();
        let wy0s: Vec<Vec<WyTile<T>>> = (0..g).map(|_| wy_it.by_ref().take(nt).collect()).collect();

        // Tree levels, fused: the (job × group) grid per level, with a
        // barrier between levels exactly where the per-job schedule has one.
        let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
        let plan = plan_tree(&starts, key.arity);
        let mut lvls: Vec<Vec<Vec<TreeNode<T>>>> = (0..g).map(|_| Vec::new()).collect();
        for level in &plan.levels {
            let ng = level.len();
            let work: Vec<(usize, usize)> = (0..g)
                .flat_map(|j| (0..ng).map(move |gi| (j, gi)))
                .collect();
            let nodes_flat: Vec<TreeNode<T>> = work
                .par_iter()
                .map(|&(j, gi)| {
                    blockops::factor_tree_group(ptrs[j], &level[gi].members, step.c, step.width)
                })
                .collect();
            stats.fused_launches += 1;
            let mut it = nodes_flat.into_iter();
            for lv in lvls.iter_mut() {
                lv.push(it.by_ref().take(ng).collect());
            }
        }
        logical += 1 + plan.levels.len();
        let lvl_sizes: Vec<usize> = plan.levels.iter().map(|l| l.len()).collect();

        // Trailing update, fused: horizontal (job × tile × column-block),
        // then each tree level — the same order `apply_panel_parts` uses.
        if step.c + step.width < n {
            let cols = col_blocks(step.c + step.width, n, bs.w);
            let ncb = cols.len();
            let work: Vec<(usize, usize, usize)> = (0..g)
                .flat_map(|j| (0..nt).flat_map(move |ti| (0..ncb).map(move |cb| (j, ti, cb))))
                .collect();
            work.par_iter().for_each(|&(j, ti, cb)| {
                let (c0, wc) = cols[cb];
                blockops::apply_tile_wy(&wy0s[j][ti], ptrs[j], tiles[ti], c0, wc, true);
            });
            stats.fused_launches += 1;
            for (li, ng) in lvl_sizes.iter().copied().enumerate() {
                let work: Vec<(usize, usize, usize)> = (0..g)
                    .flat_map(|j| (0..ng).flat_map(move |gi| (0..ncb).map(move |cb| (j, gi, cb))))
                    .collect();
                work.par_iter().for_each(|&(j, gi, cb)| {
                    let (c0, wc) = cols[cb];
                    blockops::apply_tree_node(ptrs[j], &lvls[j][li][gi], step.width, c0, wc, true);
                });
                stats.fused_launches += 1;
            }
            logical += 1 + plan.levels.len();
        }

        for ((p, wy0), lv) in pan.iter_mut().zip(wy0s).zip(lvls) {
            p.push(CpuPanel {
                col0: step.c,
                width: step.width,
                tiles: tiles.clone(),
                wy0,
                levels: lv,
            });
        }
    }

    for ((idx, a), panels) in members.iter().copied().zip(owned).zip(pan) {
        out[idx] = Some(Ok(CpuCaqr {
            a,
            panels,
            opts: optsv[idx],
        }));
    }
    stats.fused_jobs += g;
    stats.fused_groups += 1;
    stats.logical_launches += g * logical;
}

// ---------------------------------------------------------------------------
// Per-tenant ledger
// ---------------------------------------------------------------------------

/// Counters charged to one tenant (and, summed, to the global row of the
/// [`ServiceLedger`]). Every charge is applied to the tenant's row and the
/// global row in the same critical section, so the reconciliation invariant
/// — per-tenant sums equal the global row — holds at every instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantCounters {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs factored successfully.
    pub jobs_completed: u64,
    /// Jobs that surfaced a [`CaqrError`].
    pub jobs_failed: u64,
    /// Jobs shed at dispatch because their deadline had already expired.
    pub jobs_shed: u64,
    /// Jobs served past their deadline (completed, but late).
    pub deadline_misses: u64,
    /// Panels factored on behalf of the tenant.
    pub panels: u64,
    /// Per-job logical launch chains, as the synchronous driver counts them.
    pub launches: u64,
    /// Jobs that ran inside a fused group.
    pub fused_jobs: u64,
    /// Jobs that ran standalone.
    pub solo_jobs: u64,
    /// Useful flops factored (`geqrf` count of each completed job).
    pub flops: f64,
    /// Seconds jobs spent queued before dispatch.
    pub queue_seconds: f64,
    /// Seconds of batch execution the jobs participated in.
    pub service_seconds: f64,
}

impl TenantCounters {
    fn add(&mut self, o: &TenantCounters) {
        self.jobs_submitted += o.jobs_submitted;
        self.jobs_completed += o.jobs_completed;
        self.jobs_failed += o.jobs_failed;
        self.jobs_shed += o.jobs_shed;
        self.deadline_misses += o.deadline_misses;
        self.panels += o.panels;
        self.launches += o.launches;
        self.fused_jobs += o.fused_jobs;
        self.solo_jobs += o.solo_jobs;
        self.flops += o.flops;
        self.queue_seconds += o.queue_seconds;
        self.service_seconds += o.service_seconds;
    }
}

/// Service accounting, split per tenant with a global row — the
/// multi-tenant analogue of the gpu-sim `CostLedger`.
#[derive(Clone, Debug, Default)]
pub struct ServiceLedger {
    /// Sum over all tenants.
    pub global: TenantCounters,
    /// Per-tenant rows, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Batches dispatched (fused or solo).
    pub batches: u64,
    /// Parallel regions actually issued by fused execution.
    pub fused_launches: u64,
}

impl ServiceLedger {
    /// Apply one charge to a tenant's row *and* the global row.
    fn charge(&mut self, tenant: &str, f: impl Fn(&mut TenantCounters)) {
        f(self.tenants.entry(tenant.to_string()).or_default());
        f(&mut self.global);
    }

    /// Verify the split-accounting invariant: summing every per-tenant row
    /// reproduces the global row (exactly for the integer counters, to a
    /// 1e-9 relative tolerance for the float accumulators, whose summation
    /// order differs between the two sides).
    pub fn reconcile(&self) -> Result<(), String> {
        let mut sum = TenantCounters::default();
        for row in self.tenants.values() {
            sum.add(row);
        }
        let ints = [
            (
                "jobs_submitted",
                sum.jobs_submitted,
                self.global.jobs_submitted,
            ),
            (
                "jobs_completed",
                sum.jobs_completed,
                self.global.jobs_completed,
            ),
            ("jobs_failed", sum.jobs_failed, self.global.jobs_failed),
            ("jobs_shed", sum.jobs_shed, self.global.jobs_shed),
            (
                "deadline_misses",
                sum.deadline_misses,
                self.global.deadline_misses,
            ),
            ("panels", sum.panels, self.global.panels),
            ("launches", sum.launches, self.global.launches),
            ("fused_jobs", sum.fused_jobs, self.global.fused_jobs),
            ("solo_jobs", sum.solo_jobs, self.global.solo_jobs),
        ];
        for (name, got, want) in ints {
            if got != want {
                return Err(format!(
                    "ledger split broken: tenant {name} sum {got} != global {want}"
                ));
            }
        }
        let floats = [
            ("flops", sum.flops, self.global.flops),
            (
                "queue_seconds",
                sum.queue_seconds,
                self.global.queue_seconds,
            ),
            (
                "service_seconds",
                sum.service_seconds,
                self.global.service_seconds,
            ),
        ];
        for (name, got, want) in floats {
            if (got - want).abs() > 1e-9 * (1.0 + want.abs()) {
                return Err(format!(
                    "ledger split broken: tenant {name} sum {got} != global {want}"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The admission queue and worker pool
// ---------------------------------------------------------------------------

/// Service sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads pulling batches off the queue (min 1).
    pub workers: usize,
    /// Queue bound: [`Service::submit`] blocks and [`Service::try_submit`]
    /// rejects once this many jobs are queued (backpressure).
    pub queue_capacity: usize,
    /// Largest fused group a worker will gather per dispatch. `1` disables
    /// fusion (the one-at-a-time baseline of the benches).
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 8,
        }
    }
}

/// Why a submission was not accepted. The job comes back untouched.
pub enum SubmitError<T: Scalar> {
    /// The queue is at capacity (only from [`Service::try_submit`]).
    Full(JobSpec<T>),
    /// The service is shutting down.
    Shutdown(JobSpec<T>),
}

impl<T: Scalar> std::fmt::Debug for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "SubmitError::Full"),
            SubmitError::Shutdown(_) => write!(f, "SubmitError::Shutdown"),
        }
    }
}

/// Why a serviced job failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The factorization itself failed.
    Caqr(CaqrError),
    /// The job was still queued when its deadline passed; it was shed at
    /// dispatch without factoring (the admission-side analogue of the
    /// watchdog killing a hung launch).
    DeadlineExpired {
        /// How long the job had been queued when it was shed.
        queued: Duration,
        /// The deadline it carried.
        deadline: Duration,
    },
    /// The service shut down before the job completed.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Caqr(e) => write!(f, "factorization failed: {e}"),
            ServiceError::DeadlineExpired { queued, deadline } => write!(
                f,
                "deadline expired: queued {:.1} ms against a {:.1} ms deadline",
                queued.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            ServiceError::Shutdown => write!(f, "service shut down before the job completed"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CaqrError> for ServiceError {
    fn from(e: CaqrError) -> Self {
        ServiceError::Caqr(e)
    }
}

/// What the service hands back for one job.
pub struct JobOutcome<T: Scalar> {
    /// The factorization, or the typed failure.
    pub result: Result<CpuCaqr<T>, ServiceError>,
    /// Tenant the job was charged to.
    pub tenant: String,
    /// Priority class the job ran under.
    pub priority: Priority,
    /// Time spent queued before dispatch.
    pub queue_wait: Duration,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Size of the fused group the job ran in (1 = solo).
    pub fused_with: usize,
    /// The job completed after its deadline (still served).
    pub missed_deadline: bool,
}

/// Claim check for a submitted job.
pub struct Ticket<T: Scalar> {
    rx: mpsc::Receiver<JobOutcome<T>>,
}

impl<T: Scalar> Ticket<T> {
    /// Block until the job completes (or the service dies with it).
    pub fn wait(self) -> Result<JobOutcome<T>, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Shutdown)
    }
}

struct QueuedJob<T: Scalar> {
    spec: JobSpec<T>,
    key: Option<FuseKey>,
    seq: u64,
    submitted: Instant,
    tx: mpsc::Sender<JobOutcome<T>>,
}

struct QueueState<T: Scalar> {
    q: VecDeque<QueuedJob<T>>,
    seq: u64,
    shutdown: bool,
}

struct Shared<T: Scalar> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    ledger: Mutex<ServiceLedger>,
    capacity: usize,
    max_batch: usize,
}

impl<T: Scalar> Shared<T> {
    fn new(cfg: &ServiceConfig) -> Shared<T> {
        Shared {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                seq: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            ledger: Mutex::new(ServiceLedger::default()),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
        }
    }

    fn push(&self, st: &mut QueueState<T>, spec: JobSpec<T>) -> Ticket<T> {
        let (tx, rx) = mpsc::channel();
        let key = fuse_key(&spec.a, &spec.opts);
        lock(&self.ledger).charge(&spec.tenant, |c| c.jobs_submitted += 1);
        st.q.push_back(QueuedJob {
            spec,
            key,
            seq: st.seq,
            submitted: Instant::now(),
            tx,
        });
        st.seq += 1;
        self.not_empty.notify_one();
        Ticket { rx }
    }

    /// Non-blocking admission: reject with the job when full or shut down.
    #[allow(clippy::result_large_err)] // the Err hands the JobSpec back
    fn try_push(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err(SubmitError::Shutdown(spec));
        }
        if st.q.len() >= self.capacity {
            return Err(SubmitError::Full(spec));
        }
        Ok(self.push(&mut st, spec))
    }

    /// Blocking admission: wait for queue space (backpressure).
    #[allow(clippy::result_large_err)] // the Err hands the JobSpec back
    fn push_blocking(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        let mut st = lock(&self.state);
        while st.q.len() >= self.capacity && !st.shutdown {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if st.shutdown {
            return Err(SubmitError::Shutdown(spec));
        }
        Ok(self.push(&mut st, spec))
    }

    /// Pull the next batch: the best-(priority, admission-order) job leads,
    /// and up to `max_batch - 1` queued jobs of the same shape class ride
    /// along regardless of their own priority — opportunistic fusion makes
    /// them near-free. Returns `None` when shut down and drained.
    fn next_batch(&self) -> Option<Vec<QueuedJob<T>>> {
        let mut st = lock(&self.state);
        loop {
            if !st.q.is_empty() {
                break;
            }
            if st.shutdown {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let lead =
            st.q.iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.spec.priority, j.seq))
                .map(|(i, _)| i)
                .expect("queue verified non-empty");
        let lead_key = st.q[lead].key;
        let mut picks = vec![lead];
        if let Some(key) = lead_key {
            for (i, job) in st.q.iter().enumerate() {
                if picks.len() >= self.max_batch {
                    break;
                }
                if i != lead && job.key == Some(key) {
                    picks.push(i);
                }
            }
        }
        // Preserve admission order within the batch; remove back-to-front
        // so earlier indices stay valid.
        picks.sort_unstable();
        let mut batch: Vec<QueuedJob<T>> = Vec::with_capacity(picks.len());
        for &i in picks.iter().rev() {
            batch.push(st.q.remove(i).expect("picked index in bounds"));
        }
        batch.reverse();
        drop(st);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Serve one batch: shed expired-deadline jobs, run the rest through
    /// the fused engine, account everything, and resolve the tickets.
    fn serve(&self, batch: Vec<QueuedJob<T>>) {
        let dispatch = Instant::now();
        let mut live: Vec<QueuedJob<T>> = Vec::with_capacity(batch.len());
        for job in batch {
            let queued = dispatch.duration_since(job.submitted);
            match job.spec.deadline {
                Some(deadline) if queued > deadline => {
                    lock(&self.ledger).charge(&job.spec.tenant, |c| {
                        c.jobs_shed += 1;
                        c.queue_seconds += queued.as_secs_f64();
                    });
                    let _ = job.tx.send(JobOutcome {
                        result: Err(ServiceError::DeadlineExpired { queued, deadline }),
                        tenant: job.spec.tenant,
                        priority: job.spec.priority,
                        queue_wait: queued,
                        latency: queued,
                        fused_with: 1,
                        missed_deadline: true,
                    });
                }
                _ => live.push(job),
            }
        }
        if live.is_empty() {
            return;
        }

        let inputs: Vec<(Matrix<T>, CpuCaqrOptions)> = live
            .iter()
            .map(|j| (j.spec.a.clone(), j.spec.opts))
            .collect();
        let (results, stats) = factor_many_with_stats(inputs);
        let service_secs = dispatch.elapsed().as_secs_f64();
        let fused_with = if stats.fused_jobs > 0 {
            stats.fused_jobs
        } else {
            1
        };

        let mut ledger = lock(&self.ledger);
        ledger.batches += 1;
        ledger.fused_launches += stats.fused_launches as u64;
        for (job, result) in live.into_iter().zip(results) {
            let queued = dispatch.duration_since(job.submitted);
            let latency = job.submitted.elapsed();
            let missed = job.spec.deadline.is_some_and(|d| latency > d);
            let in_fused = stats.fused_jobs > 0 && job.key.is_some();
            ledger.charge(&job.spec.tenant, |c| {
                c.queue_seconds += queued.as_secs_f64();
                c.service_seconds += service_secs;
                if missed {
                    c.deadline_misses += 1;
                }
                if in_fused {
                    c.fused_jobs += 1;
                } else {
                    c.solo_jobs += 1;
                }
                match &result {
                    Ok(f) => {
                        c.jobs_completed += 1;
                        c.panels += f.panels.len() as u64;
                        c.launches += logical_launches(f) as u64;
                        let (m, n) = f.a.shape();
                        c.flops += dense::geqrf_flops(m, n);
                    }
                    Err(_) => c.jobs_failed += 1,
                }
            });
            let _ = job.tx.send(JobOutcome {
                result: result.map_err(ServiceError::from),
                tenant: job.spec.tenant,
                priority: job.spec.priority,
                queue_wait: queued,
                latency,
                fused_with: if in_fused { fused_with } else { 1 },
                missed_deadline: missed,
            });
        }
    }
}

/// The batched multi-tenant QR service: worker threads over a bounded
/// admission queue, dispatching shape-fused [`factor_many`] batches.
///
/// ```no_run
/// use caqr::service::{JobSpec, Service, ServiceConfig};
/// use caqr::CpuCaqrOptions;
///
/// let svc = Service::<f64>::start(ServiceConfig::default());
/// let a = dense::generate::uniform::<f64>(4096, 16, 1);
/// let ticket = svc
///     .submit(JobSpec::new(a, CpuCaqrOptions::tuned_for_width(16)).tenant("alice"))
///     .unwrap_or_else(|_| panic!("service accepting"));
/// let outcome = ticket.wait().expect("job served");
/// let f = outcome.result.expect("factorization succeeded");
/// println!("R is {}x{}", f.r().rows(), f.r().cols());
/// svc.shutdown();
/// ```
pub struct Service<T: Scalar> {
    shared: Arc<Shared<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Scalar> Service<T> {
    /// Start the worker pool.
    pub fn start(cfg: ServiceConfig) -> Service<T> {
        let shared = Arc::new(Shared::new(&cfg));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("caqr-service-{i}"))
                    .spawn(move || {
                        while let Some(batch) = shared.next_batch() {
                            shared.serve(batch);
                        }
                    })
                    .expect("spawn service worker thread")
            })
            .collect();
        Service { shared, workers }
    }

    /// Submit a job, blocking while the queue is at capacity
    /// (backpressure). Fails only once the service is shutting down.
    // A rejected submit hands the whole `JobSpec` (matrix included) back to
    // the caller for retry — the large `Err` is the point, not an accident.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        self.shared.push_blocking(spec)
    }

    /// Submit without blocking: a full queue returns the job immediately.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        self.shared.try_push(spec)
    }

    /// Snapshot the per-tenant ledger.
    pub fn ledger(&self) -> ServiceLedger {
        lock(&self.shared.ledger).clone()
    }

    /// Graceful shutdown: stop admitting, serve everything queued, join
    /// the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<T: Scalar> Drop for Service<T> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TreeShape;

    fn opts(h: usize, w: usize) -> CpuCaqrOptions {
        CpuCaqrOptions {
            tile_rows: h,
            panel_width: w,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    #[test]
    fn factor_many_is_bit_identical_to_sequential_runs() {
        let inputs: Vec<(Matrix<f64>, CpuCaqrOptions)> = vec![
            (dense::generate::uniform(300, 16, 1), opts(48, 16)),
            (dense::generate::uniform(300, 16, 2), opts(48, 16)),
            (dense::generate::uniform(200, 8, 3), opts(32, 8)),
            (dense::generate::uniform(300, 16, 4), opts(48, 16)),
            (dense::generate::uniform(127, 5, 5), opts(24, 5)),
        ];
        let (results, stats) =
            factor_many_with_stats(inputs.iter().map(|(a, o)| (a.clone(), *o)).collect());
        assert_eq!(stats.fused_jobs, 3);
        assert_eq!(stats.solo_jobs, 2);
        assert_eq!(stats.fused_groups, 1);
        for ((a, o), got) in inputs.into_iter().zip(results) {
            let got = got.unwrap();
            let want = caqr_cpu(a, o).unwrap();
            assert_eq!(got.a, want.a);
            assert_eq!(got.panels.len(), want.panels.len());
            assert_eq!(logical_launches(&got), logical_launches(&want));
        }
    }

    #[test]
    fn fused_group_spends_fewer_launches_than_one_at_a_time() {
        let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> = (0..6)
            .map(|s| (dense::generate::uniform(400, 16, 100 + s), opts(64, 16)))
            .collect();
        let (results, stats) = factor_many_with_stats(jobs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(stats.fused_jobs, 6);
        // 6 jobs' logical chains were packed into one group's regions (plus
        // the one fused health scan): the whole point of the batch path.
        assert!(
            stats.fused_launches < stats.logical_launches,
            "fused {} vs logical {}",
            stats.fused_launches,
            stats.logical_launches
        );
    }

    #[test]
    fn nonfinite_member_fails_alone_with_the_standalone_error() {
        let mut bad = dense::generate::uniform::<f64>(300, 16, 7);
        bad[(17, 3)] = f64::NAN;
        let good = dense::generate::uniform::<f64>(300, 16, 8);
        let (results, _) = factor_many_with_stats(vec![
            (good.clone(), opts(48, 16)),
            (bad.clone(), opts(48, 16)),
            (dense::generate::uniform::<f64>(300, 16, 9), opts(48, 16)),
        ]);
        let want_err = match caqr_cpu(bad, opts(48, 16)) {
            Err(e) => e,
            Ok(_) => panic!("NaN input must fail standalone"),
        };
        match &results[1] {
            Err(e) => assert_eq!(e, &want_err),
            Ok(_) => panic!("NaN member must fail in the batch too"),
        }
        let got = results[0].as_ref().unwrap();
        let want = caqr_cpu(good, opts(48, 16)).unwrap();
        assert_eq!(got.a, want.a);
    }

    #[test]
    fn checksummed_jobs_run_solo_and_still_match() {
        let a = dense::generate::uniform::<f64>(256, 8, 11);
        let mut o = opts(32, 8);
        o.verify_checksums = true;
        let (results, stats) = factor_many_with_stats(vec![(a.clone(), o), (a.clone(), o)]);
        assert_eq!(stats.solo_jobs, 2);
        assert_eq!(stats.fused_jobs, 0);
        let want = caqr_cpu(a, o).unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().a, want.a);
        }
    }

    #[test]
    fn service_end_to_end_matches_caqr_cpu_and_reconciles() {
        let svc = Service::<f64>::start(ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
        });
        let tenants = ["alpha", "beta"];
        let mut expected = Vec::new();
        let mut tickets = Vec::new();
        for s in 0..10u64 {
            let a = dense::generate::uniform::<f64>(240, 12, 20 + s);
            let o = opts(48, 12);
            expected.push(caqr_cpu(a.clone(), o).unwrap().a);
            let spec = JobSpec::new(a, o)
                .tenant(tenants[(s % 2) as usize])
                .priority(Priority::ALL[(s % 3) as usize]);
            tickets.push(svc.submit(spec).unwrap_or_else(|_| panic!("accepting")));
        }
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let out = ticket.wait().expect("served");
            assert_eq!(out.result.expect("factored").a, want);
        }
        let ledger = svc.ledger();
        assert_eq!(ledger.global.jobs_submitted, 10);
        assert_eq!(ledger.global.jobs_completed, 10);
        assert_eq!(ledger.global.fused_jobs + ledger.global.solo_jobs, 10);
        assert_eq!(ledger.tenants.len(), 2);
        ledger.reconcile().expect("split accounting holds");
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_jobs_are_shed_with_a_typed_error() {
        let svc = Service::<f64>::start(ServiceConfig::default());
        let a = dense::generate::uniform::<f64>(200, 8, 31);
        let ticket = svc
            .submit(JobSpec::new(a, opts(32, 8)).deadline(Duration::ZERO))
            .unwrap_or_else(|_| panic!("accepting"));
        let out = ticket.wait().expect("resolved");
        match out.result {
            Err(ServiceError::DeadlineExpired { deadline, .. }) => {
                assert_eq!(deadline, Duration::ZERO)
            }
            other => panic!("expected shed, got {:?}", other.map(|f| f.a.shape())),
        }
        let ledger = svc.ledger();
        assert_eq!(ledger.global.jobs_shed, 1);
        ledger.reconcile().expect("shed accounting reconciles");
        svc.shutdown();
    }

    #[test]
    fn priority_leads_and_same_shape_followers_fuse() {
        // Drive the picker directly (no workers) so the batch composition
        // is deterministic: a later Interactive job must lead, and only
        // same-shape-class jobs ride along, capped by max_batch.
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 3,
        });
        let mk = |m: usize, p: Priority| {
            JobSpec::new(dense::generate::uniform::<f64>(m, 8, m as u64), opts(32, 8)).priority(p)
        };
        {
            let mut st = lock(&shared.state);
            for spec in [
                mk(200, Priority::Batch),
                mk(300, Priority::Batch),
                mk(300, Priority::Interactive),
                mk(300, Priority::Batch),
                mk(300, Priority::Batch),
            ] {
                let _ = shared.push(&mut st, spec);
            }
        }
        let batch = shared.next_batch().expect("queue non-empty");
        assert_eq!(batch.len(), 3, "max_batch caps the gather");
        assert!(batch
            .iter()
            .any(|j| j.spec.priority == Priority::Interactive));
        assert!(batch.iter().all(|j| j.spec.a.rows() == 300));
        // The 200-row job and one surplus 300-row job remain queued.
        assert_eq!(lock(&shared.state).q.len(), 2);
    }

    #[test]
    fn try_submit_backpressure_returns_the_job() {
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 8,
        });
        let mk = || JobSpec::new(dense::generate::uniform::<f64>(64, 4, 1), opts(16, 4));
        assert!(shared.try_push(mk()).is_ok());
        assert!(shared.try_push(mk()).is_ok());
        match shared.try_push(mk()) {
            Err(SubmitError::Full(spec)) => assert_eq!(spec.a.shape(), (64, 4)),
            other => panic!("expected Full, got {:?}", other.err()),
        }
    }
}
