//! Block-size autotuning (Section IV-F).
//!
//! "After committing to a data layout, we can write scripts to test many
//! different block sizes and choose the best." The candidate grid mirrors
//! the paper's Figure 7 sweep; scoring uses the steady-state modelled
//! GFLOP/s of `apply_qt_h`, the dominant kernel.

use crate::block::BlockSize;
use crate::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use gpu_sim::DeviceSpec;

/// The block-size candidate grid swept by Figure 7: heights 32..512 by
/// powers of two, widths 4..64 by powers of two, constrained to `h >= 2w`.
pub fn block_size_grid() -> Vec<BlockSize> {
    let mut v = Vec::new();
    for h in [32usize, 64, 128, 256, 512] {
        for w in [4usize, 8, 16, 32, 64] {
            let bs = BlockSize { h, w };
            if bs.validate().is_ok() {
                v.push(bs);
            }
        }
    }
    v
}

/// One scored candidate.
#[derive(Clone, Copy, Debug)]
pub struct TunedPoint {
    /// The candidate shape.
    pub bs: BlockSize,
    /// Steady-state modelled GFLOP/s of `apply_qt_h`.
    pub gflops: f64,
}

/// Score every candidate for a device and strategy (the data behind
/// Figure 7).
pub fn figure7_surface(spec: &DeviceSpec, strategy: ReductionStrategy) -> Vec<TunedPoint> {
    block_size_grid()
        .into_iter()
        .map(|bs| TunedPoint {
            bs,
            gflops: apply_qt_h_block_gflops(spec, bs, strategy),
        })
        .collect()
}

/// Pick the best block size for a device and strategy.
pub fn autotune(spec: &DeviceSpec, strategy: ReductionStrategy) -> TunedPoint {
    figure7_surface(spec, strategy)
        .into_iter()
        .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
        .expect("figure7_surface always emits the fixed candidate grid")
}

/// One scored stream-count candidate for the DAG schedule.
#[derive(Clone, Copy, Debug)]
pub struct TunedStreams {
    /// Stream count.
    pub streams: usize,
    /// Lookahead on/off.
    pub lookahead: bool,
    /// Modelled seconds for the whole factorization.
    pub seconds: f64,
}

/// Sweep the stream count (and lookahead) of the DAG schedule for an
/// `m x n` factorization and return every candidate, best first — the
/// streams analogue of [`figure7_surface`]. Candidates that fail to
/// schedule are skipped.
pub fn tune_streams(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    opts: crate::CaqrOptions,
) -> Vec<TunedStreams> {
    let mut out = Vec::new();
    for &streams in &[1usize, 2, 4, 8] {
        for &lookahead in &[false, true] {
            let gpu = gpu_sim::Gpu::new(spec.clone());
            let so = crate::ScheduleOptions {
                caqr: opts,
                streams,
                lookahead,
            };
            if let Ok(seconds) = crate::schedule::model_caqr_dag_seconds(&gpu, m, n, so) {
                out.push(TunedStreams {
                    streams,
                    lookahead,
                    seconds,
                });
            }
        }
    }
    out.sort_by(|a, b| a.seconds.total_cmp(&b.seconds));
    out
}

/// One wall-clock-measured block-size candidate of the host factor path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredPoint {
    /// The candidate shape.
    pub bs: BlockSize,
    /// Measured (not modelled) GFLOP/s of `caqr_cpu` at this shape.
    pub gflops: f64,
}

/// A measured autotuning profile: every swept candidate of one
/// `rows x cols` calibration factorization, ranked by real wall-clock.
///
/// The modelled [`figure7_surface`] stays the *prior* — it orders the
/// candidate grid so a budgeted sweep tries likely winners first — but the
/// committed choice is decided by measurement, exactly the paper's
/// Section IV-F loop ("test many different block sizes and choose the
/// best"). Profiles persist as a small hand-rolled JSON file (no external
/// dependencies) so one calibration run serves every later process; see
/// [`MeasuredProfile::save`] / [`MeasuredProfile::load`] and
/// [`crate::CpuCaqrOptions::tuned_for_width`] for the consuming side.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasuredProfile {
    /// Calibration matrix height.
    pub rows: usize,
    /// Calibration matrix width.
    pub cols: usize,
    /// SIMD backend the calibration ran on (`dense::Backend::name()`).
    /// A profile measured with one instruction set does not transfer to
    /// another, so [`MeasuredProfile::load`] rejects mismatches.
    pub backend: String,
    /// Microkernel generation the calibration ran against
    /// ([`dense::simd::KERNEL_VERSION`]); bumping the kernels invalidates
    /// every persisted profile.
    pub kernel_version: u32,
    /// Every measured candidate, in sweep order.
    pub points: Vec<MeasuredPoint>,
}

impl MeasuredProfile {
    /// Default on-disk location of the persisted profile.
    pub fn default_path() -> std::path::PathBuf {
        std::path::PathBuf::from("target/caqr_tuned.json")
    }

    /// The fastest measured candidate overall.
    pub fn best(&self) -> Option<MeasuredPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
    }

    /// The fastest measured candidate with panel width `w`.
    pub fn best_for_width(&self, w: usize) -> Option<MeasuredPoint> {
        self.points
            .iter()
            .copied()
            .filter(|p| p.bs.w == w)
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
    }

    /// Serialize to the profile's JSON form.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"rows\": {},\n  \"cols\": {},\n  \"backend\": \"{}\",\n  \"kernel_version\": {},\n  \"points\": [\n",
            self.rows, self.cols, self.backend, self.kernel_version
        );
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"h\": {}, \"w\": {}, \"gflops\": {:.6}}}{sep}\n",
                p.bs.h, p.bs.w, p.gflops
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a profile produced by [`Self::to_json`]. Returns `None` on any
    /// malformed input (a corrupt profile falls back to the heuristics, it
    /// never aborts the caller).
    pub fn from_json(text: &str) -> Option<Self> {
        fn field_usize(obj: &str, key: &str) -> Option<usize> {
            field_raw(obj, key)?.parse().ok()
        }
        fn field_f64(obj: &str, key: &str) -> Option<f64> {
            field_raw(obj, key)?.parse().ok()
        }
        fn field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\"");
            let at = obj.find(&pat)? + pat.len();
            let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                .unwrap_or(rest.len());
            Some(&rest[..end])
        }
        fn field_str(obj: &str, key: &str) -> Option<String> {
            let pat = format!("\"{key}\"");
            let at = obj.find(&pat)? + pat.len();
            let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
            let rest = rest.strip_prefix('"')?;
            Some(rest[..rest.find('"')?].to_string())
        }
        let rows = field_usize(text, "rows")?;
        let cols = field_usize(text, "cols")?;
        // Pre-SIMD profiles carry neither tag; parse them as kernel
        // generation 1 on the scalar backend so `load` retires them the
        // moment a vectorized build looks (and a scalar build re-measures
        // because the kernel generation moved on).
        let backend = field_str(text, "backend").unwrap_or_else(|| "scalar".to_string());
        let kernel_version = field_usize(text, "kernel_version").unwrap_or(1) as u32;
        let arr_start = text.find("\"points\"")?;
        let arr = &text[text[arr_start..].find('[')? + arr_start + 1..];
        let arr = &arr[..arr.find(']')?];
        let mut points = Vec::new();
        for obj in arr.split('{').skip(1) {
            let obj = obj.split('}').next()?;
            points.push(MeasuredPoint {
                bs: BlockSize {
                    h: field_usize(obj, "h")?,
                    w: field_usize(obj, "w")?,
                },
                gflops: field_f64(obj, "gflops")?,
            });
        }
        Some(MeasuredProfile {
            rows,
            cols,
            backend,
            kernel_version,
            points,
        })
    }

    /// Persist to `path` (atomically via a sibling temp file). Drops every
    /// [`Self::load_cached`] entry so readers in this process observe the
    /// new calibration immediately.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)?;
        Self::invalidate_cache();
        Ok(())
    }

    /// Load a persisted profile; `None` if the file is absent, malformed,
    /// or **stale** — measured on a different SIMD backend or an older
    /// microkernel generation than this process runs. A stale profile's
    /// block-size ranking no longer reflects the machine, so callers fall
    /// back to heuristics (and typically re-run `autotune`) instead of
    /// trusting it. A profile whose tags match but whose candidate grid is
    /// empty (e.g. a sweep truncated mid-write) is rejected the same way:
    /// it would make `best()`/`best_for_width()` silently answer `None`
    /// forever while looking like a valid calibration.
    pub fn load(path: &std::path::Path) -> Option<Self> {
        let p = Self::from_json(&std::fs::read_to_string(path).ok()?)?;
        if p.backend != dense::simd::active().name()
            || p.kernel_version != dense::simd::KERNEL_VERSION
            || p.points.is_empty()
        {
            return None;
        }
        Some(p)
    }

    /// [`Self::load`] through a process-wide cache keyed by
    /// `(path, active SIMD backend)`, so mixed-shape service traffic that
    /// resolves [`crate::CpuCaqrOptions::tuned_for_width`] per job parses
    /// `target/caqr_tuned.json` once instead of on every admission. The
    /// *absence* of a profile is cached too (a missing file costs one probe,
    /// not one per job); [`Self::save`] and [`Self::invalidate_cache`] drop
    /// the cache. The backend is part of the key because a
    /// `CAQR_SIMD`-style override can change the active backend — and hence
    /// `load`'s staleness verdict — between lookups.
    pub fn load_cached(path: &std::path::Path) -> Option<std::sync::Arc<MeasuredProfile>> {
        let key = (path.to_path_buf(), dense::simd::active().name());
        let mut map = profile_cache()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.entry(key)
            .or_insert_with(|| Self::load(path).map(std::sync::Arc::new))
            .clone()
    }

    /// Forget every cached [`Self::load_cached`] profile (positive and
    /// negative entries). Called by [`Self::save`]; tests and long-lived
    /// services that expect an external recalibration may call it directly.
    pub fn invalidate_cache() {
        profile_cache()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
    }
}

/// Backing store of [`MeasuredProfile::load_cached`].
type ProfileCacheMap = std::collections::HashMap<
    (std::path::PathBuf, &'static str),
    Option<std::sync::Arc<MeasuredProfile>>,
>;

fn profile_cache() -> &'static std::sync::Mutex<ProfileCacheMap> {
    static CACHE: std::sync::OnceLock<std::sync::Mutex<ProfileCacheMap>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(ProfileCacheMap::new()))
}

/// Candidate grid of the measured sweep for an `n`-column factorization:
/// widths from the paper's sweet spot ({8, 16, 32}, capped at `n`), heights
/// 64..=2048 with `h >= 2w`, ordered by the modelled prior (best modelled
/// candidates first) so a truncated sweep still visits likely winners.
pub fn measured_grid(spec: &DeviceSpec, n: usize) -> Vec<BlockSize> {
    let prior = figure7_surface(spec, ReductionStrategy::RegisterSerialTransposed);
    let score = |bs: BlockSize| {
        prior
            .iter()
            .find(|p| p.bs == bs)
            .map(|p| p.gflops)
            .unwrap_or(0.0)
    };
    let mut grid = Vec::new();
    for &w in &[8usize, 16, 32] {
        if w > n {
            continue;
        }
        for &h in &[64usize, 128, 192, 256, 320, 384, 512, 1024, 2048] {
            if h >= 2 * w {
                grid.push(BlockSize { h, w });
            }
        }
    }
    grid.sort_by(|a, b| score(*b).total_cmp(&score(*a)));
    grid
}

/// Measure the host factor path (`caqr_cpu`, f64) over the candidate grid
/// for an `m x n` calibration shape, best-of-`reps` wall-clock per
/// candidate. Returns the full measured surface; persist the result with
/// [`MeasuredProfile::save`] and consume it via
/// [`crate::CpuCaqrOptions::tuned_for_width`].
pub fn autotune_measured(spec: &DeviceSpec, m: usize, n: usize, reps: usize) -> MeasuredProfile {
    let a = dense::generate::uniform::<f64>(m, n, 0x7471);
    let flops = 2.0 * (m * n * n) as f64 - 2.0 / 3.0 * (n * n * n) as f64;
    let mut points = Vec::new();
    for bs in measured_grid(spec, n) {
        if bs.h > m {
            continue;
        }
        let opts = crate::CpuCaqrOptions {
            tile_rows: bs.h,
            panel_width: bs.w,
            tree: crate::TreeShape::DeviceArity,
            verify_checksums: false,
        };
        // `caqr_cpu` factors in place; input copies are prepared outside the
        // timed region so candidates are ranked on factorization time alone.
        let mut inputs: Vec<_> = (0..reps.max(1) + 1).map(|_| a.clone()).collect();
        let mut run = || {
            let input = inputs
                .pop()
                .expect("one input copy prepared per repetition plus warmup");
            let f = crate::caqr_cpu(input, opts)
                .expect("calibration input is finite and the grid shape pre-validated");
            std::hint::black_box(f.a.as_slice().len());
        };
        run(); // warm the arena pools so steady state is what's measured
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = std::time::Instant::now();
            run();
            best = best.min(t.elapsed().as_secs_f64());
        }
        points.push(MeasuredPoint {
            bs,
            gflops: flops / best / 1e9,
        });
    }
    MeasuredProfile {
        rows: m,
        cols: n,
        backend: dense::simd::active().name().to_string(),
        kernel_version: dense::simd::KERNEL_VERSION,
        points,
    }
}

/// Algorithm choice for a given matrix shape (the autotuning framework the
/// paper sketches in Section V-C: "a different algorithm may be chosen
/// depending on the matrix size").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QrAlgorithm {
    /// Communication-avoiding QR — wins for tall-skinny shapes.
    Caqr,
    /// Blocked Householder with GEMM trailing updates — wins for wide
    /// matrices once the BLAS3 updates dominate.
    BlockedHouseholder,
}

/// Pick the faster algorithm for an `m x n` factorization on `spec` by
/// comparing the CAQR cost model against a blocked-Householder roofline
/// (panel BLAS2 at DRAM bandwidth + GEMM-rate trailing updates, the best
/// case for the library algorithms).
pub fn select_algorithm(spec: &DeviceSpec, m: usize, n: usize) -> QrAlgorithm {
    let gpu = gpu_sim::Gpu::new(spec.clone());
    let caqr_secs = crate::model::model_caqr_seconds(&gpu, m, n, crate::CaqrOptions::default())
        .unwrap_or(f64::INFINITY);

    // Optimistic blocked Householder on the same device: nb-wide BLAS2
    // panels straight from DRAM, trailing updates at the device GEMM rate.
    let nb = 64;
    let k = m.min(n);
    let mut bh_secs = 0.0;
    let bw = spec.dram_bw_gbs * 1.0e9;
    let gemm = spec.gemm_gflops() * 1.0e9;
    let mut j = 0;
    while j < k {
        let jb = nb.min(k - j);
        let mp = (m - j) as f64;
        // Panel: each reflector streams the remaining panel (read+write).
        bh_secs +=
            4.0 * mp * (jb * jb) as f64 / bw + jb as f64 * 2.0 * spec.launch_overhead_us * 1e-6;
        // Trailing update at GEMM rate.
        let nc = (n - j - jb) as f64;
        if nc > 0.0 {
            bh_secs += 4.0 * mp * nc * jb as f64 / gemm + 3.0 * spec.launch_overhead_us * 1e-6;
        }
        j += jb;
    }

    if caqr_secs <= bh_secs {
        QrAlgorithm::Caqr
    } else {
        QrAlgorithm::BlockedHouseholder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_respects_constraints() {
        let g = block_size_grid();
        assert!(g.len() > 10);
        for bs in &g {
            assert!(bs.h >= 2 * bs.w);
        }
        assert!(g.contains(&BlockSize { h: 128, w: 16 }));
    }

    #[test]
    fn autotuner_picks_the_papers_block() {
        let spec = DeviceSpec::c2050();
        let best = autotune(&spec, ReductionStrategy::RegisterSerialTransposed);
        assert_eq!(best.bs, BlockSize { h: 128, w: 16 }, "picked {:?}", best.bs);
        // Near the paper's 388 GFLOPS.
        assert!(
            best.gflops > 300.0 && best.gflops < 500.0,
            "{}",
            best.gflops
        );
    }

    #[test]
    fn surface_punishes_register_spill() {
        let spec = DeviceSpec::c2050();
        let s = ReductionStrategy::RegisterSerialTransposed;
        let g128_16 = apply_qt_h_block_gflops(&spec, BlockSize { h: 128, w: 16 }, s);
        let g512_16 = apply_qt_h_block_gflops(&spec, BlockSize { h: 512, w: 16 }, s);
        assert!(
            g512_16 < g128_16 * 0.8,
            "512x16 should spill: {g512_16} vs {g128_16}"
        );
    }

    #[test]
    fn algorithm_selection_follows_the_crossover() {
        // Section V-C's autotuning framework: CAQR for tall-skinny,
        // blocked Householder for wide.
        let spec = DeviceSpec::c2050();
        assert_eq!(select_algorithm(&spec, 1_000_000, 192), QrAlgorithm::Caqr);
        assert_eq!(select_algorithm(&spec, 100_000, 64), QrAlgorithm::Caqr);
        assert_eq!(
            select_algorithm(&spec, 8192, 8192),
            QrAlgorithm::BlockedHouseholder
        );
        // Monotone: once blocked Householder wins at some width (fixed
        // height), it keeps winning for wider matrices.
        let mut seen_bh = false;
        for n in [256usize, 512, 1024, 2048, 4096, 8192] {
            let choice = select_algorithm(&spec, 8192, n);
            if seen_bh {
                assert_eq!(choice, QrAlgorithm::BlockedHouseholder, "flip-flop at {n}");
            }
            seen_bh |= choice == QrAlgorithm::BlockedHouseholder;
        }
        assert!(seen_bh, "blocked Householder never won");
    }

    #[test]
    fn stream_tuner_prefers_lookahead_on_tall_skinny() {
        let spec = DeviceSpec::c2050();
        let ranked = tune_streams(&spec, 100_000, 192, crate::CaqrOptions::default());
        assert_eq!(ranked.len(), 8);
        let best = ranked[0];
        assert!(
            best.lookahead,
            "best candidate should use lookahead: {best:?}"
        );
        assert!(best.streams > 1, "best candidate should overlap: {best:?}");
        // Ranked ascending by modelled time.
        for w in ranked.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn measured_profile_json_round_trips() {
        let p = MeasuredProfile {
            rows: 65536,
            cols: 16,
            backend: "avx2".to_string(),
            kernel_version: dense::simd::KERNEL_VERSION,
            points: vec![
                MeasuredPoint {
                    bs: BlockSize { h: 256, w: 16 },
                    gflops: 1.97,
                },
                MeasuredPoint {
                    bs: BlockSize { h: 512, w: 8 },
                    gflops: 0.95,
                },
            ],
        };
        let back = MeasuredProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.best().unwrap().bs, BlockSize { h: 256, w: 16 });
        assert_eq!(
            back.best_for_width(8).unwrap().bs,
            BlockSize { h: 512, w: 8 }
        );
        assert!(back.best_for_width(32).is_none());
        // Malformed input degrades to None, never panics.
        assert!(MeasuredProfile::from_json("{\"rows\": oops}").is_none());
        assert!(MeasuredProfile::from_json("").is_none());
        // A pre-SIMD profile (no tags) parses as kernel generation 1 on the
        // scalar backend.
        let legacy =
            "{\"rows\": 4, \"cols\": 2, \"points\": [\n {\"h\": 8, \"w\": 2, \"gflops\": 1.0}]}";
        let legacy = MeasuredProfile::from_json(legacy).unwrap();
        assert_eq!(legacy.backend, "scalar");
        assert_eq!(legacy.kernel_version, 1);
    }

    #[test]
    fn stale_profiles_are_rejected_by_load() {
        let dir = std::env::temp_dir().join(format!("caqr_tuning_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        let fresh = MeasuredProfile {
            rows: 512,
            cols: 8,
            backend: dense::simd::active().name().to_string(),
            kernel_version: dense::simd::KERNEL_VERSION,
            points: vec![MeasuredPoint {
                bs: BlockSize { h: 128, w: 8 },
                gflops: 1.0,
            }],
        };
        // Current backend + current kernel generation: accepted.
        fresh.save(&path).unwrap();
        assert_eq!(MeasuredProfile::load(&path), Some(fresh.clone()));
        // Same backend, older kernel generation: rejected.
        let mut stale = fresh.clone();
        stale.kernel_version = dense::simd::KERNEL_VERSION - 1;
        stale.save(&path).unwrap();
        assert!(MeasuredProfile::load(&path).is_none());
        // Different backend name: rejected.
        let mut other = fresh.clone();
        other.backend = "some-other-isa".to_string();
        other.save(&path).unwrap();
        assert!(MeasuredProfile::load(&path).is_none());
        // Legacy untagged file: rejected unless this process really is the
        // scalar backend on kernel generation 1 (it is not — the generation
        // counter moved when the kernels vectorized).
        std::fs::write(
            &path,
            "{\"rows\": 4, \"cols\": 2, \"points\": [\n {\"h\": 8, \"w\": 2, \"gflops\": 1.0}]}",
        )
        .unwrap();
        assert!(MeasuredProfile::load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_point_grids_are_rejected_by_load() {
        let dir =
            std::env::temp_dir().join(format!("caqr_tuning_empty_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("caqr_tuned.json");
        // A hand-truncated profile: matching backend + kernel tags, but the
        // sweep's candidate list is gone. `from_json` parses it fine...
        let json = format!(
            "{{\n  \"rows\": 512,\n  \"cols\": 8,\n  \"backend\": \"{}\",\n  \
             \"kernel_version\": {},\n  \"points\": [\n  ]\n}}\n",
            dense::simd::active().name(),
            dense::simd::KERNEL_VERSION
        );
        let parsed = MeasuredProfile::from_json(&json).unwrap();
        assert!(parsed.points.is_empty());
        assert_eq!(parsed.best(), None);
        // ...but `load` must refuse it so callers re-calibrate instead of
        // carrying a permanently useless profile.
        std::fs::write(&path, &json).unwrap();
        assert!(MeasuredProfile::load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measured_grid_is_prior_ordered_and_constrained() {
        let spec = DeviceSpec::c2050();
        let g = measured_grid(&spec, 16);
        assert!(!g.is_empty());
        for bs in &g {
            bs.validate().unwrap();
            assert!(bs.w <= 16);
        }
        // The modelled prior puts the paper's 128x16 sweet spot ahead of a
        // register-spilling 2048-row candidate.
        let pos = |bs: BlockSize| g.iter().position(|&x| x == bs).unwrap();
        assert!(pos(BlockSize { h: 128, w: 16 }) < pos(BlockSize { h: 2048, w: 16 }));
        // Widths wider than the matrix are skipped.
        assert!(measured_grid(&spec, 8).iter().all(|bs| bs.w <= 8));
    }

    #[test]
    fn measured_autotune_runs_and_feeds_options() {
        let spec = DeviceSpec::c2050();
        // Tiny calibration shape: every candidate with h <= m is measured.
        let p = autotune_measured(&spec, 512, 8, 1);
        assert_eq!((p.rows, p.cols), (512, 8));
        assert!(!p.points.is_empty());
        assert!(p.points.iter().all(|pt| pt.gflops > 0.0 && pt.bs.h <= 512));
        let opts = crate::CpuCaqrOptions::from_measured(&p, 8);
        assert_eq!(opts.panel_width, 8);
        assert_eq!(opts.tile_rows, p.best_for_width(8).unwrap().bs.h);
        // A width the profile never swept falls back to the heuristic.
        let fallback = crate::CpuCaqrOptions::from_measured(&p, 5);
        assert_eq!(
            fallback.tile_rows,
            crate::CpuCaqrOptions::for_width(5).tile_rows
        );
    }

    #[test]
    fn profile_cache_serves_loads_until_invalidated() {
        let dir = std::env::temp_dir().join(format!("caqr_tuning_cache_{}", std::process::id()));
        let path = dir.join("cache_probe.json");
        let _ = std::fs::remove_file(&path);
        MeasuredProfile::invalidate_cache();
        // Negative result (missing file) is cached too.
        assert!(MeasuredProfile::load_cached(&path).is_none());
        let profile = MeasuredProfile {
            rows: 256,
            cols: 8,
            backend: dense::simd::active().name().to_string(),
            kernel_version: dense::simd::KERNEL_VERSION,
            points: vec![MeasuredPoint {
                bs: BlockSize { h: 64, w: 8 },
                gflops: 1.5,
            }],
        };
        // `save` drops the cache, so the fresh profile is visible at once.
        profile.save(&path).unwrap();
        let first = MeasuredProfile::load_cached(&path).expect("freshly saved profile loads");
        assert_eq!(*first, profile);
        // Corrupt the file on disk: the cache must keep serving the parsed
        // profile (that is the point — no per-job re-read)...
        std::fs::write(&path, "{ not json").unwrap();
        let cached = MeasuredProfile::load_cached(&path).expect("cache survives disk changes");
        assert_eq!(*cached, profile);
        // ...until explicitly invalidated, after which the corrupt file is
        // re-read and rejected.
        MeasuredProfile::invalidate_cache();
        assert!(MeasuredProfile::load_cached(&path).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gtx480_tunes_to_a_valid_block() {
        let spec = DeviceSpec::gtx480();
        let best = autotune(&spec, ReductionStrategy::RegisterSerialTransposed);
        best.bs.validate().unwrap();
        assert!(best.gflops > 300.0);
    }
}
