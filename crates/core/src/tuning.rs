//! Block-size autotuning (Section IV-F).
//!
//! "After committing to a data layout, we can write scripts to test many
//! different block sizes and choose the best." The candidate grid mirrors
//! the paper's Figure 7 sweep; scoring uses the steady-state modelled
//! GFLOP/s of `apply_qt_h`, the dominant kernel.

use crate::block::BlockSize;
use crate::microkernels::{apply_qt_h_block_gflops, ReductionStrategy};
use gpu_sim::DeviceSpec;

/// The block-size candidate grid swept by Figure 7: heights 32..512 by
/// powers of two, widths 4..64 by powers of two, constrained to `h >= 2w`.
pub fn block_size_grid() -> Vec<BlockSize> {
    let mut v = Vec::new();
    for h in [32usize, 64, 128, 256, 512] {
        for w in [4usize, 8, 16, 32, 64] {
            let bs = BlockSize { h, w };
            if bs.validate().is_ok() {
                v.push(bs);
            }
        }
    }
    v
}

/// One scored candidate.
#[derive(Clone, Copy, Debug)]
pub struct TunedPoint {
    /// The candidate shape.
    pub bs: BlockSize,
    /// Steady-state modelled GFLOP/s of `apply_qt_h`.
    pub gflops: f64,
}

/// Score every candidate for a device and strategy (the data behind
/// Figure 7).
pub fn figure7_surface(spec: &DeviceSpec, strategy: ReductionStrategy) -> Vec<TunedPoint> {
    block_size_grid()
        .into_iter()
        .map(|bs| TunedPoint {
            bs,
            gflops: apply_qt_h_block_gflops(spec, bs, strategy),
        })
        .collect()
}

/// Pick the best block size for a device and strategy.
pub fn autotune(spec: &DeviceSpec, strategy: ReductionStrategy) -> TunedPoint {
    figure7_surface(spec, strategy)
        .into_iter()
        .max_by(|a, b| a.gflops.partial_cmp(&b.gflops).unwrap())
        .expect("non-empty candidate grid")
}

/// One scored stream-count candidate for the DAG schedule.
#[derive(Clone, Copy, Debug)]
pub struct TunedStreams {
    /// Stream count.
    pub streams: usize,
    /// Lookahead on/off.
    pub lookahead: bool,
    /// Modelled seconds for the whole factorization.
    pub seconds: f64,
}

/// Sweep the stream count (and lookahead) of the DAG schedule for an
/// `m x n` factorization and return every candidate, best first — the
/// streams analogue of [`figure7_surface`]. Candidates that fail to
/// schedule are skipped.
pub fn tune_streams(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    opts: crate::CaqrOptions,
) -> Vec<TunedStreams> {
    let mut out = Vec::new();
    for &streams in &[1usize, 2, 4, 8] {
        for &lookahead in &[false, true] {
            let gpu = gpu_sim::Gpu::new(spec.clone());
            let so = crate::ScheduleOptions {
                caqr: opts,
                streams,
                lookahead,
            };
            if let Ok(seconds) = crate::schedule::model_caqr_dag_seconds(&gpu, m, n, so) {
                out.push(TunedStreams {
                    streams,
                    lookahead,
                    seconds,
                });
            }
        }
    }
    out.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap());
    out
}

/// Algorithm choice for a given matrix shape (the autotuning framework the
/// paper sketches in Section V-C: "a different algorithm may be chosen
/// depending on the matrix size").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QrAlgorithm {
    /// Communication-avoiding QR — wins for tall-skinny shapes.
    Caqr,
    /// Blocked Householder with GEMM trailing updates — wins for wide
    /// matrices once the BLAS3 updates dominate.
    BlockedHouseholder,
}

/// Pick the faster algorithm for an `m x n` factorization on `spec` by
/// comparing the CAQR cost model against a blocked-Householder roofline
/// (panel BLAS2 at DRAM bandwidth + GEMM-rate trailing updates, the best
/// case for the library algorithms).
pub fn select_algorithm(spec: &DeviceSpec, m: usize, n: usize) -> QrAlgorithm {
    let gpu = gpu_sim::Gpu::new(spec.clone());
    let caqr_secs = crate::model::model_caqr_seconds(&gpu, m, n, crate::CaqrOptions::default())
        .unwrap_or(f64::INFINITY);

    // Optimistic blocked Householder on the same device: nb-wide BLAS2
    // panels straight from DRAM, trailing updates at the device GEMM rate.
    let nb = 64;
    let k = m.min(n);
    let mut bh_secs = 0.0;
    let bw = spec.dram_bw_gbs * 1.0e9;
    let gemm = spec.gemm_gflops() * 1.0e9;
    let mut j = 0;
    while j < k {
        let jb = nb.min(k - j);
        let mp = (m - j) as f64;
        // Panel: each reflector streams the remaining panel (read+write).
        bh_secs +=
            4.0 * mp * (jb * jb) as f64 / bw + jb as f64 * 2.0 * spec.launch_overhead_us * 1e-6;
        // Trailing update at GEMM rate.
        let nc = (n - j - jb) as f64;
        if nc > 0.0 {
            bh_secs += 4.0 * mp * nc * jb as f64 / gemm + 3.0 * spec.launch_overhead_us * 1e-6;
        }
        j += jb;
    }

    if caqr_secs <= bh_secs {
        QrAlgorithm::Caqr
    } else {
        QrAlgorithm::BlockedHouseholder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_respects_constraints() {
        let g = block_size_grid();
        assert!(g.len() > 10);
        for bs in &g {
            assert!(bs.h >= 2 * bs.w);
        }
        assert!(g.contains(&BlockSize { h: 128, w: 16 }));
    }

    #[test]
    fn autotuner_picks_the_papers_block() {
        let spec = DeviceSpec::c2050();
        let best = autotune(&spec, ReductionStrategy::RegisterSerialTransposed);
        assert_eq!(best.bs, BlockSize { h: 128, w: 16 }, "picked {:?}", best.bs);
        // Near the paper's 388 GFLOPS.
        assert!(
            best.gflops > 300.0 && best.gflops < 500.0,
            "{}",
            best.gflops
        );
    }

    #[test]
    fn surface_punishes_register_spill() {
        let spec = DeviceSpec::c2050();
        let s = ReductionStrategy::RegisterSerialTransposed;
        let g128_16 = apply_qt_h_block_gflops(&spec, BlockSize { h: 128, w: 16 }, s);
        let g512_16 = apply_qt_h_block_gflops(&spec, BlockSize { h: 512, w: 16 }, s);
        assert!(
            g512_16 < g128_16 * 0.8,
            "512x16 should spill: {g512_16} vs {g128_16}"
        );
    }

    #[test]
    fn algorithm_selection_follows_the_crossover() {
        // Section V-C's autotuning framework: CAQR for tall-skinny,
        // blocked Householder for wide.
        let spec = DeviceSpec::c2050();
        assert_eq!(select_algorithm(&spec, 1_000_000, 192), QrAlgorithm::Caqr);
        assert_eq!(select_algorithm(&spec, 100_000, 64), QrAlgorithm::Caqr);
        assert_eq!(
            select_algorithm(&spec, 8192, 8192),
            QrAlgorithm::BlockedHouseholder
        );
        // Monotone: once blocked Householder wins at some width (fixed
        // height), it keeps winning for wider matrices.
        let mut seen_bh = false;
        for n in [256usize, 512, 1024, 2048, 4096, 8192] {
            let choice = select_algorithm(&spec, 8192, n);
            if seen_bh {
                assert_eq!(choice, QrAlgorithm::BlockedHouseholder, "flip-flop at {n}");
            }
            seen_bh |= choice == QrAlgorithm::BlockedHouseholder;
        }
        assert!(seen_bh, "blocked Householder never won");
    }

    #[test]
    fn stream_tuner_prefers_lookahead_on_tall_skinny() {
        let spec = DeviceSpec::c2050();
        let ranked = tune_streams(&spec, 100_000, 192, crate::CaqrOptions::default());
        assert_eq!(ranked.len(), 8);
        let best = ranked[0];
        assert!(
            best.lookahead,
            "best candidate should use lookahead: {best:?}"
        );
        assert!(best.streams > 1, "best candidate should overlap: {best:?}");
        // Ranked ascending by modelled time.
        for w in ranked.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn gtx480_tunes_to_a_valid_block() {
        let spec = DeviceSpec::gtx480();
        let best = autotune(&spec, ReductionStrategy::RegisterSerialTransposed);
        best.bs.validate().unwrap();
        assert!(best.gflops > 300.0);
    }
}
