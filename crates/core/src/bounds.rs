//! Communication lower bounds for QR (the theory CAQR is built on —
//! Demmel, Grigori, Hoemmen, Langou, "Communication-optimal parallel and
//! sequential QR and LU factorizations", LAWN 204, the paper's reference
//! \[6\]).
//!
//! For a sequential machine with fast memory of `M` words, any conventional
//! QR of an `m x n` matrix (`m >= n`) must move
//!
//! ```text
//! W = Omega( max( m*n,  m*n^2 / sqrt(M) ) )
//! ```
//!
//! words between fast and slow memory: everything must be touched once, and
//! the classic Hong-Kung style bound kicks in once the panel no longer fits
//! (`n > sqrt(M)`). The tests (and Ablation 3) check the simulator's ledger
//! against these bounds: CAQR stays within a modest constant, the BLAS2
//! algorithm does not.

/// Lower bound on words moved between fast and slow memory for a QR of an
/// `m x n` matrix (`m >= n`) with `fast_words` of fast memory.
pub fn qr_bandwidth_lower_bound_words(m: usize, n: usize, fast_words: usize) -> f64 {
    let (mf, nf) = (m as f64, n as f64);
    let touch_everything = mf * nf;
    let hong_kung = mf * nf * nf / (fast_words.max(1) as f64).sqrt();
    touch_everything.max(hong_kung)
}

/// Lower bound on the number of messages (block transfers / kernel-grain
/// communications) with `fast_words` of fast memory: `W / M`.
pub fn qr_latency_lower_bound_messages(m: usize, n: usize, fast_words: usize) -> f64 {
    qr_bandwidth_lower_bound_words(m, n, fast_words) / fast_words.max(1) as f64
}

/// Words a per-reflector BLAS2 Householder QR moves when the trailing
/// matrix does not fit in fast memory: `sum_j 3 (m-j)(n-j) ~ m n^2` — the
/// algorithm the bound separates CAQR from.
pub fn blas2_qr_words(m: usize, n: usize) -> f64 {
    let mut words = 0.0;
    for j in 0..m.min(n) {
        words += 3.0 * (m - j) as f64 * (n - j) as f64;
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CaqrOptions;
    use gpu_sim::{DeviceSpec, Gpu};

    /// Fast memory one thread block actually commands, in words: its
    /// shared-memory allocation plus its 64 threads' register allotment
    /// (the sequential bound applies per processing element with the fast
    /// memory *it* uses — a block cannot block its panel wider than this).
    fn fast_words(_spec: &DeviceSpec) -> usize {
        let smem_words = 16 * 1024 / 4; // V staging + scratch for 128x16
        let reg_words = 40 * crate::kernels::THREADS; // 40 regs x 64 threads
        smem_words + reg_words
    }

    #[test]
    fn bound_reduces_to_one_pass_for_skinny_panels() {
        // n <= sqrt(M): the panel fits, the bound is just "touch the data".
        let w = qr_bandwidth_lower_bound_words(1_000_000, 16, 64 * 1024);
        assert_eq!(w, 1.0e6 * 16.0);
    }

    #[test]
    fn bound_grows_past_the_fast_memory_knee() {
        let fast = 16 * 1024; // sqrt = 128
        let below = qr_bandwidth_lower_bound_words(100_000, 128, fast);
        let above = qr_bandwidth_lower_bound_words(100_000, 512, fast);
        // Above the knee the per-word cost rises with n.
        assert!((below / (100_000.0 * 128.0) - 1.0).abs() < 1e-12);
        assert!(above / (100_000.0 * 512.0) > 3.9);
    }

    #[test]
    fn caqr_traffic_is_within_a_modest_constant_of_the_bound() {
        let spec = DeviceSpec::c2050();
        let fast = fast_words(&spec);
        for (m, n) in [(200_000usize, 192usize), (1_000_000, 192), (50_000, 64)] {
            let gpu = Gpu::new(spec.clone());
            crate::model::model_caqr_seconds(&gpu, m, n, CaqrOptions::default()).unwrap();
            let moved_words = gpu.ledger().dram_bytes / 4.0;
            let bound = qr_bandwidth_lower_bound_words(m, n, fast);
            let ratio = moved_words / bound;
            assert!(
                ratio < 16.0,
                "({m},{n}): CAQR moves {ratio:.1}x the lower bound — not communication-avoiding"
            );
            assert!(
                ratio >= 1.0,
                "({m},{n}): ledger below the lower bound ({ratio:.2}x)?!"
            );
        }
    }

    #[test]
    fn blas2_qr_violates_the_bound_by_an_order_of_magnitude() {
        let spec = DeviceSpec::c2050();
        let fast = fast_words(&spec);
        let (m, n) = (1_000_000, 192);
        let blas2 = blas2_qr_words(m, n);
        let bound = qr_bandwidth_lower_bound_words(m, n, fast);
        assert!(
            blas2 / bound > 30.0,
            "BLAS2 at only {:.1}x the bound",
            blas2 / bound
        );
    }

    #[test]
    fn latency_bound_is_consistent() {
        let msgs = qr_latency_lower_bound_messages(1_000_000, 192, 44 * 1024);
        let words = qr_bandwidth_lower_bound_words(1_000_000, 192, 44 * 1024);
        assert!((msgs * 44.0 * 1024.0 - words).abs() < 1.0);
    }
}
