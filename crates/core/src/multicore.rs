//! Host-multicore TSQR/CAQR: the same communication-avoiding algorithm
//! mapped straight onto the CPU with rayon — no simulator, no cost model,
//! just real wall-clock execution.
//!
//! This is the lineage of the paper's reference \[10\] ("CAQR was also
//! applied to multicore machines ... and resulted in speedups of up to 12x
//! over Intel's MKL at the time"), and it exists here for two reasons:
//!
//! * it is an independently useful library entry point (a fast parallel QR
//!   for tall-skinny matrices on the host), and
//! * the criterion benches use it to demonstrate the communication-avoiding
//!   effect on *real hardware*: cache-resident tiles beat the panel-
//!   streaming blocked Householder algorithm on tall-skinny inputs.
//!
//! The numerics are shared with the GPU kernels through
//! [`crate::blockops`], so every correctness guarantee carries over.

use crate::backend::{drive, CpuBackend, DriveConfig, Mode};
use crate::block::{plan_tree, tile_panel, BlockSize, Tile, TreeShape};
use crate::blockops;
use crate::error::CaqrError;
use crate::microkernels::ReductionStrategy;
use crate::tsqr::{col_blocks, PanelFactor, TreeNode, WyTile};
use dense::arena;
use dense::blas2::trsv_upper;
use dense::matrix::{MatMut, Matrix};
use dense::scalar::Scalar;
use dense::MatPtr;
use rayon::prelude::*;

/// Options for the host execution.
#[derive(Clone, Copy, Debug)]
pub struct CpuCaqrOptions {
    /// Tile height. Pick so a `tile x width` tile sits comfortably in L2
    /// (see [`CpuCaqrOptions::for_width`]).
    pub tile_rows: usize,
    /// Panel width.
    pub panel_width: usize,
    /// Reduction-tree shape (binomial is the classic multicore choice; the
    /// default uses the same `tile/width` device arity as the GPU).
    pub tree: TreeShape,
    /// Run the ABFT checksums from [`crate::health`] after every panel:
    /// column-norm invariance of `R` always; for panels with trailing
    /// columns also the `Q . 1` orthogonality probe (whose vector doubles
    /// as the apply predictor, so it costs a vanishing fraction of the
    /// updates it guards) and predicted-vs-actual trailing column sums.
    /// Detection only: the first mismatch surfaces as
    /// [`CaqrError::ChecksumMismatch`] — the host path has no replay
    /// machinery (see [`crate::recovery`] for that).
    pub verify_checksums: bool,
}

impl CpuCaqrOptions {
    /// Choose a tile height so one `tile_rows x width` f32/f64 tile is about
    /// 128 KB — cache resident on any modern core.
    pub fn for_width(width: usize) -> Self {
        let panel_width = width.clamp(1, 32);
        let target_bytes = 128 * 1024;
        let tile_rows = (target_bytes / (8 * panel_width)).clamp(4 * panel_width, 16_384);
        CpuCaqrOptions {
            tile_rows,
            panel_width,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    /// Choose the tile height from a measured autotuning profile (see
    /// [`crate::tuning::autotune_measured`]), falling back to the
    /// [`Self::for_width`] heuristic when the profile has no candidate of
    /// this width.
    pub fn from_measured(profile: &crate::tuning::MeasuredProfile, width: usize) -> Self {
        match profile.best_for_width(width.clamp(1, 32)) {
            Some(p) => CpuCaqrOptions {
                tile_rows: p.bs.h,
                panel_width: p.bs.w,
                tree: TreeShape::DeviceArity,
                verify_checksums: false,
            },
            None => Self::for_width(width),
        }
    }

    /// Like [`Self::for_width`] but consults the persisted measured profile
    /// at [`crate::tuning::MeasuredProfile::default_path`] first. Absent or
    /// malformed profiles fall back to the static heuristic, so this is
    /// always safe to call. The profile is read through the process-wide
    /// [`crate::tuning::MeasuredProfile::load_cached`] cache, so per-job
    /// lookups under mixed-shape service traffic cost a map probe, not a
    /// file parse.
    pub fn tuned_for_width(width: usize) -> Self {
        match crate::tuning::MeasuredProfile::load_cached(
            &crate::tuning::MeasuredProfile::default_path(),
        ) {
            Some(p) => Self::from_measured(&p, width),
            None => Self::for_width(width),
        }
    }

    fn block_size(&self) -> BlockSize {
        BlockSize {
            h: self.tile_rows,
            w: self.panel_width,
        }
    }
}

/// A completed host-multicore CAQR factorization (same representation as
/// the GPU path: R in the upper triangle, level-0 tails in the tiles,
/// tree factors on the side).
pub struct CpuCaqr<T: Scalar> {
    /// The factored matrix.
    pub a: Matrix<T>,
    /// Per-panel factors.
    pub panels: Vec<CpuPanel<T>>,
    /// Options used.
    pub opts: CpuCaqrOptions,
}

/// One factored panel of the host path.
pub struct CpuPanel<T: Scalar> {
    /// Panel's first column (and first row, by the grid redraw).
    pub col0: usize,
    /// Panel width.
    pub width: usize,
    /// Level-0 tiles.
    pub tiles: Vec<Tile>,
    /// Level-0 compact-WY factors (packed `V` + triangular `T` per tile).
    pub wy0: Vec<WyTile<T>>,
    /// Tree levels.
    pub levels: Vec<Vec<TreeNode<T>>>,
}

/// Factor one panel with rayon over the level-0 tiles and the groups of
/// each tree level. This is [`CpuBackend`]'s factor launch: the returned
/// [`PanelFactor`] carries the same `{tiles, wy0, levels}` payload as the
/// simulator path, so the generic driver and the conformance suite treat
/// both uniformly.
pub(crate) fn factor_panel_host<T: Scalar>(
    a: &mut Matrix<T>,
    row0: usize,
    col0: usize,
    width: usize,
    bs: BlockSize,
    tree: TreeShape,
    strategy: ReductionStrategy,
) -> PanelFactor<T> {
    let tiles = tile_panel(row0, a.rows() - row0, bs.h, bs.w);
    let ptr = MatPtr::new(a);
    // Level 0: all tiles in parallel (disjoint row ranges).
    let wy0: Vec<WyTile<T>> = tiles
        .par_iter()
        .map(|&tile| blockops::factor_tile(ptr, tile, col0, width))
        .collect();
    // Tree levels: groups within a level in parallel.
    let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
    let plan = plan_tree(&starts, tree.arity(bs));
    let levels: Vec<Vec<TreeNode<T>>> = plan
        .levels
        .iter()
        .map(|groups| {
            groups
                .par_iter()
                .map(|g| blockops::factor_tree_group(ptr, &g.members, col0, width))
                .collect()
        })
        .collect();
    PanelFactor {
        row0,
        col0,
        width,
        tiles,
        wy0,
        levels,
        bs,
        strategy,
    }
}

impl<T: Scalar> From<PanelFactor<T>> for CpuPanel<T> {
    fn from(pf: PanelFactor<T>) -> CpuPanel<T> {
        CpuPanel {
            col0: pf.col0,
            width: pf.width,
            tiles: pf.tiles,
            wy0: pf.wy0,
            levels: pf.levels,
        }
    }
}

/// Apply one tile's compact-WY factor (`Q`, not `Q^T`) to a single column
/// held in `c`, with hand-rolled dot/axpy loops instead of the `larfb`
/// GEMM path: at one column the GEMMs degenerate to matvecs whose packing
/// overhead dwarfs the arithmetic, and this probe helper runs once per
/// panel on the checksum hot path.
fn wy_apply_one_col<T: Scalar>(wy: &WyTile<T>, c: &mut [T]) {
    let h = wy.v.rows();
    let k = wy.v.cols();
    debug_assert_eq!(c.len(), h);
    // The column kernels dispatch through the SIMD layer: at one column the
    // `larfb` GEMMs degenerate to matvecs, so the vectorized dot/axpy pair
    // is the whole arithmetic.
    let sk = T::small_kernels(dense::simd::active());
    // Dirty arena scratch: both halves are fully written before any read.
    let mut wz = arena::take_dirty::<T>(2 * k);
    let (w, z) = wz.split_at_mut(k);
    // w = V^T c  (V is the explicit dense reflector block: unit diagonal
    // stored, zeros above — full-column dot products are exact).
    for (j, wj) in w.iter_mut().enumerate() {
        let vj = wy.v.col(j);
        // SAFETY: the kernel came from `T::small_kernels(active())`, whose
        // backend is available on this CPU.
        *wj = unsafe { (sk.dot)(vj, c) };
    }
    // z = T w  (upper triangular; `transpose == false` uses T, not T^T).
    for (i, zi) in z.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (j, &wj) in w.iter().enumerate().skip(i) {
            acc += wy.t[(i, j)] * wj;
        }
        *zi = acc;
    }
    // c -= V z, one streaming axpy per reflector column.
    for (j, &zj) in z.iter().enumerate() {
        let vj = wy.v.col(j);
        // SAFETY: as above — the dispatched backend is available.
        unsafe { (sk.axpy)(T::ZERO - zj, vj, c) };
    }
}

/// The `Q . 1` orthogonality probe of [`crate::health::q_ones_probe`],
/// specialised for the host checksum path: the level-0 applies use
/// [`wy_apply_one_col`] so the probe costs a sliver of the factorization
/// it verifies instead of paying the one-column `larfb` GEMM overhead.
pub(crate) fn q_ones_probe_parts<T: Scalar>(
    m: usize,
    tiles: &[Tile],
    wy0: &[WyTile<T>],
    levels: &[Vec<TreeNode<T>>],
    width: usize,
) -> Vec<T> {
    let mut ones = Matrix::from_fn(m, 1, |_, _| T::ONE);
    {
        let p = MatPtr::new(&mut ones);
        for nodes in levels.iter().rev() {
            for node in nodes {
                blockops::apply_tree_node(p, node, width, 0, 1, false);
            }
        }
    }
    // Serial over tiles on purpose: per tile this is a few streaming
    // passes over one cache-resident V block, and the vendored rayon shim
    // spawns OS threads per call — fan-out would cost more than the work.
    let col = ones.col_mut(0);
    for (&tile, wy) in tiles.iter().zip(wy0) {
        let seg = &mut col[tile.start..tile.start + tile.rows];
        if wy.healthy {
            wy_apply_one_col(wy, seg);
        } else {
            // Compact-WY breakdown: same per-reflector degradation as
            // `blockops::apply_tile_wy`, which never reads `T`.
            let rows = tile.rows;
            crate::microkernels::apply_block_reflectors(
                wy.v.as_ref(),
                &wy.tau,
                false,
                MatMut::from_parts(seg, rows, 1, rows),
            );
        }
    }
    ones.col(0).to_vec()
}

/// Apply a panel's compact-WY factors to the column blocks `cols` with
/// rayon over the (tile x column-block) grid — [`CpuBackend`]'s apply
/// launch, shared with the [`CpuCaqr`] method surface below.
pub(crate) fn apply_panel_parts<T: Scalar>(
    c: MatPtr<T>,
    tiles: &[Tile],
    wy0: &[WyTile<T>],
    levels: &[Vec<TreeNode<T>>],
    width: usize,
    cols: &[(usize, usize)],
    transpose: bool,
) {
    if cols.is_empty() {
        return;
    }
    let horizontal = || {
        // (tile x column-block) grid in parallel.
        let work: Vec<(usize, usize)> = (0..tiles.len())
            .flat_map(|ti| (0..cols.len()).map(move |cb| (ti, cb)))
            .collect();
        work.par_iter().for_each(|&(ti, cb)| {
            let (c0, wc) = cols[cb];
            blockops::apply_tile_wy(&wy0[ti], c, tiles[ti], c0, wc, transpose);
        });
    };
    let tree_level = |nodes: &[TreeNode<T>]| {
        let work: Vec<(usize, usize)> = (0..nodes.len())
            .flat_map(|g| (0..cols.len()).map(move |cb| (g, cb)))
            .collect();
        work.par_iter().for_each(|&(g, cb)| {
            let (c0, wc) = cols[cb];
            blockops::apply_tree_node(c, &nodes[g], width, c0, wc, transpose);
        });
    };
    if transpose {
        horizontal();
        for nodes in levels {
            tree_level(nodes);
        }
    } else {
        for nodes in levels.iter().rev() {
            tree_level(nodes);
        }
        horizontal();
    }
}

fn apply_panel_cpu<T: Scalar>(
    c: MatPtr<T>,
    panel: &CpuPanel<T>,
    cols: &[(usize, usize)],
    transpose: bool,
) {
    apply_panel_parts(
        c,
        &panel.tiles,
        &panel.wy0,
        &panel.levels,
        panel.width,
        cols,
        transpose,
    );
}

/// Factor `a` with host-multicore CAQR — a thin shim over the generic
/// [`crate::backend::drive`] loop on [`CpuBackend`] (see DESIGN.md §13).
pub fn caqr_cpu<T: Scalar>(a: Matrix<T>, opts: CpuCaqrOptions) -> Result<CpuCaqr<T>, CaqrError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    let cfg = DriveConfig {
        bs: opts.block_size(),
        // Cosmetic on the host: the CPU backend's pre-transpose is a no-op
        // (the packed per-tile V copy happens at factor time), and strategy
        // only annotates the stored PanelFactors.
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: opts.tree,
        check_finite: true,
        verify_checksums: opts.verify_checksums,
        health_context: "caqr_cpu input",
    };
    let out = drive(&CpuBackend, a, &cfg, Mode::Sync)?;
    Ok(CpuCaqr {
        a: out.a,
        panels: out.panels.into_iter().map(CpuPanel::from).collect(),
        opts,
    })
}

impl<T: Scalar> CpuCaqr<T> {
    /// The upper-triangular factor.
    pub fn r(&self) -> Matrix<T> {
        self.a.upper_triangular()
    }

    /// Apply `Q^T` (or `Q` with `transpose == false`) to `c` in place.
    pub fn apply(&self, c: &mut Matrix<T>, transpose: bool) -> Result<(), CaqrError> {
        if c.rows() != self.a.rows() {
            return Err(CaqrError::BadShape(format!(
                "apply target has {} rows; factorization has {}",
                c.rows(),
                self.a.rows()
            )));
        }
        let cols = col_blocks(0, c.cols(), self.opts.panel_width);
        let cp = MatPtr::new(c);
        if transpose {
            for p in &self.panels {
                apply_panel_cpu(cp, p, &cols, true);
            }
        } else {
            for p in self.panels.iter().rev() {
                apply_panel_cpu(cp, p, &cols, false);
            }
        }
        Ok(())
    }

    /// Explicit `m x k` orthogonal factor.
    pub fn generate_q(&self, k: usize) -> Result<Matrix<T>, CaqrError> {
        if k > self.a.rows() {
            return Err(CaqrError::BadShape(format!(
                "cannot form {k} Q columns from an {}-row factorization",
                self.a.rows()
            )));
        }
        let mut q = Matrix::<T>::eye(self.a.rows(), k);
        self.apply(&mut q, false)?;
        Ok(q)
    }

    /// Least-squares solve from the implicit factorization.
    pub fn least_squares(&self, b: &[T]) -> Result<Vec<T>, CaqrError> {
        let (m, n) = self.a.shape();
        if m < n {
            return Err(CaqrError::BadShape(format!(
                "least squares needs a tall matrix (got {m}x{n})"
            )));
        }
        if b.len() != m {
            return Err(CaqrError::BadShape(format!(
                "right-hand side has {} rows; expected {m}",
                b.len()
            )));
        }
        let mut c = Matrix::from_fn(m, 1, |i, _| b[i]);
        self.apply(&mut c, true)?;
        let mut x: Vec<T> = (0..n).map(|i| c[(i, 0)]).collect();
        trsv_upper(self.a.view(0, 0, n, n), &mut x);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::norms::{orthogonality_error, reconstruction_error};

    #[test]
    fn cpu_caqr_factors_correctly() {
        for (m, n, seed) in [(500usize, 24usize, 1u64), (1000, 64, 2), (333, 7, 3)] {
            let a = dense::generate::uniform::<f64>(m, n, seed);
            let f = caqr_cpu(a.clone(), CpuCaqrOptions::for_width(n)).unwrap();
            let q = f.generate_q(n).unwrap();
            let r = f.r();
            assert!(reconstruction_error(&a, &q, &r) < 1e-11, "{m}x{n}");
            assert!(orthogonality_error(&q) < 1e-11, "{m}x{n}");
        }
    }

    #[test]
    fn cpu_caqr_matches_gpu_caqr_r_up_to_sign() {
        let a = dense::generate::uniform::<f64>(800, 32, 4);
        let cpu = caqr_cpu(
            a.clone(),
            CpuCaqrOptions {
                tile_rows: 64,
                panel_width: 16,
                tree: TreeShape::DeviceArity,
                verify_checksums: false,
            },
        )
        .unwrap();
        let gpu = gpu_sim::Gpu::new(gpu_sim::DeviceSpec::c2050());
        let g = crate::caqr::caqr(
            &gpu,
            a,
            crate::CaqrOptions {
                bs: BlockSize { h: 64, w: 16 },
                strategy: crate::ReductionStrategy::RegisterSerialTransposed,
                tree: TreeShape::DeviceArity,
                check_finite: true,
            },
        )
        .unwrap();
        // Identical tiling + tree: results are bit-identical, not just
        // sign-equivalent.
        assert_eq!(cpu.r(), g.r());
    }

    #[test]
    fn cpu_caqr_binomial_tree_works() {
        let a = dense::generate::uniform::<f64>(600, 12, 5);
        let f = caqr_cpu(
            a.clone(),
            CpuCaqrOptions {
                tile_rows: 48,
                panel_width: 12,
                tree: TreeShape::Binomial,
                verify_checksums: false,
            },
        )
        .unwrap();
        let q = f.generate_q(12).unwrap();
        assert!(reconstruction_error(&a, &q, &f.r()) < 1e-11);
        assert!(orthogonality_error(&q) < 1e-11);
    }

    #[test]
    fn cpu_least_squares_matches_reference() {
        let m = 700;
        let n = 9;
        let a = dense::generate::uniform::<f64>(m, n, 6);
        let b: Vec<f64> = (0..m).map(|i| ((i % 13) as f64) - 6.0).collect();
        let f = caqr_cpu(a.clone(), CpuCaqrOptions::for_width(n)).unwrap();
        let x = f.least_squares(&b).unwrap();
        let x_ref = dense::blocked::least_squares(a, &b);
        for (p, q) in x.iter().zip(&x_ref) {
            assert!((p - q).abs() < 1e-8 * (1.0 + q.abs()));
        }
    }

    #[test]
    fn checksummed_cpu_run_is_bit_identical_to_plain() {
        let a = dense::generate::uniform::<f64>(700, 48, 7);
        let mut opts = CpuCaqrOptions::for_width(48);
        let plain = caqr_cpu(a.clone(), opts).unwrap();
        opts.verify_checksums = true;
        let checked = caqr_cpu(a, opts).unwrap();
        // Detection is read-only: every checksum passes and the factored
        // matrix is untouched by the verification passes.
        assert_eq!(plain.a, checked.a);
    }

    #[test]
    fn checksummed_cpu_run_detects_injected_corruption() {
        // Corrupt a factored panel's tree T matrix and re-run the probe the
        // way `caqr_cpu` would: the mismatch must surface as the typed error.
        let a = dense::generate::uniform::<f64>(600, 16, 8);
        let opts = CpuCaqrOptions {
            tile_rows: 64,
            panel_width: 16,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        };
        let mut f = caqr_cpu(a, opts).unwrap();
        let p = &mut f.panels[0];
        p.levels[0][0].tmat[(0, 1)] += 0.25;
        let u = crate::health::q_ones_probe(600, p.width, &p.tiles, &p.wy0, &p.levels);
        match crate::health::verify_probe(&u, 0, 0) {
            Err(CaqrError::ChecksumMismatch { stage, .. }) => assert_eq!(stage, "factor"),
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn tile_heights_fit_cache_budget() {
        for w in [4usize, 16, 64, 100] {
            let o = CpuCaqrOptions::for_width(w);
            let bytes = o.tile_rows * o.panel_width * 8;
            assert!(bytes <= 2 * 128 * 1024, "width {w}: tile {bytes} B");
            assert!(o.tile_rows >= 4 * o.panel_width.min(w));
        }
    }
}
