//! Tile-granular fault recovery: ABFT-verified CAQR with a three-tier
//! replay ladder (DESIGN.md §10).
//!
//! [`caqr_resilient`] runs the barrier-mode DAG schedule of
//! [`crate::schedule::caqr_dag`] task by task, verifying every task's
//! output against the algorithm-based checksums of [`crate::health`]:
//!
//! * a **factor task** (the panel's `factor` + `factor_tree` chain) is
//!   checked with the column-norm invariant (`||R[:,j]|| == ||A[:,j]||`)
//!   and the orthogonality probe `||Q_p . 1||^2 == m` over the packed
//!   compact-WY factors the applies will consume;
//! * an **apply task** (one home-stream group of trailing column blocks)
//!   is checked against predicted post-update column sums (`u^T C`).
//!
//! A detected fault — a checksum mismatch from silent data corruption, a
//! [`CaqrError::Fault`] that outlived the launch-level retries, or a
//! [`CaqrError::Timeout`] from the hang watchdog — triggers replay of
//! *only the affected task* from an arena-backed snapshot of its input.
//! Repeated task failures escalate: replay the whole panel, then retry the
//! whole run from the pristine input, then give up with a typed
//! [`CaqrError::Unrecoverable`]. Snapshots restore bit-exact input state
//! and launch ordinals advance on every attempt (so a seeded fault plan
//! redraws), which makes a recovered run **bit-identical** to a fault-free
//! run of the same schedule.
//!
//! Detection is not free and is charged honestly: checksum passes appear
//! in the ledger under `checksum_verify`, snapshot save/restore traffic
//! under `snapshot`, and watchdog stalls under `watchdog_stall` — so the
//! overhead of resilience is measurable (`wallclock_report
//! --check-overhead` gates it in CI).

use crate::backend::{CaqrBackend, DagGeometry, DriveConfig, DriveOutcome, PanelStep, SimBackend};
use crate::caqr::{Caqr, CaqrOptions, LaunchPlan};
use crate::error::{checked_elems, CaqrError};
use crate::health::{
    actual_col_sums, panel_col_sumsq, predicted_col_sums, r_col_sumsq, verify_apply_checksums,
    verify_factor_checksums, verify_probe,
};
use crate::tsqr::PanelFactor;
use dense::arena;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::Gpu;

/// Replay budgets of the escalation ladder. Each tier's budget is per
/// scope: `max_task_replays` per task attempt streak, `max_panel_replays`
/// per panel, `max_run_retries` per call.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Tier 1: how many times one task (factor chain or apply group) may be
    /// replayed from its input snapshot before escalating.
    pub max_task_replays: u32,
    /// Tier 2: how many times a whole panel may be rolled back and redone.
    pub max_panel_replays: u32,
    /// Tier 3: how many times the whole run may restart from the pristine
    /// input before returning [`CaqrError::Unrecoverable`].
    pub max_run_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_task_replays: 3,
            max_panel_replays: 2,
            max_run_retries: 1,
        }
    }
}

/// Options for [`caqr_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// The numerical configuration (block size, strategy, tree shape).
    pub caqr: CaqrOptions,
    /// Streams the apply groups fan out over (barrier schedule).
    pub streams: usize,
    /// Replay budgets.
    pub policy: RecoveryPolicy,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// What the recovery executor did, for assertions and reporting. The
/// same tier counters are mirrored into the GPU's [`gpu_sim::CostLedger`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Individual checksum comparisons performed.
    pub checksum_checks: u64,
    /// Comparisons that failed (each triggers a replay).
    pub checksum_failures: u64,
    /// Tier-1 replays of a single task from its snapshot.
    pub task_replays: u64,
    /// Tier-2 whole-panel rollbacks.
    pub panel_replays: u64,
    /// Tier-3 whole-run retries from the pristine input.
    pub run_retries: u64,
    /// Watchdog timeouts the executor recovered from (or escalated past).
    pub timeouts: u64,
    /// Launch faults that outlived the launch-level retries.
    pub launch_faults: u64,
    /// Kernel launches enqueued across every attempt (replays included).
    pub launches: u64,
    /// Tier-4 failovers: whole devices lost and their work adopted by a
    /// survivor. Always 0 on a single device — `DeviceLost` is terminal
    /// there; the multi-device driver (`distributed`) fills this in.
    pub device_failovers: u64,
}

impl RecoveryReport {
    fn observe(&mut self, e: &CaqrError) {
        match e {
            CaqrError::Timeout { .. } => self.timeouts += 1,
            CaqrError::Fault { .. } => self.launch_faults += 1,
            CaqrError::ChecksumMismatch { .. } => self.checksum_failures += 1,
            _ => {}
        }
    }
}

/// A recoverable fault: retrying the producing task (with fresh launch
/// ordinals and restored inputs) can plausibly succeed. Everything else —
/// bad shapes, non-finite input, launch-config violations, a deadlocked
/// schedule — is deterministic and propagates immediately. `DeviceLost`
/// is deliberately *not* transient: a dead device answers no retry, so on
/// a single device the ladder fails fast; recovering from device loss
/// needs a survivor to fail over to (`distributed::distributed_tsqr`).
pub(crate) fn is_transient(e: &CaqrError) -> bool {
    matches!(
        e,
        CaqrError::Fault { .. } | CaqrError::Timeout { .. } | CaqrError::ChecksumMismatch { .. }
    )
}

/// An arena-backed copy of the rows `row0..m` of a set of column ranges —
/// the input state of one task, restored bit-exactly on replay. Snapshot
/// traffic (a DRAM read + write) is charged through
/// [`CaqrBackend::charge_snapshot`] under the `snapshot` op.
struct RegionSnapshot<T: Scalar> {
    row0: usize,
    cols: Vec<(usize, usize)>,
    data: arena::ArenaBuf<T>,
}

impl<T: Scalar> RegionSnapshot<T> {
    fn save<B: CaqrBackend<T>>(
        backend: &B,
        a: &Matrix<T>,
        row0: usize,
        cols: &[(usize, usize)],
    ) -> Self {
        let rows = a.rows() - row0;
        let ncols: usize = cols.iter().map(|&(_, wc)| wc).sum();
        let mut data = arena::take_dirty::<T>(rows * ncols);
        let mut off = 0;
        for &(c0, wc) in cols {
            for j in c0..c0 + wc {
                data[off..off + rows].copy_from_slice(&a.col(j)[row0..]);
                off += rows;
            }
        }
        backend.charge_snapshot(rows * ncols);
        RegionSnapshot {
            row0,
            cols: cols.to_vec(),
            data,
        }
    }

    fn restore<B: CaqrBackend<T>>(&self, backend: &B, a: &mut Matrix<T>) {
        let rows = a.rows() - self.row0;
        let mut off = 0;
        for &(c0, wc) in &self.cols {
            for j in c0..c0 + wc {
                a.col_mut(j)[self.row0..].copy_from_slice(&self.data[off..off + rows]);
                off += rows;
            }
        }
        backend.charge_snapshot(self.data.len());
    }
}

/// Factor `a` with ABFT-verified, fault-recovering CAQR. Numerically
/// bit-identical to [`crate::caqr::caqr`] / [`crate::schedule::caqr_dag`]
/// with the same [`CaqrOptions`] — including runs that recovered from
/// injected faults. Returns the factorization and a [`RecoveryReport`] of
/// what the escalation ladder did.
///
/// A thin shim over the generic [`drive_resilient`] on a barrier-mode
/// [`SimBackend`] (DESIGN.md §13): the escalation ladder itself is written
/// once against [`CaqrBackend`] and works on any executor.
pub fn caqr_resilient<T: Scalar>(
    gpu: &Gpu,
    a: Matrix<T>,
    opts: RecoveryOptions,
) -> Result<(Caqr<T>, RecoveryReport), CaqrError> {
    opts.caqr.bs.validate().map_err(CaqrError::BadShape)?;
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    let backend = SimBackend::resilient(gpu, opts.streams)?;
    let cfg = DriveConfig {
        bs: opts.caqr.bs,
        strategy: opts.caqr.strategy,
        tree: opts.caqr.tree,
        check_finite: opts.caqr.check_finite,
        verify_checksums: false,
        health_context: "caqr input",
    };
    let (out, report) = drive_resilient(&backend, a, &cfg, &opts.policy)?;
    Ok((
        Caqr {
            a: out.a,
            panels: out.panels,
            opts: opts.caqr,
            launch_plan: LaunchPlan::Dag {
                launches: out.launches,
            },
        },
        report,
    ))
}

/// The generic resilient driver: the barrier-mode DAG schedule of
/// [`crate::backend::drive`] run task by task on any [`CaqrBackend`], with
/// ABFT verification of every task and the three-tier snapshot/replay
/// escalation ladder described in the module docs. Written once against
/// the trait — the single-device executor ([`caqr_resilient`]) and any
/// future backend get identical recovery semantics.
pub fn drive_resilient<T: Scalar, B: CaqrBackend<T>>(
    backend: &B,
    pristine: Matrix<T>,
    cfg: &DriveConfig,
    policy: &RecoveryPolicy,
) -> Result<(DriveOutcome<T>, RecoveryReport), CaqrError> {
    cfg.bs.validate().map_err(CaqrError::BadShape)?;
    let (m, n) = pristine.shape();
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    checked_elems(m, n, "matrix element count")?;
    let geo = DagGeometry::new(m, n, cfg.bs.w, backend.slots());
    let mut report = RecoveryReport::default();
    let mut run_attempt = 0u32;
    loop {
        match run_once(backend, &geo, &pristine, cfg, policy, &mut report) {
            Ok(out) => return Ok((out, report)),
            Err(e) if is_transient(&e) => {
                backend.sync()?;
                if run_attempt >= policy.max_run_retries {
                    return Err(CaqrError::Unrecoverable {
                        context: format!(
                            "run retry budget ({}) exhausted; last error: {e}",
                            policy.max_run_retries
                        ),
                    });
                }
                run_attempt += 1;
                report.run_retries += 1;
                backend.note_run_retry();
            }
            Err(e) => {
                backend.sync()?;
                return Err(e);
            }
        }
    }
}

/// One full factorization attempt over a fresh copy of the pristine input.
/// Transient errors bubbling out of here have already exhausted the task
/// and panel tiers for their panel.
fn run_once<T: Scalar, B: CaqrBackend<T>>(
    backend: &B,
    geo: &DagGeometry,
    pristine: &Matrix<T>,
    cfg: &DriveConfig,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
) -> Result<DriveOutcome<T>, CaqrError> {
    let mut a = pristine.clone();
    let (m, n) = a.shape();
    let mut launches = 0usize;

    if cfg.check_finite {
        launches += backend.check_finite(&a, cfg.bs, cfg.health_context)?;
    }
    if cfg.strategy.needs_pretranspose() {
        launches += backend.pretranspose(m, n, cfg.bs)?;
    }

    let mut panels: Vec<PanelFactor<T>> = Vec::with_capacity(geo.steps.len());
    for step in &geo.steps {
        let pf = run_panel(
            backend,
            geo,
            &mut a,
            step,
            cfg,
            policy,
            report,
            &mut launches,
        )?;
        panels.push(pf);
    }
    backend.sync()?;
    report.launches += launches as u64;
    Ok(DriveOutcome {
        a,
        panels,
        launches,
    })
}

/// One panel with tier-2 recovery: snapshot the panel-start state of every
/// region the panel writes, run the panel's tasks (tier-1 recovery
/// inside), and on an escalated task failure roll everything back and
/// redo the panel — until the panel budget is spent.
#[allow(clippy::too_many_arguments)]
fn run_panel<T: Scalar, B: CaqrBackend<T>>(
    backend: &B,
    geo: &DagGeometry,
    a: &mut Matrix<T>,
    step: &PanelStep,
    cfg: &DriveConfig,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    launches: &mut usize,
) -> Result<PanelFactor<T>, CaqrError> {
    // Barrier geometry: every trailing block, partitioned by home slot.
    let groups = geo.groups(step, step.p + 1);
    let mut panel_attempt = 0u32;
    loop {
        // The factor snapshot doubles as the factor *task's* input snapshot
        // (taken before any factor attempt, so tier-1 restores reuse it);
        // the group snapshots are taken inside run_panel_tasks just before
        // each group's first apply. On rollback the union restores the
        // panel-start state exactly: the regions are disjoint and nothing
        // else writes them.
        let factor_snap = RegionSnapshot::save(backend, a, step.c, &[(step.c, step.width)]);
        match run_panel_tasks(
            backend,
            geo,
            a,
            step,
            &groups,
            &factor_snap,
            cfg,
            policy,
            report,
            launches,
        ) {
            Ok(pf) => return Ok(pf),
            Err((e, group_snaps)) if is_transient(&e) => {
                if panel_attempt >= policy.max_panel_replays {
                    return Err(e);
                }
                panel_attempt += 1;
                report.panel_replays += 1;
                backend.note_panel_replay();
                backend.sync()?;
                factor_snap.restore(backend, a);
                for snap in &group_snaps {
                    snap.restore(backend, a);
                }
            }
            Err((e, _)) => return Err(e),
        }
    }
}

type TaskError<T> = (CaqrError, Vec<RegionSnapshot<T>>);

/// The panel's task sequence with tier-1 recovery: factor chain (verified
/// by column norms + orthogonality probe), then one apply chain per home
/// stream (verified by predicted column sums). Errors return the group
/// snapshots taken so far so the caller can roll the panel back.
#[allow(clippy::too_many_arguments)]
fn run_panel_tasks<T: Scalar, B: CaqrBackend<T>>(
    backend: &B,
    geo: &DagGeometry,
    a: &mut Matrix<T>,
    step: &PanelStep,
    groups: &[Vec<(usize, usize)>],
    factor_snap: &RegionSnapshot<T>,
    cfg: &DriveConfig,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    launches: &mut usize,
) -> Result<PanelFactor<T>, TaskError<T>> {
    let m = a.rows();
    let rows = m - step.c;
    let slot = geo.home(step.p);
    let mut group_snaps: Vec<RegionSnapshot<T>> = Vec::new();

    // --- factor task -------------------------------------------------------
    let pre = panel_col_sumsq(a, step.c, step.c, step.width);
    backend.charge_verify(rows * step.width);
    let mut attempt = 0u32;
    let (pf, u) = loop {
        let result = (|| -> Result<(PanelFactor<T>, Vec<T>), CaqrError> {
            let pf = backend.factor_panel(slot, a, step.c, step.c, step.width, cfg)?;
            backend.sync()?;
            *launches += 1 + pf.levels.len();
            // Column-norm invariance of the surviving R (catches corrupted
            // R elements and corrupted reflectors feeding the tree).
            let post = r_col_sumsq(a, step.c, step.c, step.width);
            report.checksum_checks += step.width as u64;
            verify_factor_checksums::<T>(&pre, &post, rows, step.p, step.c)?;
            // Orthogonality probe over the packed factors (catches
            // corrupted V/T/tau copies, which the matrix checks can't see).
            let u = backend.q_ones_probe(m, &pf);
            report.checksum_checks += 1;
            verify_probe(&u, step.p, step.c)?;
            backend.charge_verify(rows * step.width + m);
            Ok((pf, u))
        })();
        match result {
            Ok(out) => break out,
            Err(e) if is_transient(&e) => {
                report.observe(&e);
                if attempt >= policy.max_task_replays {
                    return Err((e, group_snaps));
                }
                attempt += 1;
                report.task_replays += 1;
                backend.note_task_replay();
                if backend.sync().is_err() {
                    return Err((e, group_snaps));
                }
                factor_snap.restore(backend, a);
            }
            Err(e) => return Err((e, group_snaps)),
        }
    };

    // --- apply tasks -------------------------------------------------------
    // Enqueue every group first (slots overlap in the resolved timeline),
    // then barrier once and verify each group; only a failing group replays.
    let mut preds: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
    for (t, cols) in groups.iter().enumerate() {
        if cols.is_empty() {
            continue;
        }
        group_snaps.push(RegionSnapshot::save(backend, a, step.c, cols));
        let pred = predicted_col_sums(&u, a, cols);
        backend.charge_verify(m * pred.len());
        preds.push((t, pred));
        let ap = MatPtr::new(a);
        if let Err(e) = backend.apply_panel(t, ap, &pf, cols, true) {
            report.observe(&e);
            return Err((e, group_snaps));
        }
        *launches += 1 + pf.levels.len();
    }
    if let Err(e) = backend.sync() {
        return Err((e, group_snaps));
    }
    for (si, (t, pred)) in preds.iter().enumerate() {
        let cols = &groups[*t];
        let mut attempt = 0u32;
        loop {
            let actual = actual_col_sums(a, cols);
            report.checksum_checks += pred.len() as u64;
            backend.charge_verify(m * pred.len());
            let verdict = verify_apply_checksums::<T>(pred, &actual, cols, m, step.p);
            let e = match verdict {
                Ok(()) => break,
                Err(e) => e,
            };
            report.observe(&e);
            if attempt >= policy.max_task_replays {
                return Err((e, group_snaps));
            }
            attempt += 1;
            report.task_replays += 1;
            backend.note_task_replay();
            group_snaps[si].restore(backend, a);
            let ap = MatPtr::new(a);
            let replay = backend
                .apply_panel(*t, ap, &pf, cols, true)
                .and_then(|()| backend.sync());
            match replay {
                Ok(()) => *launches += 1 + pf.levels.len(),
                Err(e) if is_transient(&e) => {
                    // A faulted replay attempt consumes task budget too; the
                    // next loop iteration re-verifies the restored-but-stale
                    // region and keeps going until the budget runs out.
                    report.observe(&e);
                    group_snaps[si].restore(backend, a);
                }
                Err(e) => return Err((e, group_snaps)),
            }
        }
    }
    Ok(pf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockSize, TreeShape};
    use crate::caqr::caqr;
    use crate::microkernels::ReductionStrategy;
    use dense::generate;
    use gpu_sim::{DeviceSpec, FaultPlan};

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn opts() -> RecoveryOptions {
        RecoveryOptions {
            caqr: CaqrOptions {
                bs: BlockSize { h: 32, w: 8 },
                strategy: ReductionStrategy::RegisterSerialTransposed,
                tree: TreeShape::DeviceArity,
                check_finite: true,
            },
            streams: 3,
            policy: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn fault_free_run_matches_plain_caqr_bitwise() {
        let a = generate::uniform::<f64>(200, 24, 9);
        let clean = caqr(&gpu(), a.clone(), opts().caqr).unwrap();
        let g = gpu();
        let (f, report) = caqr_resilient(&g, a, opts()).unwrap();
        for j in 0..24 {
            for i in 0..200 {
                assert_eq!(f.a[(i, j)], clean.a[(i, j)], "({i},{j})");
            }
        }
        assert_eq!(report.task_replays, 0);
        assert_eq!(report.panel_replays, 0);
        assert_eq!(report.run_retries, 0);
        assert_eq!(report.checksum_failures, 0);
        assert!(report.checksum_checks > 0);
        // Detection cost is visible in the ledger.
        assert!(g.ledger().per_op.contains_key("checksum_verify"));
    }

    #[test]
    fn sdc_in_an_apply_is_detected_and_replayed_to_bit_identity() {
        let a = generate::uniform::<f64>(200, 24, 10);
        let clean = caqr(&gpu(), a.clone(), opts().caqr).unwrap();
        let g = gpu();
        // Launch 0 is the health check; corrupt a later launch so an apply
        // or factor output takes the hit (either way recovery must fix it).
        g.set_fault_plan(FaultPlan::sdc_at_launches(&[2, 5]));
        let (f, report) = caqr_resilient(&g, a, opts()).unwrap();
        for j in 0..24 {
            for i in 0..200 {
                assert_eq!(f.a[(i, j)], clean.a[(i, j)], "({i},{j})");
            }
        }
        assert_eq!(g.ledger().sdc_injected, 2);
        assert!(report.checksum_failures >= 1, "{report:?}");
        assert!(report.task_replays >= 1, "{report:?}");
        assert_eq!(report.run_retries, 0);
        // Tier counters are mirrored to the ledger.
        assert_eq!(g.ledger().task_replays, report.task_replays);
    }

    #[test]
    fn unrecoverable_hang_surfaces_typed_error_not_a_panic() {
        let g = gpu();
        // Every launch hangs forever: all tiers must drain, then a typed
        // Unrecoverable (the health check itself times out first).
        g.set_fault_plan(FaultPlan::seeded_mix(3, 0.0, 0.0, 1.0));
        let a = generate::uniform::<f64>(96, 16, 11);
        let e = match caqr_resilient(&g, a, opts()) {
            Err(e) => e,
            Ok(_) => panic!("an always-hanging plan cannot succeed"),
        };
        assert!(
            matches!(e, CaqrError::Unrecoverable { .. }),
            "expected Unrecoverable, got {e:?}"
        );
        assert!(g.ledger().hangs > 0);
    }
}
