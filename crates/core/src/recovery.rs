//! Tile-granular fault recovery: ABFT-verified CAQR with a three-tier
//! replay ladder (DESIGN.md §10).
//!
//! [`caqr_resilient`] runs the barrier-mode DAG schedule of
//! [`crate::schedule::caqr_dag`] task by task, verifying every task's
//! output against the algorithm-based checksums of [`crate::health`]:
//!
//! * a **factor task** (the panel's `factor` + `factor_tree` chain) is
//!   checked with the column-norm invariant (`||R[:,j]|| == ||A[:,j]||`)
//!   and the orthogonality probe `||Q_p . 1||^2 == m` over the packed
//!   compact-WY factors the applies will consume;
//! * an **apply task** (one home-stream group of trailing column blocks)
//!   is checked against predicted post-update column sums (`u^T C`).
//!
//! A detected fault — a checksum mismatch from silent data corruption, a
//! [`CaqrError::Fault`] that outlived the launch-level retries, or a
//! [`CaqrError::Timeout`] from the hang watchdog — triggers replay of
//! *only the affected task* from an arena-backed snapshot of its input.
//! Repeated task failures escalate: replay the whole panel, then retry the
//! whole run from the pristine input, then give up with a typed
//! [`CaqrError::Unrecoverable`]. Snapshots restore bit-exact input state
//! and launch ordinals advance on every attempt (so a seeded fault plan
//! redraws), which makes a recovered run **bit-identical** to a fault-free
//! run of the same schedule.
//!
//! Detection is not free and is charged honestly: checksum passes appear
//! in the ledger under `checksum_verify`, snapshot save/restore traffic
//! under `snapshot`, and watchdog stalls under `watchdog_stall` — so the
//! overhead of resilience is measurable (`wallclock_report
//! --check-overhead` gates it in CI).

use crate::caqr::{Caqr, CaqrOptions, LaunchPlan};
use crate::error::CaqrError;
use crate::health::{
    actual_col_sums, check_matrix_finite, panel_col_sumsq, predicted_col_sums, q_ones_probe,
    r_col_sumsq, verify_apply_checksums, verify_factor_checksums, verify_probe,
};
use crate::kernels::PretransposeKernel;
use crate::schedule::{Dag, PanelStep, ScheduleOptions};
use crate::tsqr::{apply_panel_ptr_on, factor_panel_with_tree_on, PanelFactor};
use dense::arena;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{Exec, Gpu};

/// Replay budgets of the escalation ladder. Each tier's budget is per
/// scope: `max_task_replays` per task attempt streak, `max_panel_replays`
/// per panel, `max_run_retries` per call.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Tier 1: how many times one task (factor chain or apply group) may be
    /// replayed from its input snapshot before escalating.
    pub max_task_replays: u32,
    /// Tier 2: how many times a whole panel may be rolled back and redone.
    pub max_panel_replays: u32,
    /// Tier 3: how many times the whole run may restart from the pristine
    /// input before returning [`CaqrError::Unrecoverable`].
    pub max_run_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_task_replays: 3,
            max_panel_replays: 2,
            max_run_retries: 1,
        }
    }
}

/// Options for [`caqr_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// The numerical configuration (block size, strategy, tree shape).
    pub caqr: CaqrOptions,
    /// Streams the apply groups fan out over (barrier schedule).
    pub streams: usize,
    /// Replay budgets.
    pub policy: RecoveryPolicy,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            caqr: CaqrOptions::default(),
            streams: 4,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// What the recovery executor did, for assertions and reporting. The
/// same tier counters are mirrored into the GPU's [`gpu_sim::CostLedger`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Individual checksum comparisons performed.
    pub checksum_checks: u64,
    /// Comparisons that failed (each triggers a replay).
    pub checksum_failures: u64,
    /// Tier-1 replays of a single task from its snapshot.
    pub task_replays: u64,
    /// Tier-2 whole-panel rollbacks.
    pub panel_replays: u64,
    /// Tier-3 whole-run retries from the pristine input.
    pub run_retries: u64,
    /// Watchdog timeouts the executor recovered from (or escalated past).
    pub timeouts: u64,
    /// Launch faults that outlived the launch-level retries.
    pub launch_faults: u64,
    /// Kernel launches enqueued across every attempt (replays included).
    pub launches: u64,
    /// Tier-4 failovers: whole devices lost and their work adopted by a
    /// survivor. Always 0 on a single device — `DeviceLost` is terminal
    /// there; the multi-device driver (`distributed`) fills this in.
    pub device_failovers: u64,
}

impl RecoveryReport {
    fn observe(&mut self, e: &CaqrError) {
        match e {
            CaqrError::Timeout { .. } => self.timeouts += 1,
            CaqrError::Fault { .. } => self.launch_faults += 1,
            CaqrError::ChecksumMismatch { .. } => self.checksum_failures += 1,
            _ => {}
        }
    }
}

/// A recoverable fault: retrying the producing task (with fresh launch
/// ordinals and restored inputs) can plausibly succeed. Everything else —
/// bad shapes, non-finite input, launch-config violations, a deadlocked
/// schedule — is deterministic and propagates immediately. `DeviceLost`
/// is deliberately *not* transient: a dead device answers no retry, so on
/// a single device the ladder fails fast; recovering from device loss
/// needs a survivor to fail over to (`distributed::distributed_tsqr`).
fn is_transient(e: &CaqrError) -> bool {
    matches!(
        e,
        CaqrError::Fault { .. } | CaqrError::Timeout { .. } | CaqrError::ChecksumMismatch { .. }
    )
}

/// Resolve all queued stream work (the recovery schedule uses host-side
/// barriers between tasks instead of events, so this can never deadlock).
fn sync_now(gpu: &Gpu) -> Result<(), CaqrError> {
    gpu.try_synchronize()
        .map(|_| ())
        .map_err(|context| CaqrError::Breakdown { context })
}

/// Charge a host-side checksum pass over `elems` elements (one streamed
/// read at DRAM bandwidth, two flops per element) to the ledger under
/// `checksum_verify` — the measurable cost of ABFT detection.
fn charge_verify<T: Scalar>(gpu: &Gpu, elems: usize) {
    let bytes = elems as f64 * T::BYTES as f64;
    gpu.host_work(
        "checksum_verify",
        bytes / (gpu.spec().dram_bw_gbs * 1e9),
        2.0 * elems as f64,
    );
}

/// An arena-backed copy of the rows `row0..m` of a set of column ranges —
/// the input state of one task, restored bit-exactly on replay.
struct RegionSnapshot<T: Scalar> {
    row0: usize,
    cols: Vec<(usize, usize)>,
    data: arena::ArenaBuf<T>,
}

impl<T: Scalar> RegionSnapshot<T> {
    fn save(gpu: &Gpu, a: &Matrix<T>, row0: usize, cols: &[(usize, usize)]) -> Self {
        let rows = a.rows() - row0;
        let ncols: usize = cols.iter().map(|&(_, wc)| wc).sum();
        let mut data = arena::take_dirty::<T>(rows * ncols);
        let mut off = 0;
        for &(c0, wc) in cols {
            for j in c0..c0 + wc {
                data[off..off + rows].copy_from_slice(&a.col(j)[row0..]);
                off += rows;
            }
        }
        Self::charge(gpu, rows * ncols);
        RegionSnapshot {
            row0,
            cols: cols.to_vec(),
            data,
        }
    }

    fn restore(&self, gpu: &Gpu, a: &mut Matrix<T>) {
        let rows = a.rows() - self.row0;
        let mut off = 0;
        for &(c0, wc) in &self.cols {
            for j in c0..c0 + wc {
                a.col_mut(j)[self.row0..].copy_from_slice(&self.data[off..off + rows]);
                off += rows;
            }
        }
        Self::charge(gpu, self.data.len());
    }

    /// Snapshot traffic is a DRAM copy; charge it at device bandwidth
    /// under the `snapshot` op (read + write).
    fn charge(gpu: &Gpu, elems: usize) {
        let bytes = 2.0 * elems as f64 * T::BYTES as f64;
        gpu.host_work("snapshot", bytes / (gpu.spec().dram_bw_gbs * 1e9), 0.0);
    }
}

/// Factor `a` with ABFT-verified, fault-recovering CAQR. Numerically
/// bit-identical to [`crate::caqr::caqr`] / [`crate::schedule::caqr_dag`]
/// with the same [`CaqrOptions`] — including runs that recovered from
/// injected faults. Returns the factorization and a [`RecoveryReport`] of
/// what the escalation ladder did.
pub fn caqr_resilient<T: Scalar>(
    gpu: &Gpu,
    a: Matrix<T>,
    opts: RecoveryOptions,
) -> Result<(Caqr<T>, RecoveryReport), CaqrError> {
    let sched = ScheduleOptions {
        caqr: opts.caqr,
        streams: opts.streams,
        lookahead: false,
    };
    let (m, n) = a.shape();
    let dag = Dag::new(gpu, m, n, &sched)?;
    let mut report = RecoveryReport::default();
    let pristine = a;
    let mut run_attempt = 0u32;
    loop {
        match run_once(gpu, &dag, &pristine, opts.caqr, &opts.policy, &mut report) {
            Ok(caqr) => return Ok((caqr, report)),
            Err(e) if is_transient(&e) => {
                sync_now(gpu)?;
                if run_attempt >= opts.policy.max_run_retries {
                    return Err(CaqrError::Unrecoverable {
                        context: format!(
                            "run retry budget ({}) exhausted; last error: {e}",
                            opts.policy.max_run_retries
                        ),
                    });
                }
                run_attempt += 1;
                report.run_retries += 1;
                gpu.note_run_retry();
            }
            Err(e) => {
                sync_now(gpu)?;
                return Err(e);
            }
        }
    }
}

/// One full factorization attempt over a fresh copy of the pristine input.
/// Transient errors bubbling out of here have already exhausted the task
/// and panel tiers for their panel.
fn run_once<T: Scalar>(
    gpu: &Gpu,
    dag: &Dag,
    pristine: &Matrix<T>,
    o: CaqrOptions,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
) -> Result<Caqr<T>, CaqrError> {
    let mut a = pristine.clone();
    let (m, n) = a.shape();
    let mut launches = 0usize;

    if o.check_finite {
        check_matrix_finite(gpu, Exec::Sync, &a, o.bs, "caqr input")?;
        launches += 1;
    }
    if o.strategy.needs_pretranspose() {
        let kernel = PretransposeKernel {
            blocks: m.div_ceil(o.bs.h) * n.div_ceil(o.bs.w),
            tile_rows: o.bs.h,
            tile_cols: o.bs.w,
            spec: gpu.spec(),
        };
        gpu.launch::<T>(&kernel)?;
        launches += 1;
    }

    let mut panels: Vec<PanelFactor<T>> = Vec::with_capacity(dag.steps.len());
    for step in &dag.steps {
        let pf = run_panel(gpu, dag, &mut a, step, o, policy, report, &mut launches)?;
        panels.push(pf);
    }
    sync_now(gpu)?;
    report.launches += launches as u64;
    Ok(Caqr {
        a,
        panels,
        opts: o,
        launch_plan: LaunchPlan::Dag { launches },
    })
}

/// One panel with tier-2 recovery: snapshot the panel-start state of every
/// region the panel writes, run the panel's tasks (tier-1 recovery
/// inside), and on an escalated task failure roll everything back and
/// redo the panel — until the panel budget is spent.
#[allow(clippy::too_many_arguments)]
fn run_panel<T: Scalar>(
    gpu: &Gpu,
    dag: &Dag,
    a: &mut Matrix<T>,
    step: &PanelStep,
    o: CaqrOptions,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    launches: &mut usize,
) -> Result<PanelFactor<T>, CaqrError> {
    // Barrier geometry: every trailing block, partitioned by home stream.
    let groups = dag.groups(step, step.p + 1);
    let mut panel_attempt = 0u32;
    loop {
        // The factor snapshot doubles as the factor *task's* input snapshot
        // (taken before any factor attempt, so tier-1 restores reuse it);
        // the group snapshots are taken inside run_panel_tasks just before
        // each group's first apply. On rollback the union restores the
        // panel-start state exactly: the regions are disjoint and nothing
        // else writes them.
        let factor_snap = RegionSnapshot::save(gpu, a, step.c, &[(step.c, step.width)]);
        match run_panel_tasks(
            gpu,
            dag,
            a,
            step,
            &groups,
            &factor_snap,
            o,
            policy,
            report,
            launches,
        ) {
            Ok(pf) => return Ok(pf),
            Err((e, group_snaps)) if is_transient(&e) => {
                if panel_attempt >= policy.max_panel_replays {
                    return Err(e);
                }
                panel_attempt += 1;
                report.panel_replays += 1;
                gpu.note_panel_replay();
                sync_now(gpu)?;
                factor_snap.restore(gpu, a);
                for snap in &group_snaps {
                    snap.restore(gpu, a);
                }
            }
            Err((e, _)) => return Err(e),
        }
    }
}

type TaskError<T> = (CaqrError, Vec<RegionSnapshot<T>>);

/// The panel's task sequence with tier-1 recovery: factor chain (verified
/// by column norms + orthogonality probe), then one apply chain per home
/// stream (verified by predicted column sums). Errors return the group
/// snapshots taken so far so the caller can roll the panel back.
#[allow(clippy::too_many_arguments)]
fn run_panel_tasks<T: Scalar>(
    gpu: &Gpu,
    dag: &Dag,
    a: &mut Matrix<T>,
    step: &PanelStep,
    groups: &[Vec<(usize, usize)>],
    factor_snap: &RegionSnapshot<T>,
    o: CaqrOptions,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    launches: &mut usize,
) -> Result<PanelFactor<T>, TaskError<T>> {
    let m = a.rows();
    let rows = m - step.c;
    let sid = dag.stream(step.p);
    let mut group_snaps: Vec<RegionSnapshot<T>> = Vec::new();

    // --- factor task -------------------------------------------------------
    let pre = panel_col_sumsq(a, step.c, step.c, step.width);
    charge_verify::<T>(gpu, rows * step.width);
    let mut attempt = 0u32;
    let (pf, u) = loop {
        let result = (|| -> Result<(PanelFactor<T>, Vec<T>), CaqrError> {
            let pf = factor_panel_with_tree_on(
                gpu,
                Exec::Stream(sid),
                a,
                step.c,
                step.c,
                step.width,
                o.bs,
                o.strategy,
                o.tree,
            )?;
            sync_now(gpu)?;
            *launches += 1 + pf.levels.len();
            // Column-norm invariance of the surviving R (catches corrupted
            // R elements and corrupted reflectors feeding the tree).
            let post = r_col_sumsq(a, step.c, step.c, step.width);
            report.checksum_checks += step.width as u64;
            verify_factor_checksums::<T>(&pre, &post, rows, step.p, step.c)?;
            // Orthogonality probe over the packed factors (catches
            // corrupted V/T/tau copies, which the matrix checks can't see).
            let u = q_ones_probe(m, step.width, &pf.tiles, &pf.wy0, &pf.levels);
            report.checksum_checks += 1;
            verify_probe(&u, step.p, step.c)?;
            charge_verify::<T>(gpu, rows * step.width + m);
            Ok((pf, u))
        })();
        match result {
            Ok(out) => break out,
            Err(e) if is_transient(&e) => {
                report.observe(&e);
                if attempt >= policy.max_task_replays {
                    return Err((e, group_snaps));
                }
                attempt += 1;
                report.task_replays += 1;
                gpu.note_task_replay();
                if sync_now(gpu).is_err() {
                    return Err((e, group_snaps));
                }
                factor_snap.restore(gpu, a);
            }
            Err(e) => return Err((e, group_snaps)),
        }
    };

    // --- apply tasks -------------------------------------------------------
    // Enqueue every group first (streams overlap in the resolved timeline),
    // then barrier once and verify each group; only a failing group replays.
    let mut preds: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
    for (t, cols) in groups.iter().enumerate() {
        if cols.is_empty() {
            continue;
        }
        group_snaps.push(RegionSnapshot::save(gpu, a, step.c, cols));
        let pred = predicted_col_sums(&u, a, cols);
        charge_verify::<T>(gpu, m * pred.len());
        preds.push((t, pred));
        let ap = MatPtr::new(a);
        if let Err(e) = apply_panel_ptr_on(gpu, Exec::Stream(dag.streams[t]), ap, &pf, cols, true) {
            report.observe(&e);
            return Err((e, group_snaps));
        }
        *launches += 1 + pf.levels.len();
    }
    if let Err(e) = sync_now(gpu) {
        return Err((e, group_snaps));
    }
    for (si, (t, pred)) in preds.iter().enumerate() {
        let cols = &groups[*t];
        let mut attempt = 0u32;
        loop {
            let actual = actual_col_sums(a, cols);
            report.checksum_checks += pred.len() as u64;
            charge_verify::<T>(gpu, m * pred.len());
            let verdict = verify_apply_checksums::<T>(pred, &actual, cols, m, step.p);
            let e = match verdict {
                Ok(()) => break,
                Err(e) => e,
            };
            report.observe(&e);
            if attempt >= policy.max_task_replays {
                return Err((e, group_snaps));
            }
            attempt += 1;
            report.task_replays += 1;
            gpu.note_task_replay();
            group_snaps[si].restore(gpu, a);
            let ap = MatPtr::new(a);
            let replay =
                apply_panel_ptr_on(gpu, Exec::Stream(dag.streams[*t]), ap, &pf, cols, true)
                    .and_then(|()| sync_now(gpu));
            match replay {
                Ok(()) => *launches += 1 + pf.levels.len(),
                Err(e) if is_transient(&e) => {
                    // A faulted replay attempt consumes task budget too; the
                    // next loop iteration re-verifies the restored-but-stale
                    // region and keeps going until the budget runs out.
                    report.observe(&e);
                    group_snaps[si].restore(gpu, a);
                }
                Err(e) => return Err((e, group_snaps)),
            }
        }
    }
    Ok(pf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockSize, TreeShape};
    use crate::caqr::caqr;
    use crate::microkernels::ReductionStrategy;
    use dense::generate;
    use gpu_sim::{DeviceSpec, FaultPlan};

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn opts() -> RecoveryOptions {
        RecoveryOptions {
            caqr: CaqrOptions {
                bs: BlockSize { h: 32, w: 8 },
                strategy: ReductionStrategy::RegisterSerialTransposed,
                tree: TreeShape::DeviceArity,
                check_finite: true,
            },
            streams: 3,
            policy: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn fault_free_run_matches_plain_caqr_bitwise() {
        let a = generate::uniform::<f64>(200, 24, 9);
        let clean = caqr(&gpu(), a.clone(), opts().caqr).unwrap();
        let g = gpu();
        let (f, report) = caqr_resilient(&g, a, opts()).unwrap();
        for j in 0..24 {
            for i in 0..200 {
                assert_eq!(f.a[(i, j)], clean.a[(i, j)], "({i},{j})");
            }
        }
        assert_eq!(report.task_replays, 0);
        assert_eq!(report.panel_replays, 0);
        assert_eq!(report.run_retries, 0);
        assert_eq!(report.checksum_failures, 0);
        assert!(report.checksum_checks > 0);
        // Detection cost is visible in the ledger.
        assert!(g.ledger().per_op.contains_key("checksum_verify"));
    }

    #[test]
    fn sdc_in_an_apply_is_detected_and_replayed_to_bit_identity() {
        let a = generate::uniform::<f64>(200, 24, 10);
        let clean = caqr(&gpu(), a.clone(), opts().caqr).unwrap();
        let g = gpu();
        // Launch 0 is the health check; corrupt a later launch so an apply
        // or factor output takes the hit (either way recovery must fix it).
        g.set_fault_plan(FaultPlan::sdc_at_launches(&[2, 5]));
        let (f, report) = caqr_resilient(&g, a, opts()).unwrap();
        for j in 0..24 {
            for i in 0..200 {
                assert_eq!(f.a[(i, j)], clean.a[(i, j)], "({i},{j})");
            }
        }
        assert_eq!(g.ledger().sdc_injected, 2);
        assert!(report.checksum_failures >= 1, "{report:?}");
        assert!(report.task_replays >= 1, "{report:?}");
        assert_eq!(report.run_retries, 0);
        // Tier counters are mirrored to the ledger.
        assert_eq!(g.ledger().task_replays, report.task_replays);
    }

    #[test]
    fn unrecoverable_hang_surfaces_typed_error_not_a_panic() {
        let g = gpu();
        // Every launch hangs forever: all tiers must drain, then a typed
        // Unrecoverable (the health check itself times out first).
        g.set_fault_plan(FaultPlan::seeded_mix(3, 0.0, 0.0, 1.0));
        let a = generate::uniform::<f64>(96, 16, 11);
        let e = match caqr_resilient(&g, a, opts()) {
            Err(e) => e,
            Ok(_) => panic!("an always-hanging plan cannot succeed"),
        };
        assert!(
            matches!(e, CaqrError::Unrecoverable { .. }),
            "expected Unrecoverable, got {e:?}"
        );
        assert!(g.ledger().hangs > 0);
    }
}
