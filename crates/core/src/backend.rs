//! The execution-backend abstraction: **one** CAQR algorithm, pluggable
//! executors (DESIGN.md §13).
//!
//! The paper's algorithm — TSQR panels reduced up a tree, trailing updates
//! applied as compact-WY BLAS3 — does not care *where* a panel factors or a
//! column block updates; only the execution substrate differs between the
//! host-multicore path, the single-device simulator (synchronous or
//! stream-DAG), the resilient executor and the multi-device cluster. This
//! module separates the two concerns the way Demmel et al. separate the
//! reduction tree from the machine (arXiv:0806.2159), and the way faer-libs
//! layers entity/backend traits under one algorithm:
//!
//! * [`CaqrBackend`] is the executor surface: launch a panel factor chain or
//!   an apply chain on a *slot* (a stream lane, or the lone slot of a
//!   sequential executor), order slots with record/wait tokens, synchronize,
//!   scan input health, and charge/account detection work.
//! * [`drive`] is the single generic driver: the Figure-4 host loop
//!   ([`Mode::Sync`]) and the stream-scheduled task DAG with optional
//!   lookahead ([`Mode::Dag`]), including the optional ABFT detection
//!   checksums — written once, bit-identical across every backend because
//!   all backends run the same `blockops` arithmetic in host order.
//! * [`crate::recovery::drive_resilient`] layers the snapshot/replay
//!   escalation ladder over the same trait.
//!
//! Dispatch is static: every entry point (`caqr`, `caqr_dag`, `caqr_cpu`,
//! `caqr_resilient`, `distributed_tsqr`) is a thin shim that instantiates
//! `drive` with a concrete backend type — no `dyn` anywhere on the hot path.

use crate::block::{BlockSize, TreeShape};
use crate::error::{checked_elems, CaqrError};
use crate::health;
use crate::kernels::PretransposeKernel;
use crate::microkernels::ReductionStrategy;
use crate::tsqr::{apply_panel_ptr_on, col_blocks, factor_panel_with_tree_on, PanelFactor};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{EventId, Exec, Gpu, StreamId};

/// How the generic driver schedules the panel loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The synchronous Figure-4 loop: factor, then one whole-trailing apply
    /// chain, panel after panel, all on slot 0.
    Sync,
    /// The stream-scheduled task DAG: column blocks owned by home slots,
    /// cross-slot dependencies expressed with record/wait tokens.
    Dag {
        /// Factor panel `k+1` as soon as its own column block is updated,
        /// ahead of panel `k`'s bulk trailing update.
        lookahead: bool,
    },
}

/// Numerical + detection configuration of one [`drive`] run. This is the
/// backend-independent subset of the per-path option structs; the shims
/// translate their own options into it.
#[derive(Clone, Copy, Debug)]
pub struct DriveConfig {
    /// Block size (panel width = `bs.w`).
    pub bs: BlockSize,
    /// Kernel tuning strategy (modelled cost only; also decides whether the
    /// strategy-4 pre-transpose pass runs).
    pub strategy: ReductionStrategy,
    /// Reduction-tree shape.
    pub tree: TreeShape,
    /// Scan the input for NaN/inf before factoring.
    pub check_finite: bool,
    /// Run the ABFT detection checksums of [`crate::health`] around every
    /// panel (factor column norms, `Q·1` probe, predicted trailing column
    /// sums). Only honoured by [`Mode::Sync`]; detection-with-replay lives
    /// in [`crate::recovery::drive_resilient`].
    pub verify_checksums: bool,
    /// Context string for the typed [`CaqrError::NonFinite`] error.
    pub health_context: &'static str,
}

/// What [`drive`] produced: the factored matrix, the per-panel TSQR factors
/// in factorization order, and the exact number of kernel launches the
/// schedule issued (0-cost backends count logical chains the same way).
pub struct DriveOutcome<T: Scalar> {
    /// The factored matrix: `R` in the upper triangle, Householder tails
    /// below it.
    pub a: Matrix<T>,
    /// Per-panel factors.
    pub panels: Vec<PanelFactor<T>>,
    /// Kernel launches issued (factor chains, apply chains, health check,
    /// pre-transpose), counted as the schedule enqueued them.
    pub launches: usize,
}

/// An execution substrate for the CAQR algorithm.
///
/// A backend owns a fixed set of *slots* — ordered work lanes. The
/// sequential executors (host CPU, synchronous simulator, cluster) expose
/// one slot; the stream-DAG executor exposes one per CUDA stream. The
/// driver expresses every cross-slot dependency through [`record`] /
/// [`wait`] tokens, so a backend with eager in-order execution may make
/// both no-ops.
///
/// All methods take `&self`: backends needing mutable state (ledgers,
/// failover maps) use interior mutability, which keeps the driver free of
/// borrow gymnastics while the host control flow stays single-threaded.
///
/// [`record`]: CaqrBackend::record
/// [`wait`]: CaqrBackend::wait
pub trait CaqrBackend<T: Scalar> {
    /// Ordering token returned by [`CaqrBackend::record`].
    type Token: Copy;

    /// Number of work lanes the DAG scheduler may fan out over.
    fn slots(&self) -> usize;

    /// Scan `a` for NaN/inf, surfacing [`CaqrError::NonFinite`]. Returns
    /// the number of kernel launches the scan issued (0 for a host scan).
    fn check_finite(
        &self,
        a: &Matrix<T>,
        bs: BlockSize,
        context: &'static str,
    ) -> Result<usize, CaqrError>;

    /// Run the strategy-4 out-of-place pre-transpose pass, if this backend
    /// models it. Returns the number of launches issued.
    fn pretranspose(&self, m: usize, n: usize, bs: BlockSize) -> Result<usize, CaqrError>;

    /// Factor the panel at `(row0, col0)` of width `width` on `slot`: one
    /// level-0 factor launch plus one `factor_tree` launch per tree level.
    fn factor_panel(
        &self,
        slot: usize,
        a: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        width: usize,
        cfg: &DriveConfig,
    ) -> Result<PanelFactor<T>, CaqrError>;

    /// Apply the panel's `Q^T` (or `Q`) to the column blocks `cols` on
    /// `slot`: one horizontal launch plus one per tree level.
    fn apply_panel(
        &self,
        slot: usize,
        c: MatPtr<T>,
        pf: &PanelFactor<T>,
        cols: &[(usize, usize)],
        transpose: bool,
    ) -> Result<(), CaqrError>;

    /// Record an ordering token after the work queued so far on `slot`.
    fn record(&self, slot: usize) -> Self::Token;

    /// Make future work on `slot` wait for `token`.
    fn wait(&self, slot: usize, token: Self::Token);

    /// Resolve all queued work (modelled timing included).
    fn sync(&self) -> Result<(), CaqrError>;

    /// The `‖Q·1‖² = m` orthogonality probe over the panel's packed
    /// compact-WY factors. Overridable so the host backend can use its
    /// one-column fast path.
    fn q_ones_probe(&self, m: usize, pf: &PanelFactor<T>) -> Vec<T> {
        health::q_ones_probe(m, pf.width, &pf.tiles, &pf.wy0, &pf.levels)
    }

    /// Charge one ABFT checksum pass over `elems` elements (a streamed read
    /// at DRAM bandwidth, two flops per element) to the backend's ledger.
    /// No-op on backends without a cost model.
    fn charge_verify(&self, elems: usize) {
        let _ = elems;
    }

    /// Charge snapshot save/restore traffic over `elems` elements (DRAM
    /// read + write). No-op on backends without a cost model.
    fn charge_snapshot(&self, elems: usize) {
        let _ = elems;
    }

    /// Count `n` individual checksum comparisons in the backend's report.
    fn note_checksum_checks(&self, n: u64) {
        let _ = n;
    }

    /// Mirror a tier-1 task replay into the backend's ledger.
    fn note_task_replay(&self) {}

    /// Mirror a tier-2 panel replay into the backend's ledger.
    fn note_panel_replay(&self) {}

    /// Mirror a tier-3 run retry into the backend's ledger.
    fn note_run_retry(&self) {}
}

/// The static shape of one panel step of the schedule.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PanelStep {
    /// Panel index.
    pub(crate) p: usize,
    /// First column (== first row) of the panel.
    pub(crate) c: usize,
    /// Panel width.
    pub(crate) width: usize,
}

/// Backend-independent schedule geometry: the fixed global column grid, its
/// home-slot ownership, and the panel steps — shared by the generic driver,
/// the model-only replay ([`crate::schedule`]) and the resilient executor
/// ([`crate::recovery`]) so all three enqueue, event-for-event, the same
/// schedule.
pub(crate) struct DagGeometry {
    w: usize,
    n: usize,
    /// Global column-grid block count.
    pub(crate) nb: usize,
    /// Work-lane count the blocks are distributed over.
    pub(crate) slots: usize,
    /// Panel steps over the leading `min(m, n)` columns.
    pub(crate) steps: Vec<PanelStep>,
}

impl DagGeometry {
    pub(crate) fn new(m: usize, n: usize, w: usize, slots: usize) -> DagGeometry {
        let k = m.min(n);
        let mut steps = Vec::with_capacity(k.div_ceil(w));
        let mut c = 0;
        while c < k {
            let width = w.min(k - c);
            steps.push(PanelStep {
                p: steps.len(),
                c,
                width,
            });
            c += width;
        }
        DagGeometry {
            w,
            n,
            nb: n.div_ceil(w),
            slots,
            steps,
        }
    }

    /// The panel steps of the schedule over the leading `min(m, n)`
    /// columns — the one grid every executor walks. [`Mode::Sync`] and
    /// [`Mode::Dag`] iterate it here; the batched `factor_many` fusion of
    /// [`crate::service`] walks the *same* steps in lockstep across many
    /// same-shape jobs, which is why a fused run factors panel-for-panel
    /// exactly what the synchronous loop would.
    pub(crate) fn panel_steps(m: usize, n: usize, w: usize) -> Vec<PanelStep> {
        DagGeometry::new(m, n, w, 1).steps
    }

    /// Home slot index of global column block `j`.
    pub(crate) fn home(&self, j: usize) -> usize {
        j % self.slots
    }

    /// The fixed-grid column block `j`.
    pub(crate) fn block(&self, j: usize) -> (usize, usize) {
        let start = j * self.w;
        (start, self.w.min(self.n - start))
    }

    /// The trailing column ranges panel `step` must update, already
    /// partitioned by home slot: fixed-grid blocks `first_block..nb`, plus
    /// — for a narrow last panel of a wide matrix — the tail of the panel's
    /// own block (columns `[c + width, min((p+1)*w, n))`), which stays on
    /// the panel's slot.
    pub(crate) fn groups(&self, step: &PanelStep, first_block: usize) -> Vec<Vec<(usize, usize)>> {
        let mut groups = vec![Vec::new(); self.slots];
        let tail_end = ((step.p + 1) * self.w).min(self.n);
        if step.c + step.width < tail_end {
            groups[self.home(step.p)].push((step.c + step.width, tail_end - step.c - step.width));
        }
        for j in first_block..self.nb {
            groups[self.home(j)].push(self.block(j));
        }
        groups
    }
}

/// Factor `a` with CAQR on any [`CaqrBackend`] — the one generic driver
/// every entry point routes through.
///
/// [`Mode::Sync`] reproduces the Figure-4 host loop (and, with
/// `cfg.verify_checksums`, the detection-only ABFT flow of the host path);
/// [`Mode::Dag`] reproduces the stream-scheduled task DAG with optional
/// lookahead. Numerics are bit-identical across modes and backends: every
/// backend runs the same `blockops` arithmetic eagerly in host order (a
/// valid topological order of the DAG), operations on disjoint column
/// blocks commute exactly, and within the apply kernels each column is
/// processed independently of how columns are grouped into launches.
pub fn drive<T: Scalar, B: CaqrBackend<T>>(
    backend: &B,
    mut a: Matrix<T>,
    cfg: &DriveConfig,
    mode: Mode,
) -> Result<DriveOutcome<T>, CaqrError> {
    cfg.bs.validate().map_err(CaqrError::BadShape)?;
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    // Overflow guard: every later size/byte product is bounded by the
    // element count, so reject adversarial shapes once, up front.
    checked_elems(m, n, "matrix element count")?;
    let w = cfg.bs.w;
    let k = m.min(n);
    let mut launches = 0usize;

    // Numerical health check: reject NaN/inf input with a typed error
    // before any arithmetic.
    if cfg.check_finite {
        launches += backend.check_finite(&a, cfg.bs, cfg.health_context)?;
    }
    // Strategy 4's out-of-place preprocessing.
    if cfg.strategy.needs_pretranspose() {
        launches += backend.pretranspose(m, n, cfg.bs)?;
    }

    let mut panels: Vec<PanelFactor<T>> = Vec::with_capacity(k.div_ceil(w));
    match mode {
        Mode::Sync => {
            for step in DagGeometry::panel_steps(m, n, w) {
                let (pidx, c, width) = (step.p, step.c, step.width);
                let pre = cfg
                    .verify_checksums
                    .then(|| health::panel_col_sumsq(&a, c, c, width));
                // Grid redraw: panel p starts at row == its first column.
                let pf = backend.factor_panel(0, &mut a, c, c, width, cfg)?;
                launches += 1 + pf.levels.len();
                if let Some(pre) = &pre {
                    backend.note_checksum_checks(width as u64);
                    backend.charge_verify((m - c) * width);
                    health::factor_norm_check::<T>(&a, pre, m, pidx, c, width)?;
                }
                // The probe doubles as the apply-stage predictor, so it is
                // computed once and only for panels that have trailing
                // columns to predict; a final panel's R stays covered by
                // the norm checksum above.
                let u =
                    (cfg.verify_checksums && c + width < n).then(|| backend.q_ones_probe(m, &pf));
                if let Some(u) = &u {
                    backend.note_checksum_checks(1);
                    health::verify_probe(u, pidx, c)?;
                }
                if c + width < n {
                    let cols = col_blocks(c + width, n, w);
                    let pred = u.as_ref().map(|u| health::predicted_col_sums(u, &a, &cols));
                    backend.apply_panel(0, MatPtr::new(&mut a), &pf, &cols, true)?;
                    launches += 1 + pf.levels.len();
                    if let Some(pred) = pred {
                        backend.note_checksum_checks(pred.len() as u64);
                        backend.charge_verify(m * pred.len());
                        health::apply_sum_check::<T>(&a, &pred, &cols, m, pidx)?;
                    }
                }
                panels.push(pf);
            }
        }
        Mode::Dag { lookahead } => {
            let geo = DagGeometry::new(m, n, w, backend.slots());
            let npanels = geo.steps.len();
            // Barrier mode: apply-completion tokens the next factor waits on.
            let mut pending: Vec<B::Token> = Vec::new();
            // Lookahead mode: the next panel's factor, done ahead of schedule.
            let mut next: Option<(PanelFactor<T>, B::Token)> = None;

            for p in 0..npanels {
                let step = &geo.steps[p];
                let (pf, f_tok) = match next.take() {
                    Some(x) => x,
                    None => {
                        let h = geo.home(p);
                        for tok in pending.drain(..) {
                            backend.wait(h, tok);
                        }
                        let pf =
                            backend.factor_panel(h, &mut a, step.c, step.c, step.width, cfg)?;
                        launches += 1 + pf.levels.len();
                        let tok = backend.record(h);
                        (pf, tok)
                    }
                };
                let chain = 1 + pf.levels.len();

                if lookahead && p + 1 < npanels {
                    // Lookahead: update only the next panel's column block,
                    // factor it immediately, then fan the bulk update out.
                    let h_next = geo.home(p + 1);
                    if h_next != geo.home(p) {
                        backend.wait(h_next, f_tok);
                    }
                    backend.apply_panel(
                        h_next,
                        MatPtr::new(&mut a),
                        &pf,
                        &[geo.block(p + 1)],
                        true,
                    )?;
                    launches += chain;

                    let (nc, nw) = {
                        let nstep = &geo.steps[p + 1];
                        (nstep.c, nstep.width)
                    };
                    let pf2 = backend.factor_panel(h_next, &mut a, nc, nc, nw, cfg)?;
                    launches += 1 + pf2.levels.len();
                    let tok2 = backend.record(h_next);
                    next = Some((pf2, tok2));

                    for (t, cols) in geo.groups(step, p + 2).into_iter().enumerate() {
                        if cols.is_empty() {
                            continue;
                        }
                        if t != geo.home(p) {
                            backend.wait(t, f_tok);
                        }
                        backend.apply_panel(t, MatPtr::new(&mut a), &pf, &cols, true)?;
                        launches += chain;
                    }
                } else {
                    // Barrier mode (and the last panel of either mode): fan
                    // the whole trailing update out, one apply chain per slot.
                    for (t, cols) in geo.groups(step, p + 1).into_iter().enumerate() {
                        if cols.is_empty() {
                            continue;
                        }
                        if t != geo.home(p) {
                            backend.wait(t, f_tok);
                        }
                        backend.apply_panel(t, MatPtr::new(&mut a), &pf, &cols, true)?;
                        launches += chain;
                        if !lookahead && p + 1 < npanels {
                            pending.push(backend.record(t));
                        }
                    }
                }
                panels.push(pf);
            }
        }
    }

    Ok(DriveOutcome {
        a,
        panels,
        launches,
    })
}

/// The host-multicore backend: no simulator, no cost model, real rayon
/// execution through [`crate::blockops`]. One slot; record/wait are no-ops
/// because execution is eager and in-order.
pub struct CpuBackend;

impl<T: Scalar> CaqrBackend<T> for CpuBackend {
    type Token = ();

    fn slots(&self) -> usize {
        1
    }

    fn check_finite(
        &self,
        a: &Matrix<T>,
        _bs: BlockSize,
        context: &'static str,
    ) -> Result<usize, CaqrError> {
        if let Some((row, col)) = health::first_nonfinite(a) {
            return Err(CaqrError::NonFinite { context, row, col });
        }
        Ok(0)
    }

    fn pretranspose(&self, _m: usize, _n: usize, _bs: BlockSize) -> Result<usize, CaqrError> {
        // The CPU analogue of the strategy-4 pre-transpose is the packed
        // per-tile V copy made at factor time; no separate pass runs.
        Ok(0)
    }

    fn factor_panel(
        &self,
        _slot: usize,
        a: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        width: usize,
        cfg: &DriveConfig,
    ) -> Result<PanelFactor<T>, CaqrError> {
        Ok(crate::multicore::factor_panel_host(
            a,
            row0,
            col0,
            width,
            cfg.bs,
            cfg.tree,
            cfg.strategy,
        ))
    }

    fn apply_panel(
        &self,
        _slot: usize,
        c: MatPtr<T>,
        pf: &PanelFactor<T>,
        cols: &[(usize, usize)],
        transpose: bool,
    ) -> Result<(), CaqrError> {
        crate::multicore::apply_panel_parts(
            c, &pf.tiles, &pf.wy0, &pf.levels, pf.width, cols, transpose,
        );
        Ok(())
    }

    fn record(&self, _slot: usize) -> Self::Token {}

    fn wait(&self, _slot: usize, _token: Self::Token) {}

    fn sync(&self) -> Result<(), CaqrError> {
        Ok(())
    }

    fn q_ones_probe(&self, m: usize, pf: &PanelFactor<T>) -> Vec<T> {
        crate::multicore::q_ones_probe_parts(m, &pf.tiles, &pf.wy0, &pf.levels, pf.width)
    }
}

/// The single-device simulator backend, covering three executor shapes
/// through its constructors: the synchronous Figure-4 loop
/// ([`SimBackend::sync`]), the stream DAG ([`SimBackend::streams`]) and
/// the resilient barrier executor ([`SimBackend::resilient`], which keeps
/// the health/pre-transpose passes synchronous the way the recovery
/// schedule issues them).
pub struct SimBackend<'g> {
    gpu: &'g Gpu,
    streams: Vec<StreamId>,
    execs: Vec<Exec>,
    health_exec: Exec,
    pre_exec: Exec,
}

impl<'g> SimBackend<'g> {
    /// Synchronous executor: one slot running `Exec::Sync`.
    pub fn sync(gpu: &'g Gpu) -> SimBackend<'g> {
        SimBackend {
            gpu,
            streams: Vec::new(),
            execs: vec![Exec::Sync],
            health_exec: Exec::Sync,
            pre_exec: Exec::Sync,
        }
    }

    /// Stream-DAG executor: `s` streams, health check and pre-transpose
    /// queued first on stream 0 (arithmetic runs eagerly at enqueue, so a
    /// NaN aborts before any factor work is queued).
    pub fn streams(gpu: &'g Gpu, s: usize) -> Result<SimBackend<'g>, CaqrError> {
        let streams = Self::make_streams(gpu, s)?;
        let first = Exec::Stream(streams[0]);
        Ok(SimBackend {
            gpu,
            execs: streams.iter().map(|&sid| Exec::Stream(sid)).collect(),
            streams,
            health_exec: first,
            pre_exec: first,
        })
    }

    /// Resilient barrier executor: `s` streams for the panel tasks, but the
    /// health check and pre-transpose run synchronously (the recovery
    /// schedule host-barriers between tasks anyway).
    pub fn resilient(gpu: &'g Gpu, s: usize) -> Result<SimBackend<'g>, CaqrError> {
        let streams = Self::make_streams(gpu, s)?;
        Ok(SimBackend {
            gpu,
            execs: streams.iter().map(|&sid| Exec::Stream(sid)).collect(),
            streams,
            health_exec: Exec::Sync,
            pre_exec: Exec::Sync,
        })
    }

    fn make_streams(gpu: &Gpu, s: usize) -> Result<Vec<StreamId>, CaqrError> {
        if s == 0 {
            return Err(CaqrError::BadShape("streams must be >= 1".into()));
        }
        Ok((0..s).map(|_| gpu.create_stream()).collect())
    }
}

impl<'g, T: Scalar> CaqrBackend<T> for SimBackend<'g> {
    type Token = Option<EventId>;

    fn slots(&self) -> usize {
        self.execs.len()
    }

    fn check_finite(
        &self,
        a: &Matrix<T>,
        bs: BlockSize,
        context: &'static str,
    ) -> Result<usize, CaqrError> {
        health::check_matrix_finite(self.gpu, self.health_exec, a, bs, context)?;
        Ok(1)
    }

    fn pretranspose(&self, m: usize, n: usize, bs: BlockSize) -> Result<usize, CaqrError> {
        let kernel = PretransposeKernel {
            blocks: m.div_ceil(bs.h) * n.div_ceil(bs.w),
            tile_rows: bs.h,
            tile_cols: bs.w,
            spec: self.gpu.spec(),
        };
        self.gpu.launch_on::<T>(self.pre_exec, &kernel)?;
        Ok(1)
    }

    fn factor_panel(
        &self,
        slot: usize,
        a: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        width: usize,
        cfg: &DriveConfig,
    ) -> Result<PanelFactor<T>, CaqrError> {
        factor_panel_with_tree_on(
            self.gpu,
            self.execs[slot],
            a,
            row0,
            col0,
            width,
            cfg.bs,
            cfg.strategy,
            cfg.tree,
        )
    }

    fn apply_panel(
        &self,
        slot: usize,
        c: MatPtr<T>,
        pf: &PanelFactor<T>,
        cols: &[(usize, usize)],
        transpose: bool,
    ) -> Result<(), CaqrError> {
        apply_panel_ptr_on(self.gpu, self.execs[slot], c, pf, cols, transpose)
    }

    fn record(&self, slot: usize) -> Self::Token {
        self.streams
            .get(slot)
            .map(|&sid| self.gpu.record_event(sid))
    }

    fn wait(&self, slot: usize, token: Self::Token) {
        if let (Some(&sid), Some(ev)) = (self.streams.get(slot), token) {
            self.gpu.wait_event(sid, ev);
        }
    }

    fn sync(&self) -> Result<(), CaqrError> {
        self.gpu
            .try_synchronize()
            .map(|_| ())
            .map_err(|context| CaqrError::Breakdown { context })
    }

    fn charge_verify(&self, elems: usize) {
        let bytes = elems as f64 * T::BYTES as f64;
        self.gpu.host_work(
            "checksum_verify",
            bytes / (self.gpu.spec().dram_bw_gbs * 1e9),
            2.0 * elems as f64,
        );
    }

    fn charge_snapshot(&self, elems: usize) {
        let bytes = 2.0 * elems as f64 * T::BYTES as f64;
        self.gpu
            .host_work("snapshot", bytes / (self.gpu.spec().dram_bw_gbs * 1e9), 0.0);
    }

    fn note_task_replay(&self) {
        self.gpu.note_task_replay();
    }

    fn note_panel_replay(&self) {
        self.gpu.note_panel_replay();
    }

    fn note_run_retry(&self) {
        self.gpu.note_run_retry();
    }
}
