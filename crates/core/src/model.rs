//! Model-only CAQR/TSQR timing: replays the exact launch sequence of the
//! drivers in [`mod@crate::tsqr`]/[`mod@crate::caqr`] through
//! [`Gpu::launch_with_costs`], charging the same per-block cost functions
//! the executing kernels charge — block for block, in the same grid order —
//! so a modelled sweep over a 1M x 192 matrix agrees with what executing it
//! would record, without doing the arithmetic (verified against real
//! execution in this module's tests).

use crate::block::{plan_tree, tile_panel, BlockSize, TreeShape};
use crate::caqr::CaqrOptions;
use crate::error::CaqrError;
use crate::health::{health_block_cost, health_cfg, health_tiles};
use crate::kernels::{
    apply_qt_h_block_cost, apply_qt_tree_block_cost, factor_block_cost, factor_tree_block_cost,
    pretranspose_block_cost, THREADS,
};
use crate::microkernels::{self as mk, ReductionStrategy};
use crate::tsqr::col_blocks;
use gpu_sim::{BlockCost, DeviceSpec, Exec, Gpu, LaunchConfig};

/// Element size of the paper's single-precision pipeline.
const ELEM_BYTES: u64 = 4;

fn cfg(
    blocks: usize,
    max_rows: usize,
    width: usize,
    wc: usize,
    strategy: ReductionStrategy,
    stage_v: bool,
) -> LaunchConfig {
    let mut smem = mk::smem_bytes(max_rows, wc, THREADS, strategy, ELEM_BYTES as usize);
    if stage_v {
        smem += max_rows * width * ELEM_BYTES as usize;
    }
    LaunchConfig {
        blocks,
        threads_per_block: THREADS,
        shared_mem_bytes: smem,
        regs_per_thread: mk::regs_per_thread(max_rows, wc, THREADS, strategy)
            .min(mk::FERMI_MAX_REGS_PER_THREAD),
    }
}

/// Tiny memoizer: the grids contain at most a handful of distinct shapes.
struct CostCache<F: FnMut(usize, usize) -> BlockCost> {
    make: F,
    seen: Vec<((usize, usize), BlockCost)>,
}

impl<F: FnMut(usize, usize) -> BlockCost> CostCache<F> {
    fn new(make: F) -> Self {
        CostCache {
            make,
            seen: Vec::new(),
        }
    }
    fn get(&mut self, a: usize, b: usize) -> BlockCost {
        if let Some((_, c)) = self.seen.iter().find(|(k, _)| *k == (a, b)) {
            return *c;
        }
        let c = (self.make)(a, b);
        self.seen.push(((a, b), c));
        c
    }
}

/// Charge the launches of one TSQR panel factorization (rows `[row0, m)`,
/// width `width`) plus, when `trailing_cols > 0`, the trailing-matrix
/// updates across that many columns. Returns the modelled seconds consumed.
pub fn model_panel(
    gpu: &Gpu,
    m: usize,
    row0: usize,
    width: usize,
    trailing_cols: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
) -> Result<f64, CaqrError> {
    model_panel_with_tree(
        gpu,
        m,
        row0,
        width,
        trailing_cols,
        bs,
        strategy,
        TreeShape::DeviceArity,
    )
}

/// [`model_panel`] with an explicit tree shape.
#[allow(clippy::too_many_arguments)]
pub fn model_panel_with_tree(
    gpu: &Gpu,
    m: usize,
    row0: usize,
    width: usize,
    trailing_cols: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
    tree: TreeShape,
) -> Result<f64, CaqrError> {
    let t0 = gpu.elapsed();
    model_factor_chain_on(gpu, Exec::Sync, m, row0, width, bs, strategy, tree)?;
    if trailing_cols > 0 {
        let cbs = col_blocks(row0 + width, row0 + width + trailing_cols, bs.w);
        model_apply_chain_on(gpu, Exec::Sync, m, row0, width, &cbs, bs, strategy, tree)?;
    }
    Ok(gpu.elapsed() - t0)
}

/// Charge one panel-factorization chain (factor + one factor_tree per level)
/// under an [`Exec`] policy. Returns the number of launches issued — the
/// stream scheduler's model replay counts launches with this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn model_factor_chain_on(
    gpu: &Gpu,
    exec: Exec,
    m: usize,
    row0: usize,
    width: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
    tree: TreeShape,
) -> Result<usize, CaqrError> {
    let spec = gpu.spec().clone();
    let tiles = tile_panel(row0, m - row0, bs.h, bs.w);
    let max_rows = tiles.iter().map(|t| t.rows).max().unwrap_or(0);

    // factor — one block per tile, exact per-tile cost.
    {
        let mut cache =
            CostCache::new(|rows, _| factor_block_cost(&spec, rows, width, strategy, ELEM_BYTES));
        let costs: Vec<BlockCost> = tiles.iter().map(|t| cache.get(t.rows, 0)).collect();
        gpu.launch_with_costs_on(
            exec,
            "factor",
            cfg(tiles.len(), max_rows, width, width, strategy, false),
            &costs,
        )?;
    }

    // factor_tree per level, exact per-group arity.
    let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
    let plan = plan_tree(&starts, tree.arity(bs));
    for level in &plan.levels {
        let max_t = level.iter().map(|g| g.members.len()).max().unwrap_or(2);
        let mut cache =
            CostCache::new(|t, _| factor_tree_block_cost(&spec, t, width, strategy, ELEM_BYTES));
        let costs: Vec<BlockCost> = level
            .iter()
            .map(|g| cache.get(g.members.len(), 0))
            .collect();
        gpu.launch_with_costs_on(
            exec,
            "factor_tree",
            cfg(level.len(), max_t * width, width, width, strategy, false),
            &costs,
        )?;
    }
    Ok(1 + plan.levels.len())
}

/// Charge one apply chain (apply_qt_h + one apply_qt_tree per level) of the
/// panel at `(row0, width)` across the column blocks `cols`, under an
/// [`Exec`] policy. Grid order is (ti = b % ntiles, cb = b / ntiles),
/// matching ApplyQtHKernel/ApplyQtTreeKernel. Returns the launch count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn model_apply_chain_on(
    gpu: &Gpu,
    exec: Exec,
    m: usize,
    row0: usize,
    width: usize,
    cols: &[(usize, usize)],
    bs: BlockSize,
    strategy: ReductionStrategy,
    tree: TreeShape,
) -> Result<usize, CaqrError> {
    if cols.is_empty() {
        return Ok(0);
    }
    let spec = gpu.spec().clone();
    let tiles = tile_panel(row0, m - row0, bs.h, bs.w);
    let max_rows = tiles.iter().map(|t| t.rows).max().unwrap_or(0);
    let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
    let plan = plan_tree(&starts, tree.arity(bs));
    let max_wc = cols.iter().map(|c| c.1).max().unwrap_or(0);
    {
        let mut cache = CostCache::new(|rows, wc| {
            apply_qt_h_block_cost(&spec, rows, width.min(rows), wc, strategy, ELEM_BYTES)
        });
        let mut costs = Vec::with_capacity(tiles.len() * cols.len());
        for &(_, wc) in cols {
            for t in &tiles {
                costs.push(cache.get(t.rows, wc));
            }
        }
        gpu.launch_with_costs_on(
            exec,
            "apply_qt_h",
            cfg(
                tiles.len() * cols.len(),
                max_rows,
                width,
                max_wc,
                strategy,
                true,
            ),
            &costs,
        )?;
    }
    for level in &plan.levels {
        let max_t = level.iter().map(|g| g.members.len()).max().unwrap_or(2);
        let mut cache = CostCache::new(|t, wc| {
            apply_qt_tree_block_cost(&spec, t, width, wc, strategy, ELEM_BYTES)
        });
        let mut costs = Vec::with_capacity(level.len() * cols.len());
        for &(_, wc) in cols {
            for g in level {
                costs.push(cache.get(g.members.len(), wc));
            }
        }
        gpu.launch_with_costs_on(
            exec,
            "apply_qt_tree",
            cfg(
                level.len() * cols.len(),
                max_t * width,
                width,
                max_wc,
                strategy,
                true,
            ),
            &costs,
        )?;
    }
    Ok(1 + plan.levels.len())
}

/// Modelled seconds for a full CAQR factorization of an `m x n` matrix
/// (the engine behind Figures 8/9 and Table I).
pub fn model_caqr_seconds(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: CaqrOptions,
) -> Result<f64, CaqrError> {
    opts.bs.validate().map_err(CaqrError::BadShape)?;
    let t0 = gpu.elapsed();
    let w = opts.bs.w;
    let k = m.min(n);

    if opts.check_finite {
        model_health_on(gpu, Exec::Sync, m, n, opts.bs)?;
    }
    if opts.strategy.needs_pretranspose() {
        model_pretranspose(gpu, gpu.spec(), m, n, opts.bs)?;
    }

    let mut c = 0;
    while c < k {
        let width = w.min(k - c);
        model_panel_with_tree(
            gpu,
            m,
            c,
            width,
            n - c - width,
            opts.bs,
            opts.strategy,
            opts.tree,
        )?;
        c += width;
    }
    Ok(gpu.elapsed() - t0)
}

fn model_pretranspose(
    gpu: &Gpu,
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    bs: BlockSize,
) -> Result<(), CaqrError> {
    let tiles = m.div_ceil(bs.h) * n.div_ceil(bs.w);
    gpu.launch_uniform(
        "pretranspose",
        pretranspose_cfg(tiles, bs),
        &pretranspose_block_cost(spec, bs.h, bs.w, ELEM_BYTES),
    )?;
    Ok(())
}

fn pretranspose_cfg(tiles: usize, bs: BlockSize) -> LaunchConfig {
    LaunchConfig {
        blocks: tiles,
        threads_per_block: THREADS,
        shared_mem_bytes: bs.h * bs.w * ELEM_BYTES as usize,
        regs_per_thread: 16,
    }
}

/// Charge the input health check under an [`Exec`] policy, block for block
/// the same launch [`crate::health::check_matrix_finite`] submits.
pub(crate) fn model_health_on(
    gpu: &Gpu,
    exec: Exec,
    m: usize,
    n: usize,
    bs: BlockSize,
) -> Result<(), CaqrError> {
    let spec = gpu.spec().clone();
    let tiles = health_tiles(m, bs);
    let mut cache = CostCache::new(|rows, _| health_block_cost(&spec, rows, n, ELEM_BYTES));
    let costs: Vec<BlockCost> = tiles.iter().map(|t| cache.get(t.rows, 0)).collect();
    gpu.launch_with_costs_on(exec, "health_check", health_cfg(tiles.len()), &costs)?;
    Ok(())
}

/// Charge the pretranspose pass under an [`Exec`] policy (the synchronous
/// path keeps the allocation-free `launch_uniform`; streams need explicit
/// per-block costs for the queue).
pub(crate) fn model_pretranspose_on(
    gpu: &Gpu,
    exec: Exec,
    m: usize,
    n: usize,
    bs: BlockSize,
) -> Result<(), CaqrError> {
    match exec {
        Exec::Sync => model_pretranspose(gpu, gpu.spec(), m, n, bs),
        Exec::Stream(_) => {
            let tiles = m.div_ceil(bs.h) * n.div_ceil(bs.w);
            let per = pretranspose_block_cost(gpu.spec(), bs.h, bs.w, ELEM_BYTES);
            let costs = vec![per; tiles];
            gpu.launch_with_costs_on(exec, "pretranspose", pretranspose_cfg(tiles, bs), &costs)?;
            Ok(())
        }
    }
}

/// Modelled seconds for applying `Q^T` (or generating explicit `Q`) from a
/// CAQR factorization of an `m x n` matrix to `nc` columns. The paper notes
/// `SORGQR` is "just as efficient as factoring the matrix"; this models it
/// with the same apply kernels.
pub fn model_caqr_apply_seconds(
    gpu: &Gpu,
    m: usize,
    n: usize,
    nc: usize,
    opts: CaqrOptions,
) -> Result<f64, CaqrError> {
    let t0 = gpu.elapsed();
    let spec = gpu.spec().clone();
    let w = opts.bs.w;
    let k = m.min(n);
    let cbs = col_blocks(0, nc, w);
    let ncb = cbs.len().max(1);
    let mut c = 0;
    while c < k {
        let width = w.min(k - c);
        let tiles = tile_panel(c, m - c, opts.bs.h, opts.bs.w);
        let max_rows = tiles.iter().map(|t| t.rows).max().unwrap_or(0);
        let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
        let plan = plan_tree(&starts, opts.tree.arity(opts.bs));
        gpu.launch_uniform(
            "apply_qt_h",
            cfg(tiles.len() * ncb, max_rows, width, w, opts.strategy, true),
            &apply_qt_h_block_cost(
                &spec,
                opts.bs.h.min(max_rows),
                width,
                w,
                opts.strategy,
                ELEM_BYTES,
            ),
        )?;
        for level in &plan.levels {
            let t = level.iter().map(|g| g.members.len()).max().unwrap_or(2);
            gpu.launch_uniform(
                "apply_qt_tree",
                cfg(level.len() * ncb, t * width, width, w, opts.strategy, true),
                &apply_qt_tree_block_cost(&spec, t, width, w, opts.strategy, ELEM_BYTES),
            )?;
        }
        c += width;
    }
    Ok(gpu.elapsed() - t0)
}

/// Modelled SGEQRF GFLOP/s for CAQR on an `m x n` single-precision matrix —
/// the paper's reporting convention (`2mn^2 - 2/3 n^3` useful flops over the
/// modelled time, matrix already resident on the GPU).
pub fn model_caqr_gflops(
    gpu: &Gpu,
    m: usize,
    n: usize,
    opts: CaqrOptions,
) -> Result<f64, CaqrError> {
    let secs = model_caqr_seconds(gpu, m, n, opts)?;
    Ok(dense::geqrf_flops(m, n) / secs / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caqr::caqr;
    use dense::generate;
    use gpu_sim::DeviceSpec;

    fn check_model_matches_execution(m: usize, n: usize, tol: f64) {
        let opts = CaqrOptions {
            bs: BlockSize { h: 32, w: 8 },
            strategy: ReductionStrategy::RegisterSerialTransposed,
            tree: TreeShape::DeviceArity,
            check_finite: true,
        };
        let g1 = Gpu::new(DeviceSpec::c2050());
        let a = generate::uniform::<f32>(m, n, 42);
        let _f = caqr(&g1, a, opts).unwrap();
        let exec = g1.ledger();

        let g2 = Gpu::new(DeviceSpec::c2050());
        model_caqr_seconds(&g2, m, n, opts).unwrap();
        let modeled = g2.ledger();

        assert_eq!(exec.calls, modeled.calls, "launch counts must match");
        let dt = (exec.seconds - modeled.seconds).abs() / exec.seconds;
        assert!(
            dt < tol,
            "time mismatch {dt}: {} vs {}",
            exec.seconds,
            modeled.seconds
        );
        let df = (exec.flops - modeled.flops).abs() / exec.flops.max(1.0);
        assert!(df < tol, "flop mismatch {df}");
        let db = (exec.dram_bytes - modeled.dram_bytes).abs() / exec.dram_bytes.max(1.0);
        assert!(db < tol, "traffic mismatch {db}");
    }

    #[test]
    fn model_matches_execution_exactly_for_uniform_tiles() {
        check_model_matches_execution(256, 32, 1e-9);
    }

    #[test]
    fn model_matches_execution_exactly_for_ragged_tiles() {
        check_model_matches_execution(301, 27, 1e-9);
    }

    #[test]
    fn tall_skinny_gflops_grow_with_height() {
        // Table I's trend: 1k -> 10k -> 100k rows at 192 columns climbs
        // steeply (launch overheads amortize, SMs fill).
        let g = Gpu::new(DeviceSpec::c2050());
        let opts = CaqrOptions::default();
        let g1k = model_caqr_gflops(&g, 1_000, 192, opts).unwrap();
        let g10k = model_caqr_gflops(&g, 10_000, 192, opts).unwrap();
        let g100k = model_caqr_gflops(&g, 100_000, 192, opts).unwrap();
        let g1m = model_caqr_gflops(&g, 1_000_000, 192, opts).unwrap();
        assert!(
            g1k < g10k && g10k < g100k && g100k <= g1m * 1.05,
            "{g1k} {g10k} {g100k} {g1m}"
        );
        // Headline scale: ~200 GFLOP/s at the largest size (paper: 195).
        assert!(g1m > 120.0 && g1m < 320.0, "1M x 192 modelled at {g1m}");
        // Small sizes are launch-bound and far below peak (paper: 39.6).
        assert!(g1k < 80.0, "1k x 192 modelled at {g1k}");
    }

    #[test]
    fn explicit_q_is_about_as_fast_as_factoring() {
        // Section V-C: "retrieving Q explicitly (SORGQR) using CAQR is just
        // as efficient as factoring the matrix". Generating Q applies every
        // panel across all n columns (vs. the shrinking trailing matrix),
        // so it lands within ~2x.
        let g = Gpu::new(DeviceSpec::c2050());
        let opts = CaqrOptions::default();
        let f = model_caqr_seconds(&g, 100_000, 192, opts).unwrap();
        let q = model_caqr_apply_seconds(&g, 100_000, 192, 192, opts).unwrap();
        let ratio = q / f;
        assert!(ratio > 0.3 && ratio < 2.2, "apply/factor ratio {ratio}");
    }
}
