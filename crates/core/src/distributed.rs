//! Multi-device (distributed) TSQR over an interconnect-modelled cluster
//! (DESIGN.md §11).
//!
//! The paper factors a tall-skinny panel on *one* GPU; its communication-
//! avoiding structure — a tree of small `R`-triangle reductions — is exactly
//! the structure that also minimizes inter-*device* messages, so the same
//! algorithm scales out: partition the rows across the devices of a
//! [`gpu_sim::Cluster`], factor each device's tiles locally with the
//! existing [`FactorKernel`]/[`FactorTreeKernel`] machinery, and let tree
//! groups that straddle devices pull the remote member triangles over the
//! link (one `w x w` triangle per member — the α·log(P) + small-β cost that
//! makes TSQR latency-optimal).
//!
//! ## Bit-identity
//!
//! The driver builds the *same* global tile grid and the *same* reduction
//! tree ([`plan_tree`]) as the single-device host path [`caqr_cpu`], and
//! every tile / tree group runs the same `blockops` arithmetic in the same
//! shared host memory — devices only affect *where* (and at what modelled
//! cost) each block executes, never what it computes. The factorization is
//! therefore bit-identical to [`caqr_cpu`] for every device count,
//! including runs that lose devices mid-flight (below).
//!
//! ## Device loss (recovery tier 4)
//!
//! A [`gpu_sim::FaultKind::DeviceLoss`] makes every launch on the dead
//! device fail with [`CaqrError::DeviceLost`] — terminal on one device (see
//! [`crate::recovery`]), but here the driver *fails over*: a survivor
//! adopts the dead device's row partition (restored bit-exactly from the
//! pristine input and re-uploaded at modelled PCIe cost), and every
//! completed tile factor / tree group the dead device executed is replayed
//! in level order on the survivor. Because [`blockops::factor_tree_group`]
//! writes only the group leader's triangle and replay restores exactly the
//! pre-loss inputs, replayed work reproduces the lost results bit-for-bit —
//! so a run with failover still matches [`caqr_cpu`] exactly.
//!
//! [`caqr_cpu`]: crate::multicore::caqr_cpu
//! [`blockops::factor_tree_group`]: crate::blockops::factor_tree_group

use crate::backend::{drive, CaqrBackend, DriveConfig, Mode};
use crate::block::{plan_tree, tile_panel, BlockSize, Tile, TreeGroup, TreePlan, TreeShape};
use crate::error::{checked_bytes, checked_elems, CaqrError};
use crate::health;
use crate::kernels::{FactorKernel, FactorTreeKernel};
use crate::microkernels::ReductionStrategy;
use crate::multicore::{CpuCaqr, CpuCaqrOptions, CpuPanel};
use crate::recovery::RecoveryReport;
use crate::tsqr::PanelFactor;
use crate::tsqr::{TreeNode, WyTile};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{Cluster, StreamId};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;

/// Options for [`distributed_tsqr`].
#[derive(Clone, Copy, Debug)]
pub struct DistOptions {
    /// Tile height (the panel width is the matrix width `n`; the pair must
    /// satisfy [`BlockSize::validate`], i.e. `tile_rows >= 2n`).
    pub tile_rows: usize,
    /// Reduction-tree shape shared by the local and cross-device levels.
    pub tree: TreeShape,
    /// Microkernel tuning strategy (cost model only; the math is identical).
    pub strategy: ReductionStrategy,
    /// Verify the panel's ABFT column-norm checksums after factoring
    /// (detection tier of the recovery ladder; see [`crate::health`]).
    pub verify_checksums: bool,
}

impl Default for DistOptions {
    /// The paper's shipping block geometry (128-row tiles, device-arity
    /// tree, strategy 4) with checksum verification off.
    fn default() -> Self {
        DistOptions {
            tile_rows: 128,
            tree: TreeShape::DeviceArity,
            strategy: ReductionStrategy::RegisterSerialTransposed,
            verify_checksums: false,
        }
    }
}

/// A completed distributed TSQR factorization.
///
/// The numerical payload is a [`CpuCaqr`] (same representation as the
/// single-device host path, so `r()` / `generate_q()` / `apply()` are
/// shared and trivially comparable); alongside it the driver reports what
/// the cluster did: the final tile → device ownership map (differs from
/// the initial contiguous split only after failovers) and the recovery
/// counters.
pub struct DistTsqr<T: Scalar> {
    /// The factorization, bit-identical to [`crate::multicore::caqr_cpu`]
    /// on the same input and block geometry.
    pub factored: CpuCaqr<T>,
    /// Launch / replay / failover counters.
    pub report: RecoveryReport,
    /// Final owner device of each level-0 tile.
    pub owner: Vec<usize>,
    /// Which devices were still alive at completion.
    pub alive: Vec<bool>,
}

impl<T: Scalar> DistTsqr<T> {
    /// The `n x n` upper-triangular factor.
    pub fn r(&self) -> Matrix<T> {
        self.factored.r()
    }

    /// First `k` columns of the orthogonal factor `Q`.
    pub fn generate_q(&self, k: usize) -> Result<Matrix<T>, CaqrError> {
        self.factored.generate_q(k)
    }

    /// Apply `Q` (or `Q^T`) to `c` in place.
    pub fn apply(&self, c: &mut Matrix<T>, transpose: bool) -> Result<(), CaqrError> {
        self.factored.apply(c, transpose)
    }

    /// Devices lost during the run.
    pub fn devices_lost(&self) -> usize {
        self.alive.iter().filter(|&&a| !a).count()
    }
}

/// Mutable driver state threaded through the phases: the work ledger
/// (what completed, where) is exactly what failover needs to replay.
struct Driver<'c, T: Scalar> {
    cluster: &'c Cluster,
    opts: DistOptions,
    width: usize,
    tiles: Vec<Tile>,
    plan: TreePlan,
    /// Absolute tile start row → tile index (tree members are start rows).
    tile_of_start: HashMap<usize, usize>,
    /// Current owner device per tile.
    owner: Vec<usize>,
    alive: Vec<bool>,
    streams: Vec<StreamId>,
    /// Untouched copy of the input: the failover restore source.
    pristine: Matrix<T>,
    /// Payload of one `w x w` triangle on the wire.
    tri_bytes: u64,
    report: RecoveryReport,
    // Completed-work ledger.
    tile_done: Vec<bool>,
    tile_exec: Vec<usize>,
    wy0: Vec<Option<WyTile<T>>>,
    level_nodes: Vec<Vec<Option<TreeNode<T>>>>,
    level_exec: Vec<Vec<usize>>,
}

impl<'c, T: Scalar> Driver<'c, T> {
    /// Factor the given tiles on device `d` with one `factor` launch.
    fn factor_tiles_on(
        &mut self,
        a: &mut Matrix<T>,
        d: usize,
        idxs: &[usize],
    ) -> Result<(), CaqrError> {
        let cluster = self.cluster;
        let gpu = cluster.device(d);
        let subset: Vec<Tile> = idxs.iter().map(|&t| self.tiles[t]).collect();
        let slots: Vec<Mutex<Option<WyTile<T>>>> =
            subset.iter().map(|_| Mutex::new(None)).collect();
        self.report.launches += 1;
        {
            let kernel = FactorKernel {
                a: MatPtr::new(a),
                tiles: &subset,
                col0: 0,
                width: self.width,
                strategy: self.opts.strategy,
                spec: gpu.spec(),
                wy: &slots,
            };
            gpu.launch_async(self.streams[d], &kernel)?;
        }
        for (slot, &t) in slots.iter().zip(idxs) {
            let wy = slot.lock().take().expect("factor block did not produce WY");
            self.wy0[t] = Some(wy);
            self.tile_done[t] = true;
            self.tile_exec[t] = d;
        }
        Ok(())
    }

    /// Reduce the given groups of `plan.levels[level]` on device `d` with
    /// one `factor_tree` launch, pulling remote member triangles over the
    /// interconnect first.
    fn tree_groups_on(
        &mut self,
        a: &mut Matrix<T>,
        d: usize,
        level: usize,
        idxs: &[usize],
    ) -> Result<(), CaqrError> {
        let cluster = self.cluster;
        let gpu = cluster.device(d);
        // Gather: each member triangle not resident on `d` costs one
        // point-to-point message (this is *all* the data the reduction
        // needs — the communication-avoiding payload).
        for &g in idxs {
            for &start in &self.plan.levels[level][g].members {
                let src = self.owner[self.tile_of_start[&start]];
                if src != d {
                    cluster.transfer(src, d, self.tri_bytes);
                }
            }
        }
        let groups: Vec<TreeGroup> = idxs
            .iter()
            .map(|&g| self.plan.levels[level][g].clone())
            .collect();
        let slots: Vec<Mutex<Option<TreeNode<T>>>> =
            groups.iter().map(|_| Mutex::new(None)).collect();
        self.report.launches += 1;
        {
            let kernel = FactorTreeKernel {
                a: MatPtr::new(a),
                groups: &groups,
                col0: 0,
                width: self.width,
                strategy: self.opts.strategy,
                spec: gpu.spec(),
                out: &slots,
            };
            gpu.launch_async(self.streams[d], &kernel)?;
        }
        for (slot, &g) in slots.iter().zip(idxs) {
            let node = slot
                .lock()
                .take()
                .expect("factor_tree block did not produce a node");
            self.level_nodes[level][g] = Some(node);
            self.level_exec[level][g] = d;
        }
        Ok(())
    }

    /// Tiles of `d` still awaiting their level-0 factor, or `None` if the
    /// device owns nothing pending.
    fn pending_tiles(&self, d: usize) -> Option<Vec<usize>> {
        let v: Vec<usize> = (0..self.tiles.len())
            .filter(|&t| self.owner[t] == d && !self.tile_done[t])
            .collect();
        (!v.is_empty()).then_some(v)
    }

    /// Groups of `level` led by a tile of `d` and not yet reduced.
    fn pending_groups(&self, d: usize, level: usize) -> Option<Vec<usize>> {
        let v: Vec<usize> = (0..self.plan.levels[level].len())
            .filter(|&g| {
                self.level_nodes[level][g].is_none()
                    && self.owner[self.tile_of_start[&self.plan.levels[level][g].members[0]]] == d
            })
            .collect();
        (!v.is_empty()).then_some(v)
    }

    /// Tier-4 recovery: mark `first_dead` lost and migrate its work to a
    /// survivor, chaining if a survivor dies mid-replay. Errors other than
    /// a further [`CaqrError::DeviceLost`] propagate.
    fn handle_loss(&mut self, a: &mut Matrix<T>, first_dead: usize) -> Result<(), CaqrError> {
        let mut dead = first_dead;
        loop {
            self.alive[dead] = false;
            let Some(surv) = self.alive.iter().position(|&alv| alv) else {
                return Err(CaqrError::Unrecoverable {
                    context: format!(
                        "device {dead} lost with no surviving device to adopt its work"
                    ),
                });
            };
            match self.adopt(a, dead, surv) {
                Ok(()) => return Ok(()),
                // The survivor died mid-replay; fail over again. Its
                // adopted-but-unreplayed work is found by the `!alive`
                // executor filter in the next `adopt`.
                Err(CaqrError::DeviceLost { .. }) => dead = surv,
                Err(e) => return Err(e),
            }
        }
    }

    /// Move every tile of `dead` to `surv`: restore the partition rows
    /// bit-exactly from the pristine input (charged as a host→device
    /// upload on the survivor), then replay — in level order — every
    /// completed unit whose executor is no longer alive.
    fn adopt(&mut self, a: &mut Matrix<T>, dead: usize, surv: usize) -> Result<(), CaqrError> {
        self.report.device_failovers += 1;
        self.cluster.device(surv).note_device_failover();
        let moved: Vec<usize> = (0..self.tiles.len())
            .filter(|&t| self.owner[t] == dead)
            .collect();
        let mut elems = 0usize;
        for &t in &moved {
            let tile = self.tiles[t];
            for j in 0..self.width {
                let rows = tile.start..tile.start + tile.rows;
                a.col_mut(j)[rows.clone()].copy_from_slice(&self.pristine.col(j)[rows]);
            }
            elems += tile.rows * self.width;
            self.owner[t] = surv;
        }
        let _ = self.cluster.device(surv).transfer_h2d(checked_bytes(
            elems,
            T::BYTES,
            "failover re-upload",
        )?);
        // Replay in dependency order: tile factors first, then each tree
        // level. Work executed by still-alive devices is never re-run
        // (`factor_tree_group` overwrites the leader triangle, so a rerun
        // on live state would corrupt it).
        let lost_tiles: Vec<usize> = moved
            .iter()
            .copied()
            .filter(|&t| self.tile_done[t] && !self.alive[self.tile_exec[t]])
            .collect();
        if !lost_tiles.is_empty() {
            self.factor_tiles_on(a, surv, &lost_tiles)?;
        }
        for level in 0..self.plan.levels.len() {
            let lost_groups: Vec<usize> = (0..self.plan.levels[level].len())
                .filter(|&g| {
                    self.level_nodes[level][g].is_some() && !self.alive[self.level_exec[level][g]]
                })
                .collect();
            if !lost_groups.is_empty() {
                self.tree_groups_on(a, surv, level, &lost_groups)?;
            }
        }
        self.cluster.sync_device(surv);
        Ok(())
    }

    /// Run the full distributed schedule: the level-0 factor phase, then
    /// each tree level. A [`CaqrError::DeviceLost`] mid-phase fails over
    /// ([`Driver::handle_loss`]) and the phase loop re-derives what is
    /// still pending from the work ledger.
    fn factor_all(&mut self, a: &mut Matrix<T>) -> Result<(), CaqrError> {
        let p = self.cluster.len();
        // Level 0: every device factors its own tiles.
        loop {
            let pending: Vec<(usize, Vec<usize>)> = (0..p)
                .filter_map(|d| self.pending_tiles(d).map(|v| (d, v)))
                .collect();
            if pending.is_empty() {
                break;
            }
            let mut lost = None;
            for (d, idxs) in pending {
                match self.factor_tiles_on(a, d, &idxs) {
                    Ok(()) => {
                        self.cluster.sync_device(d);
                    }
                    Err(CaqrError::DeviceLost { .. }) => {
                        lost = Some(d);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some(d) = lost {
                self.handle_loss(a, d)?;
            }
        }

        // Tree levels: groups run where their leader tile lives; remote
        // member triangles arrive over the interconnect inside
        // `tree_groups_on`.
        for level in 0..self.plan.levels.len() {
            loop {
                let pending: Vec<(usize, Vec<usize>)> = (0..p)
                    .filter_map(|d| self.pending_groups(d, level).map(|v| (d, v)))
                    .collect();
                if pending.is_empty() {
                    break;
                }
                let mut lost = None;
                for (d, idxs) in pending {
                    match self.tree_groups_on(a, d, level, &idxs) {
                        Ok(()) => {
                            self.cluster.sync_device(d);
                        }
                        Err(CaqrError::DeviceLost { .. }) => {
                            lost = Some(d);
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if let Some(d) = lost {
                    self.handle_loss(a, d)?;
                }
            }
        }
        Ok(())
    }
}

/// The multi-device cluster executor (DESIGN.md §11): one slot whose
/// [`factor_panel`](CaqrBackend::factor_panel) runs the whole distributed
/// phase schedule — level-0 tile factors on their owning devices, tree
/// levels with interconnect triangle gathers, tier-4 failover on device
/// loss. The one panel spans every column of the tall-skinny input, so the
/// generic driver never issues a trailing update through this backend.
///
/// Driver state (work ledger, ownership map, recovery counters) lives
/// behind a [`RefCell`], as [`CaqrBackend`]'s `&self` contract prescribes
/// for stateful executors; the host control flow is single-threaded.
pub struct ClusterBackend<'c, T: Scalar> {
    state: RefCell<Driver<'c, T>>,
}

impl<'c, T: Scalar> ClusterBackend<'c, T> {
    /// Partition the tiles of `a` contiguously over `cluster` (tile `t` of
    /// `ntiles` starts on device `t * P / ntiles`), build the shared
    /// reduction-tree plan, and set up the completed-work ledger failover
    /// replays from.
    fn new(cluster: &'c Cluster, a: &Matrix<T>, opts: DistOptions) -> Result<Self, CaqrError> {
        let (m, n) = a.shape();
        let bs = BlockSize {
            h: opts.tile_rows,
            w: n,
        };
        let p = cluster.len();
        let tiles = tile_panel(0, m, bs.h, bs.w);
        if p > tiles.len() {
            return Err(CaqrError::BadShape(format!(
                "{p} devices but only {} tiles of {} rows — shrink tile_rows or the cluster",
                tiles.len(),
                bs.h
            )));
        }
        checked_elems(m, n, "matrix element count")?;
        let tri_elems = checked_elems(n, n + 1, "triangle element count")? / 2;
        let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
        let plan = plan_tree(&starts, opts.tree.arity(bs));
        let tile_of_start: HashMap<usize, usize> =
            starts.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let ntiles = tiles.len();
        Ok(ClusterBackend {
            state: RefCell::new(Driver {
                cluster,
                opts,
                width: n,
                tile_of_start,
                owner: (0..ntiles).map(|t| t * p / ntiles).collect(),
                alive: vec![true; p],
                streams: (0..p).map(|d| cluster.device(d).create_stream()).collect(),
                pristine: a.clone(),
                tri_bytes: checked_bytes(tri_elems, T::BYTES, "reduction triangle")?,
                report: RecoveryReport::default(),
                tile_done: vec![false; ntiles],
                tile_exec: vec![usize::MAX; ntiles],
                wy0: (0..ntiles).map(|_| None).collect(),
                level_nodes: plan
                    .levels
                    .iter()
                    .map(|l| l.iter().map(|_| None).collect())
                    .collect(),
                level_exec: plan
                    .levels
                    .iter()
                    .map(|l| vec![usize::MAX; l.len()])
                    .collect(),
                tiles,
                plan,
            }),
        })
    }

    /// Tear down into what [`DistTsqr`] reports alongside the factors: the
    /// recovery counters, the final tile → device ownership map, and the
    /// device liveness vector.
    fn finish(self) -> (RecoveryReport, Vec<usize>, Vec<bool>) {
        let drv = self.state.into_inner();
        (drv.report, drv.owner, drv.alive)
    }
}

impl<'c, T: Scalar> CaqrBackend<T> for ClusterBackend<'c, T> {
    type Token = ();

    fn slots(&self) -> usize {
        1
    }

    fn check_finite(
        &self,
        a: &Matrix<T>,
        _bs: BlockSize,
        context: &'static str,
    ) -> Result<usize, CaqrError> {
        if let Some((row, col)) = health::first_nonfinite(a) {
            return Err(CaqrError::NonFinite { context, row, col });
        }
        Ok(0)
    }

    fn pretranspose(&self, _m: usize, _n: usize, _bs: BlockSize) -> Result<usize, CaqrError> {
        // Like the host path, the distributed kernels pack `V` at factor
        // time; no separate pre-transpose pass is modelled.
        Ok(0)
    }

    fn factor_panel(
        &self,
        _slot: usize,
        a: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        width: usize,
        _cfg: &DriveConfig,
    ) -> Result<PanelFactor<T>, CaqrError> {
        let drv = &mut *self.state.borrow_mut();
        if row0 != 0 || col0 != 0 || width != drv.width {
            return Err(CaqrError::BadShape(format!(
                "distributed TSQR factors exactly one full-width panel at (0, 0), \
                 not a {width}-column panel at ({row0}, {col0})"
            )));
        }
        drv.factor_all(a)?;
        // The phase loops run until nothing is pending, so every ledger
        // slot is filled when they return cleanly.
        let wy0: Vec<WyTile<T>> = drv
            .wy0
            .iter_mut()
            .map(|w| w.take().expect("every tile factored"))
            .collect();
        let levels: Vec<Vec<TreeNode<T>>> = drv
            .level_nodes
            .iter_mut()
            .map(|lv| {
                lv.iter_mut()
                    .map(|nd| nd.take().expect("every tree group reduced"))
                    .collect()
            })
            .collect();
        Ok(PanelFactor {
            row0: 0,
            col0: 0,
            width: drv.width,
            tiles: drv.tiles.clone(),
            wy0,
            levels,
            bs: BlockSize {
                h: drv.opts.tile_rows,
                w: drv.width,
            },
            strategy: drv.opts.strategy,
        })
    }

    fn apply_panel(
        &self,
        _slot: usize,
        _c: MatPtr<T>,
        _pf: &PanelFactor<T>,
        _cols: &[(usize, usize)],
        _transpose: bool,
    ) -> Result<(), CaqrError> {
        // Unreachable from `drive`: the single panel spans all `n` columns,
        // so there is never a trailing block to update.
        Err(CaqrError::BadShape(
            "distributed TSQR has no trailing updates to apply".into(),
        ))
    }

    fn record(&self, _slot: usize) -> Self::Token {}

    fn wait(&self, _slot: usize, _token: Self::Token) {}

    fn sync(&self) -> Result<(), CaqrError> {
        // Each phase already resolved its launches through
        // `Cluster::sync_device`; there is nothing left in flight.
        Ok(())
    }

    fn charge_verify(&self, elems: usize) {
        // Charge the host-side verification pass (one streamed read, two
        // flops per element) to the device holding the root triangle.
        let drv = self.state.borrow();
        let root = drv.cluster.device(drv.owner[0]);
        let bytes = elems as f64 * T::BYTES as f64;
        root.host_work(
            "checksum_verify",
            bytes / (root.spec().dram_bw_gbs * 1e9),
            2.0 * elems as f64,
        );
    }

    fn note_checksum_checks(&self, n: u64) {
        self.state.borrow_mut().report.checksum_checks += n;
    }
}

/// Factor a tall-skinny `m x n` matrix across the devices of `cluster`,
/// returning a factorization bit-identical to
/// [`caqr_cpu`](crate::multicore::caqr_cpu) with the same tile geometry.
///
/// Rows are split contiguously: tile `t` of `ntiles` starts on device
/// `t * P / ntiles`. Each phase (level-0 factor, then each tree level)
/// launches one kernel per owning device and resolves its stream through
/// [`Cluster::sync_device`], so compute lands on the per-device modelled
/// clocks and cross-device triangle gathers land on the interconnect.
/// A [`CaqrError::DeviceLost`] from any launch triggers tier-4 failover
/// (see the module docs) instead of propagating.
///
/// Errors: [`CaqrError::BadShape`] for invalid geometry (wide matrices,
/// `tile_rows < 2n`, more devices than tiles), [`CaqrError::NonFinite`]
/// for NaN/Inf input, [`CaqrError::Unrecoverable`] when every device is
/// lost, [`CaqrError::ChecksumMismatch`] if verification is on and trips.
pub fn distributed_tsqr<T: Scalar>(
    cluster: &Cluster,
    a: Matrix<T>,
    opts: DistOptions,
) -> Result<DistTsqr<T>, CaqrError> {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 || m < n {
        return Err(CaqrError::BadShape(format!(
            "distributed TSQR needs a tall-skinny matrix, got {m} x {n}"
        )));
    }
    let bs = BlockSize {
        h: opts.tile_rows,
        w: n,
    };
    bs.validate().map_err(CaqrError::BadShape)?;
    let backend = ClusterBackend::new(cluster, &a, opts)?;
    let cfg = DriveConfig {
        bs,
        strategy: opts.strategy,
        tree: opts.tree,
        check_finite: true,
        verify_checksums: opts.verify_checksums,
        health_context: "distributed_tsqr input",
    };
    // One full-width panel, so `drive` issues exactly one factor_panel call
    // (the whole phase schedule) and no trailing updates; the launch count
    // the report carries comes from the backend's own per-phase ledger.
    let mut out = drive(&backend, a, &cfg, Mode::Sync)?;
    let (report, owner, alive) = backend.finish();
    let panel = CpuPanel::from(out.panels.pop().expect("one full-width panel factored"));
    Ok(DistTsqr {
        factored: CpuCaqr {
            a: out.a,
            panels: vec![panel],
            opts: CpuCaqrOptions {
                tile_rows: opts.tile_rows,
                panel_width: n,
                tree: opts.tree,
                verify_checksums: false,
            },
        },
        report,
        owner,
        alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, LinkSpec, Topology};

    fn cluster(p: usize) -> Cluster {
        Cluster::new(
            p,
            DeviceSpec::c2050(),
            LinkSpec::infiniband_qdr(),
            Topology::BinomialTree,
        )
    }

    #[test]
    fn rejects_wide_and_misblocked_shapes() {
        let c = cluster(2);
        let wide = dense::generate::uniform::<f32>(16, 32, 3);
        assert!(matches!(
            distributed_tsqr(&c, wide, DistOptions::default()),
            Err(CaqrError::BadShape(_))
        ));
        let a = dense::generate::uniform::<f32>(256, 16, 3);
        let opts = DistOptions {
            tile_rows: 24, // < 2 * 16
            ..DistOptions::default()
        };
        assert!(matches!(
            distributed_tsqr(&c, a, opts),
            Err(CaqrError::BadShape(_))
        ));
    }

    #[test]
    fn rejects_more_devices_than_tiles() {
        let c = cluster(4);
        // 256 rows / 128-row tiles = 2 tiles < 4 devices.
        let a = dense::generate::uniform::<f32>(256, 16, 3);
        assert!(matches!(
            distributed_tsqr(&c, a, DistOptions::default()),
            Err(CaqrError::BadShape(_))
        ));
    }

    #[test]
    fn contiguous_partition_covers_all_devices() {
        let c = cluster(3);
        let a = dense::generate::uniform::<f32>(128 * 7, 16, 5);
        let f = distributed_tsqr(&c, a, DistOptions::default()).unwrap();
        assert_eq!(f.owner.len(), 7);
        for d in 0..3 {
            assert!(
                f.owner.contains(&d),
                "device {d} owns no tile: {:?}",
                f.owner
            );
        }
        let mut sorted = f.owner.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, f.owner, "contiguous split is monotone");
        assert_eq!(f.devices_lost(), 0);
        assert_eq!(f.report.device_failovers, 0);
    }

    #[test]
    fn cross_device_reductions_move_triangles() {
        let c = cluster(4);
        let a = dense::generate::uniform::<f32>(128 * 8, 16, 9);
        let f = distributed_tsqr(&c, a, DistOptions::default()).unwrap();
        let totals = c.net_totals();
        assert!(totals.messages > 0, "P=4 must reduce across devices");
        let tri = (16 * 17 / 2 * std::mem::size_of::<f32>()) as u64;
        assert_eq!(totals.bytes % tri, 0, "payloads are whole triangles");
        assert_eq!(f.r().cols(), 16);
    }

    #[test]
    fn single_device_cluster_needs_no_network() {
        let c = cluster(1);
        let a = dense::generate::uniform::<f64>(1024, 8, 11);
        let f = distributed_tsqr(&c, a, DistOptions::default()).unwrap();
        assert_eq!(c.net_totals().messages, 0);
        assert_eq!(f.r().cols(), 8);
    }
}
