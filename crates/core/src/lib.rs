//! # caqr — Communication-Avoiding QR for (simulated) GPUs
//!
//! Reproduction of the primary contribution of *"Communication-Avoiding QR
//! Decomposition for GPUs"* (Anderson, Ballard, Demmel, Keutzer; IPPS 2011):
//!
//! * [`tsqr`](mod@tsqr) — Tall-Skinny QR: per-tile Householder factorizations plus an
//!   `h/w`-ary reduction tree over the R factors (Figure 2),
//! * [`caqr`](mod@caqr) — the full factorization for arbitrary shapes: TSQR panels +
//!   horizontal and tree trailing-matrix updates (Figures 3-4),
//! * [`kernels`] — the four GPU kernels (`factor`, `factor_tree`,
//!   `apply_qt_h`, `apply_qt_tree`) executing real arithmetic on the
//!   simulated device from the `gpu-sim` crate,
//! * [`microkernels`] — the matrix-vector/rank-1 core with the paper's four
//!   tuning strategies (55 -> 388 GFLOPS, Section IV-E),
//! * [`tuning`] — the block-size autotuner (Figure 7),
//! * [`model`] — the model-only launch replay behind the large figure
//!   sweeps, provably consistent with execution,
//! * [`schedule`] — CAQR as a task DAG on simulated CUDA streams with
//!   lookahead, bit-identical to the synchronous loop,
//! * [`recovery`] — ABFT-checksummed, fault-recovering CAQR: tile-granular
//!   replay of faulted tasks with a task -> panel -> run escalation ladder,
//! * [`distributed`] — multi-device TSQR over an interconnect-modelled
//!   cluster with tier-4 device-loss failover, bit-identical to the
//!   single-device host path,
//! * [`backend`] — the execution-backend trait behind all of the above:
//!   one generic CAQR driver ([`backend::drive`]), pluggable executors
//!   (host multicore, simulator sync/stream-DAG, resilient, cluster),
//! * [`service`] — the multi-tenant batching service: a bounded admission
//!   queue with priority classes, deadlines and per-tenant quotas,
//!   shape-fused `factor_many` batches (bit-identical per matrix to
//!   standalone [`caqr_cpu`]), service-tier fault tolerance (fault-isolated
//!   fused batches with ABFT carve-out, supervised workers, an overload
//!   circuit breaker, bounded solo retry), and a per-tenant accounting
//!   ledger that reconciles exactly even mid-chaos.
//!
//! ## Quick start
//!
//! ```
//! use caqr::{caqr, CaqrOptions};
//! use gpu_sim::{DeviceSpec, Gpu};
//!
//! let gpu = Gpu::new(DeviceSpec::c2050());
//! let a = dense::generate::uniform::<f32>(4096, 64, 1);
//! let f = caqr::caqr(&gpu, a, CaqrOptions::default()).unwrap();
//! let r = f.r();
//! assert_eq!(r.cols(), 64);
//! println!("modelled time: {:.3} ms", gpu.elapsed() * 1e3);
//! ```

#![warn(missing_docs)]
// Lock in the panic-path sweep: library code must surface `CaqrError`
// instead of unwrapping. Tests may unwrap freely (the cfg_attr gate), and
// `expect` stays allowed for provably-infallible invariants whose message
// says why. CI elevates this to deny via `-D warnings`.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod backend;
pub mod block;
pub mod blockops;
pub mod bounds;
pub mod caqr;
pub mod distributed;
pub mod error;
pub mod health;
pub mod kernels;
pub mod microkernels;
pub mod model;
pub mod multicore;
pub mod recovery;
pub mod schedule;
pub mod service;
pub mod tsqr;
pub mod tuning;

pub use backend::{drive, CaqrBackend, CpuBackend, DriveConfig, DriveOutcome, Mode, SimBackend};
pub use block::{BlockSize, TreeShape};
pub use caqr::{caqr_qr, Caqr, CaqrOptions, LaunchPlan};
pub use distributed::{distributed_tsqr, ClusterBackend, DistOptions, DistTsqr};
pub use error::{checked_bytes, checked_elems, CaqrError};
pub use health::{check_matrix_finite, first_nonfinite};
pub use microkernels::ReductionStrategy;
pub use multicore::{caqr_cpu, CpuCaqr, CpuCaqrOptions};
pub use recovery::{
    caqr_resilient, drive_resilient, RecoveryOptions, RecoveryPolicy, RecoveryReport,
};
pub use schedule::{caqr_dag, model_caqr_dag_seconds, ScheduleOptions};
pub use service::{
    factor_many, factor_many_resilient, factor_many_with_stats, run_solo_resilient,
    service_retryable, BatchStats, JobOutcome, JobSpec, PlannedFault, Priority, ResilienceConfig,
    RetryBudget, Service, ServiceConfig, ServiceError, ServiceFaultPlan, ServiceLedger, ShedPolicy,
    SubmitError, TenantCounters, TenantQuota, Ticket,
};
pub use tsqr::{tsqr, PanelFactor, TreeNode, Tsqr};
pub use tuning::{autotune_measured, MeasuredPoint, MeasuredProfile};
