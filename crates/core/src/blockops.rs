//! The strategy-independent *math* of the four kernels, shared between the
//! simulated-GPU kernels ([`crate::kernels`]) and the host-multicore
//! implementation ([`crate::multicore`]): factor a tile, factor a gathered
//! triangle stack, apply tile reflectors, apply a tree node.
//!
//! Factorization precomputes the compact-WY representation `Q = I - V T V^T`
//! ([`WyTile`], `TreeNode::tmat`), so every apply is three GEMMs (`larfb`)
//! instead of `k` rank-1 sweeps over the tile — the BLAS3 restructuring of
//! the trailing update. [`apply_tile_reflectors`] keeps the original
//! per-reflector BLAS2 path as the reference (tested equivalent, and the
//! baseline for the larf-vs-larfb benches).
//!
//! All functions follow the [`dense::ptr::MatPtr`] disjoint-tile contract —
//! the caller's parallel loop must hand each invocation a tile no other
//! concurrent invocation touches.

use crate::block::Tile;
use crate::tsqr::{TreeNode, WyTile};
use dense::arena;
use dense::blas3::{gemm, Trans};
use dense::blocked::{extract_v, larfb_left, larft, larft_from_gram};
use dense::householder::{geqr2, geqr2_gram_transposed};
use dense::matrix::{MatMut, MatRef, Matrix};
use dense::scalar::Scalar;
use dense::MatPtr;

/// Factor one `tile.rows x width` tile of the panel in place and build its
/// compact-WY factors. (The `factor` kernel body.)
///
/// The tile is packed **pre-transposed** (row-major) into arena scratch
/// once, factored by the strategy-4 micro-kernel
/// ([`dense::householder::geqr2_transposed`]), and the WY factors are built
/// from the same packing — bit-identical to [`factor_tile_ref`] but with
/// contiguous-row trailing updates and no per-launch allocation beyond the
/// owned `WyTile` outputs.
#[allow(clippy::eq_op)] // the `x - x` probe is +0.0 iff `x` is finite, NaN otherwise
pub fn factor_tile<T: Scalar>(a: MatPtr<T>, tile: Tile, col0: usize, width: usize) -> WyTile<T> {
    let rows = tile.rows;
    // Pack pre-transposed straight from the panel: at[r * width + j] = A(r, j).
    let mut at = arena::take_dirty::<T>(rows * width);
    // SAFETY: the caller assigns disjoint tiles to concurrent invocations.
    unsafe {
        a.load_tile_transposed(tile.start, col0, rows, width, &mut at);
    }
    let k = rows.min(width);
    let mut tau = vec![T::ZERO; k];
    let mut gram = arena::take_dirty::<T>(k * k);
    geqr2_gram_transposed(&mut at, rows, width, 0, &mut tau, &mut gram);
    // One sweep per column of the factored packing serves the store-back of
    // the tile, the explicit V (unit diagonal, zeros above, tails below)
    // and the finiteness check of the tails — both destinations are written
    // contiguously while `at` stays cache-resident. `x - x` is exactly
    // `+0.0` for finite `x` and NaN otherwise, so the branchless
    // accumulator stays zero iff every tail entry is finite (the diagonal
    // ones and the zeros above are finite by construction).
    let mut v = Matrix::<T>::zeros(rows, k);
    // Four rotating lanes keep the NaN accumulation off the loop's critical
    // path (a single lane would serialize on FP-add latency).
    let mut tails_acc = [T::ZERO; 4];
    for j in 0..width {
        for r in 0..rows.min(j + 1) {
            // SAFETY: same tile.
            unsafe { a.set(tile.start + r, col0 + j, at[r * width + j]) };
        }
        if j < k {
            let vc = v.col_mut(j);
            if j < rows {
                vc[j] = T::ONE;
            }
            for r in j + 1..rows {
                let x = at[r * width + j];
                // SAFETY: same tile.
                unsafe { a.set(tile.start + r, col0 + j, x) };
                vc[r] = x;
                tails_acc[r & 3] += x - x;
            }
        } else {
            for r in j + 1..rows {
                // SAFETY: same tile.
                unsafe { a.set(tile.start + r, col0 + j, at[r * width + j]) };
            }
        }
    }
    let t = larft_from_gram(&gram, &tau);
    let healthy =
        all_finite(t.as_slice()) && all_finite(&tau) && tails_acc.iter().all(|&x| x == T::ZERO);
    WyTile { tau, v, t, healthy }
}

/// Pre-arena reference implementation of [`factor_tile`]: fresh column-major
/// buffer, dense [`geqr2`]/[`larft`]. Kept as the bit-identity oracle for
/// the property tests and the "before" row of the wallclock report.
pub fn factor_tile_ref<T: Scalar>(
    a: MatPtr<T>,
    tile: Tile,
    col0: usize,
    width: usize,
) -> WyTile<T> {
    let mut buf = vec![T::ZERO; tile.rows * width];
    // SAFETY: the caller assigns disjoint tiles to concurrent invocations.
    unsafe {
        a.load_tile(tile.start, col0, tile.rows, width, &mut buf);
    }
    let k = tile.rows.min(width);
    let mut tau = vec![T::ZERO; k];
    geqr2(
        MatMut::from_parts(&mut buf, tile.rows, width, tile.rows),
        &mut tau,
    );
    // SAFETY: same tile.
    unsafe {
        a.store_tile(tile.start, col0, tile.rows, width, &buf);
    }
    let factored = MatRef::from_parts(&buf, tile.rows, width, tile.rows);
    // larft reads only the strictly-below-diagonal entries of the factored
    // panel, so it can run on `buf` directly; V is then packed explicitly
    // (unit diagonal, zeros above) so every trailing apply streams it.
    let t = larft(factored, &tau);
    let v = extract_v(factored, k);
    let healthy = all_finite(t.as_slice()) && all_finite(&tau) && all_finite(v.as_slice());
    WyTile { tau, v, t, healthy }
}

/// True when every entry of the slice is finite (no NaN/inf).
///
/// Branchless lane accumulation of `x - x` (exactly `+0.0` for finite `x`,
/// NaN otherwise) so the scan vectorizes; the early-exit scalar loop only
/// runs on the sub-lane tail.
#[allow(clippy::eq_op)] // the `x - x` probe is +0.0 iff `x` is finite, NaN otherwise
fn all_finite<T: Scalar>(xs: &[T]) -> bool {
    const LANES: usize = 8;
    let mut acc = [T::ZERO; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            acc[l] += c[l] - c[l];
        }
    }
    chunks.remainder().iter().all(|v| v.is_finite()) && acc.iter().all(|&a| a == T::ZERO)
}

/// Gather the stacked R-triangles of one tree group, factor the stack, and
/// write the surviving R back to the leader. (The `factor_tree` kernel body.)
///
/// The stack is gathered **pre-transposed** into zeroed arena scratch and
/// factored with `tri_block == width`, so the micro-kernel skips the known
/// zero triangles of every stacked `R` in the trailing updates and the `T`
/// build (~2x the useful-flop density of the dense iteration at `arity`-row
/// stacks). The skipped terms are exact `±0.0` products; results agree with
/// [`factor_tree_group_ref`] on every value (zero signs may differ).
pub fn factor_tree_group<T: Scalar>(
    a: MatPtr<T>,
    members: &[usize],
    col0: usize,
    width: usize,
) -> TreeNode<T> {
    let w = width;
    let t = members.len();
    let rows = t * w;
    // Everything outside the gathered triangles is a structural zero the
    // tri_block skips rely on, so the scratch must start zeroed.
    let mut at = arena::take_zeroed::<T>(rows * w);
    for (ti, &r0) in members.iter().enumerate() {
        for i in 0..w {
            for j in i..w {
                // SAFETY: this group's triangles belong to this invocation.
                at[(ti * w + i) * w + j] = unsafe { a.get(r0 + i, col0 + j) };
            }
        }
    }
    let k = w.min(rows);
    let mut tau = vec![T::ZERO; k];
    let mut gram = arena::take_dirty::<T>(k * k);
    geqr2_gram_transposed(&mut at, rows, w, w, &mut tau, &mut gram);
    let r0 = members[0];
    for i in 0..w {
        for j in i..w {
            // SAFETY: leader triangle belongs to this group.
            unsafe { a.set(r0 + i, col0 + j, at[i * w + j]) };
        }
    }
    let tmat = larft_from_gram(&gram, &tau);
    let mut u = Matrix::<T>::zeros(rows, w);
    for j in 0..w {
        let col = u.col_mut(j);
        for (r, x) in col.iter_mut().enumerate() {
            *x = at[r * w + j];
        }
    }
    let healthy = all_finite(tmat.as_slice()) && all_finite(&tau) && all_finite(u.as_slice());
    TreeNode {
        members: members.to_vec(),
        u,
        tau,
        tmat,
        healthy,
    }
}

/// Pre-arena reference implementation of [`factor_tree_group`]: fresh
/// column-major gather, dense [`geqr2`]/[`larft`]. Kept as the oracle for
/// the property tests (values equal; zero signs may differ where the fast
/// path skips structural-zero products).
pub fn factor_tree_group_ref<T: Scalar>(
    a: MatPtr<T>,
    members: &[usize],
    col0: usize,
    width: usize,
) -> TreeNode<T> {
    let w = width;
    let t = members.len();
    let rows = t * w;
    let mut buf = vec![T::ZERO; rows * w];
    for (ti, &r0) in members.iter().enumerate() {
        for j in 0..w {
            for i in 0..=j {
                // SAFETY: this group's triangles belong to this invocation.
                buf[j * rows + ti * w + i] = unsafe { a.get(r0 + i, col0 + j) };
            }
        }
    }
    let mut tau = vec![T::ZERO; w.min(rows)];
    geqr2(MatMut::from_parts(&mut buf, rows, w, rows), &mut tau);
    let r0 = members[0];
    for j in 0..w {
        for i in 0..=j {
            // SAFETY: leader triangle belongs to this group.
            unsafe { a.set(r0 + i, col0 + j, buf[j * rows + i]) };
        }
    }
    let tmat = larft(MatRef::from_parts(&buf, rows, w, rows), &tau);
    let u = Matrix::from_col_major(rows, w, buf);
    let healthy = all_finite(tmat.as_slice()) && all_finite(&tau) && all_finite(u.as_slice());
    TreeNode {
        members: members.to_vec(),
        u,
        tau,
        tmat,
        healthy,
    }
}

/// Apply one tile's compact-WY factor to one `tile.rows x wc` target tile at
/// column `c0` via three GEMMs (`larfb`). (The `apply_qt_h` kernel body.)
pub fn apply_tile_wy<T: Scalar>(
    wy: &WyTile<T>,
    c: MatPtr<T>,
    tile: Tile,
    c0: usize,
    wc: usize,
    transpose: bool,
) {
    let rows = tile.rows;
    // Dirty arena scratch: load_tile overwrites every element.
    let mut cbuf = arena::take_dirty::<T>(rows * wc);
    // SAFETY: target tiles are disjoint across invocations.
    unsafe {
        c.load_tile(tile.start, c0, rows, wc, &mut cbuf);
    }
    if wy.healthy {
        larfb_left(
            wy.v.as_ref(),
            wy.t.as_ref(),
            transpose,
            MatMut::from_parts(&mut cbuf, rows, wc, rows),
        );
    } else {
        // Compact-WY breakdown (non-finite `T`): degrade to the
        // per-reflector larf sweeps, which never read `T`. The packed `V`
        // has the geqr2 layout (unit diagonal implicit, tails below), which
        // is exactly what apply_block_reflectors expects.
        crate::microkernels::apply_block_reflectors(
            wy.v.as_ref(),
            &wy.tau,
            transpose,
            MatMut::from_parts(&mut cbuf, rows, wc, rows),
        );
    }
    // SAFETY: same disjoint tile.
    unsafe {
        c.store_tile(tile.start, c0, rows, wc, &cbuf);
    }
}

/// Apply one tile's reflectors one at a time (BLAS2 `larf` sweeps) to one
/// `tile.rows x wc` target tile. The pre-WY reference path: kept for the
/// equivalence tests and the larf-vs-larfb benches.
#[allow(clippy::too_many_arguments)]
pub fn apply_tile_reflectors<T: Scalar>(
    v: MatPtr<T>,
    c: MatPtr<T>,
    tile: Tile,
    col0: usize,
    width: usize,
    tau: &[T],
    c0: usize,
    wc: usize,
    transpose: bool,
) {
    let rows = tile.rows;
    // Dirty arena scratch throughout: both load_tile calls overwrite every
    // element of their buffer.
    let mut vbuf = arena::take_dirty::<T>(rows * width);
    // SAFETY: the panel region is read-only during the launch.
    unsafe {
        v.load_tile(tile.start, col0, rows, width, &mut vbuf);
    }
    let mut cbuf = arena::take_dirty::<T>(rows * wc);
    // SAFETY: target tiles are disjoint across invocations.
    unsafe {
        c.load_tile(tile.start, c0, rows, wc, &mut cbuf);
    }
    crate::microkernels::apply_block_reflectors(
        MatRef::from_parts(&vbuf, rows, width, rows),
        tau,
        transpose,
        MatMut::from_parts(&mut cbuf, rows, wc, rows),
    );
    // SAFETY: same disjoint tile.
    unsafe {
        c.store_tile(tile.start, c0, rows, wc, &cbuf);
    }
}

/// Apply a tree node's compact-WY factor to a gathered `(t*w) x wc` stack in
/// place, exploiting the block structure of the stacked `V`:
///
/// ```text
/// V = [ I_w ]        (exact — geqr2 never fills the leader's sub-diagonal)
///     [ V_1 ]        each V_i is w x w upper triangular
///     [ ... ]
/// ```
///
/// so `W = V^T C` starts as a copy of the top strip (skipping the unit
/// block's multiply entirely) and accumulates one `w x w` GEMM per lower
/// block, never touching the structural zeros between blocks; `C -= V W`
/// mirrors it. For a `t`-member node this does `(t-1)/t` of the flops of the
/// dense `V` product on top of the usual 3-GEMM larfb saving.
pub fn apply_stacked_wy<T: Scalar>(
    node: &TreeNode<T>,
    width: usize,
    mut c: MatMut<'_, T>,
    transpose: bool,
) {
    let w = width;
    let t = node.members.len();
    debug_assert_eq!(c.rows(), t * w);
    let wc = c.cols();
    if wc == 0 {
        return;
    }
    if !node.healthy {
        // Compact-WY breakdown: apply the stacked reflectors one at a time
        // (never touching the non-finite `tmat`). Same call as the
        // equivalence test `stacked_wy_matches_per_reflector_on_tree_node`.
        crate::microkernels::apply_block_reflectors(node.u.as_ref(), &node.tau, transpose, c);
        return;
    }
    // W = V^T C: top block of V is exactly I_w, so W starts as a copy of
    // the top strip (into dirty arena scratch, fully overwritten here).
    let mut wbuf = arena::take_dirty::<T>(w * wc);
    {
        let top = c.as_ref().submatrix(0, 0, w, wc);
        for j in 0..wc {
            wbuf[j * w..(j + 1) * w].copy_from_slice(top.col(j));
        }
    }
    let mut wmat = MatMut::from_parts(&mut wbuf, w, wc, w);
    for i in 1..t {
        gemm(
            Trans::Yes,
            Trans::No,
            T::ONE,
            node.u.view(i * w, 0, w, w),
            c.as_ref().submatrix(i * w, 0, w, wc),
            T::ONE,
            wmat.rb_mut(),
        );
    }
    // W = op(T) W (beta == 0 fully defines the dirty scratch).
    let mut twbuf = arena::take_dirty::<T>(w * wc);
    let mut tw = MatMut::from_parts(&mut twbuf, w, wc, w);
    gemm(
        if transpose { Trans::Yes } else { Trans::No },
        Trans::No,
        T::ONE,
        node.tmat.as_ref(),
        wmat.as_ref(),
        T::ZERO,
        tw.rb_mut(),
    );
    // C -= V W: unit top block subtracts W directly.
    for j in 0..wc {
        let col = c.col_mut(j);
        for (i, ci) in col.iter_mut().take(w).enumerate() {
            *ci -= tw.at(i, j);
        }
    }
    for i in 1..t {
        gemm(
            Trans::No,
            Trans::No,
            -T::ONE,
            node.u.view(i * w, 0, w, w),
            tw.as_ref(),
            T::ONE,
            c.rb_mut().submatrix_mut(i * w, 0, w, wc),
        );
    }
}

/// Apply one tree node's reflectors to the stacked `width`-row strips of
/// the target at columns `[c0, c0 + wc)`. (The `apply_qt_tree` kernel body.)
pub fn apply_tree_node<T: Scalar>(
    c: MatPtr<T>,
    node: &TreeNode<T>,
    width: usize,
    c0: usize,
    wc: usize,
    transpose: bool,
) {
    let w = width;
    let t = node.members.len();
    let rows = t * w;
    // Dirty arena scratch: the gather below writes every element.
    let mut cbuf = arena::take_dirty::<T>(rows * wc);
    for (si, &r0) in node.members.iter().enumerate() {
        for j in 0..wc {
            for i in 0..w {
                // SAFETY: each (group, column-block) strip set is disjoint.
                cbuf[j * rows + si * w + i] = unsafe { c.get(r0 + i, c0 + j) };
            }
        }
    }
    apply_stacked_wy(
        node,
        w,
        MatMut::from_parts(&mut cbuf, rows, wc, rows),
        transpose,
    );
    for (si, &r0) in node.members.iter().enumerate() {
        for j in 0..wc {
            for i in 0..w {
                // SAFETY: same disjoint strips.
                unsafe { c.set(r0 + i, c0 + j, cbuf[j * rows + si * w + i]) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::tile_panel;

    #[test]
    fn factor_tile_equals_geqr2() {
        let mut a = dense::generate::uniform::<f64>(40, 6, 1);
        let reference = a.clone();
        let tile = Tile { start: 8, rows: 24 };
        let wy = factor_tile(MatPtr::new(&mut a), tile, 0, 6);
        let mut want = reference.extract(8, 0, 24, 6);
        let mut tau_want = vec![0.0; 6];
        dense::householder::geqr2(want.as_mut(), &mut tau_want);
        assert_eq!(wy.tau, tau_want);
        assert_eq!(a.extract(8, 0, 24, 6), want);
        // The packed V matches the factored tile's tails.
        assert_eq!(wy.v, extract_v(want.as_ref(), 6));
        assert_eq!(wy.t.rows(), 6);
        // Rows outside the tile untouched.
        for j in 0..6 {
            for i in 0..8 {
                assert_eq!(a[(i, j)], reference[(i, j)]);
            }
        }
    }

    #[test]
    fn wy_apply_matches_per_reflector_apply() {
        let mut panel = dense::generate::uniform::<f64>(64, 4, 2);
        let tiles = tile_panel(0, 64, 32, 4);
        let wys: Vec<WyTile<f64>> = tiles
            .iter()
            .map(|&t| factor_tile(MatPtr::new(&mut panel), t, 0, 4))
            .collect();
        let c0m = dense::generate::uniform::<f64>(64, 3, 3);
        let mut c_wy = c0m.clone();
        let mut c_ref = c0m.clone();
        for (t, wy) in tiles.iter().zip(&wys) {
            apply_tile_wy(wy, MatPtr::new(&mut c_wy), *t, 0, 3, true);
            apply_tile_reflectors(
                MatPtr::new_readonly(&panel),
                MatPtr::new(&mut c_ref),
                *t,
                0,
                4,
                &wy.tau,
                0,
                3,
                true,
            );
        }
        for (x, y) in c_wy.as_slice().iter().zip(c_ref.as_slice()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn apply_round_trip_via_blockops() {
        let mut panel = dense::generate::uniform::<f64>(64, 4, 2);
        let tiles = tile_panel(0, 64, 32, 4);
        let wys: Vec<WyTile<f64>> = tiles
            .iter()
            .map(|&t| factor_tile(MatPtr::new(&mut panel), t, 0, 4))
            .collect();
        let c0m = dense::generate::uniform::<f64>(64, 3, 3);
        let mut c = c0m.clone();
        for (t, wy) in tiles.iter().zip(&wys) {
            apply_tile_wy(wy, MatPtr::new(&mut c), *t, 0, 3, true);
        }
        for (t, wy) in tiles.iter().zip(&wys) {
            apply_tile_wy(wy, MatPtr::new(&mut c), *t, 0, 3, false);
        }
        for (x, y) in c.as_slice().iter().zip(c0m.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_node_top_v_block_is_exact_identity() {
        // The structural claim apply_stacked_wy relies on: after geqr2 of
        // stacked upper triangles, the leader block's sub-diagonal is
        // *bitwise* zero, and every lower block stays upper triangular.
        let mut a = Matrix::<f64>::zeros(96, 5);
        for (t, r0) in [0usize, 32, 64].into_iter().enumerate() {
            for j in 0..5 {
                for i in 0..=j {
                    a[(r0 + i, j)] =
                        ((t * 17 + i * 5 + j) % 11) as f64 - 5.0 + if i == j { 7.0 } else { 0.0 };
                }
            }
        }
        let node = factor_tree_group(MatPtr::new(&mut a), &[0, 32, 64], 0, 5);
        for j in 0..5 {
            for i in j + 1..5 {
                assert_eq!(node.u[(i, j)], 0.0, "leader sub-diagonal ({i},{j})");
                assert_eq!(node.u[(5 + i, j)], 0.0, "block-1 below-triangle ({i},{j})");
                assert_eq!(node.u[(10 + i, j)], 0.0, "block-2 below-triangle ({i},{j})");
            }
        }
    }

    #[test]
    fn unhealthy_wy_tile_falls_back_to_larf_and_matches() {
        // Poison the cached T of a healthy tile: the apply must detect the
        // breakdown flag and produce the same result via the larf path.
        let mut panel = dense::generate::uniform::<f64>(32, 4, 11);
        let tile = Tile { start: 0, rows: 32 };
        let wy = factor_tile(MatPtr::new(&mut panel), tile, 0, 4);
        assert!(wy.healthy, "well-conditioned tile must be healthy");
        let mut broken = wy.clone();
        broken.t[(0, 0)] = f64::NAN;
        broken.healthy = false;
        let c0m = dense::generate::uniform::<f64>(32, 3, 12);
        for transpose in [true, false] {
            let mut c_good = c0m.clone();
            apply_tile_wy(&wy, MatPtr::new(&mut c_good), tile, 0, 3, transpose);
            let mut c_fallback = c0m.clone();
            apply_tile_wy(&broken, MatPtr::new(&mut c_fallback), tile, 0, 3, transpose);
            for (x, y) in c_good.as_slice().iter().zip(c_fallback.as_slice()) {
                assert!(
                    (x - y).abs() < 1e-12 && y.is_finite(),
                    "transpose={transpose}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn unhealthy_tree_node_falls_back_to_larf_and_matches() {
        let mut a = Matrix::<f64>::zeros(64, 4);
        for (t, r0) in [0usize, 32].into_iter().enumerate() {
            for j in 0..4 {
                for i in 0..=j {
                    a[(r0 + i, j)] =
                        ((t * 7 + i * 3 + j) % 9) as f64 - 4.0 + if i == j { 6.0 } else { 0.0 };
                }
            }
        }
        let node = factor_tree_group(MatPtr::new(&mut a), &[0, 32], 0, 4);
        assert!(node.healthy);
        let mut broken = node.clone();
        broken.tmat[(0, 0)] = f64::INFINITY;
        broken.healthy = false;
        let c0 = dense::generate::uniform::<f64>(8, 2, 13);
        for transpose in [true, false] {
            let mut c_good = c0.clone();
            apply_stacked_wy(&node, 4, c_good.as_mut(), transpose);
            let mut c_fb = c0.clone();
            apply_stacked_wy(&broken, 4, c_fb.as_mut(), transpose);
            for (x, y) in c_good.as_slice().iter().zip(c_fb.as_slice()) {
                assert!((x - y).abs() < 1e-12 && y.is_finite());
            }
        }
    }

    #[test]
    fn stacked_wy_matches_per_reflector_on_tree_node() {
        let mut a = Matrix::<f64>::zeros(96, 6);
        for (t, r0) in [0usize, 48].into_iter().enumerate() {
            for j in 0..6 {
                for i in 0..=j {
                    a[(r0 + i, j)] = ((t * 13 + i * 3 + j * 7) % 17) as f64 - 8.0
                        + if i == j { 10.0 } else { 0.0 };
                }
            }
        }
        let node = factor_tree_group(MatPtr::new(&mut a), &[0, 48], 0, 6);
        for transpose in [true, false] {
            let c0 = dense::generate::uniform::<f64>(12, 4, 7);
            let mut c_wy = c0.clone();
            apply_stacked_wy(&node, 6, c_wy.as_mut(), transpose);
            let mut c_ref = c0.clone();
            crate::microkernels::apply_block_reflectors(
                node.u.as_ref(),
                &node.tau,
                transpose,
                c_ref.as_mut(),
            );
            for (x, y) in c_wy.as_slice().iter().zip(c_ref.as_slice()) {
                assert!((x - y).abs() < 1e-12, "transpose={transpose}: {x} vs {y}");
            }
        }
    }
}
