//! The strategy-independent *math* of the four kernels, shared between the
//! simulated-GPU kernels ([`crate::kernels`]) and the host-multicore
//! implementation ([`crate::multicore`]): factor a tile, factor a gathered
//! triangle stack, apply tile reflectors, apply a tree node.
//!
//! All functions follow the [`dense::ptr::MatPtr`] disjoint-tile contract —
//! the caller's parallel loop must hand each invocation a tile no other
//! concurrent invocation touches.

use crate::block::Tile;
use crate::tsqr::TreeNode;
use dense::householder::geqr2;
use dense::matrix::{MatMut, MatRef, Matrix};
use dense::scalar::Scalar;
use dense::MatPtr;

/// Factor one `tile.rows x width` tile of the panel in place; returns the
/// `tau` scalars. (The `factor` kernel body.)
pub fn factor_tile<T: Scalar>(a: MatPtr<T>, tile: Tile, col0: usize, width: usize) -> Vec<T> {
    let mut buf = vec![T::ZERO; tile.rows * width];
    // SAFETY: the caller assigns disjoint tiles to concurrent invocations.
    unsafe {
        a.load_tile(tile.start, col0, tile.rows, width, &mut buf);
    }
    let mut tau = vec![T::ZERO; tile.rows.min(width)];
    geqr2(
        MatMut::from_parts(&mut buf, tile.rows, width, tile.rows),
        &mut tau,
    );
    // SAFETY: same tile.
    unsafe {
        a.store_tile(tile.start, col0, tile.rows, width, &buf);
    }
    tau
}

/// Gather the stacked R-triangles of one tree group, factor the stack, and
/// write the surviving R back to the leader. (The `factor_tree` kernel body.)
pub fn factor_tree_group<T: Scalar>(
    a: MatPtr<T>,
    members: &[usize],
    col0: usize,
    width: usize,
) -> TreeNode<T> {
    let w = width;
    let t = members.len();
    let rows = t * w;
    let mut buf = vec![T::ZERO; rows * w];
    for (ti, &r0) in members.iter().enumerate() {
        for j in 0..w {
            for i in 0..=j {
                // SAFETY: this group's triangles belong to this invocation.
                buf[j * rows + ti * w + i] = unsafe { a.get(r0 + i, col0 + j) };
            }
        }
    }
    let mut tau = vec![T::ZERO; w.min(rows)];
    geqr2(MatMut::from_parts(&mut buf, rows, w, rows), &mut tau);
    let r0 = members[0];
    for j in 0..w {
        for i in 0..=j {
            // SAFETY: leader triangle belongs to this group.
            unsafe { a.set(r0 + i, col0 + j, buf[j * rows + i]) };
        }
    }
    TreeNode {
        members: members.to_vec(),
        u: Matrix::from_col_major(rows, w, buf),
        tau,
    }
}

/// Apply one tile's reflectors to one `tile.rows x wc` target tile at
/// column `c0`. (The `apply_qt_h` kernel body.)
#[allow(clippy::too_many_arguments)]
pub fn apply_tile_reflectors<T: Scalar>(
    v: MatPtr<T>,
    c: MatPtr<T>,
    tile: Tile,
    col0: usize,
    width: usize,
    tau: &[T],
    c0: usize,
    wc: usize,
    transpose: bool,
) {
    let rows = tile.rows;
    let mut vbuf = vec![T::ZERO; rows * width];
    // SAFETY: the panel region is read-only during the launch.
    unsafe {
        v.load_tile(tile.start, col0, rows, width, &mut vbuf);
    }
    let mut cbuf = vec![T::ZERO; rows * wc];
    // SAFETY: target tiles are disjoint across invocations.
    unsafe {
        c.load_tile(tile.start, c0, rows, wc, &mut cbuf);
    }
    crate::microkernels::apply_block_reflectors(
        MatRef::from_parts(&vbuf, rows, width, rows),
        tau,
        transpose,
        MatMut::from_parts(&mut cbuf, rows, wc, rows),
    );
    // SAFETY: same disjoint tile.
    unsafe {
        c.store_tile(tile.start, c0, rows, wc, &cbuf);
    }
}

/// Apply one tree node's reflectors to the stacked `width`-row strips of
/// the target at columns `[c0, c0 + wc)`. (The `apply_qt_tree` kernel body.)
pub fn apply_tree_node<T: Scalar>(
    c: MatPtr<T>,
    node: &TreeNode<T>,
    width: usize,
    c0: usize,
    wc: usize,
    transpose: bool,
) {
    let w = width;
    let t = node.members.len();
    let rows = t * w;
    let mut cbuf = vec![T::ZERO; rows * wc];
    for (si, &r0) in node.members.iter().enumerate() {
        for j in 0..wc {
            for i in 0..w {
                // SAFETY: each (group, column-block) strip set is disjoint.
                cbuf[j * rows + si * w + i] = unsafe { c.get(r0 + i, c0 + j) };
            }
        }
    }
    crate::microkernels::apply_block_reflectors(
        node.u.as_ref(),
        &node.tau,
        transpose,
        MatMut::from_parts(&mut cbuf, rows, wc, rows),
    );
    for (si, &r0) in node.members.iter().enumerate() {
        for j in 0..wc {
            for i in 0..w {
                // SAFETY: same disjoint strips.
                unsafe { c.set(r0 + i, c0 + j, cbuf[j * rows + si * w + i]) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::tile_panel;

    #[test]
    fn factor_tile_equals_geqr2() {
        let mut a = dense::generate::uniform::<f64>(40, 6, 1);
        let reference = a.clone();
        let tile = Tile { start: 8, rows: 24 };
        let tau = factor_tile(MatPtr::new(&mut a), tile, 0, 6);
        let mut want = reference.extract(8, 0, 24, 6);
        let mut tau_want = vec![0.0; 6];
        dense::householder::geqr2(want.as_mut(), &mut tau_want);
        assert_eq!(tau, tau_want);
        assert_eq!(a.extract(8, 0, 24, 6), want);
        // Rows outside the tile untouched.
        for j in 0..6 {
            for i in 0..8 {
                assert_eq!(a[(i, j)], reference[(i, j)]);
            }
        }
    }

    #[test]
    fn apply_round_trip_via_blockops() {
        let mut panel = dense::generate::uniform::<f64>(64, 4, 2);
        let tiles = tile_panel(0, 64, 32, 4);
        let taus: Vec<Vec<f64>> = tiles
            .iter()
            .map(|&t| factor_tile(MatPtr::new(&mut panel), t, 0, 4))
            .collect();
        let c0m = dense::generate::uniform::<f64>(64, 3, 3);
        let mut c = c0m.clone();
        for (t, tau) in tiles.iter().zip(&taus) {
            apply_tile_reflectors(
                MatPtr::new_readonly(&panel),
                MatPtr::new(&mut c),
                *t,
                0,
                4,
                tau,
                0,
                3,
                true,
            );
        }
        for (t, tau) in tiles.iter().zip(&taus) {
            apply_tile_reflectors(
                MatPtr::new_readonly(&panel),
                MatPtr::new(&mut c),
                *t,
                0,
                4,
                tau,
                0,
                3,
                false,
            );
        }
        for (x, y) in c.as_slice().iter().zip(c0m.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
